"""Journal records, torn-tail tolerance, snapshot compaction, recovery."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.journal import (
    JournalCorruptError,
    ShardStorage,
    encode_create,
    encode_diff,
    read_records,
)
from repro.service.store import SetStore


class TestRecordCodec:
    def test_create_round_trip(self):
        blob = encode_create("inv/eu", [3, 1, 2**32 - 1], version=9)
        [record], offset, error = read_records(blob)
        assert error == "" and offset == len(blob)
        assert record.name == "inv/eu"
        assert record.version == 9
        assert sorted(int(v) for v in record.add) == [1, 3, 2**32 - 1]

    def test_diff_round_trip(self):
        blob = encode_diff("s", add=[10, 20], remove=[30])
        [record], _, error = read_records(blob)
        assert error == ""
        assert sorted(int(v) for v in record.add) == [10, 20]
        assert [int(v) for v in record.remove] == [30]

    def test_many_records_back_to_back(self):
        blob = encode_create("a", [1]) + encode_diff("a", add=[2]) + \
            encode_diff("b", remove=[3])
        records, offset, error = read_records(blob)
        assert error == "" and offset == len(blob)
        assert [r.name for r in records] == ["a", "a", "b"]

    def test_truncated_tail_stops_at_last_complete_record(self):
        good = encode_diff("s", add=[1, 2, 3])
        torn = encode_diff("s", add=[4, 5, 6])
        for cut in (1, 5, len(torn) - 1):
            records, offset, error = read_records(good + torn[:cut])
            assert len(records) == 1
            assert offset == len(good)
            assert error != ""

    def test_corrupt_byte_fails_checksum(self):
        blob = bytearray(encode_diff("s", add=[1, 2, 3]))
        blob[-1] ^= 0xFF
        records, offset, error = read_records(bytes(blob))
        assert records == [] and offset == 0
        assert "checksum" in error

    def test_implausible_length_rejected(self):
        blob = b"\xff\xff\xff\xff" + b"\x00" * 8
        records, offset, error = read_records(blob)
        assert records == [] and "implausible" in error


class TestShardStorage:
    def _roundtrip(self, tmp_path, mutate):
        storage = ShardStorage(tmp_path / "shard")
        store = SetStore()
        storage.recover(store)
        mutate(store, storage)
        storage.close()
        recovered = SetStore()
        storage2 = ShardStorage(tmp_path / "shard")
        storage2.recover(recovered)
        storage2.close()
        return store, recovered

    def test_journal_only_recovery(self, tmp_path):
        def mutate(store, storage):
            store.create("inv", {1, 2, 3})
            storage.append(encode_create("inv", {1, 2, 3}))
            store.apply_diff("inv", add={10, 11})
            storage.append(encode_diff("inv", add=[10, 11]))

        store, recovered = self._roundtrip(tmp_path, mutate)
        assert recovered.get("inv") == store.get("inv")
        assert recovered.version("inv") == store.version("inv")

    def test_versions_rederived_by_replay(self, tmp_path):
        def mutate(store, storage):
            store.create("s", {1})
            storage.append(encode_create("s", {1}))
            for i in range(5):
                store.apply_diff("s", add={100 + i})
                storage.append(encode_diff("s", add=[100 + i]))
            # a no-op apply must not bump the version on replay either
            store.apply_diff("s", add={100})
            storage.append(encode_diff("s", add=[100]))

        store, recovered = self._roundtrip(tmp_path, mutate)
        assert store.version("s") == 5
        assert recovered.version("s") == 5

    def test_torn_tail_truncated_on_recovery(self, tmp_path):
        storage = ShardStorage(tmp_path / "shard")
        store = SetStore()
        storage.recover(store)
        storage.append(encode_create("s", {1, 2}))
        storage.append(encode_diff("s", add=[3]))
        storage.close()
        # simulate a crash mid-append: chop the last record in half
        journal = tmp_path / "shard" / "journal.log"
        data = journal.read_bytes()
        tail = encode_diff("s", add=[4, 5])
        journal.write_bytes(data + tail[: len(tail) // 2])

        recovered = SetStore()
        storage2 = ShardStorage(tmp_path / "shard")
        storage2.recover(recovered)
        assert recovered.get("s") == {1, 2, 3}   # last complete record wins
        assert storage2.tail_error != ""
        # the torn bytes are gone: a post-recovery append then a second
        # recovery must see a clean journal
        storage2.append(encode_diff("s", add=[9]))
        storage2.close()
        final = SetStore()
        storage3 = ShardStorage(tmp_path / "shard")
        storage3.recover(final)
        storage3.close()
        assert final.get("s") == {1, 2, 3, 9}
        assert storage3.tail_error == ""

    def test_compaction_preserves_state_and_resets_journal(self, tmp_path):
        storage = ShardStorage(tmp_path / "shard")
        store = SetStore()
        storage.recover(store)
        store.create("a", set(range(1, 100)))
        storage.append(encode_create("a", set(range(1, 100))))
        store.apply_diff("a", add={1000})
        storage.append(encode_diff("a", add=[1000]))
        storage.compact(store.items())
        assert storage.journal_bytes == 0
        assert storage.snapshot_bytes > 0
        storage.append(encode_diff("a", add=[2000]))
        store.apply_diff("a", add={2000})
        storage.close()

        recovered = SetStore()
        storage2 = ShardStorage(tmp_path / "shard")
        storage2.recover(recovered)
        storage2.close()
        assert recovered.get("a") == store.get("a")
        assert recovered.version("a") == store.version("a")
        assert storage2.recovered_sets == 1       # from the snapshot
        assert storage2.recovered_records == 1    # the post-compact diff

    def test_should_compact_threshold(self, tmp_path):
        storage = ShardStorage(
            tmp_path / "shard", compact_min_bytes=64, compact_factor=2
        )
        store = SetStore()
        storage.recover(store)
        assert not storage.should_compact()
        storage.append(encode_create("s", range(1, 50)))
        assert storage.should_compact()
        store.create("s", range(1, 50))
        storage.compact(store.items())
        assert not storage.should_compact()

    def test_snapshot_with_missing_journal_recovers_snapshot_state(
        self, tmp_path
    ):
        """An operator may delete a journal (e.g. to drop a bad tail);
        recovery must fall back to the snapshot, not raise or start
        empty."""
        storage = ShardStorage(tmp_path / "shard")
        store = SetStore()
        storage.recover(store)
        store.create("inv", {1, 2, 3})
        storage.append(encode_create("inv", {1, 2, 3}, version=4))
        storage.compact(store.items())
        storage.close()
        (tmp_path / "shard" / "journal.log").unlink()

        recovered = SetStore()
        storage2 = ShardStorage(tmp_path / "shard")
        storage2.recover(recovered)
        assert recovered.get("inv") == {1, 2, 3}
        assert storage2.recovered_sets == 1
        assert storage2.recovered_records == 0
        # and the shard is immediately writable again
        storage2.append(encode_diff("inv", add=[9]))
        storage2.close()
        final = SetStore()
        storage3 = ShardStorage(tmp_path / "shard")
        storage3.recover(final)
        storage3.close()
        assert final.get("inv") == {1, 2, 3, 9}

    def test_snapshot_with_zero_length_journal_recovers(self, tmp_path):
        storage = ShardStorage(tmp_path / "shard")
        store = SetStore()
        storage.recover(store)
        store.create("s", {5, 6})
        storage.append(encode_create("s", {5, 6}))
        storage.compact(store.items())
        storage.close()
        (tmp_path / "shard" / "journal.log").write_bytes(b"")

        recovered = SetStore()
        storage2 = ShardStorage(tmp_path / "shard")
        storage2.recover(recovered)
        storage2.close()
        assert recovered.get("s") == {5, 6}
        assert storage2.tail_error == ""
        assert storage2.truncated_bytes == 0

    def test_truncated_bytes_counted_in_stats(self, tmp_path):
        storage = ShardStorage(tmp_path / "shard")
        store = SetStore()
        storage.recover(store)
        storage.append(encode_create("s", {1}))
        storage.close()
        torn = encode_diff("s", add=[2, 3])
        journal = tmp_path / "shard" / "journal.log"
        journal.write_bytes(journal.read_bytes() + torn[:7])

        storage2 = ShardStorage(tmp_path / "shard")
        storage2.recover(SetStore())
        storage2.close()
        assert storage2.stats()["truncated_bytes"] == 7
        assert storage2.stats()["tail_error"] != ""

    def test_epoch_qualified_filenames(self, tmp_path):
        from repro.cluster.journal import journal_filename, snapshot_filename

        assert snapshot_filename(0) == "snapshot.bin"
        assert journal_filename(0) == "journal.log"
        storage = ShardStorage(tmp_path / "shard", epoch=3)
        store = SetStore()
        storage.recover(store)
        store.create("s", {1})
        storage.append(encode_create("s", {1}))
        storage.compact(store.items())
        storage.close()
        assert (tmp_path / "shard" / "snapshot-e3.bin").exists()
        assert (tmp_path / "shard" / "journal-e3.log").exists()
        assert not (tmp_path / "shard" / "snapshot.bin").exists()
        # epochs are isolated: epoch 0 sees none of epoch 3's state
        blank = SetStore()
        other = ShardStorage(tmp_path / "shard", epoch=0)
        other.recover(blank)
        other.close()
        assert "s" not in blank

    def test_replay_shard_is_read_only(self, tmp_path):
        from repro.cluster.journal import replay_shard

        storage = ShardStorage(tmp_path / "shard")
        store = SetStore()
        storage.recover(store)
        storage.append(encode_create("s", {1, 2}))
        storage.close()
        torn = encode_diff("s", add=[3])
        journal = tmp_path / "shard" / "journal.log"
        damaged = journal.read_bytes() + torn[: len(torn) - 2]
        journal.write_bytes(damaged)

        replayed, stats = replay_shard(tmp_path / "shard")
        assert replayed.get("s") == {1, 2}
        assert stats["truncated_bytes"] == len(torn) - 2
        # the torn tail was *not* truncated: planning passes leave the
        # current layout byte-identical
        assert journal.read_bytes() == damaged

    def test_corrupt_snapshot_is_fatal(self, tmp_path):
        storage = ShardStorage(tmp_path / "shard")
        store = SetStore()
        storage.recover(store)
        store.create("s", {1})
        storage.compact(store.items())
        storage.close()
        snapshot = tmp_path / "shard" / "snapshot.bin"
        snapshot.write_bytes(snapshot.read_bytes()[:-3])   # torn snapshot
        with pytest.raises(JournalCorruptError):
            ShardStorage(tmp_path / "shard").recover(SetStore())

    def test_large_element_values_survive(self, tmp_path):
        values = np.array([1, 2**31, 2**32 - 1], dtype=np.uint64)

        def mutate(store, storage):
            store.create("wide", values)
            storage.append(encode_create("wide", values))

        store, recovered = self._roundtrip(tmp_path, mutate)
        assert recovered.get("wide") == {1, 2**31, 2**32 - 1}


class TestChecksumStrength:
    def test_swapped_payload_bytes_are_detected(self):
        # the record checksum is position-tagged: reordering payload
        # bytes (which a plain additive byte sum would miss) must fail
        blob = bytearray(encode_diff("s", add=[0x0102030405060708]))
        header = 8
        i, j = header + 10, header + 12
        assert blob[i] != blob[j]
        blob[i], blob[j] = blob[j], blob[i]
        records, offset, error = read_records(bytes(blob))
        assert records == [] and "checksum" in error

    def test_diff_without_create_is_skipped_not_fatal(self, tmp_path):
        storage = ShardStorage(tmp_path / "shard")
        store = SetStore()
        storage.recover(store)
        storage.append(encode_create("a", {1}))
        storage.append(encode_diff("ghost", add=[9]))   # file surgery
        storage.append(encode_diff("a", add=[2]))
        storage.close()
        recovered = SetStore()
        storage2 = ShardStorage(tmp_path / "shard")
        storage2.recover(recovered)
        storage2.close()
        assert recovered.get("a") == {1, 2}
        assert "ghost" not in recovered
        assert storage2.skipped_records == 1
