"""Balls-into-bins closed forms vs the paper's quoted numbers and Monte Carlo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.balls_bins import (
    prob_ideal,
    prob_some_even_bin,
    prob_some_odd_bin_ge3,
)


class TestIdealCase:
    def test_paper_example_d5_n255(self):
        """§1.3.1: 'when d = 5 and n is set to 255, the probability for the
        ideal situation to occur is 0.96'."""
        assert prob_ideal(5, 255) == pytest.approx(0.961, abs=0.001)

    def test_trivial_cases(self):
        assert prob_ideal(0, 10) == 1.0
        assert prob_ideal(1, 10) == 1.0
        assert prob_ideal(11, 10) == 0.0

    def test_monotone_in_n(self):
        probs = [prob_ideal(5, n) for n in (63, 127, 255, 511)]
        assert probs == sorted(probs)

    def test_monotone_decreasing_in_d(self):
        probs = [prob_ideal(d, 255) for d in range(1, 10)]
        assert probs == sorted(probs, reverse=True)

    def test_birthday_bound_shape(self):
        # 1 - prob_ideal ~ d^2 / (2n) for d << n
        n = 10_000
        approx = 1 - prob_ideal(10, n)
        assert approx == pytest.approx(45 / n, rel=0.05)


class TestExceptionProbabilities:
    def test_paper_type1_example(self):
        """§2.3: d=5, n=255 -> P[some even bin] ≈ 0.04."""
        assert prob_some_even_bin(5, 255) == pytest.approx(0.0385, abs=0.002)

    def test_paper_type2_example(self):
        """§2.3: d=5, n=255 -> P[some odd >= 3 bin] ≈ 1.52e-4."""
        assert prob_some_odd_bin_ge3(5, 255) == pytest.approx(1.52e-4, rel=0.05)

    def test_partition_of_probability_space(self):
        """Ideal + type-I-free decomposition: the three events (ideal,
        some-even-bin, some-odd>=3-bin) cover everything, with overlap
        between the two exception types."""
        d, n = 5, 255
        p_ideal = prob_ideal(d, n)
        p1 = prob_some_even_bin(d, n)
        p2 = prob_some_odd_bin_ge3(d, n)
        # inclusion-exclusion: P(exceptions) >= max(p1, p2); = p1+p2-overlap
        assert 1 - p_ideal <= p1 + p2 + 1e-12
        assert 1 - p_ideal >= max(p1, p2) - 1e-12

    def test_small_d_has_no_odd_ge3(self):
        assert prob_some_odd_bin_ge3(2, 100) == 0.0

    def test_d2_even_bin_is_collision_probability(self):
        # with 2 balls the only non-ideal pattern is both in one bin
        assert prob_some_even_bin(2, 100) == pytest.approx(1 / 100)

    def test_monte_carlo_agreement(self):
        d, n = 6, 63
        rng = np.random.default_rng(42)
        trials = 40_000
        even_hits = 0
        odd_hits = 0
        for _ in range(trials):
            counts = np.bincount(rng.integers(0, n, size=d), minlength=n)
            if ((counts >= 2) & (counts % 2 == 0)).any():
                even_hits += 1
            if ((counts >= 3) & (counts % 2 == 1)).any():
                odd_hits += 1
        assert even_hits / trials == pytest.approx(
            prob_some_even_bin(d, n), rel=0.1
        )
        # odd >= 3 is rare; allow loose tolerance
        assert odd_hits / trials == pytest.approx(
            prob_some_odd_bin_ge3(d, n), rel=0.5, abs=2e-4
        )
