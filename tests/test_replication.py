"""Replication & failover: log shipping, quorum acks, promotion.

The tier's contract (ISSUE 10): **no quorum-acked mutation is ever
lost** — not across primary SIGKILLs, follower kills, dead primary
disks, or any seeded interleaving of those — and every replica of a
shard **converges bit-for-bit** once the dust settles, on both storage
backends and both executors.

Drills are driven by the seeded ``FaultPlan`` fixture (conftest): each
schedule replays exactly from its seed, so a failing interleaving is a
repro case, not a flake.
"""

from __future__ import annotations

import asyncio
import os
import signal
import time

import pytest

from repro.cluster import (
    QuorumTimeoutError,
    WorkerUnavailableError,
    backend_class,
    elect_replica,
    load_manifest,
    open_backend,
    quorum_size,
    read_cursor,
    write_cursor,
)
from repro.cluster.manifest import replica_dir
from repro.cluster.replication import ReplicationError
from repro.errors import ReproError

async def _until(predicate, timeout=60.0, interval=0.05, what="condition"):
    """Poll ``predicate`` until truthy; fail loudly on timeout."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        value = predicate()
        if value:
            return value
        await asyncio.sleep(interval)
    raise AssertionError(f"timed out waiting for {what}")


def _repl_stats(store, shard=0):
    return store.cluster_stats()["per_shard"][shard].get("replication") or {}


def _converged(store, shard=0):
    """Every follower live and caught up to the shipped sequence."""
    st = _repl_stats(store, shard)
    return bool(
        st
        and st["followers"]
        and all(f["alive"] and f["lag"] == 0 for f in st["followers"])
        and st["durable_seq"] >= st["seq"]
    )


def _replica_contents(storage, data_dir, shard, replicas, epoch=0):
    """The logical state of every replica dir: name -> (values, version)."""
    out = []
    for replica in range(replicas + 1):
        backend = open_backend(
            storage, replica_dir(data_dir, shard, replica),
            epoch=epoch, create=False,
        )
        try:
            entries = sorted(
                (name, tuple(sorted(values)), version)
                for name, values, version in backend.iter_sets()
            )
        finally:
            backend.close()
        out.append(entries)
    return out


# -- unit: cursors, quorum math, election --------------------------------------

class TestPrimitives:
    def test_quorum_size_is_majority_of_replica_set(self):
        # total = primary + R followers
        assert quorum_size(1) == 1
        assert quorum_size(2) == 2
        assert quorum_size(3) == 2
        assert quorum_size(4) == 3
        assert quorum_size(5) == 3

    def test_cursor_roundtrip_and_corruption(self, tmp_path):
        assert read_cursor(tmp_path) == -1        # missing: unknown
        write_cursor(tmp_path, 41)
        assert read_cursor(tmp_path) == 41
        write_cursor(tmp_path, 42, fsync=True)
        assert read_cursor(tmp_path) == 42
        (tmp_path / "repl-cursor.json").write_bytes(b"not json{")
        assert read_cursor(tmp_path) == -1        # corrupt: unknown

    def test_elect_replica_prefers_max_cursor_then_lowest(
        self, tmp_path, storage_backend
    ):
        for replica, seq in ((0, 3), (1, 7), (2, 7)):
            d = replica_dir(tmp_path, 0, replica)
            d.mkdir(parents=True)
            backend_class(storage_backend).stage(
                d, [("s", frozenset({1, replica}), 0)]
            )
            write_cursor(d, seq)
        elect = lambda **kw: elect_replica(
            tmp_path, 0, 0, storage_backend, 2, **kw
        )
        assert elect() == 1                         # max cursor, ties lowest
        assert elect(exclude=frozenset({1})) == 2   # same cursor, next up
        with pytest.raises(ReplicationError):
            elect_replica(tmp_path, 0, 0, storage_backend, 0,
                          exclude=frozenset({0}))


# -- inline executor -----------------------------------------------------------

class TestInlineReplication:
    def test_startup_election_recovers_from_dead_primary_disk(
        self, tmp_path, make_cluster, corrupt_shard
    ):
        """Cold start on a corrupt active replica: the most-advanced
        follower is elected offline and serves the acked data."""
        async def seed():
            async with make_cluster(
                1, tmp_path, replicas=1, replication="quorum"
            ) as store:
                await store.create("alpha", [1, 2, 3])
                await store.apply_diff("alpha", add=[10], remove=[2])
                await _until(lambda: _converged(store), what="convergence")

        asyncio.run(seed())
        corrupt_shard(replica_dir(tmp_path, 0, 0))

        async def reopen():
            async with make_cluster(
                1, tmp_path, replicas=1, replication="quorum"
            ) as store:
                assert store.get("alpha") == {1, 3, 10}
                await store.apply_diff("alpha", add=[99])
                await _until(lambda: _converged(store), what="convergence")

        asyncio.run(reopen())
        manifest = load_manifest(tmp_path)
        assert manifest.primary_replica == [1]
        assert manifest.cursors[0] >= 2

    def test_seeded_follower_kills_never_lose_acked_data(
        self, tmp_path, make_cluster, fault_plan
    ):
        """Property drill, inline: interleave quorum-acked mutation
        batches with seeded follower kills (forced re-bootstraps); every
        acked element must survive to a bit-for-bit converged replica
        set."""
        seeds = range(3)
        for seed in seeds:
            plan = fault_plan(seed)
            data_dir = tmp_path / f"run-{seed}"

            async def drill(plan=plan, data_dir=data_dir):
                acked = set()
                store = make_cluster(
                    1, data_dir, replicas=2, replication="quorum"
                )
                await store.start()
                try:
                    await store.create("s", [0])
                    acked.add(0)
                    base = 1
                    for batch in range(4):
                        # seeded choice: which follower(s) die this round
                        victims = [
                            f for f in store._shards[0].repl.followers
                            if plan.rng.integers(0, 3) == 0
                        ]
                        for follower in victims:
                            follower.mark_dead("injected kill")
                        values = list(range(base, base + 5))
                        base += 5
                        await store.apply_diff("s", add=values)
                        acked.update(values)
                    await _until(lambda: _converged(store),
                                 what="convergence")
                finally:
                    await store.close()
                return acked

            acked = asyncio.run(drill())
            contents = _replica_contents(
                make_cluster.storage, data_dir, 0, replicas=2
            )
            assert contents[0] == contents[1] == contents[2]
            (name, values, _version), = contents[0]
            assert name == "s" and acked <= set(values)


# -- subprocess executor -------------------------------------------------------

def _make_proc(make_cluster, data_dir, **overrides):
    overrides.setdefault("executor", "subprocess")
    overrides.setdefault("replicas", 2)
    overrides.setdefault("replication", "quorum")
    overrides.setdefault("restart_backoff_s", 0.1)
    overrides.setdefault("promote_after", 2)
    return make_cluster(1, data_dir, **overrides)


class TestProcFailover:
    def test_sigkill_plus_dead_disk_promotes_most_advanced_follower(
        self, tmp_path, make_cluster, corrupt_shard, fault_plan
    ):
        """The ISSUE's flagship drill: SIGKILL the primary worker, kill
        its disk, and the supervisor must fail the shard over to a
        follower with zero acked loss — then keep accepting writes."""
        plan = fault_plan(0)

        async def drill():
            store = _make_proc(make_cluster, tmp_path)
            await store.start()
            try:
                await store.create("alpha", [1, 2, 3])
                await store.apply_diff("alpha", add=[10, 11], remove=[2])
                await _until(lambda: _converged(store), what="convergence")
                acked = {1, 3, 10, 11}

                pid = store.cluster_stats()["per_shard"][0]["worker"]["pid"]
                plan.arm("post-ack", plan.sigkill(pid))
                assert plan.reached("post-ack")
                corrupt_shard(replica_dir(tmp_path, 0, 0))

                await _until(
                    lambda: _repl_stats(store).get("promotions", 0) >= 1
                    and store.shard_available(0),
                    what="promotion",
                )
                assert store.get("alpha") == acked
                await store.apply_diff("alpha", add=[99])
                await _until(lambda: _converged(store), what="re-convergence")
                st = _repl_stats(store)
                assert st["active_replica"] != 0
                assert st["quorum_ok"]
            finally:
                await store.close()

        asyncio.run(drill())
        manifest = load_manifest(tmp_path)
        assert manifest.primary_replica[0] != 0
        # the demoted dir re-bootstrapped as a follower: every replica
        # converged to the same logical contents, acked data included
        contents = _replica_contents(
            make_cluster.storage, tmp_path, 0, replicas=2
        )
        assert contents[0] == contents[1] == contents[2]
        (name, values, _version), = contents[0]
        assert name == "alpha" and {1, 3, 10, 11, 99} <= set(values)

    def test_empty_recovery_behind_followers_promotes_not_wipes(
        self, tmp_path, make_cluster
    ):
        """A wiped primary volume whose respawn 'succeeds' empty (the
        journal tolerates torn tails; a fresh sqlite file just opens)
        must promote instead of resyncing followers from nothing."""
        async def drill():
            store = _make_proc(make_cluster, tmp_path)
            await store.start()
            try:
                await store.create("alpha", [1, 2, 3])
                await _until(lambda: _converged(store), what="convergence")
                pid = store.cluster_stats()["per_shard"][0]["worker"]["pid"]
                os.kill(pid, signal.SIGKILL)
                # wipe the primary's volume outright: recovery finds
                # nothing and comes back empty, NOT corrupt
                primary = replica_dir(tmp_path, 0, 0)
                for path in primary.iterdir():
                    if path.is_file():
                        path.unlink()
                await _until(
                    lambda: _repl_stats(store).get("promotions", 0) >= 1
                    and store.shard_available(0),
                    what="promotion",
                )
                assert store.get("alpha") == {1, 2, 3}
            finally:
                await store.close()

        asyncio.run(drill())
        assert load_manifest(tmp_path).primary_replica[0] != 0

    @pytest.mark.parametrize("seed", range(2))
    def test_seeded_failure_schedules_never_lose_acked_mutations(
        self, tmp_path, make_cluster, fault_plan, seed
    ):
        """Property drill, subprocess: a seeded schedule kills the
        primary worker, follower workers, or both, at crash points
        between and *during* mutation batches; whatever the
        interleaving, acked mutations survive and all three replica
        dirs converge bit-for-bit."""
        plan = fault_plan(seed)
        data_dir = tmp_path / f"run-{seed}"

        async def drill():
            acked: set[int] = set()
            attempted: set[int] = set()
            store = _make_proc(make_cluster, data_dir)
            await store.start()
            try:
                await store.create("s", [0])
                acked.add(0)
                base = 1
                for batch in range(4):
                    action = ("none", "primary", "follower", "both")[
                        int(plan.rng.integers(0, 4))
                    ]
                    values = list(range(base, base + 5))
                    base += 5
                    attempted.update(values)
                    mutation = asyncio.ensure_future(
                        store.apply_diff("s", add=values)
                    )
                    if action in ("primary", "both"):
                        pid = store.cluster_stats()["per_shard"][0][
                            "worker"]["pid"]
                        plan.arm(f"batch-{batch}", plan.sigkill(pid))
                        plan.reached(f"batch-{batch}")
                    if action in ("follower", "both"):
                        followers = store._shards[0].repl.followers
                        victim = followers[
                            int(plan.rng.integers(0, len(followers)))
                        ]
                        handle = getattr(victim.applier, "handle", None)
                        if handle is not None and handle.alive:
                            os.kill(handle.pid, signal.SIGKILL)
                        else:
                            victim.mark_dead("injected kill")
                    try:
                        await mutation
                        acked.update(values)
                    except (WorkerUnavailableError, QuorumTimeoutError,
                            ReproError):
                        pass        # attempted, never acked
                    # heal before the next batch: worker respawned,
                    # followers re-bootstrapped and caught up
                    await _until(lambda: store.shard_available(0),
                                 what="worker respawn")
                    await _until(lambda: _converged(store),
                                 what="follower convergence")
                final = await _until(
                    lambda: store.get("s"), what="final read"
                )
            finally:
                await store.close()
            return acked, attempted, final

        acked, attempted, final = asyncio.run(drill())
        assert acked <= final <= attempted | {0}
        contents = _replica_contents(
            make_cluster.storage, data_dir, 0, replicas=2
        )
        assert contents[0] == contents[1] == contents[2]
        (name, values, _version), = contents[0]
        assert name == "s" and set(values) == final
