"""Baseline protocols: D.Digest, Graphene, PinSketch, PinSketch/WP."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    BloomFilter,
    DifferenceDigestProtocol,
    GrapheneProtocol,
    PinSketchProtocol,
    PinSketchWPProtocol,
)
from repro.workloads.generator import SetPairGenerator



def _sample_distinct(rng, count, lo=1, hi=1 << 32):
    """Distinct values in [lo, hi) without materializing the universe."""
    import numpy as np
    out = np.unique(rng.integers(lo, hi, size=2 * count + 16, dtype=np.uint64))
    rng.shuffle(out)
    return out[:count]

class TestBloomFilter:
    def test_no_false_negatives(self, rng):
        vals = _sample_distinct(rng, 500)
        bf = BloomFilter.for_capacity(500, fpr=0.01, seed=1)
        bf.insert_many(vals)
        assert bf.contains_many(vals).all()

    def test_false_positive_rate_near_target(self, rng):
        inserted = _sample_distinct(rng, 2000, hi=1 << 31)
        probes = (_sample_distinct(rng, 20_000, hi=1 << 31) + np.uint64(1 << 31))
        bf = BloomFilter.for_capacity(2000, fpr=0.02, seed=2)
        bf.insert_many(inserted)
        fpr = float(bf.contains_many(probes).mean())
        assert fpr < 0.05

    def test_sizing_formula(self):
        bf = BloomFilter.for_capacity(1000, fpr=0.01, seed=0)
        assert bf.n_bits == pytest.approx(9586, abs=10)
        assert bf.n_hashes in (6, 7)

    def test_wire_bytes(self):
        bf = BloomFilter.for_capacity(100, 0.01, seed=0)
        assert len(bf.serialize()) == bf.wire_bytes()


class TestDifferenceDigest:
    def test_correct_difference(self):
        gen = SetPairGenerator(seed=1)
        pair = gen.generate(size_a=5000, d=100)
        r = DifferenceDigestProtocol(seed=2).run(pair.a, pair.b, true_d=100)
        assert r.success and r.difference == pair.difference

    def test_two_sided(self):
        gen = SetPairGenerator(seed=2)
        pair = gen.generate_two_sided(common=3000, only_a=30, only_b=20)
        r = DifferenceDigestProtocol(seed=3).run(pair.a, pair.b, true_d=50)
        assert r.success and r.difference == pair.difference

    def test_six_x_overhead(self):
        gen = SetPairGenerator(seed=3)
        d = 200
        pair = gen.generate(size_a=5000, d=d)
        r = DifferenceDigestProtocol(seed=4).run(pair.a, pair.b, true_d=d)
        assert r.overhead_ratio(d) == pytest.approx(6.0, rel=0.05)

    def test_hash_count_rule(self):
        assert DifferenceDigestProtocol.cells_for(100) == (200, 4)
        assert DifferenceDigestProtocol.cells_for(201) == (402, 3)

    def test_underprovisioned_fails_honestly(self):
        gen = SetPairGenerator(seed=4)
        pair = gen.generate(size_a=5000, d=500)
        r = DifferenceDigestProtocol(seed=5).run(pair.a, pair.b, true_d=50)
        assert not r.success
        assert r.difference == frozenset()

    def test_identical_sets(self):
        r = DifferenceDigestProtocol(seed=6).run({1, 2}, {1, 2}, true_d=0)
        assert r.success and r.difference == frozenset()


class TestGraphene:
    def test_correct_difference_small_d(self):
        gen = SetPairGenerator(seed=5)
        pair = gen.generate(size_a=5000, d=20)
        r = GrapheneProtocol(seed=6).run(pair.a, pair.b)
        assert r.success and r.difference == pair.difference

    def test_correct_difference_large_d(self):
        gen = SetPairGenerator(seed=6)
        pair = gen.generate(size_a=5000, d=2000)
        r = GrapheneProtocol(seed=7).run(pair.a, pair.b)
        assert r.success and r.difference == pair.difference

    def test_bf_engages_for_large_d(self):
        """The BF+IBLT regime must beat IBLT-only once d is a sizeable
        fraction of |A| (the Fig. 2b breakeven)."""
        proto = GrapheneProtocol(seed=8)
        small = proto.plan(size_b=99_000, d=1000)
        large = proto.plan(size_b=20_000, d=80_000)
        assert not small["use_bf"]
        assert large["use_bf"]

    def test_identical_sets(self):
        r = GrapheneProtocol(seed=9).run({4, 5}, {4, 5})
        assert r.success and r.difference == frozenset()

    def test_empty_bob(self):
        r = GrapheneProtocol(seed=10).run({4, 5, 6}, set())
        assert r.success and r.difference == frozenset({4, 5, 6})

    def test_success_rate_better_than_target(self):
        gen = SetPairGenerator(seed=7)
        failures = 0
        trials = 40
        for trial in range(trials):
            pair = gen.generate(size_a=2000, d=50)
            r = GrapheneProtocol(seed=trial).run(pair.a, pair.b)
            if not (r.success and r.difference == pair.difference):
                failures += 1
        assert failures <= 2  # target is 1/240 per run


class TestPinSketch:
    def test_correct_difference(self):
        gen = SetPairGenerator(seed=8)
        pair = gen.generate(size_a=3000, d=30)
        r = PinSketchProtocol(seed=9).run(pair.a, pair.b, true_d=30)
        assert r.success and r.difference == pair.difference

    def test_minimum_overhead_with_exact_d(self):
        """t = d syndromes of 32 bits: ~1.0x the minimum + checksum."""
        gen = SetPairGenerator(seed=9)
        d = 100
        pair = gen.generate(size_a=3000, d=d)
        r = PinSketchProtocol(seed=10).run(pair.a, pair.b, true_d=d)
        assert r.overhead_ratio(d) == pytest.approx(1.0, abs=0.05)

    def test_estimated_capacity_138(self):
        """§8.1.1: t = ceil(1.38 * d_hat) with an estimate."""
        gen = SetPairGenerator(seed=10)
        d = 100
        pair = gen.generate(size_a=3000, d=d)
        r = PinSketchProtocol(seed=11).run(pair.a, pair.b, estimated_d=d)
        assert r.extra["t"] == 138
        assert r.success and r.difference == pair.difference

    def test_two_sided_with_trace_decoder(self):
        gen = SetPairGenerator(seed=11)
        pair = gen.generate_two_sided(common=1000, only_a=5, only_b=4)
        proto = PinSketchProtocol(seed=12, assume_subset=False)
        r = proto.run(pair.a, pair.b, true_d=9)
        assert r.success and r.difference == pair.difference

    def test_two_sided_subset_assumption_fails_honestly(self):
        """With assume_subset=True but B \\ A nonempty, the candidate
        root search cannot find the B-only elements; the checksum must
        flag the failure instead of returning a wrong difference."""
        gen = SetPairGenerator(seed=12)
        pair = gen.generate_two_sided(common=1000, only_a=5, only_b=4)
        r = PinSketchProtocol(seed=13, assume_subset=True).run(
            pair.a, pair.b, true_d=9
        )
        assert not r.success

    def test_undercapacity_fails_honestly(self):
        gen = SetPairGenerator(seed=13)
        pair = gen.generate(size_a=3000, d=50)
        r = PinSketchProtocol(seed=14).run(pair.a, pair.b, true_d=10)
        assert not r.success


class TestPinSketchWP:
    def test_correct_difference(self):
        gen = SetPairGenerator(seed=14)
        pair = gen.generate(size_a=10_000, d=200)
        r = PinSketchWPProtocol(seed=15).run(pair.a, pair.b, true_d=200)
        assert r.success and r.difference == pair.difference

    def test_comm_overhead_exceeds_pbs(self):
        """§8.3: same (delta, t) but 32-bit symbols instead of log n-bit
        symbols make PinSketch/WP strictly more expensive than PBS."""
        from repro.core.protocol import reconcile_pbs

        gen = SetPairGenerator(seed=15)
        d = 500
        pair = gen.generate(size_a=20_000, d=d)
        r_wp = PinSketchWPProtocol(seed=16).run(pair.a, pair.b, true_d=d)
        r_pbs = reconcile_pbs(pair.a, pair.b, seed=16, true_d=d)
        assert r_wp.success and r_pbs.success
        assert r_wp.total_bytes > r_pbs.total_bytes

    def test_splits_recover_overloaded_groups(self):
        gen = SetPairGenerator(seed=16)
        pair = gen.generate(size_a=10_000, d=400)
        # underestimate forces some groups over capacity -> splits
        r = PinSketchWPProtocol(seed=17).run(
            pair.a, pair.b, true_d=150, max_rounds=8
        )
        assert r.success and r.difference == pair.difference
        assert r.rounds >= 2

    def test_identical_sets(self):
        r = PinSketchWPProtocol(seed=18).run({3, 4}, {3, 4}, true_d=1)
        assert r.success and r.difference == frozenset()
