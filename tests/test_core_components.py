"""Core PBS components: checksum, partitioning, units, parameters."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.checksum import checksum_update, set_checksum
from repro.core.params import PBSParams
from repro.core.partition import (
    bin_indices,
    bin_tables,
    group_indices,
    parity_positions,
    split_by_hash,
)
from repro.core.units import MembershipConstraint, UnitId
from repro.errors import ParameterError


class TestChecksum:
    def test_empty_set(self):
        assert set_checksum(np.array([], dtype=np.uint64)) == 0

    def test_simple_sum(self):
        assert set_checksum(np.array([1, 2, 3], dtype=np.uint64)) == 6

    def test_wraps_modulo_universe(self):
        vals = np.array([2**32 - 1, 2], dtype=np.uint64)
        assert set_checksum(vals, log_u=32) == 1

    def test_respects_log_u(self):
        vals = np.array([250, 10], dtype=np.uint64)
        assert set_checksum(vals, log_u=8) == (260 % 256)

    def test_order_independent(self, rng):
        vals = rng.integers(1, 1 << 32, size=100, dtype=np.uint64)
        shuffled = vals.copy()
        rng.shuffle(shuffled)
        assert set_checksum(vals) == set_checksum(shuffled)

    @given(st.lists(st.integers(1, 2**32 - 1), max_size=30),
           st.lists(st.integers(1, 2**32 - 1), max_size=10))
    @settings(max_examples=100)
    def test_incremental_update_matches_recompute(self, base, extra):
        base_arr = np.array(base, dtype=np.uint64)
        extra_arr = np.array(extra, dtype=np.uint64)
        c = set_checksum(base_arr)
        added = checksum_update(c, extra_arr, +1)
        assert added == set_checksum(np.concatenate([base_arr, extra_arr]))
        removed = checksum_update(added, extra_arr, -1)
        assert removed == c

    def test_detects_single_element_change(self, rng):
        vals = rng.integers(1, 1 << 32, size=50, dtype=np.uint64)
        mutated = vals.copy()
        mutated[0] += np.uint64(1)
        assert set_checksum(vals) != set_checksum(mutated)


class TestPartition:
    def test_group_indices_in_range(self, rng):
        vals = rng.integers(1, 1 << 32, size=1000, dtype=np.uint64)
        idx = group_indices(vals, salt=5, g=7)
        assert idx.min() >= 0 and idx.max() < 7

    def test_consistency_between_hosts(self, rng):
        """The same salt must partition shared elements identically —
        the 'consistent hash-partitioning' PBS relies on."""
        shared = rng.integers(1, 1 << 32, size=500, dtype=np.uint64)
        a = np.concatenate([shared, rng.integers(1, 1 << 32, size=20, dtype=np.uint64)])
        idx_a = bin_indices(a, salt=9, n=63)
        idx_shared = bin_indices(shared, salt=9, n=63)
        lookup = {int(v): int(i) for v, i in zip(a, idx_a)}
        for v, i in zip(shared, idx_shared):
            assert lookup[int(v)] == int(i)

    def test_bin_tables_parity(self):
        vals = np.array([10, 20, 30], dtype=np.uint64)
        idx = np.array([0, 0, 2])
        parity, xors = bin_tables(vals, idx, n=4)
        assert list(parity) == [0, 0, 1, 0]
        assert int(xors[0]) == 10 ^ 20
        assert int(xors[2]) == 30
        assert int(xors[1]) == 0

    def test_bin_tables_empty(self):
        parity, xors = bin_tables(
            np.array([], dtype=np.uint64), np.array([], dtype=np.int64), n=8
        )
        assert parity.sum() == 0 and xors.sum() == 0

    def test_parity_positions_one_based(self):
        parity = np.array([1, 0, 1, 0], dtype=np.uint8)
        assert list(parity_positions(parity)) == [1, 3]

    def test_split_by_hash_partitions(self, rng):
        vals = np.unique(rng.integers(1, 1 << 32, size=300, dtype=np.uint64))
        parts = split_by_hash(vals, salt=3, ways=3)
        assert sum(len(p) for p in parts) == len(vals)
        recombined = np.sort(np.concatenate(parts))
        assert (recombined == np.sort(vals)).all()

    def test_split_roughly_balanced(self, rng):
        vals = np.unique(rng.integers(1, 1 << 32, size=9000, dtype=np.uint64))
        parts = split_by_hash(vals, salt=3, ways=3)
        for p in parts:
            assert abs(len(p) - len(vals) / 3) < len(vals) * 0.05

    def test_common_elements_cancel_in_parity(self, rng):
        """Parity bitmaps of A and B differ exactly at bins holding an odd
        number of difference elements — common elements cancel."""
        shared = np.unique(rng.integers(1, 1 << 32, size=400, dtype=np.uint64))
        extra = np.array([1, 2, 3], dtype=np.uint64)
        a = np.unique(np.concatenate([shared, extra]))
        b = shared[~np.isin(shared, extra)]
        n = 127
        idx_a = bin_indices(a, salt=4, n=n)
        idx_b = bin_indices(b, salt=4, n=n)
        pa, xa = bin_tables(a, idx_a, n)
        pb, xb = bin_tables(b, idx_b, n)
        diff_elements = np.setxor1d(a, b)
        idx_diff = bin_indices(diff_elements, salt=4, n=n)
        expected_parity = np.zeros(n, dtype=np.uint8)
        for i in idx_diff:
            expected_parity[i] ^= 1
        assert ((pa ^ pb) == expected_parity).all()
        # XOR sums likewise cancel to the XOR of difference elements per bin
        diff_xor = np.zeros(n, dtype=np.uint64)
        np.bitwise_xor.at(diff_xor, idx_diff, diff_elements)
        assert ((xa ^ xb) == diff_xor).all()


class TestUnits:
    def test_unit_id_children(self):
        uid = UnitId(3)
        child = uid.child(2)
        assert child.group == 3 and child.path == (2,)
        assert child.child(0).path == (2, 0)

    def test_unit_id_labels(self):
        assert UnitId(5).label() == "g5"
        assert UnitId(5, (1, 2)).label() == "g5/1/2"

    def test_unit_id_hashable_equatable(self):
        assert UnitId(1, (0,)) == UnitId(1, (0,))
        assert UnitId(1, (0,)) != UnitId(1, (1,))
        assert len({UnitId(1), UnitId(1), UnitId(2)}) == 2

    def test_membership_constraint_scalar_vs_vec(self, rng):
        c = MembershipConstraint(salt=7, buckets=5, branch=2)
        vals = rng.integers(1, 1 << 32, size=200, dtype=np.uint64)
        vec = c.accepts_vec(vals)
        for v, ok in zip(vals[:50], vec[:50]):
            assert c.accepts(int(v)) == bool(ok)

    def test_constraint_accepts_about_uniform_fraction(self, rng):
        c = MembershipConstraint(salt=7, buckets=4, branch=1)
        vals = rng.integers(1, 1 << 32, size=20_000, dtype=np.uint64)
        frac = float(c.accepts_vec(vals).mean())
        assert 0.22 < frac < 0.28


class TestPBSParams:
    def test_from_d_uses_optimizer(self):
        params = PBSParams.from_d(1000)
        assert params.g == 200
        assert params.n in (63, 127, 255, 511, 1023, 2047)
        assert 8 <= params.t <= 17

    def test_from_estimate_inflates(self):
        params = PBSParams.from_estimate(100.0, gamma=1.38)
        assert params.g == PBSParams.from_d(138).g

    def test_m_property(self):
        params = PBSParams(n=127, t=13, g=10)
        assert params.m == 7

    def test_codec_cached(self):
        params = PBSParams(n=127, t=13, g=10)
        assert params.codec is params.codec
        assert params.codec.t == 13

    def test_invalid_n_rejected(self):
        with pytest.raises(ParameterError):
            PBSParams(n=100, t=5, g=1)

    def test_invalid_t_rejected(self):
        with pytest.raises(ParameterError):
            PBSParams(n=63, t=0, g=1)
        with pytest.raises(ParameterError):
            PBSParams(n=63, t=64, g=1)

    def test_invalid_g_rejected(self):
        with pytest.raises(ParameterError):
            PBSParams(n=63, t=5, g=0)

    def test_invalid_log_u_rejected(self):
        with pytest.raises(ParameterError):
            PBSParams(n=63, t=5, g=1, log_u=4)
