"""Admission control: caps, RETRY shedding, client backoff-and-retry."""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.cluster import AdmissionController, retry_delay
from repro.service import (
    ReconciliationServer,
    ServerBusy,
    SetStore,
    sync_with_server,
)
from repro.workloads import SetPairGenerator


class TestController:
    def test_admit_until_cap_then_shed(self):
        adm = AdmissionController(shards=1, max_sessions=2, retry_after_s=0.1)
        assert adm.try_admit(0) is None
        assert adm.try_admit(0) is None
        hint = adm.try_admit(0)
        assert hint is not None and hint >= 0.1
        adm.release(0)
        assert adm.try_admit(0) is None
        stats = adm.stats()
        assert stats["shed_total"] == 1
        assert stats["per_shard"][0]["peak"] == 2

    def test_caps_are_per_shard(self):
        adm = AdmissionController(shards=2, max_sessions=1)
        assert adm.try_admit(0) is None
        assert adm.try_admit(1) is None      # other shard unaffected
        assert adm.try_admit(0) is not None

    def test_unlimited_by_default(self):
        adm = AdmissionController(shards=1)
        for _ in range(100):
            assert adm.try_admit(0) is None
        assert adm.total_shed == 0

    def test_decode_queue_backpressure(self):
        async def inner():
            adm = AdmissionController(shards=1, max_decode_queue=1)
            order = []

            async def job(tag, hold_s):
                async with adm.decode_slot(0):
                    order.append(tag)
                    await asyncio.sleep(hold_s)

            await asyncio.gather(job("a", 0.02), job("b", 0.0))
            assert order == ["a", "b"]       # b waited for a's slot
            assert adm.stats()["per_shard"][0]["decode_peak"] == 2

        asyncio.run(inner())

    def test_saturated_decode_queue_sheds_new_sessions(self):
        async def inner():
            adm = AdmissionController(
                shards=1, max_sessions=10, max_decode_queue=1
            )
            entered = asyncio.Event()
            release = asyncio.Event()

            async def hog():
                async with adm.decode_slot(0):
                    entered.set()
                    await release.wait()

            task = asyncio.create_task(hog())
            await entered.wait()
            assert adm.try_admit(0) is not None   # decode queue saturated
            release.set()
            await task

        asyncio.run(inner())

    def test_retry_delay_jitter_and_growth(self):
        rng = random.Random(7)
        delays = [retry_delay(0.05, attempt, rng) for attempt in range(4)]
        for attempt, delay in enumerate(delays):
            base = 0.05 * (2 ** attempt)
            assert 0.5 * base <= delay <= 1.5 * min(base, 2.0) + 1e-9
        assert delays[2] > delays[0]         # growth dominates jitter


class TestServerSheds:
    def _pair(self, seed):
        pair = SetPairGenerator(universe_bits=32, seed=seed).generate(
            size_a=900, d=12
        )
        return set(pair.a), set(pair.b), pair.difference

    def test_over_cap_session_gets_retry_frame(self):
        set_a, set_b, _ = self._pair(seed=41)

        async def scenario():
            store = SetStore()
            store.create("inv", set_b)
            admission = AdmissionController(
                shards=1, max_sessions=1, retry_after_s=0.02
            )
            async with ReconciliationServer(
                store, admission=admission
            ) as server:
                # occupy the only slot with a slow half-open session
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                from repro.service.wire import FrameType, Hello, encode_frame

                writer.write(encode_frame(
                    FrameType.HELLO,
                    Hello(set_name="inv", seed=1).serialize(),
                ))
                await writer.drain()
                await asyncio.sleep(0.05)    # let the server admit it
                with pytest.raises(ServerBusy) as excinfo:
                    await sync_with_server(
                        "127.0.0.1", server.port, set_a, set_name="inv",
                        seed=2, retries=0,
                    )
                assert excinfo.value.retry_after_s > 0
                writer.close()
                await writer.wait_closed()
                await asyncio.sleep(0.05)
                return server, admission

        server, admission = asyncio.run(scenario())
        assert admission.total_shed == 1
        assert server.metrics.sessions_shed == 1
        # a shed session is neither a failure nor a completion
        assert server.metrics.sessions_failed == 1   # the hung-up holder
        assert server.metrics.sessions_completed == 0

    def test_client_retries_through_overload(self):
        pairs = [self._pair(seed=50 + i) for i in range(4)]

        async def scenario():
            store = SetStore()
            for i, (_, set_b, _) in enumerate(pairs):
                store.create(f"s{i}", set_b)
            admission = AdmissionController(
                shards=1, max_sessions=1, retry_after_s=0.01
            )
            async with ReconciliationServer(
                store, admission=admission
            ) as server:
                results = await asyncio.gather(
                    *[
                        sync_with_server(
                            "127.0.0.1", server.port, pairs[i][0],
                            set_name=f"s{i}", seed=i + 1, retries=20,
                        )
                        for i in range(len(pairs))
                    ]
                )
            return store, admission, results

        store, admission, results = asyncio.run(scenario())
        for i, result in enumerate(results):
            set_a, set_b, expected = pairs[i]
            assert result.success
            assert result.difference == expected
            assert store.get(f"s{i}") == set_a | set_b
        # with one slot and four clients, shedding must actually have
        # happened — the fleet converged *through* RETRY, not around it
        assert admission.total_shed >= 1

    def test_shed_session_reported_in_metrics_snapshot(self):
        async def scenario():
            admission = AdmissionController(shards=1, max_sessions=0)
            server = ReconciliationServer(admission=admission)
            # cap of 0 means unlimited: nothing sheds
            async with server:
                await sync_with_server(
                    "127.0.0.1", server.port, {1, 2, 3}, set_name="s"
                )
            return server

        server = asyncio.run(scenario())
        snap = server.metrics.snapshot()
        assert snap["sessions"]["shed"] == 0
        assert snap["sessions"]["completed"] == 1
        assert snap["by_shard"]["0"]["completed"] == 1


class TestIdleConnectionsDoNotPinCapacity:
    def test_slot_released_between_passes_and_reacquired(self):
        from repro.service import ClientConnection

        base = set(range(1, 600))

        async def scenario():
            store = SetStore()
            store.create("a", base)
            store.create("b", base)
            admission = AdmissionController(
                shards=1, max_sessions=1, retry_after_s=0.01
            )
            async with ReconciliationServer(
                store, admission=admission
            ) as server:
                async with ClientConnection(
                    "127.0.0.1", server.port, set_name="a", seed=1
                ) as conn:
                    r1 = await conn.sync(base | {70_001})
                    assert r1.success
                    await asyncio.sleep(0.05)   # connection idles
                    # the single slot must be free for someone else even
                    # though the repeat connection is still open
                    other = await sync_with_server(
                        "127.0.0.1", server.port, base | {80_001},
                        set_name="b", seed=2, retries=0,
                    )
                    assert other.success
                    # and the idle connection re-admits for its next pass
                    r2 = await conn.sync(base | {70_001})
                    assert r2.success and r2.extra["applied"] == 0
            return admission

        admission = asyncio.run(scenario())
        assert admission.total_shed == 0
        # one slot served three passes of work, strictly one at a time
        assert admission.stats()["per_shard"][0]["peak"] == 1
        assert admission.stats()["per_shard"][0]["admitted"] == 3
