"""Evaluation harness: scaling, tables, instance caches, light driver runs."""

from __future__ import annotations

import json


from repro.evaluation import harness
from repro.evaluation.harness import ExperimentTable, aggregate_runs, instances


class TestScaling:
    def test_default_scale(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert harness.scale_factor() == 1.0

    def test_env_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.5")
        assert harness.scale_factor() == 0.5
        assert harness.scaled(10) == 5

    def test_scale_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.0001")
        assert harness.scaled(10, minimum=3) == 3

    def test_bad_scale_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "banana")
        assert harness.scale_factor() == 1.0


class TestInstances:
    def test_instance_counts_and_d(self):
        pairs = instances(size_a=500, d=9, trials=4, seed=1)
        assert len(pairs) == 4
        assert all(p.d == 9 for p in pairs)
        assert len({frozenset(p.a) for p in pairs}) == 4  # independent

    def test_shared_estimates_reasonable(self):
        pairs = instances(size_a=2000, d=50, trials=3, seed=2)
        estimates = harness.shared_estimates(pairs, seed=2)
        assert len(estimates) == 3
        assert all(5 <= e <= 500 for e in estimates)


class TestExperimentTable:
    def test_markdown_rendering(self):
        table = ExperimentTable(name="T", columns=["a", "b"])
        table.add_row(a=1, b=0.123456)
        table.add_row(a=2, b=1e-9)
        table.note("hello")
        md = table.to_markdown()
        assert "### T" in md
        assert "| a | b |" in md
        assert "0.1235" in md
        assert "1e-09" in md
        assert "*hello*" in md

    def test_save_artifacts(self, tmp_path, monkeypatch):
        monkeypatch.setattr(harness, "RESULTS_DIR", tmp_path)
        table = ExperimentTable(name="Demo", columns=["x"])
        table.add_row(x=42)
        path = table.save("demo")
        assert path.exists()
        payload = json.loads(path.read_text())
        assert payload["rows"] == [{"x": 42}]
        assert (tmp_path / "demo.md").exists()


class TestAggregate:
    def test_aggregate_excludes_estimator_bytes(self):
        from repro.transport.channel import Channel, Direction
        from repro.transport.runner import ReconciliationResult

        ch = Channel()
        ch.send(Direction.ALICE_TO_BOB, bytes(336), 0, "estimator")
        ch.send(Direction.BOB_TO_ALICE, bytes(1000), 1, "reply")
        result = ReconciliationResult(
            success=True, difference=frozenset(), rounds=1, channel=ch,
            encode_s=0.5, decode_s=0.25,
        )
        agg = aggregate_runs([result])
        assert agg["kb"] == 1.0
        assert agg["success"] == 1.0
        assert agg["encode_s"] == 0.5


class TestDriversSmoke:
    """Tiny-parameter runs of each driver — the full runs live in
    benchmarks/; these only pin the interfaces."""

    def test_fig5_analytic(self):
        from repro.evaluation import fig5

        table = fig5.run(d_values=(10, 100), log_u=256)
        assert len(table.rows) == 2

    def test_sec52(self):
        from repro.evaluation import sec52

        table = sec52.run(d=100)
        assert {r["model"] for r in table.rows} == {"three-way", "none"}

    def test_fig1_micro(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        from repro.evaluation import fig1

        table = fig1.run(d_values=(10,), size_a=800, trials=3)
        algorithms = {r["algorithm"] for r in table.rows}
        assert {"pbs", "d.digest", "pinsketch"} <= algorithms

    def test_table2_micro(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.01")
        from repro.evaluation import table2

        table = table2.run(d_values=(10,), size_a=800, trials=5)
        assert table.rows[0]["mean"] >= 1.0
