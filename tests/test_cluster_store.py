"""ClusterStore: sharded routing, durable acks, crash recovery end-to-end.

Parametrized over every storage backend (``storage_backend`` /
``make_cluster`` fixtures in ``conftest.py``) — the backend is an
implementation detail, so every durability and recovery property here
must hold identically for the journal files and the SQLite store.

Written against plain ``asyncio.run`` so the suite does not depend on a
pytest-asyncio plugin being installed.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.cluster import ClusterConfig, ClusterStore, open_cluster
from repro.cluster.journal import encode_diff
from repro.service import ReconciliationServer, sync_with_server
from repro.service.store import UnknownSetError
from repro.workloads import SetPairGenerator

NAMES = [f"set-{i}" for i in range(12)]


def _cluster(shards: int, data_dir=None, **overrides) -> ClusterStore:
    """A config-built cluster for backend-agnostic (or memory-only)
    tests; backend-parametrized tests use the ``make_cluster`` fixture."""
    return open_cluster(data_dir, ClusterConfig(shards=shards, **overrides))


def _populate(store: ClusterStore) -> dict:
    """Fill the cluster and capture its live state *before* close —
    reads against a closed store are not part of the contract (the
    journal's in-memory copy incidentally serves them; SQLite's closed
    connection cannot)."""

    async def inner():
        async with store:
            for i, name in enumerate(NAMES):
                await store.create(name, range(10 * i + 1, 10 * i + 8))
                await store.apply_diff(name, add=[10_000 + i])
            return {
                "values": {n: store.get(n) for n in store.names()},
                "versions": {n: store.version(n) for n in store.names()},
                "stats": store.stats(),
            }

    return asyncio.run(inner())


class TestShardedSemantics:
    def test_sets_spread_across_shards(self, tmp_path, make_cluster):
        store = make_cluster(4, tmp_path)
        snap = _populate(store)
        shards = {store.shard_for(name) for name in NAMES}
        assert len(shards) > 1                  # really sharded
        assert set(snap["stats"]) == set(NAMES)
        for name in NAMES:
            assert snap["stats"][name]["shard"] == store.shard_for(name)

    def test_setstore_compatible_reads(self, tmp_path, make_cluster):
        async def inner():
            async with make_cluster(3, tmp_path) as store:
                for i, name in enumerate(NAMES):
                    await store.create(name, range(10 * i + 1, 10 * i + 8))
                    await store.apply_diff(name, add=[10_000 + i])
                assert store.names() == sorted(NAMES)
                assert "set-0" in store and "ghost" not in store
                assert store.size("set-0") == 8
                assert store.version("set-0") == 1   # one mutating apply
                assert 10_000 in store.get("set-0")

        asyncio.run(inner())

    def test_unknown_set_raises_through_worker(self, tmp_path, make_cluster):
        async def inner():
            async with make_cluster(2, tmp_path) as store:
                with pytest.raises(UnknownSetError):
                    await store.apply_diff("ghost", add=[1])
                with pytest.raises(UnknownSetError):
                    await store.snapshot("ghost", create_missing=False)

        asyncio.run(inner())

    def test_snapshot_create_missing_is_persisted(self, tmp_path, make_cluster):
        async def inner():
            async with make_cluster(2, tmp_path) as store:
                snap = await store.snapshot("fresh", create_missing=True)
                assert len(snap) == 0
            async with make_cluster(2, tmp_path) as store2:
                assert "fresh" in store2

        asyncio.run(inner())

    def test_memory_only_mode_needs_no_disk(self):
        async def inner():
            async with _cluster(2) as store:
                await store.create("s", {1, 2})
                assert await store.apply_diff("s", add=[3]) == 1
                assert store.get("s") == {1, 2, 3}

        asyncio.run(inner())


class TestRecovery:
    def test_cold_restart_recovers_bit_for_bit(self, tmp_path, make_cluster):
        store = make_cluster(4, tmp_path)
        snap = _populate(store)
        expected, versions = snap["values"], snap["versions"]

        async def restart():
            async with make_cluster(4, tmp_path) as again:
                return (
                    {n: again.get(n) for n in again.names()},
                    {n: again.version(n) for n in again.names()},
                )

        recovered, recovered_versions = asyncio.run(restart())
        assert recovered == expected
        assert recovered_versions == versions

    def test_killed_shard_mid_write_recovers_to_last_complete_record(
        self, tmp_path, fault_plan
    ):
        """The ISSUE's crash drill: torn journal tail, restart, reconcile.
        Journal-specific file surgery (SQLite's torn-WAL twin lives in
        test_storage_backends.py)."""
        store = _cluster(2, tmp_path)

        async def phase1():
            async with store:
                await store.create("crash", range(1, 500))
                await store.apply_diff("crash", add=[9001, 9002])

        asyncio.run(phase1())
        # simulate SIGKILL mid-append on the owning shard's journal: a
        # half-written record follows the last durable one
        shard_dir = tmp_path / f"shard-{store.shard_for('crash'):02d}"
        journal = shard_dir / "journal.log"
        fault_plan(0).torn_write(journal, encode_diff("crash", add=[9999]),
                                 cut=4)

        async def phase2():
            async with _cluster(2, tmp_path) as again:
                # recovered to the last complete record: the torn 9999 is
                # gone, everything acknowledged before it survives
                assert again.get("crash") == set(range(1, 500)) | {9001, 9002}
                shard = again.cluster_stats()["per_shard"][
                    again.shard_for("crash")
                ]
                assert shard["tail_error"] != ""
                # and a fresh reconcile against the recovered set converges
                pair = SetPairGenerator(universe_bits=32, seed=3).generate(
                    size_a=600, d=20
                )
                await again.create("fresh", pair.b)
                async with ReconciliationServer(again) as server:
                    result = await sync_with_server(
                        "127.0.0.1", server.port, pair.a,
                        set_name="fresh", seed=5,
                    )
                assert result.success
                assert result.difference == pair.difference
                assert again.get("fresh") == set(pair.a) | set(pair.b)

        asyncio.run(phase2())

    def test_resize_without_rebalance_refuses_to_start(
        self, tmp_path, make_cluster
    ):
        """Restarting with a different shard count used to silently
        remap ~1/(N+1) of the names to shards whose journals never heard
        of them — those sets recovered *empty*.  The manifest turns that
        silent data loss into a fail-fast refusal; a rebalance then makes
        the same restart recover every set bit-for-bit."""
        from repro.cluster import TopologyMismatchError, rebalance

        store = make_cluster(2, tmp_path)
        snap = _populate(store)
        grown = make_cluster(4, tmp_path)

        async def restart_mismatched():
            with pytest.raises(TopologyMismatchError, match="rebalance"):
                await grown.start()

        asyncio.run(restart_mismatched())

        result = rebalance(tmp_path, 4)          # keeps the committed backend
        assert result.changed and result.moved_count > 0
        assert result.new_storage == make_cluster.storage

        async def restart_rebalanced():
            async with make_cluster(4, tmp_path) as again:
                for name in NAMES:
                    assert again.get(name) == snap["values"][name]
                    assert again.version(name) == snap["versions"][name]

        asyncio.run(restart_rebalanced())


class TestCompactionUnderLoad:
    def test_auto_compaction_triggers_and_preserves_state(
        self, tmp_path, make_cluster
    ):
        store = make_cluster(
            1, tmp_path, compact_min_bytes=256, compact_factor=1
        )

        async def inner():
            async with store:
                await store.create("s", range(1, 50))
                for i in range(40):
                    await store.apply_diff("s", add=[1000 + i])
                await store.flush()
                expected = store.get("s")
                expected_version = store.version("s")
            stats = store.cluster_stats()["per_shard"][0]
            assert stats["compactions"] >= 1
            async with make_cluster(1, tmp_path) as again:
                assert again.get("s") == expected
                assert again.version("s") == expected_version

        asyncio.run(inner())


class TestDurableFirstOrdering:
    def test_failed_durable_write_leaves_store_unmutated(
        self, tmp_path, make_cluster
    ):
        """Durability contract: nothing un-persisted ever becomes visible.
        If the durable write fails (disk full), the apply must error out
        *without* touching the live set — on every backend."""

        async def inner():
            async with make_cluster(1, tmp_path) as store:
                await store.create("s", {1, 2, 3})
                shard = store._shards[0]
                original = shard.storage.record_diff

                def exploding_record_diff(name, add=(), remove=()):
                    raise OSError("no space left on device")

                shard.storage.record_diff = exploding_record_diff
                with pytest.raises(OSError):
                    await store.apply_diff("s", add=[999])
                # the rejected diff is not in the live set: later sessions
                # cannot be acked against state a restart would lose
                assert store.get("s") == {1, 2, 3}
                assert store.version("s") == 0
                shard.storage.record_diff = original
                assert await store.apply_diff("s", add=[999]) == 1
            async with make_cluster(1, tmp_path) as again:
                assert again.get("s") == {1, 2, 3, 999}

        asyncio.run(inner())


class TestCloseSemantics:
    def test_close_rejects_and_drains_instead_of_stranding(
        self, tmp_path, make_cluster
    ):
        from repro.errors import ReproError

        async def inner():
            store = make_cluster(1, tmp_path)
            await store.start()
            await store.create("s", {1})
            closing = asyncio.ensure_future(store.close())
            # submissions racing with close() must fail fast, not hang
            with pytest.raises(ReproError):
                await asyncio.wait_for(
                    store.apply_diff("s", add=[2]), timeout=1.0
                )
            await closing
            # and the store restarts cleanly afterwards
            await store.start()
            assert await store.apply_diff("s", add=[3]) == 1
            await store.close()

        asyncio.run(inner())

    def test_close_before_start_is_a_safe_no_op(self, tmp_path, make_cluster):
        async def inner():
            store = make_cluster(2, tmp_path)
            await store.close()          # never started: nothing to do
            await store.close()
            # and the store still starts and works normally afterwards
            async with store:
                await store.create("s", {1})
                assert store.get("s") == {1}

        asyncio.run(inner())

    def test_double_close_is_idempotent(self, tmp_path, make_cluster):
        async def inner():
            store = make_cluster(2, tmp_path)
            await store.start()
            await store.create("s", {1, 2})
            await store.close()
            await store.close()          # second close: no double-drain,
            await store.close()          # no double-closed storage handle
            await store.start()          # and restart still works
            assert await store.apply_diff("s", add=[3]) == 1
            await store.close()

        asyncio.run(inner())

    def test_concurrent_close_calls_await_one_drain(
        self, tmp_path, make_cluster
    ):
        """Two racing close() calls must not enqueue two stop sentinels
        (a stale sentinel would make the next start()'s worker exit
        immediately, stranding every future mutation)."""

        async def inner():
            store = make_cluster(2, tmp_path)
            await store.start()
            await store.create("s", {1})
            await asyncio.gather(store.close(), store.close(), store.close())
            await store.start()
            # the restarted workers must actually serve (a leaked stop
            # sentinel would hang this await forever)
            assert await asyncio.wait_for(
                store.apply_diff("s", add=[9]), timeout=5.0
            ) == 1
            await store.close()

        asyncio.run(inner())

    def test_empty_diffs_are_not_persisted(self, tmp_path, make_cluster):
        async def inner():
            async with make_cluster(1, tmp_path) as store:
                await store.create("s", {1, 2})
                before = store.cluster_stats()["per_shard"][0]
                # a converged re-sync pass: empty push, nothing to log
                assert await store.apply_diff("s", add=[], remove=[]) == 0
                after = store.cluster_stats()["per_shard"][0]
                assert after["records_appended"] == before["records_appended"]
                assert after["applies"] == before["applies"] + 1

        asyncio.run(inner())


class TestStartFailureCleanup:
    def test_partial_recovery_failure_unwinds_started_shards(
        self, tmp_path, make_cluster, corrupt_shard
    ):
        from repro.cluster import StorageCorruptError

        # lay down two healthy shards, then corrupt shard 1's base state
        store = make_cluster(2, tmp_path)
        _populate(store)
        corrupt_shard(tmp_path / "shard-01")

        async def inner():
            broken = make_cluster(2, tmp_path)
            with pytest.raises(StorageCorruptError):
                await broken.start()
            # the shard that DID start must be fully unwound: no worker
            # task left to be destroyed at loop teardown
            assert all(sh.task is None for sh in broken._shards)
            from repro.errors import ReproError
            with pytest.raises(ReproError):
                await broken.apply_diff("set-0", add=[1])

        asyncio.run(inner())
