"""End-to-end service tests: real sockets, concurrent sessions.

Written against plain ``asyncio.run`` so the suite does not depend on a
pytest-asyncio plugin being installed.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.errors import SerializationError
from repro.service import (
    ClientConnection,
    DecodeCoalescer,
    ReconciliationServer,
    SetStore,
    sync_with_server,
)
from repro.workloads import SetPairGenerator


def _pair(seed: int, size: int = 2000, d: int = 24):
    pair = SetPairGenerator(universe_bits=32, seed=seed).generate(
        size_a=size, d=d
    )
    return set(pair.a), set(pair.b), pair.difference


class TestSingleSession:
    def test_client_learns_difference_and_server_applies_push(self):
        set_a, set_b, expected = _pair(seed=11)

        async def scenario():
            store = SetStore()
            store.create("inv", set_b)
            async with ReconciliationServer(store) as server:
                result = await sync_with_server(
                    "127.0.0.1", server.port, set_a, set_name="inv", seed=5
                )
            return store, server, result

        store, server, result = asyncio.run(scenario())
        assert result.success
        assert result.difference == expected
        assert store.get("inv") == set_a | set_b
        assert result.extra["applied"] == len(set_a - set_b)
        assert result.rounds >= 1
        # paper accounting intact: estimator excludable, framing separate
        labels = result.channel.bytes_by_label()
        assert labels["estimator"] > 0
        assert result.channel.framing_bytes > 0
        snapshot = server.metrics.snapshot(store.stats())
        assert snapshot["sessions"] == {
            "started": 1, "completed": 1, "failed": 0, "shed": 0,
            "active": 0, "success_rate": 1.0,
        }
        assert snapshot["rounds_total"] == result.rounds
        assert snapshot["decode_s"] > 0
        json.dumps(snapshot)  # must be a plain-JSON document

    def test_one_way_sync_leaves_store_untouched(self):
        set_a, set_b, expected = _pair(seed=21)

        async def scenario():
            store = SetStore()
            store.create("inv", set_b)
            async with ReconciliationServer(store) as server:
                result = await sync_with_server(
                    "127.0.0.1", server.port, set_a, set_name="inv",
                    seed=5, bidirectional=False,
                )
            return store, server, result

        store, server, result = asyncio.run(scenario())
        assert result.success and result.difference == expected
        assert store.get("inv") == set_b
        assert "applied" not in result.extra
        # a clean one-way session ends with an empty PUSH, not an EOF:
        # the server must count it as completed, not failed
        assert server.metrics.sessions_completed == 1
        assert server.metrics.sessions_failed == 0

    def test_port_probe_is_not_a_session(self):
        async def scenario():
            async with ReconciliationServer() as server:
                # a health check: connect, close, send nothing
                _, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.close()
                await writer.wait_closed()
                await asyncio.sleep(0.05)
                return server

        server = asyncio.run(scenario())
        assert server.metrics.sessions_started == 0
        assert server.metrics.sessions_failed == 0
        assert server.metrics.active_sessions == 0

    def test_poisonous_push_is_rejected_and_store_survives(self):
        import numpy as np

        from repro.service.wire import (
            FrameType, Hello, Push, encode_frame, read_frame,
        )

        async def scenario():
            store = SetStore()
            store.create("inv", {1, 2, 3})
            async with ReconciliationServer(store) as server:
                # hand-roll a session that pushes out-of-universe elements
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(encode_frame(
                    FrameType.HELLO,
                    Hello(set_name="inv", seed=1).serialize(),
                ))
                await writer.drain()
                await read_frame(reader)                  # WELCOME
                import struct

                from repro.estimators.tow import ToWEstimator
                from repro.utils.seeds import derive_seed

                est = ToWEstimator(128, derive_seed(1, "estimator"), "fast")
                sketch = est.sketch(np.empty(0, dtype=np.uint64))
                writer.write(encode_frame(
                    FrameType.ESTIMATE,
                    struct.pack("<I", 0) + est.serialize(sketch, 0),
                ))
                await writer.drain()
                await read_frame(reader)                  # PARAMS
                writer.write(encode_frame(
                    FrameType.PUSH,
                    Push(
                        success=True,
                        elements=np.array([0, 1 << 33], dtype=np.uint64),
                    ).serialize(),
                ))
                await writer.drain()
                ftype, _ = await read_frame(reader)
                assert ftype is FrameType.ERROR
                writer.close()
                await writer.wait_closed()
                # the set must be untouched and still syncable
                assert store.get("inv") == {1, 2, 3}
                result = await sync_with_server(
                    "127.0.0.1", server.port, {1, 2, 3, 4}, set_name="inv",
                    seed=2,
                )
                assert result.success

        asyncio.run(scenario())

    def test_oversized_estimator_request_is_rejected(self):
        async def scenario():
            async with ReconciliationServer() as server:
                with pytest.raises(
                    (SerializationError, asyncio.IncompleteReadError,
                     ConnectionError)
                ):
                    await sync_with_server(
                        "127.0.0.1", server.port, {1, 2}, set_name="s",
                        n_sketches=5000,
                    )
                return server

        server = asyncio.run(scenario())
        assert server.metrics.sessions_failed == 1

    def test_truncated_estimate_fails_session_cleanly(self):
        from repro.service.wire import (
            FrameType, Hello, encode_frame, read_frame,
        )

        async def scenario():
            async with ReconciliationServer() as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                writer.write(encode_frame(
                    FrameType.HELLO,
                    Hello(set_name="s", seed=1).serialize(),
                ))
                await writer.drain()
                await read_frame(reader)                  # WELCOME
                writer.write(encode_frame(FrameType.ESTIMATE, b"\x01"))
                await writer.drain()
                ftype, _ = await read_frame(reader)
                assert ftype is FrameType.ERROR
                writer.close()
                await writer.wait_closed()
                await asyncio.sleep(0.05)
                return server

        server = asyncio.run(scenario())
        assert server.metrics.sessions_failed == 1
        assert server.metrics.sessions_completed == 0

    def test_garbage_hello_fails_session_cleanly(self):
        from repro.service.wire import FrameType, encode_frame, read_frame

        async def scenario():
            async with ReconciliationServer() as server:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", server.port
                )
                # HELLO frame whose payload is far too short for the format
                writer.write(encode_frame(FrameType.HELLO, b"\x01\x02"))
                await writer.drain()
                ftype, payload = await read_frame(reader)
                assert ftype is FrameType.ERROR
                writer.close()
                await writer.wait_closed()
                # the server, not the connection task, must survive: a
                # normal sync on the same server still works
                result = await sync_with_server(
                    "127.0.0.1", server.port, {1, 2, 3}, set_name="s",
                    seed=1,
                )
                assert result.success
                return server

        server = asyncio.run(scenario())
        assert server.metrics.sessions_failed == 1
        assert server.metrics.sessions_completed == 1

    def test_unknown_set_rejected_when_create_missing_off(self):
        async def scenario():
            async with ReconciliationServer(create_missing=False) as server:
                with pytest.raises(
                    (SerializationError, asyncio.IncompleteReadError,
                     ConnectionError)
                ):
                    await sync_with_server(
                        "127.0.0.1", server.port, {1, 2}, set_name="ghost"
                    )
                return server

        server = asyncio.run(scenario())
        assert server.metrics.sessions_failed == 1

    def test_sync_against_empty_autocreated_set(self):
        async def scenario():
            store = SetStore()
            async with ReconciliationServer(store) as server:
                result = await sync_with_server(
                    "127.0.0.1", server.port, {5, 6, 7}, set_name="new",
                    seed=1,
                )
            return store, result

        store, result = asyncio.run(scenario())
        assert result.success
        assert result.difference == frozenset({5, 6, 7})
        assert store.get("new") == {5, 6, 7}


class TestConcurrentSessions:
    N = 6

    def test_many_clients_distinct_sets(self):
        pairs = [_pair(seed=100 + i, d=10) for i in range(self.N)]

        async def scenario():
            store = SetStore()
            for i, (_, set_b, _) in enumerate(pairs):
                store.create(f"s{i}", set_b)
            async with ReconciliationServer(store) as server:
                results = await asyncio.gather(
                    *[
                        sync_with_server(
                            "127.0.0.1", server.port, pairs[i][0],
                            set_name=f"s{i}", seed=i + 1,
                        )
                        for i in range(self.N)
                    ]
                )
            return store, server, results

        store, server, results = asyncio.run(scenario())
        for i, result in enumerate(results):
            set_a, set_b, expected = pairs[i]
            assert result.success
            assert result.difference == expected
            assert store.get(f"s{i}") == set_a | set_b
        stats = server.coalescer.stats
        assert stats.submissions >= self.N
        # concurrency must actually have been coalesced into shared batches
        assert stats.coalesced_batches >= 1
        assert stats.max_sessions_per_batch >= 2
        assert server.metrics.sessions_completed == self.N

    def test_two_clients_same_set_converge_after_second_pass(self):
        base = set(range(1, 1500))
        a1 = base | {100_001, 100_002}
        a2 = base | {200_001}

        async def scenario():
            store = SetStore()
            store.create("shared", base)
            async with ReconciliationServer(store) as server:
                # pass 1: both snapshot the same base concurrently
                await asyncio.gather(
                    sync_with_server("127.0.0.1", server.port, a1,
                                     set_name="shared", seed=1),
                    sync_with_server("127.0.0.1", server.port, a2,
                                     set_name="shared", seed=2),
                )
                union = base | a1 | a2
                assert store.get("shared") == union
                # pass 2: each client pulls what the other pushed
                r1, r2 = await asyncio.gather(
                    sync_with_server("127.0.0.1", server.port, a1,
                                     set_name="shared", seed=3),
                    sync_with_server("127.0.0.1", server.port, a2,
                                     set_name="shared", seed=4),
                )
                assert a1 | r1.difference == union
                assert a2 | r2.difference == union

        asyncio.run(scenario())

    def test_version_exposes_concurrent_races(self):
        """The convergence signal: each racer sees the other's apply in
        the final store version, and a quiet second pass leaves it put."""
        base = set(range(1, 1200))
        a1 = base | {700_001}
        a2 = base | {800_001}

        async def scenario():
            store = SetStore()
            store.create("shared", base)
            async with ReconciliationServer(store) as server:
                r1, r2 = await asyncio.gather(
                    sync_with_server("127.0.0.1", server.port, a1,
                                     set_name="shared", seed=1),
                    sync_with_server("127.0.0.1", server.port, a2,
                                     set_name="shared", seed=2),
                )
                # both snapshotted version 0; two mutating applies landed
                assert r1.extra["snapshot_version"] == 0
                assert r2.extra["snapshot_version"] == 0
                assert max(
                    r1.extra["store_version"], r2.extra["store_version"]
                ) == 2
                # second pass: nothing left to push, version holds still
                r3 = await sync_with_server(
                    "127.0.0.1", server.port, a1 | r1.difference,
                    set_name="shared", seed=3,
                )
                assert r3.extra["applied"] == 0
                assert r3.extra["snapshot_version"] == 2
                assert r3.extra["store_version"] == 2
                assert store.version("shared") == 2

        asyncio.run(scenario())

    def test_per_session_fallback_still_converges(self):
        set_a, set_b, expected = _pair(seed=31)

        async def scenario():
            store = SetStore()
            store.create("inv", set_b)
            async with ReconciliationServer(
                store, coalescer=DecodeCoalescer(enabled=False)
            ) as server:
                result = await sync_with_server(
                    "127.0.0.1", server.port, set_a, set_name="inv", seed=9
                )
                return server, result

        server, result = asyncio.run(scenario())
        assert result.success and result.difference == expected
        assert server.coalescer.stats.coalesced_batches == 0


class TestRepeatSync:
    """Long-lived connections: many reconciliation passes, one handshake."""

    def test_three_passes_reuse_one_connection(self):
        base = set(range(1, 1000))

        async def scenario():
            store = SetStore()
            store.create("inv", base)
            async with ReconciliationServer(store) as server:
                async with ClientConnection(
                    "127.0.0.1", server.port, set_name="inv", seed=9
                ) as conn:
                    values = base | {500_001, 500_002}
                    r1 = await conn.sync(values)
                    assert r1.success
                    assert r1.extra["pass_no"] == 1
                    assert r1.extra["applied"] == 2
                    # a third party pushes between our passes
                    await sync_with_server(
                        "127.0.0.1", server.port, base | {600_001},
                        set_name="inv", seed=10,
                    )
                    r2 = await conn.sync(values)
                    assert r2.success
                    assert r2.extra["pass_no"] == 2
                    assert r2.difference == frozenset({600_001})
                    assert r2.extra["applied"] == 0
                    # pass 3 from the merged view: fully converged
                    r3 = await conn.sync(values | r2.difference)
                    assert r3.extra["pass_no"] == 3
                    assert r3.difference == frozenset()
                    assert (
                        r3.extra["snapshot_version"]
                        == r3.extra["store_version"]
                        == r2.extra["store_version"]
                    )
                    assert conn.passes == 3
                await asyncio.sleep(0.05)   # let the server see the EOF
                # the server saw ONE connection carrying three passes
                assert server.metrics.sessions_completed == 2  # conn + helper
                recent = server.metrics.snapshot()["recent_sessions"]
                multi = [s for s in recent if s["syncs"] == 3]
                assert len(multi) == 1
            return store

        store = asyncio.run(scenario())
        assert store.get("inv") == base | {500_001, 500_002, 600_001}

    def test_per_pass_byte_accounting_is_fresh(self):
        base = set(range(1, 800))

        async def scenario():
            store = SetStore()
            store.create("inv", base)
            async with ReconciliationServer(store) as server:
                async with ClientConnection(
                    "127.0.0.1", server.port, set_name="inv", seed=3
                ) as conn:
                    r1 = await conn.sync(base | {91_001})
                    r2 = await conn.sync(base | {91_001})
                    # each result's channel covers only its own pass —
                    # totals must not accumulate across passes
                    assert r1.channel is not r2.channel
                    assert r2.total_bytes < r1.total_bytes * 3
                    for r in (r1, r2):
                        assert r.channel.bytes_by_label()["estimator"] > 0

        asyncio.run(scenario())

    def test_two_repeat_clients_converge_same_set(self):
        """The ISSUE's convergence drill, on persistent connections."""
        base = set(range(1, 1500))
        a1 = base | {100_001, 100_002}
        a2 = base | {200_001}

        async def scenario():
            store = SetStore()
            store.create("shared", base)
            async with ReconciliationServer(store) as server:
                async with ClientConnection(
                    "127.0.0.1", server.port, set_name="shared", seed=1
                ) as c1, ClientConnection(
                    "127.0.0.1", server.port, set_name="shared", seed=2
                ) as c2:
                    view1, view2 = set(a1), set(a2)
                    rounds = 0
                    while True:
                        rounds += 1
                        r1, r2 = await asyncio.gather(
                            c1.sync(view1), c2.sync(view2)
                        )
                        view1 |= r1.difference
                        view2 |= r2.difference
                        if (
                            not r1.difference
                            and not r2.difference
                            and r1.extra["applied"] == 0
                            and r2.extra["applied"] == 0
                        ):
                            break
                        assert rounds < 5
                    union = base | a1 | a2
                    assert view1 == view2 == union
                    assert store.get("shared") == union
                    # exactly three passes: merge, pull the other's push,
                    # verify nothing moved
                    assert rounds == 3

        asyncio.run(scenario())
