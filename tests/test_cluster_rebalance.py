"""Manifest + durable rebalance: no set is ever lost on a resize.

The PR-3 bug these tests pin down: restarting a durable data dir with
a different ``--shards`` silently remapped ~1/(N+1) of the names to
shards whose storage never heard of them, so those sets recovered
empty.  Now the manifest makes startup refuse the mismatch, and
``rebalance`` migrates the shard files with one atomic commit point.

The resize acceptance drill and the crash-point drills are parametrized
over every storage backend (``storage_backend`` in ``conftest.py``);
tests that perform journal file surgery stay journal-only (SQLite's
twins live in test_storage_backends.py).

Written against plain ``asyncio.run`` so the suite does not depend on a
pytest-asyncio plugin being installed.
"""

from __future__ import annotations

import asyncio
import json
import random

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterStore,
    HashRing,
    ManifestError,
    RebalanceAborted,
    TopologyMismatchError,
    load_manifest,
    open_cluster,
    rebalance,
)
from repro.cluster.manifest import (
    ClusterManifest,
    load_or_adopt,
    manifest_path,
    shard_dirname,
    write_manifest,
)


def _cluster(shards, data_dir=None, **overrides):
    return open_cluster(data_dir, ClusterConfig(shards=shards, **overrides))


def _populate(data_dir, shards, sets, storage="journal"):
    """Create a durable cluster dir holding ``sets`` (name -> values)."""

    async def inner():
        async with _cluster(shards, data_dir, storage=storage) as store:
            for name, values in sets.items():
                await store.create(name, values)
                # a couple of diffs so the shards hold real apply records
                # and versions exceed 0
                await store.apply_diff(name, add=[max(values) + 7])
                await store.apply_diff(name, remove=[min(values)])
            return (
                {n: store.get(n) for n in store.names()},
                {n: store.version(n) for n in store.names()},
            )

    return asyncio.run(inner())


def _recovered(data_dir, shards, storage="journal"):
    async def inner():
        async with _cluster(shards, data_dir, storage=storage) as store:
            return (
                {n: store.get(n) for n in store.names()},
                {n: store.version(n) for n in store.names()},
            )

    return asyncio.run(inner())


def _random_sets(seed, n_sets=14):
    rng = random.Random(seed)
    return {
        f"tenant-{i}/s{rng.randrange(1000)}": set(
            rng.sample(range(1, 1 << 20), rng.randint(1, 40))
        )
        for i in range(n_sets)
    }


class TestManifest:
    def test_fresh_dir_gets_a_manifest(self, tmp_path):
        _populate(tmp_path, 2, {"a": {1, 2}})
        manifest = load_manifest(tmp_path)
        assert manifest is not None
        assert (manifest.shards, manifest.epoch) == (2, 0)
        assert manifest.shard_epochs == [0, 0]

    def test_mismatch_refuses_with_actionable_error(self, tmp_path):
        _populate(tmp_path, 2, {"a": {1, 2}})

        async def inner():
            with pytest.raises(TopologyMismatchError) as excinfo:
                await _cluster(5, tmp_path).start()
            message = str(excinfo.value)
            assert "2 shards" in message and "5 shards" in message
            assert "repro rebalance" in message

        asyncio.run(inner())

    def test_legacy_dir_with_matching_count_is_adopted(self, tmp_path):
        expected, _ = _populate(tmp_path, 3, {"a": {1}, "b": {2}})
        manifest_path(tmp_path).unlink()          # pre-manifest layout
        values, _ = _recovered(tmp_path, 3)       # adopts in place
        assert values == expected
        assert load_manifest(tmp_path).shards == 3

    def test_legacy_dir_with_differing_count_refuses(self, tmp_path):
        _populate(tmp_path, 3, {"a": {1}})
        manifest_path(tmp_path).unlink()

        async def inner():
            with pytest.raises(TopologyMismatchError):
                await _cluster(2, tmp_path).start()

        asyncio.run(inner())

    def test_corrupt_manifest_is_a_clear_error(self, tmp_path):
        _populate(tmp_path, 2, {"a": {1}})
        manifest_path(tmp_path).write_text("{not json")

        async def inner():
            with pytest.raises(ManifestError):
                await _cluster(2, tmp_path).start()

        asyncio.run(inner())

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        manifest = ClusterManifest(shards=4, vnodes=16, epoch=3)
        write_manifest(tmp_path, manifest)
        assert load_manifest(tmp_path).to_dict() == manifest.to_dict()
        assert not (tmp_path / "manifest.json.tmp").exists()

    def test_shard_epochs_must_match_shards(self):
        with pytest.raises(ManifestError):
            ClusterManifest(shards=3, vnodes=8, epoch=1, shard_epochs=[1])

    def test_empty_dir_initializes(self, tmp_path):
        manifest = load_or_adopt(tmp_path / "new", 4, 32)
        assert manifest.shards == 4
        assert load_manifest(tmp_path / "new").vnodes == 32


class TestRebalanceProperty:
    @pytest.mark.parametrize("old_n", [1, 2, 3, 4, 5])
    @pytest.mark.parametrize("new_n", [1, 2, 3, 4, 5])
    def test_every_resize_recovers_every_set_bit_for_bit(
        self, tmp_path, old_n, new_n, storage_backend
    ):
        """The acceptance drill: random populations, all N -> M resizes,
        on every storage backend, nothing lost, contents and versions
        identical after restart."""
        sets = _random_sets(seed=1000 * old_n + new_n)
        expected, versions = _populate(
            tmp_path, old_n, sets, storage=storage_backend
        )
        result = rebalance(tmp_path, new_n)
        assert result.changed == (old_n != new_n)
        assert result.new_storage == storage_backend   # backend kept
        recovered, recovered_versions = _recovered(
            tmp_path, new_n, storage=storage_backend
        )
        assert recovered == expected
        assert recovered_versions == versions

    def test_chained_resizes_preserve_everything(
        self, tmp_path, storage_backend
    ):
        sets = _random_sets(seed=77)
        expected, versions = _populate(
            tmp_path, 2, sets, storage=storage_backend
        )
        for step, target in enumerate([4, 3, 5, 1, 2]):
            rebalance(tmp_path, target)
            recovered, recovered_versions = _recovered(
                tmp_path, target, storage=storage_backend
            )
            assert recovered == expected, f"step {step} -> {target}"
            assert recovered_versions == versions
        assert load_manifest(tmp_path).epoch == 5

    def test_unmoved_shards_keep_their_files_untouched(self, tmp_path):
        # craft a resize in which some shard neither gains nor loses a
        # set: that shard's files must stay byte-identical at epoch 0
        sets = _random_sets(seed=9, n_sets=30)
        _populate(tmp_path, 4, sets)
        result = rebalance(tmp_path, 5)
        manifest = load_manifest(tmp_path)
        untouched = [
            shard for shard in range(4)
            if shard not in result.rewritten_shards
        ]
        assert untouched, "pick a seed where some shard is unaffected"
        for shard in untouched:
            assert manifest.shard_epoch(shard) == 0
            assert (tmp_path / shard_dirname(shard) / "journal.log").exists()

    def test_misplaced_set_is_counted_and_rehomed(self, tmp_path):
        """A set planted on a shard the ring never routed it to (file
        surgery) is reported via ``healed`` and moved to its true target
        when the target differs from where it sits."""
        from repro.cluster import encode_create

        _populate(tmp_path, 2, _random_sets(seed=21, n_sets=6))
        old_ring = HashRing(range(2))
        new_ring = HashRing(range(3))
        # pick a stray name whose wrong shard is not its 3-shard target,
        # so the rebalance must physically move it
        for i in range(100):
            stray = f"stray-{i}"
            wrong = 1 - old_ring.lookup(stray)
            if new_ring.lookup(stray) != wrong:
                break
        with open(tmp_path / shard_dirname(wrong) / "journal.log", "ab") as fh:
            fh.write(encode_create(stray, {7, 8}, version=2))

        result = rebalance(tmp_path, 3)
        assert result.healed == 1
        assert result.moved[stray] == (wrong, new_ring.lookup(stray))
        values, versions = _recovered(tmp_path, 3)
        assert values[stray] == {7, 8}
        assert versions[stray] == 2

    def test_rerun_after_completion_is_a_no_op(
        self, tmp_path, storage_backend
    ):
        _populate(tmp_path, 2, _random_sets(seed=5), storage=storage_backend)
        first = rebalance(tmp_path, 4)
        second = rebalance(tmp_path, 4)
        assert first.changed and not second.changed
        assert load_manifest(tmp_path).epoch == first.new_epoch

    def test_minimal_movement(self, tmp_path):
        """The point of the ring: growing 4 -> 5 moves roughly 1/5 of
        the sets, and the physical plan equals the ring's diff."""
        sets = _random_sets(seed=3, n_sets=60)
        _populate(tmp_path, 4, sets)
        planned = HashRing(range(4)).diff(HashRing(range(5)), sets)
        result = rebalance(tmp_path, 5)
        assert result.moved == planned
        assert result.healed == 0
        assert 0 < result.moved_count < len(sets) / 2


class TestCrashMidRebalance:
    def test_crash_before_commit_leaves_old_epoch_valid(
        self, tmp_path, storage_backend
    ):
        sets = _random_sets(seed=42)
        expected, versions = _populate(
            tmp_path, 2, sets, storage=storage_backend
        )
        with pytest.raises(RebalanceAborted):
            rebalance(tmp_path, 4, crash_at="after-stage")
        # the commit never happened: the old topology recovers cleanly
        assert load_manifest(tmp_path).shards == 2
        recovered, recovered_versions = _recovered(
            tmp_path, 2, storage=storage_backend
        )
        assert recovered == expected and recovered_versions == versions
        # ... and the new one still refuses
        async def inner():
            with pytest.raises(TopologyMismatchError):
                await _cluster(4, tmp_path).start()

        asyncio.run(inner())
        # rerunning completes the migration over the stale staged files
        assert rebalance(tmp_path, 4).changed
        recovered, recovered_versions = _recovered(
            tmp_path, 4, storage=storage_backend
        )
        assert recovered == expected and recovered_versions == versions

    def test_crash_after_commit_recovers_under_new_epoch(
        self, tmp_path, storage_backend
    ):
        sets = _random_sets(seed=43)
        expected, versions = _populate(
            tmp_path, 2, sets, storage=storage_backend
        )
        with pytest.raises(RebalanceAborted):
            rebalance(tmp_path, 4, crash_at="after-commit")
        # committed: the new topology is live even though the sweep of
        # stale old-epoch files never ran
        assert load_manifest(tmp_path).shards == 4
        recovered, recovered_versions = _recovered(
            tmp_path, 4, storage=storage_backend
        )
        assert recovered == expected and recovered_versions == versions
        # a later no-op run sweeps the leftovers
        rebalance(tmp_path, 4)
        for shard in range(4):
            directory = tmp_path / shard_dirname(shard)
            manifest = load_manifest(tmp_path)
            if manifest.shard_epoch(shard) > 0:
                assert not (directory / "snapshot.bin").exists()
                assert not (directory / "journal.log").exists()
                assert not (directory / "store.sqlite").exists()

    def test_crash_on_legacy_dir_commits_inference_before_staging(
        self, tmp_path
    ):
        """A pre-manifest (PR-3) dir: the inferred legacy topology must
        be committed *before* staging, or the staged shard dirs would
        inflate the next run's inference into a bogus wider layout whose
        new shards recover empty — resurrecting the original bug."""
        sets = _random_sets(seed=55)
        expected, versions = _populate(tmp_path, 2, sets)
        manifest_path(tmp_path).unlink()          # back to pre-manifest
        with pytest.raises(RebalanceAborted):
            rebalance(tmp_path, 4, crash_at="after-stage")
        # the old topology was committed, not guessed from dir count
        assert load_manifest(tmp_path).shards == 2
        recovered, recovered_versions = _recovered(tmp_path, 2)
        assert recovered == expected and recovered_versions == versions
        # the advertised idempotent rerun now really migrates
        result = rebalance(tmp_path, 4)
        assert result.changed and result.old_shards == 2
        recovered, recovered_versions = _recovered(tmp_path, 4)
        assert recovered == expected and recovered_versions == versions

    def test_sigkilled_rebalance_subprocess_old_epoch_recovers(self, tmp_path):
        """A literal kill -9 mid-rebalance (not just an exception)."""
        import os
        import subprocess
        import sys
        import textwrap
        import time
        from pathlib import Path

        sets = _random_sets(seed=44)
        expected, versions = _populate(tmp_path, 2, sets)
        # run a rebalance that SIGSTOPs itself right before the commit
        # point, then kill -9 it — the strongest possible interruption
        script = textwrap.dedent(
            """
            import importlib, os, signal, sys
            reb = importlib.import_module("repro.cluster.rebalance")
            real = reb.write_manifest

            def stall(*args, **kwargs):
                os.kill(os.getpid(), signal.SIGSTOP)   # parent kills us here
                return real(*args, **kwargs)

            reb.write_manifest = stall
            reb.rebalance(sys.argv[1], 4)
            """
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        env = {**os.environ}
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [sys.executable, "-c", script, str(tmp_path)], env=env
        )
        try:
            # wait for the child to stop itself at the commit point
            for _ in range(500):
                try:
                    _, status = os.waitpid(
                        proc.pid, os.WUNTRACED | os.WNOHANG
                    )
                except ChildProcessError:
                    pytest.fail("rebalance child died before the commit point")
                if status and os.WIFSTOPPED(status):
                    break
                if status and (os.WIFEXITED(status) or os.WIFSIGNALED(status)):
                    pytest.fail(f"rebalance child exited early: {status}")
                time.sleep(0.02)
            else:
                pytest.fail("rebalance child never reached the commit point")
        finally:
            proc.kill()
            proc.wait()
        assert load_manifest(tmp_path).shards == 2      # commit never landed
        recovered, recovered_versions = _recovered(tmp_path, 2)
        assert recovered == expected and recovered_versions == versions


class TestLiveResize:
    def test_in_memory_resize_moves_nothing_off_process(self):
        async def inner():
            async with _cluster(2) as store:
                names = [f"s{i}" for i in range(10)]
                for i, name in enumerate(names):
                    await store.create(name, {i, i + 100})
                before = {n: store.get(n) for n in names}
                summary = await store.resize(4)
                assert summary["changed"] and summary["new_shards"] == 4
                assert store.n_shards == 4 and len(store.ring) == 4
                assert {n: store.get(n) for n in names} == before
                # the store still serves mutations after the swap
                assert await store.apply_diff(names[0], add=[999]) == 1

        asyncio.run(inner())

    def test_durable_resize_survives_restart(self, tmp_path, storage_backend):
        async def inner():
            async with _cluster(
                2, tmp_path, storage=storage_backend
            ) as store:
                for i in range(8):
                    await store.create(f"s{i}", {i, i * 7 + 1})
                summary = await store.resize(3)
                assert summary["rebalance"]["new_epoch"] == 1
                await store.apply_diff("s0", add=[12345])   # post-resize write
            # a cold restart at the new topology sees everything,
            # including the post-resize mutation
            async with _cluster(3, tmp_path, storage=storage_backend) as again:
                assert again.get("s0") == {0, 1, 12345}
                assert len(again.names()) == 8

        asyncio.run(inner())

    def test_resize_to_same_count_is_a_no_op(self, tmp_path):
        async def inner():
            async with _cluster(2, tmp_path) as store:
                await store.create("s", {1})
                summary = await store.resize(2)
                assert not summary["changed"]
                assert store.cluster_stats()["resizes"] == 0

        asyncio.run(inner())

    def test_server_resize_reshapes_admission(self, tmp_path):
        from repro.cluster import AdmissionController
        from repro.service import ReconciliationServer

        async def inner():
            store = _cluster(2, tmp_path)
            admission = AdmissionController(shards=2, max_sessions=4)
            async with store:
                server = ReconciliationServer(store, admission=admission)
                async with server:
                    summary = await server.resize_store(4)
                assert summary["new_shards"] == 4
                assert admission.shards == 4
                assert len(admission.stats()["per_shard"]) == 4
                # the resize is on the metrics record
                snapshot = server.metrics.snapshot(
                    cluster_stats=store.cluster_stats()
                )
                assert snapshot["resizes"][0]["new_shards"] == 4
                assert snapshot["cluster"]["resizes"] == 1

        asyncio.run(inner())

    def test_admission_release_of_removed_shard_is_ignored(self):
        from repro.cluster import AdmissionController

        admission = AdmissionController(shards=4, max_sessions=2)
        assert admission.try_admit(3) is None     # admitted on shard 3
        admission.resize(2)                       # shard 3 disappears
        admission.release(3)                      # session ends: no crash
        assert admission.stats()["per_shard"][0]["active"] == 0

    def test_admission_stale_shard_id_is_shed_not_crashed(self):
        """A multi-pass connection re-admits with the shard id it
        captured at HELLO; after a shrink that id may be gone — it must
        be shed (client reconnects and re-routes), not IndexError."""
        from repro.cluster import AdmissionController

        admission = AdmissionController(shards=4, max_sessions=2)
        admission.resize(2)
        assert admission.try_admit(3) == admission.retry_after_s
        # ... and the shed is visible to operators, not silent
        assert admission.total_shed == 1
        assert admission.stats()["shed_stale_shard"] == 1

    def test_admission_shrink_then_grow_never_goes_negative(self):
        from repro.cluster import AdmissionController

        admission = AdmissionController(shards=4, max_sessions=2)
        assert admission.try_admit(3) is None
        admission.resize(2)
        admission.resize(4)           # shard 3 exists again, cold
        admission.release(3)          # stale release from the old epoch
        assert admission.stats()["per_shard"][3]["active"] == 0
        # the fresh shard's cap is intact: two admits fill it, a third
        # is shed
        assert admission.try_admit(3) is None
        assert admission.try_admit(3) is None
        assert admission.try_admit(3) is not None

    def test_admission_stale_release_cannot_raise_a_live_shards_cap(self):
        """A release from a shard id's *previous* life (removed by a
        shrink, re-created by a grow) must not decrement the new shard's
        live count — that would quietly admit one session over the cap."""
        from repro.cluster import AdmissionController

        admission = AdmissionController(shards=4, max_sessions=2)
        stale_token = admission.incarnation(3)
        assert admission.try_admit(3) is None
        admission.resize(2)
        admission.resize(4)                    # shard 3 re-born, cold
        assert admission.try_admit(3) is None  # fill the new shard's cap
        assert admission.try_admit(3) is None
        admission.release(3, stale_token)      # the old life's release
        assert admission.try_admit(3) is not None   # cap NOT raised
        admission.release(3, admission.incarnation(3))  # a live release
        assert admission.try_admit(3) is None

    def test_admission_decode_slot_survives_shrink_while_held(self):
        from repro.cluster import AdmissionController

        async def inner():
            admission = AdmissionController(shards=4, max_decode_queue=2)
            async with admission.decode_slot(3):
                admission.resize(2)   # shard 3 vanishes mid-decode
            # exiting the slot must not IndexError or corrupt counts
            assert len(admission.stats()["per_shard"]) == 2

        asyncio.run(inner())

    def test_mutations_during_resize_wait_and_reroute(self, tmp_path):
        """A mutation racing a live resize parks behind the resize gate
        and completes through the new ring instead of dying with a
        'ClusterStore is closing' error."""

        async def inner():
            async with _cluster(2, tmp_path) as store:
                names = [f"s{i}" for i in range(6)]
                for i, name in enumerate(names):
                    await store.create(name, {i})
                results = await asyncio.gather(
                    store.resize(4),
                    store.apply_diff(names[0], add=[777]),
                    store.create("born-mid-resize", {42}),
                )
                assert results[0]["new_shards"] == 4
                assert 777 in store.get(names[0])
                assert store.get("born-mid-resize") == {42}
            # ... and both racing mutations are durable under the new
            # topology
            async with _cluster(4, tmp_path) as again:
                assert 777 in again.get(names[0])
                assert again.get("born-mid-resize") == {42}

        asyncio.run(inner())

    def test_resize_refuses_while_a_close_is_draining(self, tmp_path):
        """The mirror race: a resize starting after close() began must
        not restart workers behind the closer's back — the caller was
        promised a closed store."""
        from repro.errors import ReproError

        async def inner():
            store = _cluster(2, tmp_path)
            await store.start()
            await store.create("s", {1})
            closing = asyncio.create_task(store.close())
            await asyncio.sleep(0)        # close is now draining
            with pytest.raises(ReproError):
                await store.resize(4)
            await closing
            assert store._started is False
            assert all(sh.task is None for sh in store._shards)

        asyncio.run(inner())

    def test_resize_metrics_are_bounded(self, tmp_path):
        """The metrics record must not carry the per-set moved-name map
        (it would be re-serialized into every heartbeat); scalar counts
        and epochs suffice."""
        from repro.service.metrics import ServiceMetrics

        async def inner():
            async with _cluster(2, tmp_path) as store:
                for i in range(8):
                    await store.create(f"s{i}", {i})
                metrics = ServiceMetrics()
                metrics.record_resize(await store.resize(4))
                [event] = metrics.snapshot()["resizes"]
                assert event["moved"] > 0
                assert "moved" not in event["rebalance"]
                assert event["rebalance"]["moved_count"] == event["moved"]

        asyncio.run(inner())

    def test_close_racing_a_resize_waits_it_out(self, tmp_path):
        """close() during an in-flight resize must not return while the
        resize is about to restart workers and reopen journals — it
        waits the resize out, then closes the swapped store."""

        async def inner():
            store = _cluster(2, tmp_path)
            await store.start()
            for i in range(6):
                await store.create(f"s{i}", {i})
            resizing = asyncio.create_task(store.resize(4))
            await asyncio.sleep(0)        # let resize set its gate
            await store.close()           # must wait, then really close
            assert (await resizing)["changed"]
            assert store._started is False
            assert all(sh.task is None for sh in store._shards)
            # the closed store restarts cleanly at the new topology
            await store.start()
            assert store.n_shards == 4
            assert len(store.names()) == 6
            await store.close()

        asyncio.run(inner())

    def test_failed_resize_rolls_back_to_a_working_store(self, tmp_path):
        """If the move plan blows up (disk full, corrupt shard), the
        store must reopen under the old layout instead of staying closed
        until a process restart."""
        import repro.cluster.router as router_mod

        async def inner(monkeypatch):
            async with _cluster(2, tmp_path) as store:
                await store.create("s", {1, 2})

                def exploding(*args, **kwargs):
                    raise OSError("no space left on device")

                monkeypatch.setattr(router_mod, "rebalance", exploding)
                with pytest.raises(OSError):
                    await store.resize(4)
                monkeypatch.undo()
                # still the old topology, still serving mutations
                assert store.n_shards == 2
                assert await store.apply_diff("s", add=[3]) == 1
                # and a later resize attempt succeeds
                summary = await store.resize(4)
                assert summary["changed"]
                assert store.get("s") == {1, 2, 3}

        monkeypatch = pytest.MonkeyPatch()
        try:
            asyncio.run(inner(monkeypatch))
        finally:
            monkeypatch.undo()


class TestRebalanceCLI:
    def test_rebalance_command_migrates_and_reports(self, tmp_path, capsys):
        from repro.cli import main

        sets = _random_sets(seed=11)
        expected, versions = _populate(tmp_path, 2, sets)
        code = main([
            "rebalance", "--data-dir", str(tmp_path), "--shards", "4",
            "--json",
        ])
        out = json.loads(capsys.readouterr().out)
        assert code == 0
        assert out["changed"] is True
        assert out["old_shards"] == 2 and out["new_shards"] == 4
        assert out["moved_count"] == len(out["moved"]) > 0
        recovered, recovered_versions = _recovered(tmp_path, 4)
        assert recovered == expected and recovered_versions == versions

    def test_rebalance_noop_reports_nothing_to_do(self, tmp_path, capsys):
        from repro.cli import main

        _populate(tmp_path, 2, {"a": {1, 2, 3}})
        code = main(["rebalance", "--data-dir", str(tmp_path), "--shards", "2"])
        assert code == 0
        assert "nothing to do" in capsys.readouterr().err

    def test_rebalance_bad_shards_is_usage_error(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "rebalance", "--data-dir", str(tmp_path), "--shards", "0",
        ]) == 2
        assert "--shards" in capsys.readouterr().err

    def test_rebalance_bad_vnodes_is_usage_error(self, tmp_path, capsys):
        from repro.cli import main

        _populate(tmp_path, 2, {"a": {1}})
        assert main([
            "rebalance", "--data-dir", str(tmp_path), "--shards", "2",
            "--vnodes", "0",
        ]) == 2
        assert "--vnodes" in capsys.readouterr().err

    def test_rebalance_nonexistent_dir_is_an_error(self, tmp_path, capsys):
        """A typo'd --data-dir must not be mkdir'd into a fresh 'valid'
        cluster while the real data sits untouched elsewhere."""
        from repro.cli import main

        missing = tmp_path / "no-such-dir"
        assert main([
            "rebalance", "--data-dir", str(missing), "--shards", "4",
        ]) == 2
        assert "does not exist" in capsys.readouterr().err
        assert not missing.exists()

    def test_replay_shard_does_not_create_missing_directories(self, tmp_path):
        from repro.cluster import replay_shard

        missing = tmp_path / "shard-07"
        store, stats = replay_shard(missing)
        assert store.names() == []
        assert stats["recovered_sets"] == 0
        assert not missing.exists()

    def test_serve_mismatched_shards_fails_fast(self, tmp_path, capsys):
        from repro.cli import main

        _populate(tmp_path, 2, {"a": {1, 2, 3}})
        code = main([
            "serve", "--data-dir", str(tmp_path), "--shards", "3",
            "--port", "0",
        ])
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot serve" in err and "rebalance" in err

    def test_serve_rebalance_flag_requires_data_dir(self, capsys):
        from repro.cli import main

        assert main(["serve", "--rebalance", "--shards", "2"]) == 2
        assert "--data-dir" in capsys.readouterr().err

    def test_serve_rebalance_requires_explicit_shards(self, tmp_path, capsys):
        """Forgetting --shards must not let the default of 1 silently
        rewrite a sharded cluster down to a single shard."""
        from repro.cli import main

        _populate(tmp_path, 4, {"a": {1, 2}})
        assert main([
            "serve", "--data-dir", str(tmp_path), "--rebalance",
        ]) == 2
        assert "explicit --shards" in capsys.readouterr().err
        assert load_manifest(tmp_path).shards == 4    # untouched

    def test_serve_rebalance_on_fresh_dir_boots(self, tmp_path):
        """An always-pass---rebalance deploy script must work on first
        boot: a data dir that does not exist yet has nothing to migrate
        and must be initialized by startup, not rejected."""
        import os
        import subprocess
        import sys
        import time
        from pathlib import Path

        data = tmp_path / "data"
        src = str(Path(__file__).resolve().parent.parent / "src")
        env = {**os.environ}
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve", "--port", "0",
                "--shards", "2", "--data-dir", str(data), "--rebalance",
            ],
            env=env,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.time() + 20
            while time.time() < deadline:
                if proc.poll() is not None:
                    pytest.fail(
                        f"serve --rebalance exited rc={proc.returncode} "
                        f"on a fresh data dir"
                    )
                if (data / "manifest.json").exists():
                    break            # booted past the rebalance guard
                time.sleep(0.05)
            else:
                pytest.fail("server never initialized the data dir")
        finally:
            proc.kill()
            proc.wait()
        assert load_manifest(data).shards == 2

    def test_rebalance_cli_normalizes_custom_vnodes(self, tmp_path):
        """A layout committed with custom vnodes (API-created) would
        make `repro serve` fail forever while the suggested remediation
        was a no-op; the CLI's default target is the layout serve runs."""
        from repro.cli import main

        async def populate():
            async with _cluster(2, tmp_path, vnodes=64) as store:
                await store.create("s", {1, 2, 3})
                return store.get("s")

        expected = asyncio.run(populate())
        assert load_manifest(tmp_path).vnodes == 64
        assert main([
            "rebalance", "--data-dir", str(tmp_path), "--shards", "2",
        ]) == 0
        assert load_manifest(tmp_path).vnodes == 128
        values, _ = _recovered(tmp_path, 2)    # default-vnodes store: serves
        assert values["s"] == expected
