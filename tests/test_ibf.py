"""Invertible Bloom filter: insertion algebra, peeling, failure modes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ibf import IBF
from repro.errors import DecodeFailure, ParameterError


def _make_pair(seed: int, a_vals, b_vals, cells=64, hashes=4):
    fa = IBF(cells, hashes, seed=seed)
    fa.insert_many(np.array(sorted(a_vals), dtype=np.uint64))
    fb = IBF(cells, hashes, seed=seed)
    fb.insert_many(np.array(sorted(b_vals), dtype=np.uint64))
    return fa, fb



def _sample_distinct(rng, count, lo=1, hi=1 << 32):
    """Distinct values in [lo, hi) without materializing the universe."""
    import numpy as np
    out = np.unique(rng.integers(lo, hi, size=2 * count + 16, dtype=np.uint64))
    rng.shuffle(out)
    return out[:count]

class TestConstruction:
    def test_validation(self):
        with pytest.raises(ParameterError):
            IBF(n_cells=10, n_hashes=1)
        with pytest.raises(ParameterError):
            IBF(n_cells=2, n_hashes=4)

    def test_subtables_partition_cells(self):
        f = IBF(n_cells=10, n_hashes=3, seed=0)
        assert int(f._sizes.sum()) == 10

    def test_element_hits_k_distinct_cells(self):
        f = IBF(n_cells=40, n_hashes=4, seed=1)
        f.insert_many(np.array([1234], dtype=np.uint64))
        assert int((f.counts != 0).sum()) == 4


class TestAlgebra:
    def test_insert_then_delete_is_empty(self):
        f = IBF(40, 4, seed=2)
        vals = np.array([5, 6, 7], dtype=np.uint64)
        f.insert_many(vals)
        f.insert_many(vals, sign=-1)
        assert not f.counts.any() and not f.id_sums.any()

    def test_subtract_of_equal_sets_is_empty(self):
        fa, fb = _make_pair(3, [1, 2, 3], [1, 2, 3])
        diff = fa.subtract(fb)
        assert diff.decode() == ([], [])

    def test_incompatible_subtract_rejected(self):
        fa = IBF(40, 4, seed=1)
        fb = IBF(40, 4, seed=2)
        with pytest.raises(ParameterError):
            fa.subtract(fb)
        fc = IBF(41, 4, seed=1)
        with pytest.raises(ParameterError):
            fa.subtract(fc)


class TestDecoding:
    def test_two_sided_difference(self):
        fa, fb = _make_pair(4, [10, 20, 30], [20, 40])
        a_only, b_only = fa.subtract(fb).decode()
        assert sorted(a_only) == [10, 30]
        assert sorted(b_only) == [40]

    def test_decode_respects_sign_direction(self):
        fa, fb = _make_pair(5, [7], [9])
        a_only, b_only = fb.subtract(fa).decode()
        assert a_only == [9] and b_only == [7]

    def test_large_difference_with_ample_cells(self, rng):
        universe = _sample_distinct(rng, 600)
        a = set(int(v) for v in universe[:500])
        b = set(int(v) for v in universe[100:600])
        fa, fb = _make_pair(6, a, b, cells=2 * 200, hashes=3)
        a_only, b_only = fa.subtract(fb).decode()
        assert set(a_only) == a - b
        assert set(b_only) == b - a

    def test_overload_raises(self, rng):
        vals = _sample_distinct(rng, 100)
        f = IBF(40, 4, seed=7)
        f.insert_many(vals.astype(np.uint64))
        with pytest.raises(DecodeFailure):
            f.decode()

    def test_decode_success_rate_at_2x_cells(self, rng):
        """D.Digest's 2x sizing should peel with high probability."""
        successes = 0
        trials = 60
        for trial in range(trials):
            local = np.random.default_rng(trial)
            d = 50
            vals = _sample_distinct(local, d)
            f = IBF(2 * d, 4, seed=trial)
            f.insert_many(vals.astype(np.uint64))
            try:
                pos, neg = f.decode()
                assert sorted(pos) == sorted(int(v) for v in vals)
                successes += 1
            except DecodeFailure:
                pass
        assert successes / trials > 0.9

    @given(st.sets(st.integers(1, 2**32 - 1), max_size=12),
           st.sets(st.integers(1, 2**32 - 1), max_size=12))
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_property(self, a, b):
        fa, fb = _make_pair(8, a, b, cells=80, hashes=4)
        try:
            a_only, b_only = fa.subtract(fb).decode()
        except DecodeFailure:
            return  # permissible for unlucky layouts; correctness untested
        assert set(a_only) == set(a) - set(b)
        assert set(b_only) == set(b) - set(a)


class TestAccounting:
    def test_cell_bits(self):
        assert IBF.cell_bits(32) == 32 + 64

    def test_wire_bytes_matches_serialize(self):
        f = IBF(50, 4, seed=9)
        f.insert_many(np.array([1, 2, 3], dtype=np.uint64))
        assert len(f.serialize()) == f.wire_bytes()

    def test_ddigest_6x_accounting(self):
        """2d cells * 3 words = 6 d log|U| bits — the §7 claim."""
        d = 100
        f = IBF(2 * d, 3, seed=0)
        assert f.wire_bytes() * 8 == 6 * d * 32
