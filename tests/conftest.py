"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gf import CarrylessField, TableField, TowerField32


@pytest.fixture(scope="session")
def gf8() -> TableField:
    return TableField(8)


@pytest.fixture(scope="session")
def gf7() -> TableField:
    """The paper's workhorse field (n = 127)."""
    return TableField(7)


@pytest.fixture(scope="session")
def gf32() -> TowerField32:
    return TowerField32()


@pytest.fixture(scope="session")
def gf32_ref() -> CarrylessField:
    return CarrylessField(32)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


# -- cluster storage backends --------------------------------------------------

@pytest.fixture(params=["journal", "sqlite"])
def storage_backend(request) -> str:
    """Parametrizes a test over every shard storage backend."""
    return request.param


@pytest.fixture()
def make_cluster(storage_backend):
    """A ClusterStore factory bound to the parametrized storage backend.

    ``make_cluster(shards, data_dir, **config_overrides)`` builds the
    store through :class:`repro.cluster.ClusterConfig` /
    :func:`repro.cluster.open_cluster` (the supported construction
    path); the chosen backend name is available as
    ``make_cluster.storage`` for tests that need to reach the files.
    """
    from repro.cluster import ClusterConfig, open_cluster

    def factory(shards=1, data_dir=None, **overrides):
        overrides.setdefault("storage", storage_backend)
        return open_cluster(data_dir, ClusterConfig(shards=shards, **overrides))

    factory.storage = storage_backend
    return factory


@pytest.fixture()
def corrupt_shard(storage_backend):
    """Damage one shard directory's base state file beyond recovery.

    Returns a callable ``corrupt(shard_dir, epoch=0)`` that makes the
    parametrized backend's next open raise ``StorageCorruptError`` —
    the journal by tearing the atomically-installed snapshot, SQLite by
    scribbling over the database header (and dropping the WAL sidecars
    that could otherwise heal it).
    """
    def corrupt(shard_dir, epoch: int = 0) -> None:
        if storage_backend == "journal":
            from repro.cluster.journal import (
                JournalBackend,
                snapshot_filename,
            )
            from repro.service.store import SetStore

            snapshot = shard_dir / snapshot_filename(epoch)
            if not snapshot.exists():
                # fold the journal into a snapshot first so there is an
                # atomically-installed file to tear
                backend = JournalBackend(shard_dir, epoch=epoch)
                store = SetStore()
                backend.recover(store)
                backend.compact(store.items())
                backend.close()
            snapshot.write_bytes(snapshot.read_bytes()[:-3] or b"\xff" * 64)
        else:
            from repro.cluster.sqlite import db_filename

            db = shard_dir / db_filename(epoch)
            db.write_bytes(b"\xff" * 512)
            for suffix in ("-wal", "-shm"):
                sidecar = db.with_name(db.name + suffix)
                sidecar.unlink(missing_ok=True)

    return corrupt
