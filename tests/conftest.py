"""Shared fixtures for the test suite."""

from __future__ import annotations

import os
import signal
from pathlib import Path

import numpy as np
import pytest

from repro.gf import CarrylessField, TableField, TowerField32


@pytest.fixture(scope="session")
def gf8() -> TableField:
    return TableField(8)


@pytest.fixture(scope="session")
def gf7() -> TableField:
    """The paper's workhorse field (n = 127)."""
    return TableField(7)


@pytest.fixture(scope="session")
def gf32() -> TowerField32:
    return TowerField32()


@pytest.fixture(scope="session")
def gf32_ref() -> CarrylessField:
    return CarrylessField(32)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


# -- cluster storage backends --------------------------------------------------

@pytest.fixture(params=["journal", "sqlite"])
def storage_backend(request) -> str:
    """Parametrizes a test over every shard storage backend."""
    return request.param


@pytest.fixture()
def make_cluster(storage_backend):
    """A ClusterStore factory bound to the parametrized storage backend.

    ``make_cluster(shards, data_dir, **config_overrides)`` builds the
    store through :class:`repro.cluster.ClusterConfig` /
    :func:`repro.cluster.open_cluster` (the supported construction
    path); the chosen backend name is available as
    ``make_cluster.storage`` for tests that need to reach the files.
    """
    from repro.cluster import ClusterConfig, open_cluster

    def factory(shards=1, data_dir=None, **overrides):
        overrides.setdefault("storage", storage_backend)
        return open_cluster(data_dir, ClusterConfig(shards=shards, **overrides))

    factory.storage = storage_backend
    return factory


# -- deterministic fault injection ---------------------------------------------

class CrashPoint(Exception):
    """Raised by :meth:`FaultPlan.reached` when an armed point fires
    with no explicit action — the simulated crash itself."""


class FaultPlan:
    """A deterministic, seeded schedule of injected faults.

    One plan holds everything a fault drill needs, so every schedule
    replays bit-for-bit from its seed:

    * **named crash points** — ``arm("point", action, at_hit=N)``
      schedules a fault for the *N*-th time the driver passes
      ``reached("point")``; with no action the plan raises
      :class:`CrashPoint` (a simulated crash), otherwise it runs the
      action (e.g. :meth:`sigkill`).  ``arm_random`` picks the hit
      number from the plan's own rng.
    * **torn writes / short reads** — :meth:`torn_write` appends a
      record minus its tail (a crash mid-append), :meth:`short_read`
      truncates a file (the next reader sees a short read); both draw
      cut points from the seeded rng when not pinned.
    * **wire corruption** — :meth:`flip_bit` flips one (seeded) bit.
    * **SIGKILL-at-step** — :meth:`sigkill` wraps a pid (or a callable
      resolving one at fire time) into an action for ``arm``.

    ``fired`` logs every fault the plan actually injected, so a drill
    can assert its schedule happened rather than silently testing the
    happy path.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self._armed: dict[str, tuple[int, object]] = {}
        self._hits: dict[str, int] = {}
        self.fired: list[tuple[str, int]] = []

    # -- crash-point scheduling --
    def arm(self, point: str, action=None, at_hit: int = 1) -> None:
        """Schedule ``action`` for the ``at_hit``-th pass of ``point``
        (default: raise :class:`CrashPoint` there)."""
        if at_hit < 1:
            raise ValueError(f"at_hit must be >= 1, got {at_hit}")
        self._armed[point] = (at_hit, action)

    def arm_random(self, point: str, max_hits: int, action=None) -> int:
        """Arm ``point`` at a seeded-random hit in ``[1, max_hits]``;
        returns the chosen hit for the drill's log."""
        at_hit = int(self.rng.integers(1, max_hits + 1))
        self.arm(point, action, at_hit=at_hit)
        return at_hit

    def reached(self, point: str) -> bool:
        """The driver passes a named point; fires the armed fault when
        the schedule says so.  Returns whether a fault fired."""
        hit = self._hits.get(point, 0) + 1
        self._hits[point] = hit
        armed = self._armed.get(point)
        if armed is None or hit != armed[0]:
            return False
        del self._armed[point]
        self.fired.append((point, hit))
        action = armed[1]
        if action is None:
            raise CrashPoint(point)
        action()
        return True

    @staticmethod
    def sigkill(pid):
        """An ``arm`` action: SIGKILL ``pid`` (a pid, or a callable
        resolving one when the point fires) — the no-cleanup death."""
        def action() -> None:
            os.kill(pid() if callable(pid) else pid, signal.SIGKILL)
        return action

    # -- file surgery --
    def torn_write(self, path, record: bytes, cut: int | None = None) -> int:
        """Append ``record`` minus its last ``cut`` bytes (seeded when
        not pinned): a crash mid-append.  Returns the cut size."""
        path = Path(path)
        if cut is None:
            cut = int(self.rng.integers(1, max(2, len(record))))
        path.write_bytes(path.read_bytes() + record[: len(record) - cut])
        return cut

    def short_read(self, path, keep: int | None = None) -> int:
        """Truncate ``path`` to ``keep`` bytes (seeded when not
        pinned): the next reader sees a short read.  Returns ``keep``."""
        path = Path(path)
        data = path.read_bytes()
        if keep is None:
            keep = int(self.rng.integers(0, max(1, len(data))))
        path.write_bytes(data[:keep])
        return keep

    # -- wire corruption --
    def flip_bit(self, data: bytes, bit: int | None = None) -> bytes:
        """Flip one bit of ``data`` (seeded when not pinned)."""
        arr = bytearray(data)
        if bit is None:
            bit = int(self.rng.integers(0, 8 * len(arr)))
        arr[bit // 8] ^= 1 << (bit % 8)
        return bytes(arr)


@pytest.fixture()
def fault_plan():
    """A :class:`FaultPlan` factory: ``fault_plan(seed)`` builds one
    deterministic fault schedule; call it once per drill/example so
    shrinking and replay stay exact."""
    return FaultPlan


@pytest.fixture()
def corrupt_shard(storage_backend):
    """Damage one shard directory's base state file beyond recovery.

    Returns a callable ``corrupt(shard_dir, epoch=0)`` that makes the
    parametrized backend's next open raise ``StorageCorruptError`` —
    the journal by tearing the atomically-installed snapshot, SQLite by
    scribbling over the database header (and dropping the WAL sidecars
    that could otherwise heal it).
    """
    def corrupt(shard_dir, epoch: int = 0) -> None:
        if storage_backend == "journal":
            from repro.cluster.journal import (
                JournalBackend,
                snapshot_filename,
            )
            from repro.service.store import SetStore

            snapshot = shard_dir / snapshot_filename(epoch)
            if not snapshot.exists():
                # fold the journal into a snapshot first so there is an
                # atomically-installed file to tear
                backend = JournalBackend(shard_dir, epoch=epoch)
                store = SetStore()
                backend.recover(store)
                backend.compact(store.items())
                backend.close()
            snapshot.write_bytes(snapshot.read_bytes()[:-3] or b"\xff" * 64)
        else:
            from repro.cluster.sqlite import db_filename

            db = shard_dir / db_filename(epoch)
            db.write_bytes(b"\xff" * 512)
            for suffix in ("-wal", "-shm"):
                sidecar = db.with_name(db.name + suffix)
                sidecar.unlink(missing_ok=True)

    return corrupt
