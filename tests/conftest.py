"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.gf import CarrylessField, TableField, TowerField32


@pytest.fixture(scope="session")
def gf8() -> TableField:
    return TableField(8)


@pytest.fixture(scope="session")
def gf7() -> TableField:
    """The paper's workhorse field (n = 127)."""
    return TableField(7)


@pytest.fixture(scope="session")
def gf32() -> TowerField32:
    return TowerField32()


@pytest.fixture(scope="session")
def gf32_ref() -> CarrylessField:
    return CarrylessField(32)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)
