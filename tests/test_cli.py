"""The command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import load_signatures, main


@pytest.fixture()
def sig_files(tmp_path):
    a = tmp_path / "a.txt"
    b = tmp_path / "b.txt"
    a.write_text("1\n2\n0xFF  # hex comment\n\n42\n")
    b.write_text("2\n0xff\n99\n")
    return a, b


class TestLoadSignatures:
    def test_parses_decimal_hex_comments(self, sig_files):
        a, _ = sig_files
        assert load_signatures(a) == {1, 2, 255, 42}

    def test_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("not-a-number\n")
        with pytest.raises(SystemExit):
            load_signatures(bad)

    def test_rejects_out_of_universe(self, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("0\n")
        with pytest.raises(SystemExit):
            load_signatures(bad)


class TestMain:
    def test_reconciles_files(self, sig_files, capsys):
        a, b = sig_files
        code = main([str(a), str(b), "--seed", "3", "--rounds", "0"])
        captured = capsys.readouterr()
        assert code == 0
        assert [int(line) for line in captured.out.split()] == [1, 42, 99]
        assert "success=True" in captured.err

    def test_quiet_mode(self, sig_files, capsys):
        a, b = sig_files
        main([str(a), str(b), "--quiet", "--rounds", "0"])
        assert capsys.readouterr().err == ""

    def test_selftest(self, capsys):
        code = main(["--selftest", "--rounds", "0"])
        captured = capsys.readouterr()
        assert code == 0
        assert len(captured.out.split()) == 100

    @pytest.mark.parametrize("scheme", ["ddigest", "graphene", "pinsketch"])
    def test_other_schemes(self, scheme, capsys):
        code = main(["--selftest", "--scheme", scheme, "--seed", "5"])
        captured = capsys.readouterr()
        assert code == 0
        assert len(captured.out.split()) == 100

    def test_missing_files_is_an_error(self, capsys):
        assert main([]) == 2
