"""The command-line interface."""

from __future__ import annotations

import asyncio
import json
import threading

import pytest

from repro.cli import load_signatures, main


@pytest.fixture()
def sig_files(tmp_path):
    a = tmp_path / "a.txt"
    b = tmp_path / "b.txt"
    a.write_text("1\n2\n0xFF  # hex comment\n\n42\n")
    b.write_text("2\n0xff\n99\n")
    return a, b


class TestLoadSignatures:
    def test_parses_decimal_hex_comments(self, sig_files):
        a, _ = sig_files
        assert load_signatures(a) == {1, 2, 255, 42}

    def test_rejects_garbage(self, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("not-a-number\n")
        with pytest.raises(SystemExit):
            load_signatures(bad)

    def test_rejects_out_of_universe(self, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("0\n")
        with pytest.raises(SystemExit):
            load_signatures(bad)

    def test_rejects_wider_than_32_bits_with_line_number(self, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text(f"7\n{1 << 32}\n")
        with pytest.raises(SystemExit, match=r"bad\.txt:2: .*32-bit"):
            load_signatures(bad)

    def test_rejects_duplicates_with_both_line_numbers(self, tmp_path):
        bad = tmp_path / "bad.txt"
        bad.write_text("7\n9\n0x7  # same value, hex spelling\n")
        with pytest.raises(
            SystemExit, match=r"bad\.txt:3: duplicate .*line 1"
        ):
            load_signatures(bad)


class TestMain:
    def test_reconciles_files(self, sig_files, capsys):
        a, b = sig_files
        code = main([str(a), str(b), "--seed", "3", "--rounds", "0"])
        captured = capsys.readouterr()
        assert code == 0
        assert [int(line) for line in captured.out.split()] == [1, 42, 99]
        assert "success=True" in captured.err

    def test_quiet_mode(self, sig_files, capsys):
        a, b = sig_files
        main([str(a), str(b), "--quiet", "--rounds", "0"])
        assert capsys.readouterr().err == ""

    def test_selftest(self, capsys):
        code = main(["--selftest", "--rounds", "0"])
        captured = capsys.readouterr()
        assert code == 0
        assert len(captured.out.split()) == 100

    @pytest.mark.parametrize("scheme", ["ddigest", "graphene", "pinsketch"])
    def test_other_schemes(self, scheme, capsys):
        code = main(["--selftest", "--scheme", scheme, "--seed", "5"])
        captured = capsys.readouterr()
        assert code == 0
        assert len(captured.out.split()) == 100

    def test_missing_files_is_an_error(self, capsys):
        assert main([]) == 2

    def test_json_output(self, sig_files, capsys):
        a, b = sig_files
        code = main([str(a), str(b), "--json", "--rounds", "0"])
        out = json.loads(capsys.readouterr().out)
        assert code == 0
        assert out["success"] is True
        assert out["difference"] == [1, 42, 99]
        assert out["total_bytes"] > 0
        assert out["bytes_by_label"]["estimator"] > 0


class TestServeAndSync:
    """`repro sync` against an in-process server (real sockets)."""

    @pytest.fixture()
    def server(self):
        from repro.service import ReconciliationServer, SetStore

        store = SetStore()
        store.create("inv", {2, 255, 99, 1000})
        srv = ReconciliationServer(store)
        loop = asyncio.new_event_loop()

        async def _run():
            await srv.start()
            started.set()

        started = threading.Event()
        thread = threading.Thread(
            target=lambda: (loop.run_until_complete(_run()),
                            loop.run_forever()),
            daemon=True,
        )
        thread.start()
        assert started.wait(timeout=10)
        yield srv, store
        loop.call_soon_threadsafe(loop.stop)
        thread.join(timeout=10)

    def test_sync_subcommand(self, server, sig_files, capsys):
        srv, store = server
        a, _ = sig_files  # {1, 2, 255, 42}
        code = main([
            "sync", str(a), "--set", "inv", "--port", str(srv.port),
            "--json",
        ])
        out = json.loads(capsys.readouterr().out)
        assert code == 0
        assert out["success"] is True
        assert sorted(out["difference"]) == [1, 42, 99, 1000]
        assert out["framing_bytes"] > 0
        assert store.get("inv") == {1, 2, 42, 99, 255, 1000}

    def test_sync_write_updates_file_to_union(self, server, sig_files):
        srv, _ = server
        a, _ = sig_files
        code = main([
            "sync", str(a), "--set", "inv", "--port", str(srv.port),
            "--write", "--quiet",
        ])
        assert code == 0
        assert load_signatures(a) == {1, 2, 42, 99, 255, 1000}

    def test_sync_connection_refused_is_clean_error(self, sig_files, capsys):
        a, _ = sig_files
        code = main(["sync", str(a), "--port", "1", "--set", "inv"])
        assert code == 2
        assert "cannot sync" in capsys.readouterr().err


class TestServeValidation:
    def test_negative_caps_are_usage_errors(self, capsys):
        assert main(["serve", "--max-sessions", "-1"]) == 2
        assert "max-sessions" in capsys.readouterr().err
        assert main(["serve", "--max-decode-queue", "-2"]) == 2

    def test_fsync_without_data_dir_is_a_usage_error(self, capsys):
        assert main(["serve", "--fsync"]) == 2
        assert "--data-dir" in capsys.readouterr().err
