"""Named set store: snapshot isolation and apply-diff merging."""

from __future__ import annotations

import pytest

from repro.service.store import SetStore, UnknownSetError


@pytest.fixture()
def store() -> SetStore:
    s = SetStore()
    s.create("inv", {1, 2, 3})
    return s


class TestRegistry:
    def test_create_get_names(self, store):
        assert store.names() == ["inv"]
        assert "inv" in store and "other" not in store
        assert store.get("inv") == {1, 2, 3}
        assert store.size("inv") == 3

    def test_get_returns_a_copy(self, store):
        store.get("inv").add(99)
        assert store.get("inv") == {1, 2, 3}

    def test_unknown_set_raises(self, store):
        with pytest.raises(UnknownSetError):
            store.get("nope")
        with pytest.raises(UnknownSetError):
            store.snapshot("nope", create_missing=False)

    def test_create_missing_on_snapshot(self, store):
        snap = store.snapshot("fresh", create_missing=True)
        assert len(snap) == 0
        assert "fresh" in store


class TestSnapshotSemantics:
    def test_snapshot_is_frozen_against_later_mutation(self, store):
        snap = store.snapshot("inv")
        store.apply_diff("inv", add={10})
        assert snap.values == frozenset({1, 2, 3})
        assert store.get("inv") == {1, 2, 3, 10}

    def test_version_tracks_mutations(self, store):
        v0 = store.snapshot("inv").version
        store.apply_diff("inv", add={10})
        assert store.version("inv") == v0 + 1
        # a no-op apply bumps reconciles but not the version
        store.apply_diff("inv", add={10})
        assert store.version("inv") == v0 + 1
        assert store.stats()["inv"]["reconciles"] == 2


class TestApplyDiff:
    def test_concurrent_sessions_merge_to_union(self, store):
        # two sessions snapshot the same base, then both apply
        snap_1 = store.snapshot("inv")
        snap_2 = store.snapshot("inv")
        assert snap_1.values == snap_2.values
        assert store.apply_diff("inv", add={100, 101}) == 2
        assert store.apply_diff("inv", add={101, 102}) == 1  # 101 already in
        assert store.get("inv") == {1, 2, 3, 100, 101, 102}

    def test_remove(self, store):
        assert store.apply_diff("inv", remove={2, 99}) == 1
        assert store.get("inv") == {1, 3}

    def test_stats_shape(self, store):
        store.apply_diff("inv", add={9})
        stats = store.stats()
        assert stats == {"inv": {"size": 4, "version": 1, "reconciles": 1}}
