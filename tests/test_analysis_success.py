"""Success-probability models, optimizer and piecewise analysis (§5, App. F-H)."""

from __future__ import annotations

import pytest

from repro.analysis.optimizer import (
    OptimalParams,
    default_t_candidates,
    groups_for,
    lower_bound_grid,
    optimize_params,
    sweep_round_targets,
)
from repro.analysis.piecewise import (
    expected_cumulative_reconciled,
    expected_round_proportions,
)
from repro.analysis.success import (
    group_success_probability,
    overall_lower_bound,
    prob_reconcile_within,
)
from repro.errors import ParameterError


class TestProbReconcileWithin:
    def test_zero_differences_always_succeed(self):
        assert prob_reconcile_within(0, 0, 127, 13) == 1.0
        assert prob_reconcile_within(0, 3, 127, 13, "none") == 1.0

    def test_zero_rounds_fail_nonzero(self):
        assert prob_reconcile_within(3, 0, 127, 13) == 0.0

    def test_none_model_truncates_over_capacity(self):
        assert prob_reconcile_within(14, 3, 127, 13, "none") == 0.0

    def test_split_model_recovers_over_capacity(self):
        p = prob_reconcile_within(14, 3, 127, 13, "three-way")
        assert 0.9 < p < 1.0

    def test_split_needs_at_least_two_rounds(self):
        assert prob_reconcile_within(14, 1, 127, 13, "three-way") == 0.0

    def test_models_agree_in_capacity(self):
        for x in range(1, 14):
            assert prob_reconcile_within(x, 2, 127, 13, "none") == pytest.approx(
                prob_reconcile_within(x, 2, 127, 13, "three-way")
            )

    def test_monotone_in_rounds(self):
        ps = [prob_reconcile_within(10, r, 127, 13) for r in range(1, 5)]
        assert ps == sorted(ps)

    def test_unknown_model_rejected(self):
        with pytest.raises(ParameterError):
            prob_reconcile_within(3, 2, 127, 13, "bogus")

    def test_negative_inputs_rejected(self):
        with pytest.raises(ParameterError):
            prob_reconcile_within(-1, 2, 127, 13)


class TestBound:
    def test_paper_tail_argument(self):
        """The §3.2 number: P[X > 13] ≈ 6.7e-4 for X ~ Binomial(1000, 1/200).
        This is what caps the truncation model's bound (see EXPERIMENTS.md)."""
        from scipy import stats

        tail = float(stats.binom.sf(13, 1000, 1 / 200))
        assert tail == pytest.approx(6.7e-4, rel=0.15)
        bound_none = overall_lower_bound(127, 13, 1000, 200, 3, "none")
        # alpha <= 1 - tail -> bound <= 1 - 2(1 - (1-tail)^200)
        cap = 1 - 2 * (1 - (1 - tail) ** 200)
        assert bound_none <= cap + 1e-6

    def test_split_model_is_more_optimistic(self):
        for n, t in ((127, 13), (255, 10), (63, 11)):
            assert overall_lower_bound(n, t, 1000, 200, 3, "three-way") >= (
                overall_lower_bound(n, t, 1000, 200, 3, "none")
            )

    def test_bound_monotone_in_n_and_t(self):
        grid = lower_bound_grid(1000, delta=5, r=3)
        for t in default_t_candidates(5):
            row = [grid[(n, t)] for n in (63, 127, 255, 511, 1023, 2047)]
            assert all(b >= a - 1e-9 for a, b in zip(row, row[1:]))
        for n in (63, 127, 255):
            col = [grid[(n, t)] for t in default_t_candidates(5)]
            assert all(b >= a - 1e-9 for a, b in zip(col, col[1:]))

    def test_alpha_close_to_one_for_good_params(self):
        alpha = group_success_probability(127, 13, 1000, 200, 3)
        assert alpha > 0.999

    def test_paper_feasibility_structure(self):
        """Table 1's qualitative structure: (63, t) never reaches 99%,
        (127, 13) and (255, 11) do."""
        assert overall_lower_bound(63, 17, 1000, 200, 3) < 0.99
        assert overall_lower_bound(127, 13, 1000, 200, 3) >= 0.99
        assert overall_lower_bound(255, 11, 1000, 200, 3) >= 0.99


class TestOptimizer:
    def test_groups_for(self):
        assert groups_for(1000, 5) == 200
        assert groups_for(3, 5) == 1
        assert groups_for(12, 5) == 2

    def test_default_t_range_matches_paper(self):
        """§3.1/§5.1: t in [1.5*delta, 3.5*delta] = 8..17 for delta=5."""
        assert default_t_candidates(5) == tuple(range(8, 18))

    def test_optimum_is_feasible_and_minimal(self):
        best = optimize_params(1000, delta=5, r=3, p0=0.99)
        assert best.bound >= 0.99
        grid = lower_bound_grid(1000, delta=5, r=3)
        for (n, t), bound in grid.items():
            if bound >= 0.99:
                m = (n + 1).bit_length() - 1
                assert best.objective_bits <= (t + 5) * m

    def test_none_model_pays_capacity_premium(self):
        """Under the literal truncation model the whole Binomial tail
        P[X > t] counts as failure, so feasibility at r=3 requires pushing
        t to the top of the grid (t = 17, tail ~5e-6) — a premium over the
        split-aware optimum (see EXPERIMENTS.md)."""
        literal = optimize_params(1000, delta=5, r=3, p0=0.99, split_model="none")
        split = optimize_params(1000, delta=5, r=3, p0=0.99, split_model="three-way")
        assert literal.t == 17
        assert literal.objective_bits > split.objective_bits

    def test_infeasible_raises(self):
        with pytest.raises(ParameterError):
            optimize_params(10**6, delta=5, r=1, p0=0.9999)

    def test_formula_one_accounting(self):
        best = optimize_params(1000)
        per_group = best.first_round_bits_per_group(32)
        assert per_group == best.objective_bits + 5 * 32 + 32
        assert best.total_first_round_bits(32) == best.g * per_group

    def test_sweep_round_targets_shape(self):
        """§5.2's qualitative claim: overhead drops sharply from r=1 to
        r=3, then only slightly to r=4 (r=3 is the sweet spot)."""
        sweep = sweep_round_targets(1000, delta=5, p0=0.99)
        bits = {r: p.first_round_bits_per_group(32) for r, p in sweep.items()}
        assert bits[1] > bits[2] > bits[3] >= bits[4]
        drop_12 = bits[1] - bits[2]
        drop_34 = bits[3] - bits[4]
        assert drop_12 > 3 * drop_34

    def test_sweep_r1_needs_giant_bitmap(self):
        """One round leaves no retry: n must be Omega(d^2)-ish per group."""
        sweep = sweep_round_targets(1000, delta=5, p0=0.99, r_values=(1,))
        assert sweep[1].n >= 2**15 - 1

    def test_immutable_result(self):
        best = optimize_params(100)
        assert isinstance(best, OptimalParams)
        with pytest.raises(AttributeError):
            best.n = 1  # frozen dataclass


class TestPiecewise:
    def test_paper_proportions_instance(self):
        """§5.3: with d=1000, g=200, (n, t) = (127, 13), the expected
        per-round reconciled proportions are 0.962, 0.0380, 3.61e-4,
        2.86e-6."""
        props = expected_round_proportions(1000, 200, 127, 13, rounds=4)
        assert props[0] == pytest.approx(0.962, abs=0.01)
        assert props[1] == pytest.approx(0.0380, rel=0.05)
        assert props[2] == pytest.approx(3.61e-4, rel=0.05)
        assert props[3] == pytest.approx(2.86e-6, rel=0.1)

    def test_proportions_sum_to_one_minus_tail(self):
        """The sum falls short of 1 only by the truncated Binomial tail
        mass E[X; X > t]/delta ~ 2e-3 (Appendix D's pessimistic convention)."""
        props = expected_round_proportions(1000, 200, 127, 13, rounds=8)
        assert sum(props) == pytest.approx(1.0, abs=5e-3)
        assert sum(props) < 1.0

    def test_first_round_dominates(self):
        """The >95% first-round claim that justifies Formula (1)."""
        props = expected_round_proportions(1000, 200, 127, 13, rounds=4)
        assert props[0] > 0.95

    def test_cumulative_conditional(self):
        # E[reconciled within k | x] increases with k and is bounded by x
        vals = [
            expected_cumulative_reconciled(10, k, 127, 13) for k in range(1, 5)
        ]
        assert vals == sorted(vals)
        assert vals[-1] <= 10.0
        assert vals[-1] == pytest.approx(10.0, abs=1e-3)

    def test_zero_differences(self):
        assert expected_cumulative_reconciled(0, 3, 127, 13) == 0.0
