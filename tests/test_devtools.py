"""Tests for ``repro.devtools`` — the project-specific static analyzers.

Each checker gets positive and negative fixture snippets; the framework
gets pragma-suppression, baseline, exit-code, and JSON-shape coverage;
and a meta-test runs the real suite over ``src/repro`` so the tree the
tests ship with is itself clean (modulo the committed baseline).
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.devtools import check as check_mod
from repro.devtools.baseline import Baseline, BaselineError
from repro.devtools.checkers import all_checkers, checker_ids
from repro.devtools.checkers.async_blocking import BlockingCallInAsync
from repro.devtools.checkers.clocks import MonotonicClock
from repro.devtools.checkers.durability import DurableBeforeAck
from repro.devtools.checkers.frames import WireFrameExhaustiveness
from repro.devtools.checkers.rng import UnseededRng
from repro.devtools.checkers.schemas import SchemaPinDrift
from repro.devtools.checkers.tasks import TaskLeak
from repro.devtools.source import FRAMEWORK_CHECKERS, Project, find_root

REPO = Path(__file__).resolve().parents[1]

KNOWN_IDS = frozenset(checker_ids()) | frozenset(FRAMEWORK_CHECKERS)


def make_project(tmp_path: Path, files: dict[str, str]) -> Project:
    """A throwaway project rooted at ``tmp_path``; every ``.py`` in
    ``files`` is part of the scanned set, other files (tests, docs)
    are written for the cross-file checkers to discover."""
    tmp_path.mkdir(parents=True, exist_ok=True)
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'fix'\n")
    scanned = []
    for rel, code in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(code).lstrip("\n"))
        if path.suffix == ".py" and not rel.startswith("tests/"):
            scanned.append(path)
    return Project(tmp_path, sorted(scanned), KNOWN_IDS)


def run_one(checker, tmp_path: Path, files: dict[str, str]):
    return check_mod.run_checkers(make_project(tmp_path, files), [checker])


# ---------------------------------------------------------------- checkers


class TestBlockingCallInAsync:
    def test_flags_sleep_and_open(self, tmp_path):
        findings = run_one(BlockingCallInAsync(), tmp_path, {"src/m.py": """
            import time
            async def handler():
                time.sleep(1)
                open("x").read()
        """})
        assert [f.line for f in findings] == [3, 4]
        assert all(f.checker == "blocking-call-in-async" for f in findings)

    def test_sync_def_and_nested_scopes(self, tmp_path):
        findings = run_one(BlockingCallInAsync(), tmp_path, {"src/m.py": """
            import time
            def plain():
                time.sleep(1)        # sync context: fine
            async def handler():
                def helper():
                    time.sleep(1)    # nested sync def: fine
                fn = lambda: open("x")
                return helper, fn
        """})
        assert findings == []

    def test_sqlite_methods_gated_on_import(self, tmp_path):
        flagged = run_one(BlockingCallInAsync(), tmp_path, {"src/a.py": """
            import sqlite3
            async def handler(conn):
                conn.execute("select 1")
        """})
        assert len(flagged) == 1 and "sqlite3" in flagged[0].message
        clean = run_one(BlockingCallInAsync(), tmp_path / "b", {"src/a.py": """
            async def handler(conn):
                conn.execute("select 1")   # no sqlite3 import: not sqlite
        """})
        assert clean == []

    def test_durable_methods_only_in_cluster(self, tmp_path):
        code = """
            async def handler(store):
                store.apply_diff("s", add=[], remove=[])
        """
        flagged = run_one(
            BlockingCallInAsync(), tmp_path,
            {"src/repro/cluster/shard.py": code},
        )
        assert len(flagged) == 1 and "commit to disk" in flagged[0].message
        clean = run_one(
            BlockingCallInAsync(), tmp_path / "b",
            {"src/repro/service/shard.py": code},
        )
        assert clean == []


class TestMonotonicClock:
    def test_direct_subtraction(self, tmp_path):
        findings = run_one(MonotonicClock(), tmp_path, {"src/m.py": """
            import time
            def f(start):
                return time.time() - start
        """})
        assert len(findings) == 1 and "subtraction" in findings[0].message

    def test_stamp_subtracted_later_in_scope(self, tmp_path):
        findings = run_one(MonotonicClock(), tmp_path, {"src/m.py": """
            import time
            def f():
                t0 = time.time()
                work()
                return time.time() - t0
        """})
        # the assignment and the direct use are both reported
        assert {f.line for f in findings} == {3, 5}

    def test_duration_named_binding(self, tmp_path):
        findings = run_one(MonotonicClock(), tmp_path, {"src/m.py": """
            import time
            def f():
                elapsed = time.time()
                return elapsed
        """})
        assert len(findings) == 1
        assert "duration-named" in findings[0].message

    def test_cross_method_self_attribute(self, tmp_path):
        findings = run_one(MonotonicClock(), tmp_path, {"src/m.py": """
            import time
            class Session:
                def start(self):
                    self.t0 = time.time()
                def stop(self):
                    return time.monotonic() - self.t0
        """})
        assert len(findings) == 1 and "subtracted elsewhere" in findings[0].message

    def test_wall_timestamps_are_fine(self, tmp_path):
        findings = run_one(MonotonicClock(), tmp_path, {"src/m.py": """
            import time
            def f():
                created_unix = time.time()
                t0 = time.perf_counter()
                elapsed = time.perf_counter() - t0
                return created_unix, elapsed
        """})
        assert findings == []


class TestDurableBeforeAck:
    def test_ack_before_durable_write(self, tmp_path):
        findings = run_one(
            DurableBeforeAck(), tmp_path,
            {"src/repro/cluster/h.py": """
                async def handle(self, req):
                    await self._reply_ok(req)
                    self.store.record_diff(req.set, req.diff)
            """},
        )
        assert len(findings) == 1
        assert "before its durable write" in findings[0].message

    def test_durable_then_ack_is_fine(self, tmp_path):
        findings = run_one(
            DurableBeforeAck(), tmp_path,
            {"src/repro/cluster/h.py": """
                async def handle(self, req):
                    self.store.record_diff(req.set, req.diff)
                    await self._reply_ok(req)
            """},
        )
        assert findings == []

    def test_scoped_to_cluster_modules(self, tmp_path):
        findings = run_one(
            DurableBeforeAck(), tmp_path,
            {"src/repro/service/h.py": """
                async def handle(self, req):
                    await self._reply_ok(req)
                    self.store.record_diff(req.set, req.diff)
            """},
        )
        assert findings == []

    def test_replication_cursor_before_durable_apply(self, tmp_path):
        """The follower's cursor is the ack an election trusts: writing
        it before the durable apply overstates the replica."""
        findings = run_one(
            DurableBeforeAck(), tmp_path,
            {"src/repro/cluster/repl.py": """
                async def _apply_one(self, op, args, seq):
                    await self._write_cursor(seq)
                    await self.applier.apply(op, args)
            """},
        )
        assert len(findings) == 1
        assert "before its durable write" in findings[0].message

    def test_quorum_reply_before_wait_durable(self, tmp_path):
        """Quorum mode: resolving the mutation future before the quorum
        count acks data a lost-primary election may not hold."""
        findings = run_one(
            DurableBeforeAck(), tmp_path,
            {"src/repro/cluster/w.py": """
                async def _worker(self, shard):
                    future.set_result(result)
                    await shard.repl.wait_durable(seq)
            """},
        )
        assert len(findings) == 1

    def test_quorum_count_then_reply_is_fine(self, tmp_path):
        findings = run_one(
            DurableBeforeAck(), tmp_path,
            {"src/repro/cluster/w.py": """
                async def _worker(self, shard):
                    apply_mutation(store, storage, op, args, trace)
                    await shard.repl.wait_durable(seq)
                    future.set_result(result)

                async def _bootstrap(self):
                    await self.applier.restart(entries)
                    await self._write_cursor(seq)
            """},
        )
        assert findings == []


FRAMES_FIXTURE = {
    "src/repro/service/wire.py": """
        import enum
        class FrameType(enum.IntEnum):
            HELLO = 1
            DATA = 2
            ORPHAN = 3
        FRAME_LABELS = {
            FrameType.HELLO: "hello",
            FrameType.DATA: "data",
        }
    """,
    "src/repro/service/server.py": """
        from repro.service.wire import FrameType
        def dispatch(frame):
            if frame.type == FrameType.HELLO:
                return "hi"
            if frame.type == FrameType.BOGUS:
                return "?"
    """,
    "src/repro/service/client.py": """
        from repro.service.wire import FrameType
        def send(conn):
            conn.put(FrameType.DATA)
    """,
}


class TestWireFrames:
    def test_orphan_unknown_and_table_gap(self, tmp_path):
        findings = run_one(WireFrameExhaustiveness(), tmp_path,
                           dict(FRAMES_FIXTURE))
        messages = sorted(f.message for f in findings)
        assert any("ORPHAN is never dispatched" in m for m in messages)
        assert any("BOGUS is not a defined frame type" in m for m in messages)
        assert any("does not cover FrameType.ORPHAN" in m for m in messages)
        assert len(findings) == 3

    def test_exhaustive_dispatch_is_clean(self, tmp_path):
        fixture = dict(FRAMES_FIXTURE)
        fixture["src/repro/service/wire.py"] = """
            import enum
            class FrameType(enum.IntEnum):
                HELLO = 1
                DATA = 2
            FRAME_LABELS = {
                FrameType.HELLO: "hello",
                FrameType.DATA: "data",
            }
        """
        fixture["src/repro/service/server.py"] = """
            from repro.service.wire import FrameType
            def dispatch(frame):
                return frame.type == FrameType.HELLO
        """
        findings = run_one(WireFrameExhaustiveness(), tmp_path, fixture)
        assert findings == []

    def test_real_wire_is_exhaustive(self):
        project = Project(REPO, [REPO / "src"], KNOWN_IDS)
        findings = list(WireFrameExhaustiveness().check_project(project))
        assert findings == [], [f.format() for f in findings]


class TestSchemaPins:
    def test_drifted_and_missing_pins(self, tmp_path):
        findings = run_one(SchemaPinDrift(), tmp_path, {
            "src/repro/obs/metrics.py": "WINDOW_SCHEMA = 2\n",
            "tests/test_pin.py": """
                from repro.obs.metrics import WINDOW_SCHEMA
                def test_pin(doc):
                    assert doc["schema"] == WINDOW_SCHEMA == 1
            """,
            "docs/x.md": "`WINDOW_SCHEMA` (currently 1) versions it.\n",
        })
        messages = sorted(f.message for f in findings)
        assert any("pins WINDOW_SCHEMA == 1 but the constant is 2" in m
                   for m in messages)
        assert any("doc states WINDOW_SCHEMA as 1 but the constant is 2" in m
                   for m in messages)

    def test_unpinned_constant(self, tmp_path):
        findings = run_one(SchemaPinDrift(), tmp_path, {
            "src/repro/obs/metrics.py": "WINDOW_SCHEMA = 1\n",
            "tests/test_pin.py": """
                def test_nothing():
                    assert True
            """,
            "docs/other.md": "nothing about schemas here\n",
        })
        messages = sorted(f.message for f in findings)
        assert any("no test pins a literal value" in m for m in messages)
        assert any("not mentioned in README.md or docs/" in m
                   for m in messages)

    def test_matching_pins_are_clean(self, tmp_path):
        findings = run_one(SchemaPinDrift(), tmp_path, {
            "src/repro/obs/metrics.py": "WINDOW_SCHEMA = 1\n",
            "tests/test_pin.py": """
                from repro.obs.metrics import WINDOW_SCHEMA
                def test_pin(doc):
                    assert doc["schema"] == WINDOW_SCHEMA == 1
            """,
            "docs/x.md": "`WINDOW_SCHEMA` (currently 1) versions it.\n",
        })
        assert findings == []


class TestUnseededRng:
    def test_global_generator_calls(self, tmp_path):
        findings = run_one(UnseededRng(), tmp_path, {"src/m.py": """
            import random
            import numpy as np
            def f():
                a = random.randint(0, 9)
                b = np.random.rand()
                np.random.seed(42)
                return a, b
        """})
        assert len(findings) == 3

    def test_seeded_constructions_are_fine(self, tmp_path):
        findings = run_one(UnseededRng(), tmp_path, {"src/m.py": """
            import random
            import numpy as np
            def f(seed):
                rng = random.Random(seed)
                gen = np.random.default_rng(seed)
                return rng, gen
        """})
        assert findings == []

    def test_unseeded_random_instance_and_from_import(self, tmp_path):
        findings = run_one(UnseededRng(), tmp_path, {"src/m.py": """
            import random
            from random import randint
            def f():
                return random.Random(), randint(0, 1)
        """})
        messages = sorted(f.message for f in findings)
        assert any("without a seed" in m for m in messages)
        assert any("from random import randint" in m for m in messages)

    def test_module_used_as_rng_object(self, tmp_path):
        findings = run_one(UnseededRng(), tmp_path, {"src/m.py": """
            import random
            def f(rng=None):
                rng = rng if rng is not None else random
                return rng
        """})
        assert len(findings) == 1
        assert "used as an RNG object" in findings[0].message

    def test_tests_and_seeds_module_exempt(self, tmp_path):
        code = "import random\ndef helper():\n    return random.random()\n"
        for index, rel in enumerate((
            "src/repro/utils/seeds.py", "tests/helper.py",
            "src/test_thing.py",
        )):
            root = tmp_path / str(index)
            path = root / rel
            path.parent.mkdir(parents=True)
            (root / "pyproject.toml").write_text("[project]\n")
            path.write_text(code)
            project = Project(root, [path], KNOWN_IDS)
            findings = check_mod.run_checkers(project, [UnseededRng()])
            assert findings == [], rel


class TestTaskLeak:
    def test_discarded_task(self, tmp_path):
        findings = run_one(TaskLeak(), tmp_path, {"src/m.py": """
            import asyncio
            async def f(coro):
                asyncio.create_task(coro)
        """})
        assert len(findings) == 1 and "discarded" in findings[0].message

    def test_owned_tasks_are_fine(self, tmp_path):
        findings = run_one(TaskLeak(), tmp_path, {"src/m.py": """
            import asyncio
            async def f(self, coro):
                task = asyncio.create_task(coro)
                self.tasks.add(task)
                task.add_done_callback(self.tasks.discard)
                await asyncio.create_task(coro)
        """})
        assert findings == []


# ------------------------------------------------------------- suppression


class TestPragmas:
    def test_trailing_pragma_suppresses(self, tmp_path):
        findings = run_one(TaskLeak(), tmp_path, {"src/m.py": """
            import asyncio
            async def f(coro):
                asyncio.create_task(coro)  # repro: ignore[task-leak] -- test fixture
        """})
        assert findings == []

    def test_own_line_pragma_covers_next_statement(self, tmp_path):
        findings = run_one(TaskLeak(), tmp_path, {"src/m.py": """
            import asyncio
            async def f(coro):
                # repro: ignore[task-leak] -- fixture: reason may take
                # several comment lines before the statement
                asyncio.create_task(coro)
        """})
        assert findings == []

    def test_pragma_for_other_checker_does_not_suppress(self, tmp_path):
        findings = run_one(TaskLeak(), tmp_path, {"src/m.py": """
            import asyncio
            async def f(coro):
                asyncio.create_task(coro)  # repro: ignore[monotonic-clock] -- wrong id
        """})
        assert [f.checker for f in findings] == ["task-leak"]

    def test_file_level_pragma(self, tmp_path):
        findings = run_one(UnseededRng(), tmp_path, {"src/m.py": """
            # repro: ignore-file[unseeded-rng] -- fixture: demo script
            import random
            def f():
                return random.random()
        """})
        assert findings == []

    def test_unjustified_pragma_is_a_finding(self, tmp_path):
        findings = run_one(TaskLeak(), tmp_path, {"src/m.py": """
            import asyncio
            async def f(coro):
                asyncio.create_task(coro)  # repro: ignore[task-leak]
        """})
        checkers = sorted(f.checker for f in findings)
        # the unjustified pragma does not suppress, and is itself flagged
        assert checkers == ["bad-pragma", "task-leak"]
        bad = [f for f in findings if f.checker == "bad-pragma"][0]
        assert "justification" in bad.message

    def test_unknown_checker_id_is_a_finding(self, tmp_path):
        findings = run_one(TaskLeak(), tmp_path, {"src/m.py": """
            x = 1  # repro: ignore[no-such-checker] -- oops
        """})
        assert [f.checker for f in findings] == ["bad-pragma"]
        assert "unknown checker" in findings[0].message

    def test_pragma_without_ids_is_a_finding(self, tmp_path):
        findings = run_one(TaskLeak(), tmp_path, {"src/m.py": """
            x = 1  # repro: ignore -- blanket suppressions are banned
        """})
        assert [f.checker for f in findings] == ["bad-pragma"]
        assert "explicit checker ids" in findings[0].message


# ------------------------------------------------- fingerprints + baseline


class TestBaseline:
    VIOLATION = {"src/m.py": """
        import asyncio
        async def f(coro):
            asyncio.create_task(coro)
    """}

    def test_fingerprint_survives_line_drift(self, tmp_path):
        first = run_one(TaskLeak(), tmp_path / "a", dict(self.VIOLATION))
        shifted = {"src/m.py": """
            import asyncio
            # an unrelated comment shifts every line below it
            async def f(coro):
                asyncio.create_task(coro)
        """}
        second = run_one(TaskLeak(), tmp_path / "b", shifted)
        assert first[0].line != second[0].line
        assert first[0].fingerprint == second[0].fingerprint

    def test_baseline_apply_and_stale(self, tmp_path):
        findings = run_one(TaskLeak(), tmp_path, dict(self.VIOLATION))
        target = tmp_path / "baseline.json"
        assert Baseline.write(target, findings) == 1
        baseline = Baseline.load(target)
        baseline.apply(findings)
        assert all(f.baselined for f in findings)
        assert baseline.stale(findings) == []
        assert baseline.stale([]) == [findings[0].fingerprint]

    def test_corrupt_baseline_raises(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text("{not json")
        with pytest.raises(BaselineError):
            Baseline.load(target)
        target.write_text(json.dumps({"schema": 99, "findings": []}))
        with pytest.raises(BaselineError):
            Baseline.load(target)


# ------------------------------------------------------ CLI and exit codes


#: One injectable violation per checker class — the acceptance demo that
#: `repro check` exits nonzero on each of them.
INJECTIONS = {
    "blocking-call-in-async": {"src/m.py": """
        import time
        async def f():
            time.sleep(1)
    """},
    "monotonic-clock": {"src/m.py": """
        import time
        def f(t0):
            return time.time() - t0
    """},
    "durable-before-ack": {"src/repro/cluster/h.py": """
        async def handle(self, req):
            await self._reply_ok(req)
            self.store.record_diff(req.set, req.diff)
    """},
    "wire-frames": dict(FRAMES_FIXTURE),
    "schema-pins": {
        "src/repro/obs/metrics.py": "WINDOW_SCHEMA = 2\n",
        "tests/test_pin.py": (
            "from repro.obs.metrics import WINDOW_SCHEMA\n"
            "def test_pin(doc):\n"
            "    assert doc['schema'] == WINDOW_SCHEMA == 1\n"
        ),
    },
    "unseeded-rng": {"src/m.py": """
        import random
        def f():
            return random.random()
    """},
    "task-leak": {"src/m.py": """
        import asyncio
        async def f(coro):
            asyncio.create_task(coro)
    """},
}


class TestCli:
    def main(self, tmp_path, files, *argv):
        make_project(tmp_path, files)
        return check_mod.main(
            [str(tmp_path / "src"), "--root", str(tmp_path), *argv]
        )

    def test_clean_project_exits_zero(self, tmp_path, capsys):
        code = self.main(tmp_path, {"src/m.py": "x = 1\n"})
        assert code == check_mod.EXIT_CLEAN
        assert "0 new" in capsys.readouterr().out

    @pytest.mark.parametrize("checker_id", sorted(INJECTIONS))
    def test_each_injected_violation_fails(self, tmp_path, capsys,
                                           checker_id):
        code = self.main(tmp_path, dict(INJECTIONS[checker_id]))
        assert code == check_mod.EXIT_FINDINGS
        out = capsys.readouterr().out
        assert f" {checker_id}: " in out, out

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        files = dict(INJECTIONS["task-leak"])
        assert self.main(tmp_path, files) == check_mod.EXIT_FINDINGS
        assert self.main(tmp_path, files, "--write-baseline") \
            == check_mod.EXIT_CLEAN
        assert (tmp_path / check_mod.DEFAULT_BASELINE).exists()
        capsys.readouterr()
        assert self.main(tmp_path, files) == check_mod.EXIT_CLEAN
        out = capsys.readouterr().out
        assert "1 baselined" in out

    def test_fixed_finding_reports_stale_baseline(self, tmp_path, capsys):
        files = dict(INJECTIONS["task-leak"])
        self.main(tmp_path, files, "--write-baseline")
        (tmp_path / "src/m.py").write_text(
            "import asyncio\n"
            "async def f(self, coro):\n"
            "    self.t = asyncio.create_task(coro)\n"
        )
        capsys.readouterr()
        assert self.main(tmp_path, files=dict()) == check_mod.EXIT_CLEAN
        out = capsys.readouterr().out
        assert "stale baseline" in out

    def test_new_finding_on_top_of_baseline_fails(self, tmp_path, capsys):
        files = dict(INJECTIONS["task-leak"])
        self.main(tmp_path, files, "--write-baseline")
        extra = tmp_path / "src/extra.py"
        extra.write_text(
            "import random\ndef f():\n    return random.random()\n"
        )
        capsys.readouterr()
        assert self.main(tmp_path, dict()) == check_mod.EXIT_FINDINGS
        out = capsys.readouterr().out
        assert "unseeded-rng" in out and "1 new" in out

    def test_no_baseline_flag_sees_everything(self, tmp_path, capsys):
        files = dict(INJECTIONS["task-leak"])
        self.main(tmp_path, files, "--write-baseline")
        assert self.main(tmp_path, dict(), "--no-baseline") \
            == check_mod.EXIT_FINDINGS

    def test_corrupt_baseline_exits_two(self, tmp_path, capsys):
        files = dict(INJECTIONS["task-leak"])
        make_project(tmp_path, files)
        (tmp_path / check_mod.DEFAULT_BASELINE).write_text("{nope")
        code = check_mod.main(
            [str(tmp_path / "src"), "--root", str(tmp_path)]
        )
        assert code == check_mod.EXIT_ERROR

    def test_missing_path_exits_two(self, tmp_path):
        assert check_mod.main(
            [str(tmp_path / "nowhere"), "--root", str(tmp_path)]
        ) == check_mod.EXIT_ERROR

    def test_unknown_select_exits_two(self, tmp_path):
        code = self.main(tmp_path, {"src/m.py": "x = 1\n"},
                         "--select", "no-such-checker")
        assert code == check_mod.EXIT_ERROR

    def test_select_narrows_checkers(self, tmp_path, capsys):
        files = dict(INJECTIONS["task-leak"])
        code = self.main(tmp_path, files, "--select", "monotonic-clock")
        assert code == check_mod.EXIT_CLEAN

    def test_json_report_shape(self, tmp_path, capsys):
        files = dict(INJECTIONS["task-leak"])
        code = self.main(tmp_path, files, "--json")
        assert code == check_mod.EXIT_FINDINGS
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == check_mod.REPORT_SCHEMA_VERSION
        assert doc["summary"]["new"] == 1
        assert doc["summary"]["by_checker"] == {"task-leak": 1}
        (finding,) = doc["findings"]
        assert finding["checker"] == "task-leak"
        assert finding["path"] == "src/m.py"
        assert finding["line"] > 0 and finding["fingerprint"]
        assert not finding["baselined"]

    def test_output_file(self, tmp_path, capsys):
        files = dict(INJECTIONS["task-leak"])
        target = tmp_path / "findings.json"
        self.main(tmp_path, files, "--output", str(target))
        doc = json.loads(target.read_text())
        assert doc["summary"]["total"] == 1

    def test_list_checkers(self, tmp_path, capsys):
        assert check_mod.main(["--list-checkers"]) == check_mod.EXIT_CLEAN
        out = capsys.readouterr().out
        for checker_id in checker_ids():
            assert checker_id in out
        assert "bad-pragma" in out and "parse-error" in out

    def test_parse_error_is_a_finding(self, tmp_path, capsys):
        code = self.main(tmp_path, {"src/m.py": "def broken(:\n"})
        assert code == check_mod.EXIT_FINDINGS
        assert "parse-error" in capsys.readouterr().out


def test_module_and_subcommand_entry_points(tmp_path):
    """`python -m repro.devtools.check` and `repro check` both run, with
    the documented exit codes, from a subprocess."""
    (tmp_path / "src").mkdir()
    (tmp_path / "pyproject.toml").write_text("[project]\nname = 'fix'\n")
    (tmp_path / "src" / "m.py").write_text(
        "import asyncio\nasync def f(c):\n    asyncio.create_task(c)\n"
    )
    env = {"PYTHONPATH": str(REPO / "src"), "PATH": "/usr/bin:/bin"}
    for entry in (["-m", "repro.devtools.check"], ["-m", "repro", "check"]):
        proc = subprocess.run(
            [sys.executable, *entry, str(tmp_path / "src"),
             "--root", str(tmp_path), "--json"],
            capture_output=True, text=True, timeout=120, env=env,
        )
        assert proc.returncode == check_mod.EXIT_FINDINGS, proc.stderr
        doc = json.loads(proc.stdout)
        assert doc["summary"]["by_checker"] == {"task-leak": 1}


# ------------------------------------------------------------- meta checks


def test_repo_source_tree_is_clean_modulo_baseline(capsys):
    """The real gate over the real tree: src/ plus the example/benchmark
    trees produce no findings beyond the committed baseline."""
    code = check_mod.main([
        str(REPO / "src"), str(REPO / "benchmarks"), str(REPO / "examples"),
        str(REPO / "scripts"), "--root", str(REPO),
    ])
    out = capsys.readouterr().out
    assert code == check_mod.EXIT_CLEAN, out
    assert "0 new" in out


def test_committed_baseline_has_no_stale_entries(capsys):
    check_mod.main([
        str(REPO / "src"), str(REPO / "benchmarks"), str(REPO / "examples"),
        str(REPO / "scripts"), "--root", str(REPO),
    ])
    out = capsys.readouterr().out
    assert "stale baseline" not in out, out


def test_find_root_discovers_pyproject(tmp_path):
    nested = tmp_path / "pkg" / "sub"
    nested.mkdir(parents=True)
    (tmp_path / "pyproject.toml").write_text("[project]\n")
    assert find_root(nested) == tmp_path


def test_all_checkers_have_identity():
    checkers = all_checkers()
    ids = [c.id for c in checkers]
    assert len(ids) == len(set(ids)) and len(ids) >= 7
    for checker in checkers:
        assert checker.id and checker.description and checker.hint


@pytest.mark.skipif(shutil.which("mypy") is None,
                    reason="mypy not installed (CI runs it)")
def test_mypy_typed_core_passes():
    proc = subprocess.run(
        ["mypy"], cwd=REPO, capture_output=True, text=True, timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
