"""Seed derivation: determinism, independence, label sensitivity."""

from __future__ import annotations

from repro.utils.seeds import derive_seed, spawn_rng


def test_derivation_is_deterministic():
    assert derive_seed(42, "x", 1) == derive_seed(42, "x", 1)


def test_distinct_labels_give_distinct_seeds():
    seen = {derive_seed(1, "round", i) for i in range(1000)}
    assert len(seen) == 1000


def test_distinct_parents_give_distinct_seeds():
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_label_path_order_matters():
    assert derive_seed(1, "a", "b") != derive_seed(1, "b", "a")


def test_label_types_are_distinguished():
    # int 1 vs str "1" must not collide (repr-based hashing)
    assert derive_seed(0, 1) != derive_seed(0, "1")


def test_seed_is_64_bit():
    for i in range(50):
        assert 0 <= derive_seed(i, "w") < (1 << 64)


def test_spawn_rng_reproducible():
    a = spawn_rng(7, "x").integers(0, 1 << 30, size=5)
    b = spawn_rng(7, "x").integers(0, 1 << 30, size=5)
    assert (a == b).all()


def test_spawn_rng_independent_streams():
    a = spawn_rng(7, "x").integers(0, 1 << 30, size=5)
    b = spawn_rng(7, "y").integers(0, 1 << 30, size=5)
    assert (a != b).any()
