"""Cross-protocol integration: every scheme, same instances, same truth."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    DifferenceDigestProtocol,
    GrapheneProtocol,
    PinSketchProtocol,
    PinSketchWPProtocol,
)
from repro.core.protocol import PBSProtocol
from repro.estimators.tow import ToWEstimator
from repro.workloads.generator import SetPairGenerator

ALL_PROTOCOLS = {
    "pbs": lambda seed: PBSProtocol(seed=seed),
    "ddigest": lambda seed: DifferenceDigestProtocol(seed=seed),
    "graphene": lambda seed: GrapheneProtocol(seed=seed),
    "pinsketch": lambda seed: PinSketchProtocol(seed=seed),
    "pinsketch_wp": lambda seed: PinSketchWPProtocol(seed=seed),
}


class TestAllProtocolsAgree:
    @pytest.mark.parametrize("name", sorted(ALL_PROTOCOLS))
    def test_same_instance_same_answer(self, name):
        gen = SetPairGenerator(seed=100)
        pair = gen.generate(size_a=4000, d=60)
        proto = ALL_PROTOCOLS[name](seed=7)
        result = proto.run(pair.a, pair.b, true_d=60)
        assert result.success
        assert result.difference == pair.difference

    @pytest.mark.parametrize("name", sorted(ALL_PROTOCOLS))
    def test_with_shared_estimate(self, name):
        gen = SetPairGenerator(seed=101)
        pair = gen.generate(size_a=4000, d=60)
        est = ToWEstimator(n_sketches=128, seed=3, family="fast")
        a = np.fromiter(pair.a, dtype=np.uint64)
        b = np.fromiter(pair.b, dtype=np.uint64)
        d_hat = max(1, round(est.estimate(est.sketch(a), est.sketch(b))))
        proto = ALL_PROTOCOLS[name](seed=8)
        result = proto.run(pair.a, pair.b, estimated_d=d_hat)
        assert result.success
        assert result.difference == pair.difference

    def test_communication_ordering_matches_paper(self):
        """On one shared instance the per-scheme byte totals must order as
        the paper's Fig. 1-3: PinSketch < PBS < PinSketch/WP < D.Digest."""
        gen = SetPairGenerator(seed=102)
        d = 300
        pair = gen.generate(size_a=10_000, d=d)
        bytes_by = {}
        for name in ("pinsketch", "pbs", "pinsketch_wp", "ddigest"):
            result = ALL_PROTOCOLS[name](seed=9).run(pair.a, pair.b, true_d=d)
            assert result.success
            bytes_by[name] = result.total_bytes
        assert (
            bytes_by["pinsketch"]
            < bytes_by["pbs"]
            < bytes_by["pinsketch_wp"]
            < bytes_by["ddigest"]
        )

    def test_pbs_decode_scales_better_than_pinsketch(self):
        """The headline complexity claim, measured: growing d by 8x should
        grow PinSketch's decode time far faster than PBS's."""
        gen = SetPairGenerator(seed=103)
        times = {"pbs": [], "pinsketch": []}
        for d in (50, 400):
            pair = gen.generate(size_a=8000, d=d)
            for name in ("pbs", "pinsketch"):
                result = ALL_PROTOCOLS[name](seed=10).run(
                    pair.a, pair.b, true_d=d
                )
                assert result.success
                times[name].append(result.decode_s)
        pbs_growth = times["pbs"][1] / max(times["pbs"][0], 1e-9)
        ps_growth = times["pinsketch"][1] / max(times["pinsketch"][0], 1e-9)
        assert ps_growth > 2 * pbs_growth


class TestStressRandomized:
    def test_many_random_instances_pbs(self):
        gen = SetPairGenerator(seed=104)
        rng = np.random.default_rng(5)
        for trial in range(15):
            d = int(rng.integers(0, 150))
            size_a = int(rng.integers(max(d, 10), 3000) + d)
            pair = gen.generate(size_a=size_a, d=d)
            result = PBSProtocol(seed=trial, max_rounds=8).run(
                pair.a, pair.b, true_d=max(d, 1)
            )
            assert result.success
            assert result.difference == pair.difference

    def test_two_sided_instances_pbs(self):
        gen = SetPairGenerator(seed=105)
        rng = np.random.default_rng(6)
        for trial in range(10):
            only_a = int(rng.integers(0, 50))
            only_b = int(rng.integers(0, 50))
            pair = gen.generate_two_sided(
                common=1500, only_a=only_a, only_b=only_b
            )
            result = PBSProtocol(seed=trial, max_rounds=8).run(
                pair.a, pair.b, true_d=max(1, only_a + only_b)
            )
            assert result.success
            assert result.difference == pair.difference

    def test_small_universe_8bit_checksums(self):
        """Exercise a non-default log_u end to end."""
        gen = SetPairGenerator(universe_bits=16, seed=106)
        pair = gen.generate(size_a=2000, d=20)
        result = PBSProtocol(seed=11, log_u=16, max_rounds=8).run(
            pair.a, pair.b, true_d=20
        )
        assert result.success
        assert result.difference == pair.difference


class TestWireRobustness:
    def test_pbs_messages_actually_roundtrip_on_the_wire(self):
        """The protocol driver deserializes every message from bytes; a
        deterministic replay must give byte-identical transcripts."""
        gen = SetPairGenerator(seed=107)
        pair = gen.generate(size_a=3000, d=40)
        r1 = PBSProtocol(seed=12).run(pair.a, pair.b, true_d=40)
        r2 = PBSProtocol(seed=12).run(pair.a, pair.b, true_d=40)
        def trace(result):
            return [
                (m.direction, m.round_no, m.label, m.n_bytes)
                for m in result.channel.messages
            ]

        t1 = trace(r1)
        t2 = trace(r2)
        assert t1 == t2
