"""The Markov-chain transition matrix (Appendix E) against first principles."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.balls_bins import prob_ideal
from repro.analysis.markov import chain_power, transition_matrix
from repro.errors import ParameterError


class TestStructure:
    def test_rows_sum_to_one(self):
        for n, t in ((63, 8), (127, 13), (255, 17)):
            matrix = transition_matrix(n, t)
            assert np.allclose(matrix.sum(axis=1), 1.0)

    def test_state_zero_is_absorbing(self):
        matrix = transition_matrix(127, 10)
        assert matrix[0, 0] == 1.0
        assert np.allclose(matrix[0, 1:], 0.0)

    def test_single_bad_ball_impossible(self):
        """A lone ball in a bin is good by definition — column 1 is zero."""
        matrix = transition_matrix(127, 13)
        assert np.allclose(matrix[:, 1], 0.0)

    def test_one_ball_always_reconciles(self):
        assert transition_matrix(127, 13)[1, 0] == 1.0

    def test_cannot_increase_bad_balls(self):
        matrix = transition_matrix(63, 10)
        for i in range(11):
            for j in range(i + 1, 11):
                assert matrix[i, j] == 0.0

    def test_success_column_is_ideal_probability(self):
        """M(x, 0) must equal the closed-form ideal-case probability."""
        for n in (63, 127, 255):
            matrix = transition_matrix(n, 13)
            for x in range(14):
                assert matrix[x, 0] == pytest.approx(prob_ideal(x, n), rel=1e-9)

    def test_two_balls_collision_row(self):
        """From state 2: both balls collide with probability 1/n and stay
        bad (state 2), else both good."""
        n = 127
        matrix = transition_matrix(n, 5)
        assert matrix[2, 2] == pytest.approx(1 / n)
        assert matrix[2, 0] == pytest.approx(1 - 1 / n)

    def test_three_ball_row_exact(self):
        """State 3 decomposes exactly: all distinct, one pair (2 bad),
        or all three together (3 bad)."""
        n = 63
        matrix = transition_matrix(n, 5)
        p_all_same = 1 / n**2
        p_distinct = (1 - 1 / n) * (1 - 2 / n)
        p_pair = 1 - p_all_same - p_distinct
        assert matrix[3, 0] == pytest.approx(p_distinct)
        assert matrix[3, 2] == pytest.approx(p_pair)
        assert matrix[3, 3] == pytest.approx(p_all_same)

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            transition_matrix(0, 5)
        with pytest.raises(ParameterError):
            transition_matrix(63, -1)


class TestChainPower:
    def test_round_zero_is_identity(self):
        assert np.allclose(chain_power(63, 5, 0), np.eye(6))

    def test_success_increases_with_rounds(self):
        p1 = chain_power(127, 13, 1)[13, 0]
        p2 = chain_power(127, 13, 2)[13, 0]
        p3 = chain_power(127, 13, 3)[13, 0]
        assert p1 < p2 < p3 < 1.0

    def test_converges_to_absorption(self):
        p = chain_power(127, 13, 50)[13, 0]
        assert p == pytest.approx(1.0, abs=1e-9)


class TestMonteCarloValidation:
    def test_one_round_distribution(self):
        """Simulate one throw of x balls into n bins and compare the
        bad-ball count distribution with the matrix row."""
        n, t, x = 63, 10, 7
        matrix = transition_matrix(n, t)
        rng = np.random.default_rng(7)
        trials = 30_000
        outcome = np.zeros(x + 1)
        for _ in range(trials):
            counts = np.bincount(rng.integers(0, n, size=x), minlength=n)
            bad = int(counts[counts >= 2].sum())
            outcome[bad] += 1
        outcome /= trials
        for j in range(x + 1):
            assert outcome[j] == pytest.approx(matrix[x, j], abs=0.01)

    def test_multi_round_absorption(self):
        """Simulate the full multi-round process and compare Pr[x ->r 0]."""
        n, t, x, r = 127, 13, 9, 2
        rng = np.random.default_rng(11)
        trials = 20_000
        successes = 0
        for _ in range(trials):
            remaining = x
            for _ in range(r):
                counts = np.bincount(
                    rng.integers(0, n, size=remaining), minlength=n
                )
                remaining = int(counts[counts >= 2].sum())
                if remaining == 0:
                    break
            successes += remaining == 0
        expected = chain_power(n, t, r)[x, 0]
        assert successes / trials == pytest.approx(expected, abs=0.01)
