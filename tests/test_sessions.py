"""Session-level behaviour: lockstep pending lists, splits, desync guards."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.messages import ReplyMessage, UnitReply
from repro.core.params import PBSParams
from repro.core.sessions import (
    AliceSession,
    BobSession,
    _as_element_array,
    _partition_by_group,
)
from repro.errors import ParameterError, SerializationError
from repro.workloads.generator import SetPairGenerator


def _drive(alice: AliceSession, bob: BobSession, rounds: int) -> int:
    used = 0
    for round_no in range(1, rounds + 1):
        if alice.done:
            break
        msg = alice.build_sketch_message(round_no)
        reply = bob.handle_sketch_message(msg)
        alice.handle_reply(reply, round_no)
        used = round_no
    return used


class TestElementValidation:
    def test_zero_rejected(self):
        with pytest.raises(ParameterError):
            _as_element_array([0, 1], 32)

    def test_too_large_rejected(self):
        with pytest.raises(ParameterError):
            _as_element_array([1 << 32], 32)

    def test_duplicates_removed(self):
        arr = _as_element_array([5, 5, 3], 32)
        assert list(arr) == [3, 5]

    def test_empty_ok(self):
        assert len(_as_element_array([], 32)) == 0


class TestGroupPartition:
    def test_partition_covers_everything(self, rng):
        arr = np.unique(rng.integers(1, 1 << 32, size=5000, dtype=np.uint64))
        groups = _partition_by_group(arr, salt=3, g=7)
        assert sum(len(g) for g in groups) == len(arr)
        recombined = np.sort(np.concatenate(groups))
        assert (recombined == arr).all()

    def test_empty_input(self):
        groups = _partition_by_group(np.array([], dtype=np.uint64), salt=3, g=4)
        assert len(groups) == 4 and all(len(g) == 0 for g in groups)


class TestSessionLockstep:
    def _sessions(self, d=60, size_a=3000, seed=5, **alice_kwargs):
        gen = SetPairGenerator(seed=seed)
        pair = gen.generate(size_a=size_a, d=d)
        params = PBSParams.from_d(d)
        alice = AliceSession(pair.a, params, seed=seed, **alice_kwargs)
        bob = BobSession(pair.b, params, seed=seed)
        return pair, alice, bob

    def test_pending_lists_stay_aligned(self):
        """Bob's pending list catches up to Alice's when he consumes her
        sketch message; at that instant the two must be identical."""
        pair, alice, bob = self._sessions()
        for round_no in range(1, 4):
            if alice.done:
                break
            msg = alice.build_sketch_message(round_no)
            alice_units = [u.uid for u in alice.pending]
            reply = bob.handle_sketch_message(msg)
            assert [u.uid for u in bob.pending] == alice_units
            alice.handle_reply(reply, round_no)
        assert alice.done

    def test_difference_correct_after_drive(self):
        pair, alice, bob = self._sessions()
        _drive(alice, bob, 5)
        assert alice.done
        assert alice.difference() == pair.difference

    def test_best_effort_difference_before_done(self):
        pair, alice, bob = self._sessions(d=200)
        # after a single round some units may be unresolved, but the
        # difference view must still be a set (possibly wrong)
        _drive(alice, bob, 1)
        assert isinstance(alice.difference(), frozenset)

    def test_mismatched_reply_length_detected(self):
        _, alice, bob = self._sessions()
        alice.build_sketch_message(1)
        bogus = ReplyMessage(round_no=1, replies=[])
        with pytest.raises(SerializationError):
            alice.handle_reply(bogus, 1)

    def test_missing_checksum_detected(self):
        _, alice, bob = self._sessions()
        alice.build_sketch_message(1)
        n_units = len(alice.pending)
        bogus = ReplyMessage(
            round_no=1,
            replies=[
                UnitReply(decode_failed=False, positions=[], xor_sums=[],
                          checksum=None)
            ] * n_units,
        )
        with pytest.raises(SerializationError):
            alice.handle_reply(bogus, 1)

    def test_bob_rejects_wrong_unit_count(self):
        _, alice, bob = self._sessions()
        msg = alice.build_sketch_message(1)
        msg.sketches = msg.sketches[:-1]
        with pytest.raises(SerializationError):
            bob.handle_sketch_message(msg)

    def test_bob_rejects_short_mask(self):
        _, alice, bob = self._sessions(d=200)
        msg = alice.build_sketch_message(1)
        reply = bob.handle_sketch_message(msg)
        alice.handle_reply(reply, 1)
        if alice.done:
            pytest.skip("reconciled in one round; nothing to desync")
        msg2 = alice.build_sketch_message(2)
        msg2.continue_mask = msg2.continue_mask[:-1] if msg2.continue_mask else []
        with pytest.raises(SerializationError):
            bob.handle_sketch_message(msg2)


class TestSplitBehaviour:
    def test_forced_split_converges(self):
        """Tiny capacity + underestimated d forces BCH failures; splits
        must still converge and produce the exact difference."""
        gen = SetPairGenerator(seed=9)
        pair = gen.generate(size_a=2000, d=120)
        params = PBSParams(n=127, t=8, g=4)  # ~30 diffs per group >> t
        alice = AliceSession(pair.a, params, seed=1)
        bob = BobSession(pair.b, params, seed=1)
        _drive(alice, bob, 12)
        assert alice.done
        assert alice.difference() == pair.difference
        # splits must have occurred (resolved units include split children)
        assert any(len(u.uid.path) > 0 for u in alice.pending) or True

    def test_split_children_partition_parent(self):
        gen = SetPairGenerator(seed=10)
        pair = gen.generate(size_a=2000, d=120)
        params = PBSParams(n=127, t=8, g=2)
        alice = AliceSession(pair.a, params, seed=2)
        bob = BobSession(pair.b, params, seed=2)
        before = {u.uid.group: len(u.working) for u in alice.pending}
        msg = alice.build_sketch_message(1)
        reply = bob.handle_sketch_message(msg)
        alice.handle_reply(reply, 1)
        # all failed groups were replaced by children carrying all elements
        after_by_group: dict[int, int] = {}
        for u in alice.pending:
            after_by_group[u.uid.group] = (
                after_by_group.get(u.uid.group, 0) + len(u.working)
            )
        for group, total in after_by_group.items():
            if any(u.uid.group == group and u.uid.path for u in alice.pending):
                assert total == before[group]

    def test_two_way_split_also_works(self):
        gen = SetPairGenerator(seed=11)
        pair = gen.generate(size_a=2000, d=100)
        params = PBSParams(n=127, t=8, g=3)
        alice = AliceSession(pair.a, params, seed=3, split_ways=2)
        bob = BobSession(pair.b, params, seed=3, split_ways=2)
        _drive(alice, bob, 12)
        assert alice.done and alice.difference() == pair.difference


class TestInstrumentation:
    def test_recovered_counts_cover_difference(self):
        gen = SetPairGenerator(seed=12)
        pair = gen.generate(size_a=3000, d=80)
        params = PBSParams.from_d(80)
        alice = AliceSession(pair.a, params, seed=4)
        bob = BobSession(pair.b, params, seed=4)
        _drive(alice, bob, 6)
        assert alice.done
        # recovered candidates >= true differences (fakes are possible but
        # rare; recovery of every true element is required)
        assert sum(alice.recovered_by_round.values()) >= pair.d
        assert sum(alice.resolved_by_round.values()) == pair.d

    def test_timing_counters_accumulate(self):
        gen = SetPairGenerator(seed=13)
        pair = gen.generate(size_a=3000, d=50)
        params = PBSParams.from_d(50)
        alice = AliceSession(pair.a, params, seed=5)
        bob = BobSession(pair.b, params, seed=5)
        _drive(alice, bob, 4)
        assert alice.encode_s > 0 and alice.decode_s > 0
        assert bob.encode_s > 0 and bob.decode_s > 0
