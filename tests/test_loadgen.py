"""Open-loop load generator: distributions, accounting, report, e2e.

The load tests' credibility rests on two properties checked here
directly: the traffic shapes match their stated distributions (seeded,
so tolerances can be tight without flaking), and latency is charged
from each session's *intended* start — a stalled or queueing server
shows up in the histogram instead of silently slowing the offered load
(the coordinated-omission trap).  Driver accounting runs against
injected fake session runners; one end-to-end test drives a real
:class:`ReconciliationServer` over sockets.
"""

from __future__ import annotations

import asyncio
import itertools
import json

import numpy as np
import pytest

from repro.loadgen import (
    REPORT_SCHEMA,
    DiffSizes,
    LoadgenConfig,
    LoadGenerator,
    PoissonArrivals,
    ZipfPopularity,
    validate_report,
)
from repro.loadgen.driver import CONVERGENCE
from repro.obs.metrics import SESSION_DURATION
from repro.service import ReconciliationServer, SetStore
from repro.service.wire import ServerBusy


# -- traffic shapes ------------------------------------------------------------

class TestPoissonArrivals:
    def test_gaps_are_exponential_at_the_target_rate(self):
        rate = 200.0
        offsets = list(itertools.islice(
            iter(PoissonArrivals(rate, seed=1)), 5000
        ))
        gaps = np.diff(np.concatenate(([0.0], offsets)))
        assert np.all(gaps > 0)
        assert offsets == sorted(offsets)
        assert float(np.mean(gaps)) == pytest.approx(1.0 / rate, rel=0.05)
        # memorylessness signature: exponential gaps have CV = 1
        cv = float(np.std(gaps) / np.mean(gaps))
        assert cv == pytest.approx(1.0, rel=0.10)

    def test_seeded_reproducible_and_seed_sensitive(self):
        def take(seed):
            return list(itertools.islice(
                iter(PoissonArrivals(50.0, seed=seed)), 100
            ))

        assert take(7) == take(7)
        assert take(7) != take(8)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            PoissonArrivals(0.0)


class TestZipfPopularity:
    def test_empirical_frequencies_track_the_pmf(self):
        zipf = ZipfPopularity(16, s=1.2, seed=3)
        samples = zipf.sample_many(20_000)
        assert samples.min() >= 0 and samples.max() < 16
        freq = np.bincount(samples, minlength=16) / samples.size
        assert np.allclose(freq, zipf.pmf, atol=0.02)
        # rank 0 is the hottest, and the head dominates the tail
        assert freq[0] == freq.max()
        assert freq[0] > 4 * freq[-1]

    def test_zero_exponent_degenerates_to_uniform(self):
        zipf = ZipfPopularity(8, s=0.0, seed=3)
        freq = np.bincount(zipf.sample_many(40_000), minlength=8) / 40_000
        assert np.allclose(freq, 1.0 / 8, atol=0.01)

    def test_single_sample_in_range_and_validation(self):
        zipf = ZipfPopularity(4, seed=0)
        assert all(0 <= zipf.sample() < 4 for _ in range(100))
        with pytest.raises(ValueError):
            ZipfPopularity(0)
        with pytest.raises(ValueError):
            ZipfPopularity(4, s=-1.0)


class TestDiffSizes:
    def test_fixed(self):
        diffs = DiffSizes("fixed:5", seed=1)
        assert [diffs.sample() for _ in range(20)] == [5] * 20
        assert diffs.mean == 5.0

    def test_uniform_bounds_inclusive_and_mean(self):
        diffs = DiffSizes("uniform:2:6", seed=1)
        samples = [diffs.sample() for _ in range(5000)]
        assert min(samples) == 2 and max(samples) == 6
        assert float(np.mean(samples)) == pytest.approx(4.0, rel=0.05)

    def test_geometric_mean_and_support(self):
        diffs = DiffSizes("geometric:6", seed=1)
        samples = [diffs.sample() for _ in range(20_000)]
        assert min(samples) >= 1
        assert float(np.mean(samples)) == pytest.approx(6.0, rel=0.05)

    @pytest.mark.parametrize("spec", [
        "fixed", "fixed:x", "fixed:-1", "uniform:5:2", "uniform:1",
        "geometric:0.5", "pareto:3", "",
    ])
    def test_bad_specs_die_eagerly(self, spec):
        with pytest.raises(ValueError):
            DiffSizes(spec)


# -- driver accounting (fake runners, no sockets) ------------------------------

def _config(**overrides) -> LoadgenConfig:
    defaults = dict(
        rate=100.0, duration_s=1.0, sets=4, diff="fixed:2",
        window_s=10.0, drain_s=10.0, max_in_flight=8, seed=0,
    )
    defaults.update(overrides)
    return LoadgenConfig(**defaults)


class TestOpenLoopAccounting:
    def test_queueing_delay_is_charged_to_latency(self):
        """Four sessions intended at (almost) the same instant on one
        set serialize behind the per-set lock: each runner call takes
        0.03 s, so the last session's measured latency must carry the
        ~0.09 s it queued — the open-loop property."""
        cfg = _config(sets=1)

        async def slow_runner(spec):
            await asyncio.sleep(0.03)

        gen = LoadGenerator(
            cfg, session_runner=slow_runner,
            arrivals=[0.0, 0.001, 0.002, 0.003],
        )
        report = asyncio.run(gen.run())
        totals = report["totals"]
        assert totals["scheduled"] == totals["sessions"] == 4
        summary = report["latency"][SESSION_DURATION]
        assert summary["count"] == 4
        assert summary["min_s"] >= 0.03 * 0.9
        assert summary["max_s"] >= 0.09        # 3 predecessors queued
        # convergence covers the mutation batches the syncs carried
        assert report["latency"][CONVERGENCE]["count"] >= 1
        assert totals["mutations"] == 8        # fixed:2 x 4 arrivals

    def test_stalled_server_shows_up_in_the_histogram(self):
        """While the 'server' stalls, intended arrivals keep accruing;
        once it unsticks, every queued session's latency includes the
        full stall it sat through."""

        async def scenario():
            gate = asyncio.Event()

            async def stalled_runner(spec):
                await gate.wait()

            gen = LoadGenerator(
                _config(sets=2), session_runner=stalled_runner,
                arrivals=[0.0, 0.0, 0.0],
            )

            async def release():
                await asyncio.sleep(0.25)
                gate.set()

            releaser = asyncio.create_task(release())
            report = await gen.run()
            await releaser
            return report

        report = asyncio.run(scenario())
        summary = report["latency"][SESSION_DURATION]
        assert report["totals"]["sessions"] == 3
        assert summary["min_s"] >= 0.25 * 0.9   # everyone ate the stall

    def test_shed_failure_and_success_outcomes(self):
        outcomes = iter([
            ServerBusy(0.01, "full"), OSError("boom"), None,
        ])

        async def scripted_runner(spec):
            result = next(outcomes)
            if result is not None:
                raise result

        gen = LoadGenerator(
            _config(sets=1), session_runner=scripted_runner,
            arrivals=[0.0, 0.0, 0.0],
        )
        report = asyncio.run(gen.run())
        totals = report["totals"]
        assert totals["sessions"] == 1
        assert totals["sheds"] == 1
        assert totals["failed"] == 1
        assert totals["errors"] == {"OSError": 1}
        assert report["rates"]["shed_rate"] == pytest.approx(1 / 3)
        assert report["rates"]["error_rate"] == pytest.approx(1 / 3)
        # a failed sync leaves its mutation batch pending: the one
        # success covers every batch queued before it
        assert report["latency"][CONVERGENCE]["count"] == 1

    def test_drain_timeout_abandons_hung_sessions(self):
        async def hung_runner(spec):
            await asyncio.Event().wait()

        gen = LoadGenerator(
            _config(drain_s=0.1), session_runner=hung_runner,
            arrivals=[0.0, 0.0],
        )
        report = asyncio.run(gen.run())
        assert report["totals"]["abandoned"] == 2
        assert report["totals"]["sessions"] == 0
        validate_report(report)

    def test_slo_grading_rides_the_report(self):
        async def slow_runner(spec):
            await asyncio.sleep(0.05)

        gen = LoadGenerator(
            _config(slo_p99_ms=1.0, window_s=0.2, sets=1),
            session_runner=slow_runner,
            arrivals=[0.0, 0.01, 0.02],
        )
        report = asyncio.run(gen.run())
        slo = report["slo"]
        assert slo is not None
        assert slo["targets"]["p99_ms"] == 1.0
        assert slo["windows_breached"] >= 1     # 50ms >> 1ms objective
        assert slo["burn_rate"] > 0


# -- the report ----------------------------------------------------------------

class TestReport:
    def _run(self, **overrides) -> dict:
        async def ok_runner(spec):
            await asyncio.sleep(0)

        gen = LoadGenerator(
            _config(**overrides), session_runner=ok_runner,
            arrivals=[0.0, 0.005, 0.01],
        )
        return asyncio.run(gen.run())

    def test_report_validates_and_round_trips_config(self):
        report = self._run(seed=42)
        validate_report(report)
        # literal pin: a schema bump must consciously edit this test
        assert report["schema"] == REPORT_SCHEMA == 1
        assert report["config"]["seed"] == 42
        assert report["config"]["diff"] == "fixed:2"
        assert report["slo"] is None            # no objectives set
        json.loads(json.dumps(report))          # plain JSON all the way

    def test_validator_rejects_broken_documents(self):
        good = self._run()

        def broken(mutate):
            doc = json.loads(json.dumps(good))
            mutate(doc)
            with pytest.raises(ValueError):
                validate_report(doc)

        broken(lambda d: d.pop("schema"))
        broken(lambda d: d.__setitem__("schema", REPORT_SCHEMA + 1))
        broken(lambda d: d.pop("slo"))
        broken(lambda d: d["totals"].__setitem__("sessions", -1))
        broken(lambda d: d["totals"].__setitem__(
            "sessions", d["totals"]["scheduled"] + 10
        ))
        broken(lambda d: d["rates"].__setitem__("shed_rate", 2.0))
        broken(lambda d: d["rates"].pop("achieved_per_s"))
        broken(lambda d: d["latency"][SESSION_DURATION].pop("p99_s"))
        broken(lambda d: d["timeseries"].pop("windows"))
        broken(lambda d: d.__setitem__("config", []))
        with pytest.raises(ValueError):
            validate_report("not a dict")

    def test_deterministic_traffic_given_a_seed(self):
        """Same seed, same schedule: the mirrors and mutation totals
        must be identical across runs (latency obviously differs)."""
        a = self._run(seed=9)
        b = self._run(seed=9)
        assert a["totals"]["mutations"] == b["totals"]["mutations"]
        assert a["config"] == b["config"]


# -- end to end ----------------------------------------------------------------

class TestEndToEnd:
    def test_open_loop_run_against_a_real_server(self):
        async def scenario():
            store = SetStore()
            async with ReconciliationServer(store) as server:
                config = LoadgenConfig(
                    host="127.0.0.1",
                    port=server.port,
                    rate=60.0,
                    duration_s=0.5,
                    sets=3,
                    diff="fixed:4",
                    window_s=0.2,
                    drain_s=30.0,
                    slo_p99_ms=60_000.0,   # un-breachable: grading only
                )
                report = await LoadGenerator(config).run()
                return store, server.metrics, report

        store, metrics, report = asyncio.run(scenario())
        validate_report(report)
        totals = report["totals"]
        assert totals["sessions"] >= 5
        assert totals["failed"] == 0
        assert totals["sheds"] == 0
        assert totals["abandoned"] == 0
        # the driver's mirrors really landed: server-side sets exist
        # under the prefix and hold every pushed element
        names = [n for n in store.names() if n.startswith("lg-")]
        assert names
        assert sum(len(store.get(n)) for n in names) == \
            totals["mutations"]
        # both sides agree on how many sessions happened
        assert metrics.sessions_completed == totals["sessions"]
        # the windowed view saw the run: >= 2 windows, rates populated
        windows = report["timeseries"]["windows"]
        assert len(windows) >= 2
        assert any(w["deltas"].get("sessions") for w in windows)
        assert report["slo"]["windows_graded"] >= 1
        assert not report["slo"]["burning"]
