"""Workload generation and the byte-accounting transport."""

from __future__ import annotations

import pytest

from repro.errors import ParameterError
from repro.transport.channel import Channel, Direction
from repro.transport.runner import ReconciliationResult
from repro.workloads.generator import SetPair, SetPairGenerator


class TestSetPairGenerator:
    def test_exact_cardinalities(self):
        pair = SetPairGenerator(seed=1).generate(size_a=1000, d=37)
        assert len(pair.a) == 1000
        assert len(pair.b) == 963
        assert pair.d == 37

    def test_b_subset_of_a(self):
        pair = SetPairGenerator(seed=2).generate(size_a=500, d=20)
        assert pair.b < pair.a

    def test_difference_property(self):
        pair = SetPairGenerator(seed=3).generate(size_a=100, d=10)
        assert pair.difference == pair.a ^ pair.b

    def test_no_zero_element(self):
        pair = SetPairGenerator(seed=4).generate(size_a=5000, d=0)
        assert 0 not in pair.a

    def test_reproducible_with_same_seed(self):
        g1 = SetPairGenerator(seed=5).generate(1000, 10, seed=0)
        g2 = SetPairGenerator(seed=5).generate(1000, 10, seed=0)
        assert g1.a == g2.a and g1.b == g2.b

    def test_instances_vary_with_counter(self):
        gen = SetPairGenerator(seed=6)
        p1, p2 = gen.generate(100, 5), gen.generate(100, 5)
        assert p1.a != p2.a

    def test_two_sided(self):
        pair = SetPairGenerator(seed=7).generate_two_sided(
            common=100, only_a=7, only_b=5
        )
        assert len(pair.a) == 107 and len(pair.b) == 105
        assert pair.d == 12
        assert len(pair.a & pair.b) == 100

    def test_small_universe(self):
        pair = SetPairGenerator(universe_bits=16, seed=8).generate(1000, 10)
        assert max(pair.a) < 2**16

    def test_validation(self):
        with pytest.raises(ParameterError):
            SetPairGenerator(universe_bits=4)
        with pytest.raises(ParameterError):
            SetPairGenerator(seed=9).generate(size_a=10, d=11)
        with pytest.raises(ParameterError):
            SetPairGenerator(universe_bits=8, seed=10).generate(size_a=200, d=0)


class TestChannel:
    def test_byte_accounting(self):
        ch = Channel()
        ch.send(Direction.ALICE_TO_BOB, b"12345", round_no=1, label="x")
        ch.send(Direction.BOB_TO_ALICE, b"123", round_no=1, label="y")
        ch.send(Direction.ALICE_TO_BOB, b"1", round_no=2, label="x")
        assert ch.total_bytes == 9
        assert ch.bytes_in(Direction.ALICE_TO_BOB) == 6
        assert ch.bytes_in(Direction.BOB_TO_ALICE) == 3
        assert ch.rounds == 2
        assert ch.bytes_by_label() == {"x": 6, "y": 3}
        assert ch.bytes_by_round() == {1: 8, 2: 1}

    def test_empty_channel(self):
        ch = Channel()
        assert ch.total_bytes == 0 and ch.rounds == 0

    def test_send_returns_payload(self):
        ch = Channel()
        assert ch.send(Direction.ALICE_TO_BOB, b"abc") == b"abc"


class TestReconciliationResult:
    def _result(self, n_bytes: int) -> ReconciliationResult:
        ch = Channel()
        ch.send(Direction.BOB_TO_ALICE, bytes(n_bytes), round_no=1)
        return ReconciliationResult(
            success=True, difference=frozenset({1}), rounds=1, channel=ch
        )

    def test_total_kb(self):
        assert self._result(1500).total_kb == 1.5

    def test_overhead_ratio(self):
        r = self._result(400)  # 3200 bits
        assert r.overhead_ratio(d=10, log_u=32) == pytest.approx(10.0)

    def test_overhead_ratio_d_zero(self):
        assert self._result(4).overhead_ratio(0) == float("inf")


class TestSetPairFrozen:
    def test_immutability(self):
        pair = SetPair(a=frozenset({1}), b=frozenset({2}))
        with pytest.raises(AttributeError):
            pair.a = frozenset()
