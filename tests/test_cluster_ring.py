"""Consistent-hash ring properties: determinism, balance, minimal movement."""

from __future__ import annotations

import pytest

from repro.cluster.ring import HashRing


def _names(n: int) -> list[str]:
    return [f"tenant-{i}/inventory" for i in range(n)]


class TestDeterminism:
    def test_same_config_same_placement(self):
        a = HashRing(range(4))
        b = HashRing(range(4))
        names = _names(200)
        assert a.assignments(names) == b.assignments(names)

    def test_join_order_does_not_matter(self):
        a = HashRing([0, 1, 2, 3])
        b = HashRing([3, 1, 0, 2])
        assert a.assignments(_names(200)) == b.assignments(_names(200))

    def test_lookup_in_members(self):
        ring = HashRing(range(5))
        for name in _names(100):
            assert ring.lookup(name) in ring.members


class TestBalance:
    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_load_within_bounds(self, shards):
        """With 128 vnodes per shard the max/mean imbalance stays modest.

        The theoretical spread shrinks like 1/sqrt(vnodes) (~9% std); the
        bounds here are generous enough to be deterministic for this name
        population while still catching a broken ring (which typically
        sends everything to one shard).
        """
        ring = HashRing(range(shards))
        load = ring.load(_names(4000))
        mean = 4000 / shards
        assert set(load) == set(range(shards))   # every shard got work
        assert max(load.values()) < 1.5 * mean
        assert min(load.values()) > 0.5 * mean


class TestMinimalMovement:
    def test_adding_a_shard_moves_only_its_share(self):
        names = _names(3000)
        before = HashRing(range(4)).assignments(names)
        grown = HashRing(range(4))
        grown.add(4)
        after = grown.assignments(names)
        moved = [n for n in names if before[n] != after[n]]
        # every moved name must have moved TO the new shard, nowhere else
        assert all(after[n] == 4 for n in moved)
        # consistent hashing moves ~1/(N+1) of keys; assert well below 2x
        assert len(moved) < 2 * len(names) / 5

    def test_removing_a_shard_moves_only_its_sets(self):
        names = _names(3000)
        ring = HashRing(range(5))
        before = ring.assignments(names)
        ring.remove(2)
        after = ring.assignments(names)
        for name in names:
            if before[name] != 2:
                assert after[name] == before[name]
            else:
                assert after[name] != 2

    def test_add_then_remove_round_trips(self):
        names = _names(1000)
        ring = HashRing(range(4))
        before = ring.assignments(names)
        ring.add(9)
        ring.remove(9)
        assert ring.assignments(names) == before


class TestEdgeCases:
    def test_empty_ring_rejects_lookup(self):
        with pytest.raises(ValueError):
            HashRing().lookup("x")

    def test_duplicate_member_rejected(self):
        ring = HashRing([0])
        with pytest.raises(ValueError):
            ring.add(0)

    def test_remove_unknown_rejected(self):
        with pytest.raises(ValueError):
            HashRing([0]).remove(7)

    def test_single_shard_owns_everything(self):
        ring = HashRing([3])
        assert all(ring.lookup(n) == 3 for n in _names(50))

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(range(2), vnodes=0)
