"""Consistent-hash ring properties: determinism, balance, minimal movement."""

from __future__ import annotations

import random

import pytest

from repro.cluster.ring import HashRing


def _names(n: int) -> list[str]:
    return [f"tenant-{i}/inventory" for i in range(n)]


class TestDeterminism:
    def test_same_config_same_placement(self):
        a = HashRing(range(4))
        b = HashRing(range(4))
        names = _names(200)
        assert a.assignments(names) == b.assignments(names)

    def test_join_order_does_not_matter(self):
        a = HashRing([0, 1, 2, 3])
        b = HashRing([3, 1, 0, 2])
        assert a.assignments(_names(200)) == b.assignments(_names(200))

    def test_lookup_in_members(self):
        ring = HashRing(range(5))
        for name in _names(100):
            assert ring.lookup(name) in ring.members


class TestBalance:
    @pytest.mark.parametrize("shards", [2, 4, 8])
    def test_load_within_bounds(self, shards):
        """With 128 vnodes per shard the max/mean imbalance stays modest.

        The theoretical spread shrinks like 1/sqrt(vnodes) (~9% std); the
        bounds here are generous enough to be deterministic for this name
        population while still catching a broken ring (which typically
        sends everything to one shard).
        """
        ring = HashRing(range(shards))
        load = ring.load(_names(4000))
        mean = 4000 / shards
        assert set(load) == set(range(shards))   # every shard got work
        assert max(load.values()) < 1.5 * mean
        assert min(load.values()) > 0.5 * mean


class TestMinimalMovement:
    def test_adding_a_shard_moves_only_its_share(self):
        names = _names(3000)
        before = HashRing(range(4)).assignments(names)
        grown = HashRing(range(4))
        grown.add(4)
        after = grown.assignments(names)
        moved = [n for n in names if before[n] != after[n]]
        # every moved name must have moved TO the new shard, nowhere else
        assert all(after[n] == 4 for n in moved)
        # consistent hashing moves ~1/(N+1) of keys; assert well below 2x
        assert len(moved) < 2 * len(names) / 5

    def test_removing_a_shard_moves_only_its_sets(self):
        names = _names(3000)
        ring = HashRing(range(5))
        before = ring.assignments(names)
        ring.remove(2)
        after = ring.assignments(names)
        for name in names:
            if before[name] != 2:
                assert after[name] == before[name]
            else:
                assert after[name] != 2

    def test_add_then_remove_round_trips(self):
        names = _names(1000)
        ring = HashRing(range(4))
        before = ring.assignments(names)
        ring.add(9)
        ring.remove(9)
        assert ring.assignments(names) == before


class TestMovePlan:
    def test_diff_names_exactly_the_moved_sets(self):
        names = _names(2000)
        old, new = HashRing(range(4)), HashRing(range(6))
        moves = old.diff(new, names)
        for name in names:
            if name in moves:
                assert moves[name] == (old.lookup(name), new.lookup(name))
                assert moves[name][0] != moves[name][1]
            else:
                assert old.lookup(name) == new.lookup(name)

    def test_diff_to_self_is_empty(self):
        ring = HashRing(range(3))
        assert ring.diff(HashRing(range(3)), _names(500)) == {}

    def test_diff_on_shrink_moves_only_removed_shards_sets(self):
        names = _names(2000)
        old, new = HashRing(range(5)), HashRing(range(3))
        for _name, (src, dst) in old.diff(new, names).items():
            assert src in (3, 4)      # only evicted shards lose sets
            assert dst in (0, 1, 2)


class TestEdgeCases:
    def test_empty_ring_rejects_lookup(self):
        with pytest.raises(ValueError):
            HashRing().lookup("x")

    def test_duplicate_member_rejected_without_corruption(self):
        """A duplicate add must raise *and leave the ring untouched* —
        a half-inserted vnode list would silently mis-route names."""
        ring = HashRing([0, 1])
        before = ring.assignments(_names(300))
        with pytest.raises(ValueError, match="0"):
            ring.add(0)
        assert ring.members == [0, 1]
        assert ring.assignments(_names(300)) == before
        assert len(ring._points) == 2 * ring.vnodes

    def test_remove_unknown_rejected_without_corruption(self):
        ring = HashRing([0, 1])
        before = ring.assignments(_names(300))
        with pytest.raises(ValueError, match="7"):
            ring.remove(7)
        assert ring.members == [0, 1]
        assert ring.assignments(_names(300)) == before

    def test_single_shard_owns_everything(self):
        ring = HashRing([3])
        assert all(ring.lookup(n) == 3 for n in _names(50))

    def test_vnodes_must_be_positive(self):
        with pytest.raises(ValueError):
            HashRing(range(2), vnodes=0)


class TestAddRemoveProperty:
    """Randomized add/remove round-trips against a rebuilt-from-scratch
    model: membership and placement must always equal a fresh ring built
    from the surviving members, and invalid ops must never half-update
    the vnode point list."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_op_sequences_match_fresh_ring(self, seed):
        rng = random.Random(seed)
        names = _names(400)
        ring = HashRing(vnodes=32)
        members: set[int] = set()
        for _ in range(120):
            shard = rng.randrange(8)
            if rng.random() < 0.5:
                if shard in members:
                    with pytest.raises(ValueError):
                        ring.add(shard)
                else:
                    ring.add(shard)
                    members.add(shard)
            else:
                if shard not in members:
                    with pytest.raises(ValueError):
                        ring.remove(shard)
                else:
                    ring.remove(shard)
                    members.discard(shard)
            assert set(ring.members) == members
            assert len(ring._points) == len(members) * ring.vnodes
            assert ring._points == sorted(ring._points)
            if members:
                fresh = HashRing(sorted(members), vnodes=32)
                assert ring.assignments(names) == fresh.assignments(names)

    @pytest.mark.parametrize("seed", [10, 11])
    def test_add_remove_round_trip_restores_placement(self, seed):
        rng = random.Random(seed)
        names = _names(300)
        ring = HashRing(range(3), vnodes=32)
        before = ring.assignments(names)
        extras = rng.sample(range(100, 200), 5)
        for shard in extras:
            ring.add(shard)
        for shard in rng.sample(extras, len(extras)):   # remove in any order
            ring.remove(shard)
        assert ring.assignments(names) == before
