"""Bit-level serialization: exact packing, round trips, error paths."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import SerializationError
from repro.utils.bitio import BitReader, BitWriter


class TestBitWriter:
    def test_empty_writer_produces_empty_bytes(self):
        assert BitWriter().getvalue() == b""

    def test_single_byte_value(self):
        w = BitWriter()
        w.write(0xAB, 8)
        assert w.getvalue() == b"\xab"

    def test_sub_byte_fields_pack_msb_first(self):
        w = BitWriter()
        w.write(0b101, 3)
        w.write(0b01, 2)
        w.write(0b110, 3)
        assert w.getvalue() == bytes([0b10101110])

    def test_padding_to_byte_boundary_is_zero(self):
        w = BitWriter()
        w.write(0b1, 1)
        assert w.getvalue() == bytes([0b10000000])

    def test_bit_and_byte_lengths(self):
        w = BitWriter()
        w.write(3, 7)
        w.write(1, 2)
        assert w.bit_length == 9
        assert w.byte_length == 2

    def test_value_too_wide_rejected(self):
        w = BitWriter()
        with pytest.raises(SerializationError):
            w.write(4, 2)

    def test_negative_value_rejected(self):
        w = BitWriter()
        with pytest.raises(SerializationError):
            w.write(-1, 8)

    def test_negative_width_rejected(self):
        w = BitWriter()
        with pytest.raises(SerializationError):
            w.write(0, -1)

    def test_zero_width_zero_value_is_noop(self):
        w = BitWriter()
        w.write(0, 0)
        assert w.bit_length == 0


class TestBitReader:
    def test_over_read_raises(self):
        r = BitReader(b"\xff")
        r.read(8)
        with pytest.raises(SerializationError):
            r.read(1)

    def test_bits_remaining_counts_down(self):
        r = BitReader(b"\x00\x00")
        assert r.bits_remaining == 16
        r.read(5)
        assert r.bits_remaining == 11

    def test_read_zero_width(self):
        r = BitReader(b"\x80")
        assert r.read(0) == 0
        assert r.read(1) == 1


@given(
    st.lists(
        st.integers(min_value=1, max_value=64).flatmap(
            lambda w: st.tuples(st.integers(0, (1 << w) - 1), st.just(w))
        ),
        min_size=0,
        max_size=40,
    )
)
def test_roundtrip_any_field_sequence(fields):
    """Property: any (value, width) sequence round-trips exactly."""
    w = BitWriter()
    for value, width in fields:
        w.write(value, width)
    r = BitReader(w.getvalue())
    for value, width in fields:
        assert r.read(width) == value


@given(st.integers(0, 2**64 - 1), st.integers(0, 2**32 - 1))
def test_two_field_roundtrip(a, b):
    w = BitWriter()
    w.write(a, 64)
    w.write(b, 32)
    r = BitReader(w.getvalue())
    assert (r.read(64), r.read(32)) == (a, b)
