"""Subprocess shard executors: equivalence with inline, crash drills.

Durable tests are parametrized over every storage backend
(``make_cluster`` in ``conftest.py``): the SIGKILL drill, startup-crash
fail-fast, and resize preservation must hold identically whether the
child persists to journal files or a SQLite store.

Written against plain ``asyncio.run`` so the suite does not depend on a
pytest-asyncio plugin being installed.  Worker children are real spawned
processes — tests that start a proc-mode store pay ~a second per start,
so each test packs several assertions around one cluster lifetime.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cluster import (
    ClusterConfig,
    ClusterStore,
    WorkerUnavailableError,
    open_cluster,
)
from repro.errors import ReproError
from repro.service import ReconciliationServer, ServerBusy, sync_with_server


def _cluster(shards: int, data_dir=None, **overrides) -> ClusterStore:
    """A config-built cluster for executor tests that have no storage
    dimension (in-memory); durable tests use the ``make_cluster``
    fixture."""
    return open_cluster(data_dir, ClusterConfig(shards=shards, **overrides))


def _state(store: ClusterStore) -> dict:
    return {
        name: (frozenset(store.get(name)), store.version(name))
        for name in store.names()
    }


def _mutation_script(seed: int, names: int = 10, steps: int = 60):
    """A deterministic random mutation sequence (create / apply mixes)."""
    rng = random.Random(seed)
    script = []
    for i in range(names):
        script.append(("create", f"set-{i}", rng.sample(range(1, 5000), 20)))
    for _ in range(steps):
        name = f"set-{rng.randrange(names)}"
        add = rng.sample(range(1, 5000), rng.randrange(0, 6))
        remove = rng.sample(range(1, 5000), rng.randrange(0, 3))
        script.append(("apply", name, add, remove))
    return script


async def _run_script(store: ClusterStore, script) -> dict:
    async with store:
        for step in script:
            if step[0] == "create":
                await store.create(step[1], step[2])
            else:
                await store.apply_diff(step[1], add=step[2], remove=step[3])
        await store.flush()
        return _state(store)


class TestInlineProcEquivalence:
    def test_same_mutations_same_store(self, tmp_path, make_cluster):
        """The executor is an implementation detail: the identical
        mutation sequence must leave bit-for-bit identical contents and
        versions, live and after recovery — on every storage backend."""
        script = _mutation_script(seed=0xE9)
        inline_dir, proc_dir = tmp_path / "inline", tmp_path / "proc"

        inline_state = asyncio.run(
            _run_script(make_cluster(3, inline_dir), script)
        )
        proc_state = asyncio.run(
            _run_script(
                make_cluster(3, proc_dir, executor="subprocess"), script
            )
        )
        assert inline_state == proc_state
        assert len(inline_state) == 10

        # recovery equivalence: both data dirs recover (inline) to the
        # identical state — the proc shards persisted the same mutations
        async def recover(directory):
            async with make_cluster(3, directory) as store:
                return _state(store)

        assert asyncio.run(recover(inline_dir)) == inline_state
        assert asyncio.run(recover(proc_dir)) == inline_state

    def test_in_memory_proc_roundtrip_and_resize(self):
        """Proc executor without a data dir: mutations, reads, and the
        in-memory resize path (versioned RESTORE through the children)."""

        async def inner():
            async with _cluster(3, executor="subprocess") as store:
                for i in range(8):
                    await store.create(f"m{i}", range(i, i + 4))
                    await store.apply_diff(f"m{i}", add=[999])
                before = _state(store)
                summary = await store.resize(2)
                assert summary["changed"] and store.n_shards == 2
                assert _state(store) == before
                # post-resize children are authoritative again: apply
                # lands and reads see it (mirror updated on the ack)
                changed = await store.apply_diff("m0", add=[12345])
                assert changed == 1 and 12345 in store.get("m0")
                assert store.version("m0") == before["m0"][1] + 1

        asyncio.run(inner())

    def test_durable_proc_resize_preserves_state(self, tmp_path, make_cluster):
        async def inner():
            store = make_cluster(2, tmp_path, executor="subprocess")
            async with store:
                for i in range(6):
                    await store.create(f"s{i}", range(10 * i, 10 * i + 5))
                before = _state(store)
                summary = await store.resize(4)
                assert summary["changed"] and summary["moved"] >= 1
                assert _state(store) == before
            # and the committed epoch recovers under the new topology
            async with make_cluster(4, tmp_path) as check:
                assert _state(check) == before

        asyncio.run(inner())


class TestResizeRollback:
    def test_failed_restore_rolls_back_to_old_layout(self, monkeypatch):
        """A failure while repopulating the new layout's children must
        tear the new workers down and reopen (and re-populate) the old
        layout — not leave the store half-swapped with every mutation
        failing (the rollback used to call start() while _started was
        still True, a silent no-op)."""

        async def inner():
            store = _cluster(3, executor="subprocess")
            async with store:
                for i in range(6):
                    await store.create(f"r{i}", range(i, i + 5))
                before = _state(store)

                real_restore = ClusterStore._proc_restore
                calls = {"n": 0}

                async def flaky_restore(self, shard, name, values, version):
                    calls["n"] += 1
                    if calls["n"] == 1:
                        raise WorkerUnavailableError("injected mid-restore")
                    await real_restore(self, shard, name, values, version)

                monkeypatch.setattr(
                    ClusterStore, "_proc_restore", flaky_restore
                )
                with pytest.raises(WorkerUnavailableError):
                    await store.resize(2)
                monkeypatch.setattr(
                    ClusterStore, "_proc_restore", real_restore
                )

                # old topology, old contents, and a working write path
                assert store.n_shards == 3
                assert _state(store) == before
                assert all(
                    store.shard_available(i) for i in range(store.n_shards)
                )
                changed = await store.apply_diff("r0", add=[31337])
                assert changed == 1 and 31337 in store.get("r0")

        asyncio.run(inner())


class TestWorkerCrashDrill:
    def test_startup_crash_fails_fast_with_exit_code(
        self, tmp_path, make_cluster, corrupt_shard
    ):
        """A worker that dies during startup (corrupt shard base state)
        must fail start() promptly with the child's exit code — not
        burn the whole 60 s spawn timeout."""
        # a durable store lays the directories down, then we corrupt
        # every shard's base state so its recovery raises in the child
        async def seed():
            async with make_cluster(
                2, tmp_path, executor="subprocess"
            ) as store:
                for i in range(4):
                    await store.create(f"s{i}", [i])

        asyncio.run(seed())
        shard_dirs = sorted(tmp_path.glob("shard-*"))
        assert shard_dirs
        for shard_dir in shard_dirs:
            corrupt_shard(shard_dir)

        async def reopen():
            store = make_cluster(2, tmp_path, executor="subprocess")
            try:
                await store.start()
            finally:
                await store.close()

        start = time.monotonic()
        with pytest.raises(ReproError, match="exited with code"):
            asyncio.run(reopen())
        # fast failure: the child's death is noticed, not timed out
        assert time.monotonic() - start < 30.0

    def test_sigkill_retry_shed_restart_replay(
        self, tmp_path, make_cluster, fault_plan
    ):
        """SIGKILL one worker mid-load: in-flight work fails fast, new
        sessions are shed with RETRY while the shard is down, and the
        restarted worker recovers to the exact acked state (surfaced in
        cluster_stats as a worker restart) — on every backend."""
        plan = fault_plan(0)

        async def inner():
            a = set(range(1, 400))
            b = set(range(30, 430))
            store = make_cluster(
                2, tmp_path, executor="subprocess", restart_backoff_s=0.75
            )
            await store.start()
            try:
                await store.create("inv", b)
                async with ReconciliationServer(store) as server:
                    result = await sync_with_server(
                        "127.0.0.1", server.port, a, set_name="inv"
                    )
                    assert result.success
                    assert result.difference == a ^ b
                    union = a | b
                    assert store.get("inv") == union

                    shard_id = store.shard_for("inv")
                    stats = store.cluster_stats()["per_shard"][shard_id]
                    # SIGKILL-at-step: armed for the first pass of the
                    # post-sync point, no cleanup, no warning
                    plan.arm("after-first-sync",
                             plan.sigkill(stats["worker"]["pid"]))
                    assert plan.reached("after-first-sync")
                    # EOF propagation is near-immediate on loopback
                    for _ in range(100):
                        if not store.shard_available(shard_id):
                            break
                        await asyncio.sleep(0.05)
                    assert not store.shard_available(shard_id)

                    # mutations against the dead shard fail fast ...
                    with pytest.raises(WorkerUnavailableError):
                        await store.apply_diff("inv", add=[70001])
                    # ... and new sessions are shed with RETRY
                    with pytest.raises(ServerBusy) as shed:
                        await sync_with_server(
                            "127.0.0.1", server.port, a,
                            set_name="inv", retries=0,
                        )
                    assert shed.value.retry_after_s > 0
                    assert server.metrics.sessions_shed >= 1

                    # the supervisor heals the shard: recovered state is
                    # exactly what was acked before the kill
                    for _ in range(200):
                        if store.shard_available(shard_id):
                            break
                        await asyncio.sleep(0.1)
                    assert store.shard_available(shard_id)
                    cluster = store.cluster_stats()
                    assert cluster["worker_restarts"] == 1
                    per = cluster["per_shard"][shard_id]
                    assert per["worker"]["restarts"] == 1
                    assert per["worker"]["alive"]
                    assert store.get("inv") == union

                    retry = await sync_with_server(
                        "127.0.0.1", server.port, a, set_name="inv",
                        retries=3,
                    )
                    assert retry.success
                    assert retry.difference == union - a
            finally:
                await store.close()

        asyncio.run(inner())

    def test_close_reaps_worker_processes(self, tmp_path, make_cluster):
        """close() drains, closes the shard storage in the children, and
        reaps every worker process — no orphans, no stray tmp files."""

        async def inner():
            store = make_cluster(2, tmp_path, executor="subprocess")
            await store.start()
            await store.create("x", [1, 2, 3])
            handles = [shard.worker for shard in store._shards]
            pids = [handle.pid for handle in handles]
            await store.close()
            return handles, pids

        handles, pids = asyncio.run(inner())
        assert len(pids) == 2
        for handle in handles:
            assert not handle.alive
        for pid in pids:
            # a reaped child is gone: signal 0 must fail
            with pytest.raises(ProcessLookupError):
                os.kill(pid, 0)
        assert list(tmp_path.rglob("*.tmp")) == []

        # storage was closed post-drain: the data recovers completely
        async def recover():
            async with make_cluster(2, tmp_path) as check:
                return check.get("x")

        assert asyncio.run(recover()) == {1, 2, 3}


class TestServeProcessSignals:
    @pytest.mark.parametrize("sig", [signal.SIGINT, signal.SIGTERM])
    def test_serve_shutdown_reaps_workers(self, tmp_path, sig):
        """``repro serve --workers proc`` on SIGINT/SIGTERM: exits 0,
        reaps its worker subprocesses, closes journals (no tmp files),
        and the final metrics snapshot reaches stderr.  Journal-only
        here; the CI cluster-smoke matrix drives ``--storage sqlite``
        through the same serve path."""
        bob = tmp_path / "bob.txt"
        bob.write_text("".join(f"{v}\n" for v in range(1, 120)))
        data_dir = tmp_path / "data"
        env = dict(os.environ)
        env["PYTHONPATH"] = (
            str(Path(__file__).resolve().parents[1] / "src")
            + os.pathsep + env.get("PYTHONPATH", "")
        )
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", "0", "--shards", "2", "--workers", "proc",
                "--data-dir", str(data_dir), "--set", f"inv={bob}",
            ],
            stderr=subprocess.PIPE, env=env, text=True,
        )
        try:
            deadline = time.monotonic() + 120
            # the banner line appears once workers are up and serving
            line = ""
            while time.monotonic() < deadline:
                line = proc.stderr.readline()
                if line.startswith("# serving on"):
                    break
            assert line.startswith("# serving on"), line
            assert "workers=proc" in line
            proc.send_signal(sig)
            stderr = proc.stderr.read()
            rc = proc.wait(timeout=60)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)
        assert rc == 0, stderr
        # the shutdown metrics dump carries the worker pids: all reaped
        snapshot = json.loads(stderr[stderr.index("{"):])
        workers = [
            entry["worker"] for entry in snapshot["cluster"]["per_shard"]
        ]
        assert len(workers) == 2
        for worker in workers:
            assert worker["pid"] is not None
            with pytest.raises(ProcessLookupError):
                os.kill(worker["pid"], 0)
        assert list(data_dir.rglob("*.tmp")) == []

        # journals survived the signal: a fresh inline recovery sees bob
        async def recover():
            async with _cluster(2, data_dir) as check:
                return check.get("inv")

        assert asyncio.run(recover()) == set(range(1, 120))
