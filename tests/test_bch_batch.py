"""The batched BCH decode engine against the scalar reference.

The batch engine's contract is bit-for-bit equivalence with the scalar
per-group pipeline — same recovered elements, same set of groups that
fail to decode — on every input class: empty (zero-difference) groups,
in-capacity groups, over-capacity groups (Berlekamp–Massey or
verification failures), and mixtures.  These tests assert that contract
on randomized corpora for both root-search flavours (Chien over table
fields, candidate evaluation over GF(2^32)), and at the protocol level
for PBS and PinSketch/WP.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.pinsketch import PinSketchProtocol
from repro.baselines.pinsketch_wp import PinSketchWPProtocol
from repro.bch.batch import BatchBCHDecoder, stack_groups
from repro.bch.codec import BCHCodec
from repro.core.protocol import PBSProtocol
from repro.errors import DecodeFailure, ParameterError
from repro.gf import field_for
from repro.workloads.generator import SetPairGenerator


def scalar_decode_all(codec: BCHCodec, sketches, candidates=None):
    """The scalar reference: per-group decode, None on DecodeFailure."""
    out = []
    for i, sketch in enumerate(sketches):
        cand = candidates[i] if candidates is not None else None
        try:
            out.append(codec.decode(sketch, candidates=cand, batch=False))
        except DecodeFailure:
            out.append(None)
    return out


def random_groups(rng, order: int, t: int, n_groups: int):
    """Group corpus spanning empty, decodable and over-capacity sizes."""
    groups = []
    for _ in range(n_groups):
        size = min(int(rng.integers(0, 2 * t + 2)), order)
        values = rng.choice(np.arange(1, order + 1), size=size, replace=False)
        groups.append(np.sort(values).astype(np.int64))
    return groups


class TestStackGroups:
    def test_zero_padding_is_inert(self):
        mat = stack_groups([np.array([3, 5]), np.array([], dtype=np.int64)])
        assert mat.shape == (2, 2)
        assert mat.tolist() == [[3, 5], [0, 0]]

    def test_all_empty(self):
        mat = stack_groups([np.array([], dtype=np.int64)] * 3)
        assert mat.shape == (3, 1)
        assert not mat.any()


class TestEngineAgainstScalar:
    @pytest.mark.parametrize("m", [6, 7, 8, 11])
    @pytest.mark.parametrize("t", [1, 3, 8])
    def test_sketch_many_matches_scalar(self, m, t):
        codec = BCHCodec(field_for(m), t)
        rng = np.random.default_rng(m * 100 + t)
        groups = random_groups(rng, codec.field.order, t, 40)
        assert codec.sketch_many(groups) == [codec.sketch(g) for g in groups]

    @pytest.mark.parametrize("m", [6, 7, 8, 11])
    @pytest.mark.parametrize("t", [1, 3, 8])
    def test_decode_many_matches_scalar(self, m, t):
        codec = BCHCodec(field_for(m), t)
        rng = np.random.default_rng(m * 100 + t)
        groups = random_groups(rng, codec.field.order, t, 60)
        sketches = [codec.sketch(g) for g in groups]
        want = scalar_decode_all(codec, sketches)
        assert codec.decode_many(sketches) == want
        # the corpus must actually exercise both outcomes (at t = 1 an
        # over-capacity group still "decodes": the lone XOR syndrome is
        # always self-consistent, and the protocol checksum is what
        # rejects it — so no failures exist to cover there)
        if t > 1:
            assert any(r is None for r in want)
        assert any(r for r in want)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=25, deadline=None)
    def test_decode_many_matches_scalar_property(self, seed):
        """Randomized (d, n, bit-flip) agreement, hypothesis-driven."""
        rng = np.random.default_rng(seed)
        m = int(rng.integers(6, 12))
        t = int(rng.integers(1, 11))
        codec = BCHCodec(field_for(m), t)
        groups = random_groups(rng, codec.field.order, t, 12)
        sketches = [codec.sketch(g) for g in groups]
        # flip random bits in some sketches: decoders must still agree
        for sketch in sketches[::3]:
            k = int(rng.integers(0, t))
            sketch[k] ^= int(rng.integers(1, codec.field.order + 1))
        assert codec.decode_many(sketches) == scalar_decode_all(codec, sketches)

    def test_zero_difference_rows(self, gf7):
        codec = BCHCodec(gf7, 5)
        sketches = [[0] * 5, codec.sketch([3, 9]), [0] * 5, [0] * 5, [0] * 5]
        assert codec.decode_many(sketches) == [[], [3, 9], [], [], []]

    def test_all_zero_batch(self, gf7):
        codec = BCHCodec(gf7, 4)
        assert codec.decode_many([[0] * 4] * 6) == [[]] * 6

    def test_decode_failure_rows_match_scalar(self, gf7):
        """Over-capacity groups fail identically in both paths."""
        codec = BCHCodec(gf7, 3)
        rng = np.random.default_rng(5)
        groups = [
            np.sort(
                rng.choice(np.arange(1, 128), size=k, replace=False)
            ).astype(np.int64)
            for k in (7, 8, 2, 9, 0, 3, 11)
        ]
        sketches = [codec.sketch(g) for g in groups]
        want = scalar_decode_all(codec, sketches)
        assert codec.decode_many(sketches) == want
        assert want[4] == [] and want[2] is not None

    def test_candidates_path_gf232(self, gf32):
        codec = BCHCodec(gf32, 6)
        rng = np.random.default_rng(11)
        groups, candidates = [], []
        for _ in range(20):
            universe = rng.choice(
                np.arange(1, 1 << 20), size=50, replace=False
            ).astype(np.int64)
            size = int(rng.integers(0, 10))
            groups.append(np.sort(universe[:size]))
            candidates.append(universe)
        sketches = [codec.sketch(g) for g in groups]
        want = scalar_decode_all(codec, sketches, candidates)
        assert codec.decode_many(sketches, candidates=candidates) == want
        assert any(r is None for r in want) and any(r for r in want)

    def test_table_field_ignores_candidates_like_scalar(self, gf7):
        """Scalar _find_roots runs Chien on table fields regardless of
        candidates; the batch engine must match, even when the candidate
        arrays are missing sketched elements."""
        codec = BCHCodec(gf7, 3)
        groups = [np.array([10 + i, 90 + i], dtype=np.int64) for i in range(5)]
        sketches = [codec.sketch(g) for g in groups]
        partial = [g[:1] for g in groups]  # half the elements missing
        want = scalar_decode_all(codec, sketches, candidates=partial)
        assert codec.decode_many(sketches, candidates=partial) == want
        assert want == [sorted(int(v) for v in g) for g in groups]

    def test_ragged_sketches_raise_parameter_error(self, gf7):
        codec = BCHCodec(gf7, 3)
        ragged = [[1, 2, 3]] * 4 + [[1, 2]]
        with pytest.raises(ParameterError):
            codec.decode_many(ragged)
        with pytest.raises(ParameterError):
            codec.decode_many(ragged, batch=False)

    def test_candidate_arity_mismatch(self, gf32):
        engine = BatchBCHDecoder(gf32, 3)
        sketches = np.zeros((2, 3), dtype=np.int64)
        with pytest.raises(ParameterError):
            engine.decode_many(sketches, candidates=[np.array([1])])

    def test_non_table_field_needs_candidates(self, gf32):
        engine = BatchBCHDecoder(gf32, 3)
        with pytest.raises(ParameterError):
            engine.decode_many(np.zeros((5, 3), dtype=np.int64))


class TestProtocolLevelEquivalence:
    """batch=True and batch=False must be observationally identical."""

    def test_batch_is_default(self):
        assert PBSProtocol().batch is True
        assert PinSketchProtocol().batch is True
        assert PinSketchWPProtocol().batch is True

    @pytest.mark.parametrize(
        "d,kwargs",
        [
            (30, {}),
            (300, {}),
            (300, {"membership_check": False}),
            (200, {"split_ways": 2}),
        ],
    )
    def test_pbs_identical(self, d, kwargs):
        pair = SetPairGenerator(universe_bits=32, seed=2).generate(
            size_a=4000, d=d, seed=d
        )
        runs = {
            batch: PBSProtocol(seed=9, batch=batch, **kwargs).run(
                pair.a, pair.b, true_d=d
            )
            for batch in (False, True)
        }
        assert runs[True].difference == runs[False].difference
        assert runs[True].success == runs[False].success
        assert runs[True].rounds == runs[False].rounds
        assert (
            runs[True].channel.total_bytes == runs[False].channel.total_bytes
        )

    def test_pbs_identical_under_splits(self):
        """Underprovisioned capacity forces decode failures + splits."""
        pair = SetPairGenerator(universe_bits=32, seed=4).generate(
            size_a=4000, d=400, seed=1
        )
        runs = {
            batch: PBSProtocol(seed=13, batch=batch).run(
                pair.a, pair.b, estimated_d=120
            )
            for batch in (False, True)
        }
        assert runs[True].difference == runs[False].difference
        assert runs[True].rounds == runs[False].rounds

    def test_pinsketch_wp_identical(self):
        pair = SetPairGenerator(universe_bits=32, seed=6).generate(
            size_a=4000, d=150, seed=3
        )
        runs = {
            batch: PinSketchWPProtocol(seed=5, batch=batch).run(
                pair.a, pair.b, true_d=150
            )
            for batch in (False, True)
        }
        assert runs[True].difference == runs[False].difference
        assert runs[True].success == runs[False].success

    def test_pinsketch_identical(self):
        pair = SetPairGenerator(universe_bits=32, seed=8).generate(
            size_a=2000, d=40, seed=2
        )
        runs = {
            batch: PinSketchProtocol(seed=5, batch=batch).run(
                pair.a, pair.b, true_d=40
            )
            for batch in (False, True)
        }
        assert runs[True].difference == runs[False].difference
        assert runs[True].success == runs[False].success
