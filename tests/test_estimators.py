"""Difference-cardinality estimators: unbiasedness, variance, coverage."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ParameterError
from repro.estimators import MinWiseEstimator, StrataEstimator, ToWEstimator


def _sample_distinct(rng, count: int) -> np.ndarray:
    """Distinct nonzero 32-bit values without materializing the universe."""
    out = np.unique(rng.integers(1, 1 << 32, size=2 * count + 16, dtype=np.uint64))
    rng.shuffle(out)
    return out[:count]


def _pair_arrays(rng, size_a: int, d: int):
    a = _sample_distinct(rng, size_a)
    b = a[: size_a - d]
    return np.sort(a), np.sort(b)


class TestToWBasics:
    def test_identical_sets_estimate_zero(self, rng):
        a, _ = _pair_arrays(rng, 500, 0)
        est = ToWEstimator(seed=1)
        assert est.estimate(est.sketch(a), est.sketch(a)) == 0.0

    def test_empty_sets(self):
        est = ToWEstimator(seed=1)
        empty = est.sketch(np.array([], dtype=np.uint64))
        assert est.estimate(empty, empty) == 0.0

    def test_sketch_values_bounded_by_set_size(self, rng):
        a, _ = _pair_arrays(rng, 300, 0)
        sketch = ToWEstimator(seed=2).sketch(a)
        assert (np.abs(sketch) <= 300).all()

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            ToWEstimator(n_sketches=0)
        with pytest.raises(ParameterError):
            ToWEstimator(family="nope")

    def test_conservative_rounds_up(self):
        assert ToWEstimator.conservative(10.0, gamma=1.38) == 14
        assert ToWEstimator.conservative(0.0) == 1


class TestToWStatistics:
    def test_unbiasedness(self, rng):
        """E[d_hat] = d (Appendix A).  Average many independent single-sketch
        estimators and check the mean lands near d."""
        d = 64
        a, b = _pair_arrays(rng, 1000, d)
        est = ToWEstimator(n_sketches=256, seed=3)
        d_hat = est.estimate(est.sketch(a), est.sketch(b))
        # sd of the mean = sqrt((2d^2-2d)/256) ~ 5.6; allow 4 sigma
        assert abs(d_hat - d) < 4 * np.sqrt((2 * d * d - 2 * d) / 256)

    def test_variance_formula(self, rng):
        """Var[single-sketch estimator] = 2d^2 - 2d (Appendix A)."""
        d = 16
        a, b = _pair_arrays(rng, 400, d)
        singles = []
        for i in range(400):
            est = ToWEstimator(n_sketches=1, seed=1000 + i)
            singles.append(est.estimate(est.sketch(a), est.sketch(b)))
        singles = np.array(singles)
        expected_var = 2 * d * d - 2 * d
        assert np.mean(singles) == pytest.approx(d, rel=0.25)
        assert np.var(singles) == pytest.approx(expected_var, rel=0.5)

    def test_gamma_coverage(self, rng):
        """§6.2: Pr[d <= 1.38 * d_hat] >= 0.99 with l = 128 sketches."""
        d = 100
        covered = 0
        trials = 120
        for trial in range(trials):
            local = np.random.default_rng(trial)
            a, b = _pair_arrays(local, 600, d)
            est = ToWEstimator(n_sketches=128, seed=trial, family="fast")
            d_hat = est.estimate(est.sketch(a), est.sketch(b))
            covered += d <= 1.38 * d_hat
        assert covered / trials >= 0.96

    def test_fast_family_statistically_equivalent(self, rng):
        d = 50
        a, b = _pair_arrays(rng, 800, d)
        est = ToWEstimator(n_sketches=256, seed=5, family="fast")
        d_hat = est.estimate(est.sketch(a), est.sketch(b))
        assert abs(d_hat - d) < 25


class TestToWWire:
    def test_paper_sketch_size(self):
        """§6.1: 128 sketches of a 10^6-element set total 336 bytes."""
        est = ToWEstimator(n_sketches=128, seed=0)
        assert est.sketch_bytes(10**6) == 336

    def test_serialize_roundtrip(self, rng):
        a, _ = _pair_arrays(rng, 300, 0)
        est = ToWEstimator(n_sketches=64, seed=6)
        sketch = est.sketch(a)
        data = est.serialize(sketch, 300)
        assert (est.deserialize(data, 300) == sketch).all()


class TestStrata:
    def test_order_of_magnitude(self, rng):
        for d in (10, 100, 1000):
            a, b = _pair_arrays(rng, 5000, d)
            est = StrataEstimator(seed=7)
            d_hat = est.estimate(est.build(a), est.build(b))
            assert d / 4 <= max(d_hat, 1) <= d * 4

    def test_identical_sets(self, rng):
        a, _ = _pair_arrays(rng, 1000, 0)
        est = StrataEstimator(seed=8)
        assert est.estimate(est.build(a), est.build(a)) == 0.0

    def test_wire_cost_much_larger_than_tow(self):
        """Appendix B: Strata needs far more space than ToW."""
        strata = StrataEstimator(seed=0)
        tow = ToWEstimator(n_sketches=128, seed=0)
        assert strata.wire_bytes() > 20 * tow.sketch_bytes(10**6)

    def test_validation(self):
        with pytest.raises(ParameterError):
            StrataEstimator(n_strata=0)


class TestMinWise:
    def test_identical_sets(self, rng):
        a, _ = _pair_arrays(rng, 800, 0)
        est = MinWiseEstimator(n_hashes=128, seed=9)
        sig = est.signature(a)
        assert est.estimate(sig, sig, 800, 800) == 0.0

    def test_order_of_magnitude(self, rng):
        d = 400
        a, b = _pair_arrays(rng, 2000, d)
        est = MinWiseEstimator(n_hashes=512, seed=10)
        d_hat = est.estimate(est.signature(a), est.signature(b), len(a), len(b))
        assert d / 3 <= d_hat <= d * 3

    def test_empty_signature(self):
        est = MinWiseEstimator(n_hashes=16, seed=11)
        sig = est.signature(np.array([], dtype=np.uint64))
        assert (sig == np.iinfo(np.uint64).max).all()

    def test_validation(self):
        with pytest.raises(ParameterError):
            MinWiseEstimator(n_hashes=0)
