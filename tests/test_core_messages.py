"""Wire-format round trips and size accounting for PBS messages."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.messages import ReplyMessage, SketchMessage, UnitReply
from repro.errors import SerializationError


class TestSketchMessage:
    def test_roundtrip_round1(self):
        msg = SketchMessage(
            round_no=1,
            continue_mask=[],
            sketches=[[1, 2, 3], [0, 0, 0], [127, 126, 125]],
        )
        wire = msg.serialize(t=3, m=7)
        back = SketchMessage.deserialize(wire, t=3, m=7)
        assert back == msg

    def test_roundtrip_with_mask(self):
        msg = SketchMessage(
            round_no=2, continue_mask=[True, False, True], sketches=[[5, 9]]
        )
        back = SketchMessage.deserialize(msg.serialize(2, 8), 2, 8)
        assert back.continue_mask == [True, False, True]
        assert back.sketches == [[5, 9]]

    def test_size_scales_with_units(self):
        one = SketchMessage(1, [], [[1] * 13]).serialize(13, 7)
        ten = SketchMessage(1, [], [[1] * 13] * 10).serialize(13, 7)
        # 13 syndromes * 7 bits = 91 bits per unit
        assert (len(ten) - len(one)) == pytest.approx(9 * 91 / 8, abs=2)

    def test_wrong_sketch_length_rejected(self):
        msg = SketchMessage(1, [], [[1, 2]])
        with pytest.raises(SerializationError):
            msg.serialize(t=3, m=7)

    @given(
        st.integers(1, 100),
        st.lists(st.booleans(), max_size=20),
        st.lists(
            st.lists(st.integers(0, 127), min_size=4, max_size=4), max_size=10
        ),
    )
    @settings(max_examples=60)
    def test_roundtrip_property(self, round_no, mask, sketches):
        msg = SketchMessage(round_no, mask, sketches)
        back = SketchMessage.deserialize(msg.serialize(4, 7), 4, 7)
        assert back == msg


class TestReplyMessage:
    def test_roundtrip_mixed_replies(self):
        msg = ReplyMessage(
            round_no=1,
            replies=[
                UnitReply(False, [5, 9], [123456, 99], checksum=42),
                UnitReply(True, [], [], checksum=None),
                UnitReply(False, [], [], checksum=7),
                UnitReply(False, [1], [2**32 - 1], checksum=None),
            ],
        )
        wire = msg.serialize(t=13, m=7, log_u=32)
        back = ReplyMessage.deserialize(wire, t=13, m=7, log_u=32)
        assert back == msg

    def test_first_round_accounting_matches_formula(self):
        """One OK unit with delta_i positions costs about
        delta_i*(m + log_u) + log_u bits beyond flags (Formula (1))."""
        t, m, log_u = 13, 7, 32
        base = ReplyMessage(
            1, [UnitReply(False, [], [], checksum=1)]
        ).serialize(t, m, log_u)
        with_positions = ReplyMessage(
            1, [UnitReply(False, [3, 4, 5, 6, 7], [9, 9, 9, 9, 9], checksum=1)]
        ).serialize(t, m, log_u)
        extra_bits = (len(with_positions) - len(base)) * 8
        assert abs(extra_bits - 5 * (m + log_u)) <= 8

    def test_too_many_positions_rejected(self):
        msg = ReplyMessage(
            1, [UnitReply(False, list(range(1, 6)), [0] * 5, None)]
        )
        with pytest.raises(SerializationError):
            msg.serialize(t=3, m=7, log_u=32)

    @given(
        st.lists(
            st.one_of(
                st.just(UnitReply(True, [], [], None)),
                st.builds(
                    UnitReply,
                    st.just(False),
                    st.lists(st.integers(1, 127), min_size=0, max_size=5),
                    st.just([]),
                    st.one_of(st.none(), st.integers(0, 2**32 - 1)),
                ).map(
                    lambda u: UnitReply(
                        u.decode_failed,
                        u.positions,
                        [7] * len(u.positions),
                        u.checksum,
                    )
                ),
            ),
            max_size=8,
        )
    )
    @settings(max_examples=60)
    def test_roundtrip_property(self, replies):
        msg = ReplyMessage(3, replies)
        back = ReplyMessage.deserialize(msg.serialize(5, 7, 32), 5, 7, 32)
        assert back == msg
