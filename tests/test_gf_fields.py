"""Finite-field backends: axioms, cross-validation, table integrity."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.gf import (
    CarrylessField,
    PRIMITIVE_POLYS,
    TableField,
    TowerField32,
    field_for,
)
from repro.gf.carryless_field import clmul, poly_mod_int


class TestTableFieldConstruction:
    @pytest.mark.parametrize("m", list(range(2, 17)))
    def test_stock_polynomials_are_primitive(self, m):
        """Construction walks the full multiplicative group, which fails
        loudly for non-primitive polynomials — so constructing every stock
        field is itself the primitivity proof."""
        field = TableField(m)
        assert field.order == (1 << m) - 1
        # exp/log are mutually inverse bijections
        assert sorted(field.exp_table[: field.order]) == list(
            range(1, field.order + 1)
        )

    def test_non_primitive_polynomial_rejected(self):
        # x^4 + x^3 + x^2 + x + 1 is irreducible but has order 5, not 15
        with pytest.raises(ParameterError):
            TableField(4, poly=0b11111)

    def test_m_too_large_rejected(self):
        with pytest.raises(ParameterError):
            TableField(17)

    def test_m_too_small_rejected(self):
        with pytest.raises(ParameterError):
            TableField(1)


class TestFieldAxiomsExhaustiveGF16:
    """Exhaustive verification on the smallest interesting field."""

    field = TableField(4)

    def test_multiplication_commutative(self):
        f = self.field
        for a in range(16):
            for b in range(16):
                assert f.mul(a, b) == f.mul(b, a)

    def test_multiplication_associative(self):
        f = self.field
        for a in range(1, 16):
            for b in range(1, 16):
                for c in range(1, 16):
                    assert f.mul(a, f.mul(b, c)) == f.mul(f.mul(a, b), c)

    def test_distributivity(self):
        f = self.field
        for a in range(16):
            for b in range(16):
                for c in range(16):
                    assert f.mul(a, b ^ c) == f.mul(a, b) ^ f.mul(a, c)

    def test_inverses(self):
        f = self.field
        for a in range(1, 16):
            assert f.mul(a, f.inv(a)) == 1

    def test_frobenius_is_additive(self):
        f = self.field
        for a in range(16):
            for b in range(16):
                assert f.sqr(a ^ b) == f.sqr(a) ^ f.sqr(b)

    def test_sqrt_inverts_square(self):
        f = self.field
        for a in range(16):
            assert f.sqrt(f.sqr(a)) == a

    def test_trace_is_gf2_valued_and_balanced(self):
        f = self.field
        traces = [f.trace(a) for a in range(16)]
        assert set(traces) <= {0, 1}
        assert traces.count(1) == 8  # exactly half for a nondegenerate form


@st.composite
def gf8_pair(draw):
    return draw(st.integers(0, 255)), draw(st.integers(0, 255))


class TestTableFieldProperties:
    @given(gf8_pair())
    @settings(max_examples=300)
    def test_mul_matches_carryless_reference(self, pair):
        a, b = pair
        table = field_for(8)
        ref = CarrylessField(8, poly=PRIMITIVE_POLYS[8])
        assert table.mul(a, b) == ref.mul(a, b)

    @given(st.integers(1, 255), st.integers(0, 300))
    @settings(max_examples=200)
    def test_pow_matches_iterated_mul(self, a, k):
        f = field_for(8)
        expected = 1
        for _ in range(k):
            expected = f.mul(expected, a)
        assert f.pow(a, k) == expected

    def test_pow_zero_conventions(self, gf8):
        assert gf8.pow(0, 0) == 1
        assert gf8.pow(0, 5) == 0
        assert gf8.pow(7, 0) == 1

    def test_alpha_pow_wraps(self, gf8):
        assert gf8.alpha_pow(0) == 1
        assert gf8.alpha_pow(gf8.order) == 1
        assert gf8.alpha_pow(-1) == gf8.inv(2)


class TestVectorizedOps:
    def test_mul_vec_matches_scalar(self, gf8, rng):
        a = rng.integers(0, 256, size=500, dtype=np.int64)
        b = rng.integers(0, 256, size=500, dtype=np.int64)
        vec = gf8.mul_vec(a, b)
        for x, y, v in zip(a[:100], b[:100], vec[:100]):
            assert gf8.mul(int(x), int(y)) == int(v)

    def test_pow_vec_matches_scalar(self, gf8, rng):
        a = rng.integers(0, 256, size=200, dtype=np.int64)
        for k in (0, 1, 2, 3, 7):
            vec = gf8.pow_vec(a, k)
            for x, v in zip(a[:50], vec[:50]):
                assert gf8.pow(int(x), k) == int(v)

    def test_power_sum_is_xor_of_powers(self, gf8):
        values = np.array([3, 9, 200], dtype=np.int64)
        for k in (1, 3, 5):
            expected = 0
            for v in values:
                expected ^= gf8.pow(int(v), k)
            assert gf8.power_sum(values, k) == expected

    def test_eval_poly_all_matches_pointwise(self, gf7):
        coeffs = [5, 0, 3, 1]  # 5 + 3x^2 + x^3
        vals = gf7.eval_poly_all(coeffs)
        from repro.gf import polynomial as P

        for i in range(0, gf7.order, 11):
            x = int(gf7.exp_table[i])
            assert int(vals[i]) == P.evaluate(coeffs, x, gf7)


class TestTowerField:
    def test_beta_has_trace_one(self, gf32):
        assert gf32.base.trace(gf32.beta) == 1

    @given(st.integers(1, 2**32 - 1))
    @settings(max_examples=200)
    def test_inverse(self, a):
        f = TowerField32()
        assert f.mul(a, f.inv(a)) == 1

    @given(
        st.integers(0, 2**32 - 1),
        st.integers(0, 2**32 - 1),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=100)
    def test_associativity_and_distributivity(self, a, b, c):
        f = TowerField32()
        assert f.mul(a, f.mul(b, c)) == f.mul(f.mul(a, b), c)
        assert f.mul(a, b ^ c) == f.mul(a, b) ^ f.mul(a, c)

    def test_one_is_identity(self, gf32, rng):
        for _ in range(50):
            a = int(rng.integers(0, 1 << 32))
            assert gf32.mul(a, 1) == a

    def test_mul_vec_matches_scalar(self, gf32, rng):
        a = rng.integers(0, 1 << 32, size=300, dtype=np.int64)
        b = rng.integers(0, 1 << 32, size=300, dtype=np.int64)
        vec = gf32.mul_vec(a, b)
        for x, y, v in zip(a[:60], b[:60], vec[:60]):
            assert gf32.mul(int(x), int(y)) == int(v)

    def test_pow_vec_matches_scalar(self, gf32, rng):
        a = rng.integers(0, 1 << 32, size=50, dtype=np.int64)
        for k in (1, 2, 3, 5):
            vec = gf32.pow_vec(a, k)
            for x, v in zip(a, vec):
                assert gf32.pow(int(x), k) == int(v)

    def test_sqrt_roundtrip(self, gf32, rng):
        for _ in range(20):
            a = int(rng.integers(0, 1 << 32))
            assert gf32.sqrt(gf32.sqr(a)) == a

    def test_power_sum_empty(self, gf32):
        assert gf32.power_sum(np.array([], dtype=np.int64), 3) == 0


class TestCarrylessField:
    def test_clmul_basics(self):
        assert clmul(0b11, 0b11) == 0b101  # (x+1)^2 = x^2+1 over GF(2)
        assert clmul(5, 0) == 0
        assert clmul(1, 0xFFFF) == 0xFFFF

    def test_poly_mod_idempotent(self):
        poly = PRIMITIVE_POLYS[8]
        v = poly_mod_int(0xABCDEF, poly, 8)
        assert v < 256
        assert poly_mod_int(v, poly, 8) == v

    @given(st.integers(1, 2**64 - 1))
    @settings(max_examples=60)
    def test_gf64_inverse(self, a):
        f = CarrylessField(64)
        assert f.mul(a, f.inv(a)) == 1

    def test_unknown_m_requires_explicit_poly(self):
        with pytest.raises(ParameterError):
            CarrylessField(37)

    def test_explicit_poly_accepted(self):
        # x^3 + x + 1 as an explicit override
        f = CarrylessField(3, poly=0b1011)
        assert f.mul(3, f.inv(3)) == 1

    def test_wrong_degree_poly_rejected(self):
        with pytest.raises(ParameterError):
            CarrylessField(8, poly=0b1011)


class TestM16Boundary:
    """Regression: int64 overflow near the 2^16 - 1 table boundary.

    ``pow_vec`` used to compute ``log * k`` before reducing modulo the
    group order; with m = 16 the logs reach 65534, so any exponent above
    ~2^47 silently wrapped int64 and indexed the wrong table entry.  The
    scalar ``pow`` (Python ints) never overflowed — so these tests pin
    the vector paths to the scalar results at the boundary.
    """

    @pytest.fixture(scope="class")
    def gf16(self):
        return TableField(16)

    def test_pow_vec_huge_exponent(self, gf16):
        a = np.array([2, 3, 0xFFFE, 0xFFFF, 1, 0], dtype=np.int64)
        for k in (2**47, 2**50 + 1, 2**63 - 1, gf16.order - 1, gf16.order):
            want = [gf16.pow(int(x), k) for x in a]
            assert gf16.pow_vec(a, k).tolist() == want, hex(k)

    def test_pow_vec_zero_exponent_and_zero_base(self, gf16):
        a = np.array([0, 1, 0xFFFF], dtype=np.int64)
        assert gf16.pow_vec(a, 0).tolist() == [1, 1, 1]
        assert gf16.pow_vec(a, 5).tolist() == [0, 1, gf16.pow(0xFFFF, 5)]

    def test_inv_vec_boundary_elements(self, gf16):
        a = np.array([1, 2, 0xFFFE, 0xFFFF], dtype=np.int64)
        inv = gf16.inv_vec(a)
        assert gf16.mul_vec(a, inv).tolist() == [1, 1, 1, 1]
        assert inv.tolist() == [gf16.inv(int(x)) for x in a]

    def test_inv_vec_rejects_zero(self, gf16):
        with pytest.raises(ZeroDivisionError):
            gf16.inv_vec(np.array([3, 0, 7], dtype=np.int64))

    def test_mul_vec_boundary_elements(self, gf16):
        a = np.array([0xFFFF, 0xFFFE, 0x8000], dtype=np.int64)
        assert gf16.mul_vec(a, a).tolist() == [
            gf16.mul(int(x), int(x)) for x in a
        ]

    def test_eval_poly_all_batch_matches_rowwise(self, gf16):
        rng = np.random.default_rng(16)
        coeffs = rng.integers(0, gf16.order + 1, size=(5, 4), dtype=np.int64)
        coeffs[1] = 0  # zero polynomial row
        coeffs[2, 3] = 0  # interior degree drop
        batch = gf16.eval_poly_all_batch(coeffs)
        for row, poly in zip(batch, coeffs):
            assert np.array_equal(row, gf16.eval_poly_all(poly.tolist()))

    def test_eval_poly_all_batch_small_field_roots(self, gf8):
        # (x - 3)(x - 5) via locator-style coefficients: roots recovered
        # at the right alpha exponents in every row
        c0 = gf8.mul(3, 5)
        c1 = 3 ^ 5
        coeffs = np.array([[c0, c1, 1], [c0, c1, 1]], dtype=np.int64)
        vals = gf8.eval_poly_all_batch(coeffs)
        for row in vals:
            roots = {int(gf8.exp_table[i]) for i in np.nonzero(row == 0)[0]}
            assert roots == {3, 5}

    def test_tower_inv_vec_matches_scalar(self, gf32, rng):
        a = rng.integers(1, 1 << 32, size=500).astype(np.int64)
        inv = gf32.inv_vec(a)
        assert (gf32.mul_vec(a, inv) == 1).all()
        assert [int(x) for x in inv[:50]] == [
            gf32.inv(int(x)) for x in a[:50]
        ]


class TestFieldFor:
    def test_caches_instances(self):
        assert field_for(8) is field_for(8)

    def test_backend_selection(self):
        assert isinstance(field_for(7), TableField)
        assert isinstance(field_for(32), TowerField32)
        assert isinstance(field_for(64), CarrylessField)
