"""Observability subsystem: histograms, traces, admin endpoint, wire v3.

Covers the telemetry contracts end to end: log-linear histogram
accuracy against a sorted reference, registry merging (the proc-mode
worker-dump path), trace-context propagation through the HELLO frame
(v3 <-> v2 compatibility), the snapshot schema pin, the admin HTTP
endpoint's Prometheus/healthz/varz surfaces, and — as real spawned
subprocesses — the cross-process span tree of one proc-mode session.

Written against plain ``asyncio.run`` like the rest of the suite.
Tests that enable the process-global tracer always restore the
disabled default, so span files cannot leak between tests.
"""

from __future__ import annotations

import asyncio
import json
import logging
import math
import random
from io import StringIO

import pytest

from repro.errors import SerializationError
from repro.obs.admin import PROMETHEUS_BOUNDS, AdminServer, prometheus_text
from repro.obs.histogram import (
    BOUNDARIES,
    BUCKET_COUNT,
    LAYOUT,
    MIN_LATENCY_S,
    LatencyHistogram,
)
from repro.obs.logs import (
    JsonFormatter,
    configure_logging,
    logging_config,
    set_slow_op_threshold,
    slow_op_threshold_s,
)
from repro.obs.metrics import (
    DECODE_BATCH,
    SESSION_DURATION,
    STORAGE_COMMIT,
    WINDOW_SCHEMA,
    MetricsRegistry,
    SloTracker,
    WindowedMetrics,
)
from repro.obs.trace import (
    TraceContext,
    Tracer,
    configure_tracing,
    load_events,
    merge_trace,
)
from repro.service.metrics import SNAPSHOT_SCHEMA, ServiceMetrics
from repro.service.wire import MIN_WIRE_VERSION, WIRE_VERSION, Hello


@pytest.fixture
def no_tracing():
    """Guarantee the process-global tracer is off after the test."""
    yield
    configure_tracing(None)


# -- histogram -----------------------------------------------------------------

class TestLatencyHistogram:
    def test_bucket_grid(self):
        """Boundaries strictly increase, start at the floor, and the
        bucket count is underflow + grid + overflow."""
        assert BOUNDARIES[0] > MIN_LATENCY_S
        assert all(
            lo < hi for lo, hi in zip(BOUNDARIES, BOUNDARIES[1:])
        )
        assert BUCKET_COUNT == len(BOUNDARIES) + 2
        assert LAYOUT.startswith("loglin-")

    def test_empty_and_single_sample(self):
        hist = LatencyHistogram()
        assert hist.count == 0
        assert hist.percentile(0.5) == 0.0
        hist.record(0.0123)
        for q in (0.5, 0.95, 0.999):
            assert hist.percentile(q) == pytest.approx(0.0123)

    def test_percentiles_vs_sorted_reference(self):
        """Every reported percentile lands within the grid's relative
        error bound of the exact order statistic."""
        rng = random.Random(0xC0FFEE)
        samples = [rng.lognormvariate(-6.0, 1.5) for _ in range(20_000)]
        hist = LatencyHistogram()
        for value in samples:
            hist.record(value)
        ordered = sorted(samples)
        for q in (0.5, 0.95, 0.99, 0.999):
            exact = ordered[max(0, math.ceil(q * len(ordered)) - 1)]
            got = hist.percentile(q)
            assert abs(got - exact) / exact < 0.13, (q, got, exact)
        summary = hist.summary()
        assert summary["count"] == len(samples)
        assert summary["mean_s"] == pytest.approx(
            sum(samples) / len(samples)
        )

    def test_clamping_and_extremes(self):
        """Negative and sub-resolution values hit the underflow bucket;
        absurd values hit overflow — neither corrupts percentiles."""
        hist = LatencyHistogram()
        hist.record(-1.0)
        hist.record(1e-9)
        hist.record(1e9)
        assert hist.count == 3
        assert hist.min == 0.0       # negative clamps to zero
        assert hist.max == 1e9
        assert hist.percentile(1.0) == 1e9   # clamped to observed max

    def test_merge_is_union(self):
        rng = random.Random(7)
        a_samples = [rng.uniform(1e-4, 1e-2) for _ in range(500)]
        b_samples = [rng.uniform(1e-3, 1e-1) for _ in range(700)]
        union = LatencyHistogram()
        a, b = LatencyHistogram(), LatencyHistogram()
        for v in a_samples:
            a.record(v)
            union.record(v)
        for v in b_samples:
            b.record(v)
            union.record(v)
        a.merge(b)
        assert a.count == union.count
        assert a.sum == pytest.approx(union.sum)
        assert a.min == union.min and a.max == union.max
        for q in (0.5, 0.99):
            assert a.percentile(q) == pytest.approx(union.percentile(q))

    def test_dict_roundtrip_and_layout_guard(self):
        hist = LatencyHistogram()
        for v in (0.001, 0.002, 0.5):
            hist.record(v)
        dump = hist.to_dict()
        assert dump["layout"] == LAYOUT
        back = LatencyHistogram.from_dict(dump)
        assert back.count == hist.count
        assert back.percentile(0.5) == hist.percentile(0.5)
        # JSON-able all the way through (the cluster-stats ride-along)
        again = LatencyHistogram.from_dict(json.loads(json.dumps(dump)))
        assert again.count == hist.count
        with pytest.raises(ValueError):
            LatencyHistogram.from_dict({**dump, "layout": "loglin-0-1x1"})

    def test_cumulative_is_conservative(self):
        """``cumulative`` may undercount at bounds that split a bucket,
        never overcount — Prometheus ``le`` semantics stay honest."""
        hist = LatencyHistogram()
        samples = [0.0009, 0.001, 0.0011, 0.5, 2.0]
        for v in samples:
            hist.record(v)
        for bound, count in hist.cumulative(PROMETHEUS_BOUNDS):
            true_count = sum(1 for v in samples if v <= bound)
            assert count <= true_count
        # the final (largest) bound covers the whole grid
        top_bound, top_count = list(
            hist.cumulative(PROMETHEUS_BOUNDS)
        )[-1]
        assert top_count == sum(1 for v in samples if v <= top_bound)


class TestMetricsRegistry:
    def test_create_on_use_and_sparse_dump(self):
        reg = MetricsRegistry()
        assert reg.to_dict() == {}      # untouched histograms stay out
        reg.histogram(SESSION_DURATION)         # created but empty
        reg.histogram(DECODE_BATCH).record(0.01)
        dump = reg.to_dict()
        assert list(dump) == [DECODE_BATCH]

    def test_merged_with_worker_dumps(self):
        """The proc-mode path: the parent's registry merged with each
        worker's latest cumulative dump, without mutating either."""
        parent = MetricsRegistry()
        parent.histogram(DECODE_BATCH).record(0.010)
        worker = MetricsRegistry()
        worker.histogram(DECODE_BATCH).record(0.030)
        worker.histogram(STORAGE_COMMIT).record(0.002)
        merged = parent.merged_with([worker.to_dict()])
        assert merged[DECODE_BATCH].count == 2
        assert merged[STORAGE_COMMIT].count == 1
        assert parent.histogram(DECODE_BATCH).count == 1    # untouched
        bad = {DECODE_BATCH: {"layout": "other", "count": 1, "sum": 1,
                              "min": 1, "max": 1, "buckets": {}}}
        with pytest.raises(ValueError):
            parent.merged_with([bad])


# -- wire v3 trace propagation -------------------------------------------------

class TestWireTracePropagation:
    def test_v3_hello_carries_trace(self):
        hello = Hello(set_name="inv", seed=7,
                      trace_id=0xABCD1234, span_id=0x42)
        back = Hello.deserialize(hello.serialize())
        assert back.version == WIRE_VERSION == 3
        assert (back.trace_id, back.span_id) == (0xABCD1234, 0x42)
        assert back.set_name == "inv"

    def test_v2_hello_interoperates(self):
        """A v2 peer's HELLO (no trailer) still parses — trace absent;
        and a v2 frame this build emits is trailer-free."""
        v2_frame = Hello(set_name="inv", seed=7, version=2).serialize()
        v3_frame = Hello(set_name="inv", seed=7, version=3,
                         trace_id=1, span_id=2).serialize()
        assert len(v3_frame) == len(v2_frame) + 16
        back = Hello.deserialize(v2_frame)
        assert back.version == MIN_WIRE_VERSION == 2
        assert (back.trace_id, back.span_id) == (0, 0)

    def test_version_range_enforced(self):
        frame = bytearray(Hello(set_name="x", seed=1).serialize())
        for bad in (1, WIRE_VERSION + 1):
            frame[0] = bad
            with pytest.raises(SerializationError, match="wire version"):
                Hello.deserialize(bytes(frame))

    def test_inline_session_joins_client_trace(self, tmp_path, no_tracing):
        """Client and server spans of one session share the client's
        trace id, with the server session parented on the client span."""
        from repro.service import ClientConnection, ReconciliationServer

        configure_tracing(tmp_path, role="test")

        async def run():
            server = ReconciliationServer(port=0)
            await server.start()
            try:
                conn = ClientConnection(
                    "127.0.0.1", server.port, set_name="traced")
                await conn.connect()
                result = await conn.sync(set(range(1, 200)))
                await conn.close()
                assert result.success
            finally:
                await server.close()

        asyncio.run(run())
        configure_tracing(None)
        events = load_events(tmp_path)
        by_name = {}
        for event in events:
            by_name.setdefault(event["name"], []).append(event)
        client = by_name["client.session"][0]
        server_session = by_name["server.session"][0]
        assert server_session["args"]["trace"] == client["args"]["trace"]
        assert server_session["args"]["parent"] == client["args"]["span"]
        # passes nest under their sessions, decode under the pass
        server_pass = by_name["server.pass"][0]
        assert server_pass["args"]["parent"] == \
            server_session["args"]["span"]
        assert by_name["decode.batch"][0]["args"]["trace"] == \
            client["args"]["trace"]
        merged = merge_trace(tmp_path)
        assert len(merged["traceEvents"]) == len(events)

    def test_untraced_client_gets_server_rooted_spans(
        self, tmp_path, no_tracing, monkeypatch
    ):
        """A peer that sends no trace id (v2, or v3 with tracing off)
        still yields server-side spans — rooted fresh, parentless."""
        import repro.service.client as client_mod
        from repro.service import ReconciliationServer, sync_with_server

        # the client shares this process's global tracer; pin the client
        # module to a disabled one so its HELLO carries trace_id=0 while
        # the server side keeps tracing
        monkeypatch.setattr(
            client_mod, "tracer", lambda: Tracer(None, "off"))

        async def run():
            server = ReconciliationServer(port=0)
            await server.start()
            configure_tracing(tmp_path, role="server-only")
            try:
                result = await sync_with_server(
                    "127.0.0.1", server.port, set(range(1, 100)),
                    set_name="untraced",
                )
                assert result.success
            finally:
                configure_tracing(None)
                await server.close()

        asyncio.run(run())
        events = load_events(tmp_path)
        sessions = [e for e in events if e["name"] == "server.session"]
        assert sessions and sessions[0]["args"]["parent"] == ""
        assert not any(e["name"] == "client.session" for e in events)


class TestTracer:
    def test_disabled_tracer_propagates_parent(self):
        trc = Tracer(None, "off")
        parent = TraceContext(1, 2)
        assert not trc.enabled
        assert trc.mint() is None
        with trc.span("nothing", parent) as ctx:
            assert ctx is parent          # pass-through, no minting
        assert trc.child(parent) is parent

    def test_enabled_tracer_builds_tree(self, tmp_path):
        trc = Tracer(tmp_path, "unit")
        with trc.span("outer", None, k="v") as outer:
            with trc.span("inner", outer) as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.span_id != outer.span_id
        trc.close()
        events = load_events(tmp_path)
        named = {e["name"]: e for e in events}
        assert named["inner"]["args"]["parent"] == \
            named["outer"]["args"]["span"]
        assert named["outer"]["args"]["parent"] == ""
        assert named["outer"]["args"]["k"] == "v"
        assert all(e["ph"] == "X" and e["dur"] >= 0 for e in events)


# -- snapshot schema -----------------------------------------------------------

class TestSnapshotSchema:
    #: The pinned top-level key set of snapshot schema 4.  If this test
    #: fails, you changed the snapshot shape: bump SNAPSHOT_SCHEMA and
    #: update this pin (and docs/operations.md) in the same change.
    ALWAYS = {
        "schema", "uptime_s", "started_unix", "sessions", "syncs_total",
        "by_shard", "rounds_total", "payload_bytes", "framing_bytes",
        "encode_s", "decode_s", "applied_total", "latency",
        "recent_sessions",
    }
    OPTIONAL = {
        "resizes", "sets_moved", "coalescer", "sets", "admission",
        "cluster", "timeseries", "slo",
    }

    def test_schema_and_key_set_pinned(self):
        metrics = ServiceMetrics()
        session = metrics.open_session(peer="t")
        session.set_name = "s"
        session.success = True
        metrics.close_session(session)
        snap = metrics.snapshot()
        assert snap["schema"] == SNAPSHOT_SCHEMA == 4
        assert set(snap) == self.ALWAYS
        full = metrics.snapshot(
            store_stats={}, admission_stats={},
            cluster_stats={"per_shard": []},
            window_stats={"windows": []}, slo_stats={"burning": False},
        )
        assert set(full) == self.ALWAYS | {
            "sets", "admission", "cluster", "timeseries", "slo",
        }
        assert set(full) <= self.ALWAYS | self.OPTIONAL
        json.dumps(full)        # the whole document stays JSON-able

    def test_durations_use_monotonic_clock(self):
        """Session durations come from the monotonic clock: the session
        dict exposes a non-negative duration plus the wall timestamp
        separately (``started_unix``) for humans."""
        metrics = ServiceMetrics()
        session = metrics.open_session()
        detail = session.to_dict()
        assert detail["duration_s"] >= 0.0
        assert session.started_unix > 1e9      # a wall timestamp
        assert session.started_mono != session.started_unix


# -- admin endpoint ------------------------------------------------------------

async def _http_get(port: int, path: str) -> tuple[str, str]:
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    writer.write(
        f"GET {path} HTTP/1.1\r\nHost: t\r\n\r\n".encode("ascii")
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    await writer.wait_closed()
    head, _, body = raw.decode("utf-8").partition("\r\n\r\n")
    return head.split("\r\n")[0], body


class TestAdminServer:
    def _serve(self, health_ok: dict):
        reg = MetricsRegistry()
        reg.histogram(SESSION_DURATION).record(0.05)
        reg.histogram(DECODE_BATCH).record(0.002)
        metrics = ServiceMetrics()
        return AdminServer(
            varz=lambda: metrics.snapshot(),
            health=lambda: (
                health_ok["ok"],
                {"status": "ok" if health_ok["ok"] else "degraded"},
            ),
            histograms=reg.histograms,
            port=0,
        )

    def test_endpoints(self):
        health_ok = {"ok": True}

        async def run():
            async with self._serve(health_ok) as admin:
                status, text = await _http_get(admin.port, "/metrics")
                assert status == "HTTP/1.1 200 OK"
                assert "# TYPE repro_session_duration_seconds histogram" \
                    in text
                assert 'repro_decode_batch_seconds_bucket{le="+Inf"} 1' \
                    in text
                # sane exposition: every sample line is NAME[{labels}] VALUE
                for line in text.strip().splitlines():
                    if line.startswith("#"):
                        continue
                    name, _, value = line.rpartition(" ")
                    assert name.startswith("repro_"), line
                    float(value)
                status, body = await _http_get(admin.port, "/healthz")
                assert status == "HTTP/1.1 200 OK"
                assert json.loads(body)["status"] == "ok"
                health_ok["ok"] = False
                status, body = await _http_get(admin.port, "/healthz")
                assert status == "HTTP/1.1 503 Service Unavailable"
                assert json.loads(body)["status"] == "degraded"
                status, body = await _http_get(admin.port, "/varz")
                assert status == "HTTP/1.1 200 OK"
                varz = json.loads(body)
                assert varz["schema"] == SNAPSHOT_SCHEMA
                status, _ = await _http_get(admin.port, "/nope")
                assert status == "HTTP/1.1 404 Not Found"

        asyncio.run(run())

    def test_le_buckets_are_cumulative_and_ordered(self):
        reg = MetricsRegistry()
        for v in (0.0001, 0.001, 0.01, 0.1, 1.0):
            reg.histogram(SESSION_DURATION).record(v)
        text = prometheus_text({"sessions": {}}, reg.histograms())
        counts = []
        for line in text.splitlines():
            if line.startswith("repro_session_duration_seconds_bucket"):
                counts.append(float(line.rpartition(" ")[2]))
        assert counts == sorted(counts)             # cumulative
        assert counts[-1] == 5.0                    # le="+Inf" == count
        assert len(counts) == len(PROMETHEUS_BOUNDS) + 1


# -- windowed metrics ----------------------------------------------------------

class TestHistogramDelta:
    def test_delta_isolates_samples_since_snapshot(self):
        hist = LatencyHistogram()
        hist.record(0.001)
        hist.record(0.002)
        earlier = hist.copy()
        hist.record(0.5)
        hist.record(0.6)
        window = hist.delta(earlier)
        assert window.count == 2
        assert window.sum == pytest.approx(1.1)
        # the old millisecond samples must not drag the window's p50 down
        assert window.percentile(0.50) == pytest.approx(0.5, rel=0.13)
        assert 0.4 <= window.min <= window.max <= 0.7

    def test_copy_is_independent(self):
        hist = LatencyHistogram()
        hist.record(0.01)
        snap = hist.copy()
        hist.record(0.02)
        assert snap.count == 1 and hist.count == 2

    def test_counter_reset_clamps_to_empty_window(self):
        """A worker restart hands us a cumulative histogram *behind* the
        snapshot; the delta must be empty, never negative."""
        earlier = LatencyHistogram()
        for _ in range(5):
            earlier.record(0.01)
        fresh = LatencyHistogram()
        fresh.record(0.01)
        window = fresh.delta(earlier)
        assert window.count == 0
        assert sum(window.counts) == 0

    def test_no_new_samples_is_empty(self):
        hist = LatencyHistogram()
        hist.record(0.01)
        assert hist.delta(hist.copy()).count == 0


class TestWindowedMetrics:
    def test_first_tick_baselines_then_deltas(self):
        wm = WindowedMetrics(interval_s=5.0)
        hist = LatencyHistogram()
        hist.record(0.010)
        assert wm.tick({"sessions": 10}, {"lat": hist},
                       now_unix=1000.0, now_mono=50.0) is None
        hist.record(0.030)
        window = wm.tick({"sessions": 16}, {"lat": hist},
                         now_unix=1005.0, now_mono=55.0)
        assert window["schema"] == WINDOW_SCHEMA == 1
        assert window["deltas"]["sessions"] == 6.0
        assert window["rates"]["sessions_per_s"] == pytest.approx(1.2)
        assert window["duration_s"] == pytest.approx(5.0)
        # only the sample recorded inside the window
        assert window["latency"]["lat"]["count"] == 1
        assert window["latency"]["lat"]["p50_s"] == \
            pytest.approx(0.030, rel=0.13)
        assert wm.latest() is window

    def test_counter_reset_clamps_to_zero(self):
        wm = WindowedMetrics()
        wm.tick({"sessions": 100}, now_unix=0.0, now_mono=0.0)
        window = wm.tick({"sessions": 5}, now_unix=5.0, now_mono=5.0)
        assert window["deltas"]["sessions"] == 0.0

    def test_ring_is_bounded_and_timeseries_shaped(self):
        wm = WindowedMetrics(interval_s=1.0, capacity=4)
        for i in range(10):
            wm.tick({"n": i}, now_unix=float(i), now_mono=float(i))
        windows = wm.windows()
        assert len(windows) == 4                    # 9 closed, 4 kept
        assert windows[-1]["index"] == 9
        assert [w["index"] for w in windows] == [6, 7, 8, 9]
        doc = wm.timeseries()
        assert doc["schema"] == WINDOW_SCHEMA == 1
        assert doc["interval_s"] == 1.0
        assert doc["windows"] == windows
        json.dumps(doc)

    def test_zero_duration_tick_is_dropped(self):
        wm = WindowedMetrics()
        wm.tick({"n": 1}, now_unix=0.0, now_mono=10.0)
        assert wm.tick({"n": 2}, now_unix=0.0, now_mono=10.0) is None


class TestSloTracker:
    def _window(self, p99_s=None, sessions=0, failed=0, sheds=0):
        latency = {}
        if p99_s is not None:
            latency[SESSION_DURATION] = {"count": 1, "p99_s": p99_s}
        return {
            "deltas": {
                "sessions": float(sessions),
                "failed": float(failed),
                "sheds": float(sheds),
            },
            "latency": latency,
        }

    def test_disabled_without_targets(self):
        assert not SloTracker().enabled
        assert SloTracker(p99_ms=100.0).enabled
        assert SloTracker(shed_rate=0.01).enabled

    def test_p99_breach_and_recovery(self):
        slo = SloTracker(p99_ms=100.0)
        bad = slo.grade(self._window(p99_s=0.250, sessions=10))
        assert not bad["ok"] and bad["breaches"] == ["p99"]
        assert slo.consecutive_breaches == 1
        good = slo.grade(self._window(p99_s=0.050, sessions=10))
        assert good["ok"]
        state = slo.state()
        assert state["consecutive_breaches"] == 0
        assert state["windows_breached"] == 1
        assert state["windows_graded"] == 2
        assert state["burn_rate"] == pytest.approx(0.5)
        assert not state["burning"]

    def test_shed_rate_breach(self):
        slo = SloTracker(shed_rate=0.01)
        block = slo.grade(self._window(sessions=90, sheds=10))
        assert block["breaches"] == ["shed_rate"]
        assert block["shed_rate"] == pytest.approx(0.1)
        assert slo.state()["burning"]

    def test_idle_window_does_not_breach_shed_rate(self):
        slo = SloTracker(shed_rate=0.01)
        assert slo.grade(self._window())["ok"]

    def test_grade_annotates_window(self):
        slo = SloTracker(p99_ms=100.0)
        window = self._window(p99_s=0.2, sessions=1)
        slo.grade(window)
        assert window["slo"]["breaches"] == ["p99"]


class TestTimeseriesEndpoint:
    def test_timeseries_served_and_404_without(self):
        wm = WindowedMetrics(interval_s=1.0)
        wm.tick({"n": 0}, now_unix=0.0, now_mono=0.0)
        wm.tick({"n": 3}, now_unix=1.0, now_mono=1.0)

        async def run():
            async with AdminServer(
                varz=lambda: {"schema": SNAPSHOT_SCHEMA},
                health=lambda: (True, {"status": "ok"}),
                histograms=dict,
                timeseries=wm.timeseries,
                port=0,
            ) as admin:
                status, body = await _http_get(admin.port, "/timeseries")
                assert status == "HTTP/1.1 200 OK"
                doc = json.loads(body)
                assert doc["interval_s"] == 1.0
                assert len(doc["windows"]) == 1
                assert doc["windows"][0]["deltas"]["n"] == 3.0
            async with AdminServer(
                varz=lambda: {"schema": SNAPSHOT_SCHEMA},
                health=lambda: (True, {"status": "ok"}),
                histograms=dict,
                port=0,
            ) as admin:
                status, _ = await _http_get(admin.port, "/timeseries")
                assert status == "HTTP/1.1 404 Not Found"

        asyncio.run(run())

    def test_slo_gauges_in_prometheus_text(self):
        snapshot = {
            "sessions": {},
            "slo": {
                "burning": True,
                "burn_rate": 0.25,
                "consecutive_breaches": 2,
                "windows_breached": 3,
                "windows_graded": 12,
            },
        }
        text = prometheus_text(snapshot, {})
        assert "repro_slo_window_breach 1" in text
        assert "repro_slo_burn_rate 0.25" in text
        assert "repro_slo_consecutive_breaches 2" in text
        assert "repro_slo_windows_breached_total 3" in text
        assert "repro_slo_windows_graded_total 12" in text
        # no objectives -> no slo series at all
        assert "repro_slo" not in prometheus_text({"sessions": {}}, {})


class TestTraceRotation:
    def test_rotation_caps_growth_and_merge_sees_both(self, tmp_path):
        trc = Tracer(tmp_path, "rot", max_bytes=2000)
        ctx = trc.mint()
        for i in range(100):
            trc.emit(f"span-{i:03d}", ctx, None, 0.0, 0.001)
        trc.close()
        files = sorted(p.name for p in tmp_path.glob("trace-*.jsonl"))
        assert len(files) == 2                     # live + one rotation
        assert any(".1.jsonl" in name for name in files)
        for path in tmp_path.glob("trace-*.jsonl"):
            # each generation stays near the cap (one span of overshoot)
            assert path.stat().st_size <= 2000 + 500
        events = load_events(tmp_path)
        names = {e["name"] for e in events}
        # the newest spans always survive; older ones may rotate away
        assert "span-099" in names
        assert len(events) >= 2

    def test_unbounded_without_max_bytes(self, tmp_path):
        trc = Tracer(tmp_path, "nocap")
        ctx = trc.mint()
        for _i in range(200):
            trc.emit("s", ctx, None, 0.0, 0.001)
        trc.close()
        assert len(list(tmp_path.glob("trace-*.jsonl"))) == 1
        assert len(load_events(tmp_path)) == 200


# -- structured logging --------------------------------------------------------

class TestLogs:
    def test_json_formatter_hoists_extras(self):
        record = logging.LogRecord(
            "repro.storage", logging.WARNING, __file__, 1,
            "slow storage commit", (), None,
        )
        record.elapsed_ms = 150.0
        record.trace = "deadbeef"
        event = json.loads(JsonFormatter().format(record))
        assert event["component"] == "storage"
        assert event["msg"] == "slow storage commit"
        assert event["elapsed_ms"] == 150.0
        assert event["trace"] == "deadbeef"

    def test_configure_is_idempotent_and_scoped(self):
        stream = StringIO()
        root = configure_logging("debug", json_out=True, stream=stream)
        configure_logging("warning", json_out=True, stream=stream)
        try:
            assert len(root.handlers) == 1       # replaced, not stacked
            assert root.propagate is False       # process root untouched
            assert logging_config() == ("warning", True)
            logging.getLogger("repro.server").warning(
                "w", extra={"shard": 3})
            event = json.loads(stream.getvalue())
            assert event["component"] == "server"
            assert event["shard"] == 3
        finally:
            for handler in list(root.handlers):
                root.removeHandler(handler)

    def test_slow_op_threshold_knob(self):
        before = slow_op_threshold_s()
        try:
            set_slow_op_threshold(0.25)
            assert slow_op_threshold_s() == 0.25
            set_slow_op_threshold(-1.0)
            assert slow_op_threshold_s() == 0.0   # clamped
        finally:
            set_slow_op_threshold(before)

    def test_slow_decode_batch_warns_with_trace(self):
        """A decode batch over the threshold logs one WARNING carrying
        the batch shape and the submitting trace id."""
        from repro.service.scheduler import DecodeCoalescer

        records: list[logging.LogRecord] = []
        handler = logging.Handler()
        handler.emit = records.append
        log = logging.getLogger("repro.decode")
        log.addHandler(handler)
        before = slow_op_threshold_s()
        set_slow_op_threshold(0.0)      # everything is slow now
        try:
            coalescer = DecodeCoalescer(enabled=False)
            coalescer._observe(
                0.0, 0.5, groups=3, sessions=2,
                trace=TraceContext(0xFEED, 1),
            )
        finally:
            set_slow_op_threshold(before)
            log.removeHandler(handler)
        assert len(records) == 1
        assert records[0].levelno == logging.WARNING
        assert records[0].trace == f"{0xFEED:016x}"
        assert records[0].sessions == 2


# -- proc-mode cross-process trace tree ----------------------------------------

class TestProcTraceTree:
    def test_one_session_one_tree_across_processes(
        self, tmp_path, no_tracing
    ):
        """The acceptance drill: a proc-mode session emits spans from
        the client/server process *and* the shard-worker subprocesses,
        all sharing one trace id with intact parent/child links."""
        from repro.cluster import ClusterConfig, open_cluster
        from repro.service import ClientConnection, ReconciliationServer

        trace_dir = tmp_path / "traces"
        configure_tracing(trace_dir, role="server")

        async def run():
            store = open_cluster(
                tmp_path / "data",
                ClusterConfig(shards=2, executor="subprocess"),
            )
            await store.start()
            server = ReconciliationServer(store, port=0)
            await server.start()
            try:
                for name in ("t0", "t1", "t2"):
                    conn = ClientConnection(
                        "127.0.0.1", server.port, set_name=name)
                    await conn.connect()
                    result = await conn.sync(set(range(1, 400)))
                    await conn.close()
                    assert result.success
            finally:
                await server.close()
                await store.close()

        asyncio.run(run())
        configure_tracing(None)

        events = load_events(trace_dir)
        roles = {e["args"]["role"] for e in events}
        assert "server" in roles
        assert any(role.startswith("worker-") for role in roles)
        assert len({e["pid"] for e in events}) >= 2     # cross-process

        clients = [e for e in events if e["name"] == "client.session"]
        assert len(clients) == 3
        by_span = {e["args"]["span"]: e for e in events}
        # at least one session's tree must reach a worker process (the
        # ring may route some sets to either shard, but 3 sets with 2
        # shards guarantees a worker decode + commit somewhere)
        worker_named = {
            e["name"] for e in events
            if e["args"]["role"].startswith("worker-")
        }
        assert "decode.batch" in worker_named
        assert "storage.commit" in worker_named
        trees_with_worker = 0
        for client in clients:
            trace_id = client["args"]["trace"]
            tree = [e for e in events if e["args"]["trace"] == trace_id]
            names = {e["name"] for e in tree}
            assert {"client.session", "server.session",
                    "server.pass"} <= names
            for event in tree:
                parent = event["args"]["parent"]
                if parent:
                    assert parent in by_span, (event["name"], parent)
                    assert by_span[parent]["args"]["trace"] == trace_id
            if any(e["args"]["role"].startswith("worker-") for e in tree):
                trees_with_worker += 1
        assert trees_with_worker == 3   # every session reached its worker
