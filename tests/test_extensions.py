"""Extension features: MSet-XOR-Hash and the BF-based crude reconciler."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bf_recon import BFReconProtocol
from repro.core.multiset_hash import MSetXorHash
from repro.workloads.generator import SetPairGenerator


class TestMSetXorHash:
    def test_empty_set(self):
        assert MSetXorHash(seed=1).hash_set([]) == (0, 0, 0, 0)

    def test_order_independence(self, rng):
        h = MSetXorHash(seed=2)
        vals = [int(v) for v in rng.integers(1, 1 << 32, size=50)]
        shuffled = list(vals)
        rng.shuffle(shuffled)
        assert h.hash_set(vals) == h.hash_set(shuffled)

    def test_incremental_add_matches_batch(self, rng):
        h = MSetXorHash(seed=3)
        base = [int(v) for v in rng.integers(1, 1 << 32, size=30)]
        extra = int(rng.integers(1, 1 << 32))
        incremental = h.update(h.hash_set(base), extra, +1)
        assert incremental == h.hash_set(base + [extra])

    def test_remove_inverts_add(self):
        h = MSetXorHash(seed=4)
        digest = h.hash_set([10, 20])
        assert h.update(h.update(digest, 30, +1), 30, -1) == digest

    def test_zero_sign_is_noop(self):
        h = MSetXorHash(seed=5)
        digest = h.hash_set([7])
        assert h.update(digest, 99, 0) == digest

    def test_distinguishes_different_sets(self, rng):
        h = MSetXorHash(seed=6)
        seen = set()
        for _ in range(200):
            vals = [int(v) for v in rng.integers(1, 1 << 32, size=5)]
            seen.add(h.hash_set(vals))
        assert len(seen) == 200  # 256-bit digests: collisions implausible

    def test_seed_changes_function(self):
        assert MSetXorHash(seed=1).hash_set([5]) != MSetXorHash(seed=2).hash_set([5])

    def test_digest_bytes(self):
        assert MSetXorHash.digest_bytes() == 32

    @given(st.sets(st.integers(1, 2**32 - 1), max_size=20),
           st.sets(st.integers(1, 2**32 - 1), max_size=20))
    @settings(max_examples=60)
    def test_xor_homomorphism(self, a, b):
        """H(A) xor H(B) = H(A xor-diff B) — the multiset identity that
        makes the hash usable as a reconciliation verifier."""
        h = MSetXorHash(seed=7)
        ha, hb = h.hash_set(a), h.hash_set(b)
        combined = tuple(x ^ y for x, y in zip(ha, hb))
        assert combined == h.hash_set(set(a) ^ set(b))


class TestBFRecon:
    def test_small_sets_exact(self):
        r = BFReconProtocol(seed=1, fpr=0.001).run({1, 2, 3}, {3, 4})
        assert r.difference <= frozenset({1, 2, 4})

    def test_never_invents_elements(self):
        gen = SetPairGenerator(seed=2)
        pair = gen.generate_two_sided(common=2000, only_a=40, only_b=30)
        r = BFReconProtocol(seed=3).run(pair.a, pair.b)
        assert r.difference <= pair.difference

    def test_systematic_underestimation(self):
        """The §7 criticism: with a non-trivial false-positive rate the
        scheme misses a predictable fraction of the difference."""
        gen = SetPairGenerator(seed=4)
        missed_total = 0
        trials = 10
        for trial in range(trials):
            pair = gen.generate_two_sided(common=3000, only_a=100, only_b=100)
            r = BFReconProtocol(seed=trial, fpr=0.05).run(pair.a, pair.b)
            missed_total += r.extra["missed"]
        # E[missed] ~ fpr * d = 10 per trial; demand at least a few overall
        assert missed_total > 0
        assert missed_total / trials < 40  # but not catastrophic

    def test_success_flag_honest(self):
        gen = SetPairGenerator(seed=5)
        pair = gen.generate_two_sided(common=3000, only_a=100, only_b=100)
        r = BFReconProtocol(seed=6, fpr=0.05).run(pair.a, pair.b)
        assert r.success == (r.difference == pair.difference)

    def test_identical_sets(self):
        r = BFReconProtocol(seed=7).run({5, 6}, {5, 6})
        assert r.success and r.difference == frozenset()

    def test_empty_sides(self):
        r = BFReconProtocol(seed=8).run(set(), {1, 2})
        assert r.difference <= frozenset({1, 2})

    def test_bytes_accounted(self):
        gen = SetPairGenerator(seed=9)
        pair = gen.generate(size_a=2000, d=10)
        r = BFReconProtocol(seed=10).run(pair.a, pair.b)
        labels = r.channel.bytes_by_label()
        assert labels.get("bloom", 0) > 0
        assert "elements" in labels
