"""Hashing substrates: xxHash vectors, salted family, 4-wise family."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing import (
    FourWiseHash,
    SaltedHash,
    bucket_of,
    mix64,
    mix64_vec,
    mulmod_p61,
    mulmod_p61_vec,
    xxh32,
    xxh64,
)
from repro.hashing.fourwise import P61


class TestXXHashVectors:
    """Known-answer vectors from the reference implementation."""

    def test_xxh32_empty(self):
        assert xxh32(b"") == 0x02CC5D05

    def test_xxh64_empty(self):
        assert xxh64(b"") == 0xEF46DB3751D8E999

    def test_xxh32_abc(self):
        assert xxh32(b"abc") == 0x32D153FF

    def test_xxh64_abc(self):
        assert xxh64(b"abc") == 0x44BC2CF5AD770999

    def test_seed_changes_output(self):
        assert xxh64(b"hello", 0) != xxh64(b"hello", 1)
        assert xxh32(b"hello", 0) != xxh32(b"hello", 1)

    @pytest.mark.parametrize("length", [0, 1, 3, 4, 7, 8, 15, 16, 17, 31, 32, 33, 100])
    def test_all_length_regimes_deterministic(self, length):
        data = bytes(range(256))[:length] * (1 if length <= 256 else 1)
        assert xxh64(data, 7) == xxh64(data, 7)
        assert 0 <= xxh32(data, 7) < 2**32
        assert 0 <= xxh64(data, 7) < 2**64

    def test_long_input_stripe_path(self):
        data = bytes(i % 256 for i in range(1000))
        # exercises the 32-byte stripe loop plus tail
        assert xxh64(data) != xxh64(data[:-1])

    def test_avalanche_single_bit(self):
        a = xxh64(b"\x00" * 16)
        b = xxh64(b"\x00" * 15 + b"\x01")
        # a single flipped input bit should flip roughly half the output
        assert 20 <= bin(a ^ b).count("1") <= 44


class TestMix64:
    def test_scalar_vector_agree(self, rng):
        xs = rng.integers(0, 1 << 63, size=500, dtype=np.uint64)
        vec = mix64_vec(xs)
        for x, v in zip(xs[:64], vec[:64]):
            assert mix64(int(x)) == int(v)

    def test_is_a_permutation_on_sample(self, rng):
        xs = rng.integers(0, 1 << 63, size=10_000, dtype=np.uint64)
        assert len(np.unique(mix64_vec(xs))) == len(np.unique(xs))


class TestSaltedHash:
    def test_scalar_vector_agree(self, rng):
        h = SaltedHash(123)
        xs = rng.integers(1, 1 << 32, size=256, dtype=np.uint64)
        vec = h.hash_vec(xs)
        for x, v in zip(xs, vec):
            assert h(int(x)) == int(v)

    def test_different_salts_decorrelate(self, rng):
        xs = rng.integers(1, 1 << 32, size=4096, dtype=np.uint64)
        b1 = SaltedHash(1).bucket_vec(xs, 2)
        b2 = SaltedHash(2).bucket_vec(xs, 2)
        agree = float((b1 == b2).mean())
        assert 0.45 < agree < 0.55  # independent fair coins

    def test_bucket_uniformity_chi_square(self, rng):
        n_buckets = 64
        xs = rng.integers(1, 1 << 32, size=64_000, dtype=np.uint64)
        counts = np.bincount(
            SaltedHash(9).bucket_vec(xs, n_buckets), minlength=n_buckets
        )
        expected = len(xs) / n_buckets
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        # dof = 63; mean 63, sd ~11; 200 is a ~12-sigma guard band
        assert chi2 < 200

    def test_bucket_of_convenience(self):
        assert bucket_of(5, 7, 10) == SaltedHash(7).bucket(5, 10)

    def test_bit_is_balanced(self, rng):
        xs = rng.integers(1, 1 << 32, size=20_000, dtype=np.uint64)
        h = SaltedHash(5)
        ones = sum(h.bit(int(x)) for x in xs[:2000])
        assert 800 < ones < 1200


class TestMulmodP61:
    @given(st.integers(0, P61 - 1), st.integers(0, P61 - 1))
    @settings(max_examples=200)
    def test_vector_matches_int_math(self, a, b):
        got = mulmod_p61_vec(
            np.array([a], dtype=np.uint64), np.array([b], dtype=np.uint64)
        )[0]
        assert int(got) == mulmod_p61(a, b)

    def test_bulk_against_reference(self, rng):
        a = rng.integers(0, P61, size=3000, dtype=np.uint64)
        b = rng.integers(0, P61, size=3000, dtype=np.uint64)
        got = mulmod_p61_vec(a, b)
        ref = [(int(x) * int(y)) % P61 for x, y in zip(a, b)]
        assert [int(v) for v in got] == ref

    def test_edge_values(self):
        edges = np.array([0, 1, 2, P61 - 1, P61 - 2, 1 << 32, (1 << 61) - 2],
                         dtype=np.uint64)
        for a in edges:
            for b in edges:
                got = mulmod_p61_vec(np.array([a]), np.array([b]))[0]
                assert int(got) == (int(a) * int(b)) % P61


class TestFourWise:
    def test_scalar_vector_agree(self, rng):
        f = FourWiseHash(seed=11)
        xs = rng.integers(1, 1 << 32, size=128, dtype=np.uint64)
        vec = f.hash_vec(xs)
        for x, v in zip(xs, vec):
            assert f(int(x)) == int(v)

    def test_signs_are_plus_minus_one(self, rng):
        f = FourWiseHash(seed=3)
        xs = rng.integers(1, 1 << 32, size=1000, dtype=np.uint64)
        signs = f.signs(xs)
        assert set(np.unique(signs)) <= {-1, 1}

    def test_signs_balanced(self, rng):
        f = FourWiseHash(seed=5)
        xs = rng.integers(1, 1 << 32, size=50_000, dtype=np.uint64)
        mean = float(f.signs(xs).mean())
        assert abs(mean) < 0.02

    def test_pairwise_sign_products_unbiased(self, rng):
        """E[f(x) f(y)] = 0 for distinct x, y — the key ToW requirement."""
        xs = rng.integers(1, 1 << 32, size=2000, dtype=np.uint64)
        ys = xs + np.uint64(1)
        acc = 0.0
        n_funcs = 50
        for i in range(n_funcs):
            f = FourWiseHash(seed=1000 + i)
            acc += float((f.signs(xs) * f.signs(ys)).mean())
        assert abs(acc / n_funcs) < 0.02

    def test_distinct_seeds_distinct_functions(self):
        f1, f2 = FourWiseHash(seed=1), FourWiseHash(seed=2)
        xs = np.arange(1, 2001, dtype=np.uint64)
        assert (f1.signs(xs) != f2.signs(xs)).any()
