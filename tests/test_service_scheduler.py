"""The decode coalescer must batch across sessions without changing results."""

from __future__ import annotations

import asyncio

import pytest

from repro.bch.codec import BCHCodec
from repro.gf import field_for
from repro.service.scheduler import DecodeCoalescer


@pytest.fixture(scope="module")
def codec() -> BCHCodec:
    return BCHCodec(field_for(7), t=5)


def _deltas(codec: BCHCodec, element_sets: list[list[int]]) -> list[list[int]]:
    return [codec.sketch(elements) for elements in element_sets]


ELEMENT_SETS = [[3, 77], [15], [9, 10, 11], []]
OVERFLOW = list(range(1, 10))  # > t elements: must decode to None


class TestCoalescedDecode:
    def test_concurrent_submissions_share_one_batch(self, codec):
        async def scenario():
            coalescer = DecodeCoalescer(window_s=0.01)
            jobs = [
                coalescer.decode(codec, _deltas(codec, [els, OVERFLOW]))
                for els in ELEMENT_SETS
            ]
            results = await asyncio.gather(*jobs)
            return coalescer, results

        coalescer, results = asyncio.run(scenario())
        for els, (decoded, share) in zip(ELEMENT_SETS, results):
            assert decoded == [sorted(els), None]
            assert share >= 0.0
        assert coalescer.stats.batches == 1
        assert coalescer.stats.coalesced_batches == 1
        assert coalescer.stats.max_sessions_per_batch == len(ELEMENT_SETS)
        assert coalescer.stats.groups == 2 * len(ELEMENT_SETS)

    def test_results_match_direct_decode(self, codec):
        deltas = _deltas(codec, ELEMENT_SETS + [OVERFLOW])
        direct = codec.decode_many(deltas)

        async def scenario():
            coalescer = DecodeCoalescer(window_s=0.005)
            # split the same work across three "sessions"
            jobs = [
                coalescer.decode(codec, deltas[:2]),
                coalescer.decode(codec, deltas[2:4]),
                coalescer.decode(codec, deltas[4:]),
            ]
            parts = await asyncio.gather(*jobs)
            return [row for part, _ in parts for row in part]

        assert asyncio.run(scenario()) == direct

    def test_single_session_window_falls_back(self, codec):
        async def scenario():
            coalescer = DecodeCoalescer(window_s=0.001)
            decoded, _ = await coalescer.decode(
                codec, _deltas(codec, [[5, 6]])
            )
            return coalescer, decoded

        coalescer, decoded = asyncio.run(scenario())
        assert decoded == [[5, 6]]
        assert coalescer.stats.batches == 1
        assert coalescer.stats.coalesced_batches == 0
        assert coalescer.stats.max_sessions_per_batch == 1

    def test_disabled_coalescer_decodes_inline(self, codec):
        async def scenario():
            coalescer = DecodeCoalescer(enabled=False)
            decoded, seconds = await coalescer.decode(
                codec, _deltas(codec, [[42]])
            )
            assert coalescer.stats.batches == 1
            return decoded, seconds

        decoded, seconds = asyncio.run(scenario())
        assert decoded == [[42]]
        assert seconds > 0.0

    def test_empty_submission_short_circuits(self, codec):
        async def scenario():
            coalescer = DecodeCoalescer()
            return await coalescer.decode(codec, [])

        assert asyncio.run(scenario()) == ([], 0.0)

    def test_mixed_shapes_do_not_merge(self, codec):
        other = BCHCodec(field_for(8), t=5)

        async def scenario():
            coalescer = DecodeCoalescer(window_s=0.01)
            (r1, _), (r2, _) = await asyncio.gather(
                coalescer.decode(codec, _deltas(codec, [[3, 4]])),
                coalescer.decode(other, _deltas(other, [[200, 201]])),
            )
            return coalescer, r1, r2

        coalescer, r1, r2 = asyncio.run(scenario())
        assert r1 == [[3, 4]]
        assert r2 == [[200, 201]]
        assert coalescer.stats.batches == 2
        assert coalescer.stats.coalesced_batches == 0

    def test_share_attribution_sums_to_batch_time(self, codec):
        async def scenario():
            coalescer = DecodeCoalescer(window_s=0.01)
            jobs = [
                coalescer.decode(codec, _deltas(codec, [els]))
                for els in ELEMENT_SETS
            ]
            results = await asyncio.gather(*jobs)
            return coalescer, sum(share for _, share in results)

        coalescer, total_share = asyncio.run(scenario())
        assert total_share == pytest.approx(coalescer.stats.decode_s)
