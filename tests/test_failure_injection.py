"""Failure injection: corrupted wire data and hostile conditions.

The contract under corruption is *no silent lies*: a tampered message
must either raise a serialization/decode error, desynchronize detectably,
or — if it happens to parse — be caught by the checksum so the final
``success`` flag stays honest.  PBS's gatekeeper design (§2.2.3) makes
the last case the common one.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bch.codec import BCHCodec
from repro.core.messages import ReplyMessage, SketchMessage
from repro.core.params import PBSParams
from repro.core.sessions import AliceSession, BobSession
from repro.errors import DecodeFailure, ReproError, SerializationError
from repro.gf import field_for
from repro.utils.bitio import BitReader
from repro.workloads.generator import SetPairGenerator


class TestCorruptedSketchMessages:
    """Flip bits in Alice's round-1 sketch and drive the round."""

    def _setup(self, seed: int):
        gen = SetPairGenerator(seed=seed)
        pair = gen.generate(size_a=1500, d=30)
        params = PBSParams.from_d(30)
        alice = AliceSession(pair.a, params, seed=seed)
        bob = BobSession(pair.b, params, seed=seed)
        return pair, params, alice, bob

    @pytest.mark.parametrize("trial", range(6))
    def test_no_silent_wrong_difference(self, trial, fault_plan):
        pair, params, alice, bob = self._setup(trial)
        msg = alice.build_sketch_message(1)
        wire = msg.serialize(params.t, params.m)
        corrupted = fault_plan(trial).flip_bit(wire)
        try:
            tampered = SketchMessage.deserialize(corrupted, params.t, params.m)
            reply = bob.handle_sketch_message(tampered)
            alice.handle_reply(reply, 1)
        except ReproError:
            return  # detected: acceptable outcome
        # Otherwise the corruption flowed through one round; the checksum
        # must prevent a *wrong verified* difference.
        if alice.done:
            assert alice.difference() == pair.difference

    def test_truncated_message_detected(self):
        _, params, alice, bob = self._setup(99)
        wire = alice.build_sketch_message(1).serialize(params.t, params.m)
        with pytest.raises(ReproError):
            tampered = SketchMessage.deserialize(wire[: len(wire) // 2],
                                                 params.t, params.m)
            bob.handle_sketch_message(tampered)


class TestCorruptedReplies:
    def test_random_reply_bytes_never_verify_wrongly(self, fault_plan):
        gen = SetPairGenerator(seed=7)
        pair = gen.generate(size_a=1500, d=25)
        params = PBSParams.from_d(25)
        plan = fault_plan(0)
        for trial in range(6):
            alice = AliceSession(pair.a, params, seed=trial)
            bob = BobSession(pair.b, params, seed=trial)
            msg = alice.build_sketch_message(1)
            reply = bob.handle_sketch_message(msg)
            wire = reply.serialize(params.t, params.m, params.log_u)
            corrupted = plan.flip_bit(wire)
            try:
                tampered = ReplyMessage.deserialize(
                    corrupted, params.t, params.m, params.log_u
                )
                alice.handle_reply(tampered, 1)
            except ReproError:
                continue
            if alice.done:
                # All checksums verified despite corruption: the recovered
                # difference must still be the truth (the corrupt field was
                # immaterial or self-corrected by Procedure 3 checks).
                assert alice.difference() == pair.difference


class TestCodecFuzz:
    @given(st.binary(min_size=0, max_size=64))
    @settings(max_examples=80)
    def test_random_bytes_never_crash_deserializer(self, blob):
        codec = BCHCodec(field_for(7), 6)
        try:
            sketch = codec.deserialize(blob)
        except ReproError:
            return
        # parsed: decoding must either fail cleanly or return a consistent set
        try:
            out = codec.decode(sketch)
        except DecodeFailure:
            return
        assert codec.sketch(out) == sketch

    @given(st.lists(st.integers(0, 127), min_size=6, max_size=6))
    @settings(max_examples=80)
    def test_arbitrary_syndromes_decode_soundly(self, sketch):
        codec = BCHCodec(field_for(7), 6)
        try:
            out = codec.decode(sketch)
        except DecodeFailure:
            return
        assert codec.sketch(out) == sketch


class TestBitReaderFuzz:
    @given(st.binary(max_size=32), st.lists(st.integers(0, 70), max_size=12))
    @settings(max_examples=80)
    def test_reads_never_crash(self, blob, widths):
        reader = BitReader(blob)
        for width in widths:
            try:
                value = reader.read(width)
            except SerializationError:
                return
            assert 0 <= value < (1 << width) if width else value == 0


class TestHostileConditions:
    def test_adversarial_colliding_elements(self):
        """Elements engineered to share low bits must still partition
        uniformly (the hash family, not element structure, decides bins)."""
        base = 0x10000
        set_a = {base + (i << 20) for i in range(500)}
        set_b = set(list(set_a)[:480])
        from repro.core.protocol import reconcile_pbs

        r = reconcile_pbs(set_a, set_b, seed=3, true_d=20, max_rounds=8)
        assert r.success and r.difference == set_a ^ set_b

    def test_dense_consecutive_universe(self):
        from repro.core.protocol import reconcile_pbs

        set_a = set(range(1, 2001))
        set_b = set(range(1, 1951))
        r = reconcile_pbs(set_a, set_b, seed=4, true_d=50, max_rounds=8)
        assert r.success and r.difference == set(range(1951, 2001))

    def test_extreme_skew_tiny_b(self):
        from repro.core.protocol import reconcile_pbs

        gen = SetPairGenerator(seed=11)
        pair = gen.generate(size_a=3000, d=2995)
        r = reconcile_pbs(pair.a, pair.b, seed=5, true_d=2995, max_rounds=8)
        assert r.success and r.difference == pair.difference
