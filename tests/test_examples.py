"""The examples must run end to end (they are executable documentation)."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path
from unittest import mock

import pytest

EXAMPLES = Path(__file__).resolve().parents[1] / "examples"


def _run_example(name: str, argv: list[str] | None = None):
    path = EXAMPLES / f"{name}.py"
    assert path.exists(), f"missing example {path}"
    with mock.patch.object(sys, "argv", [str(path)] + (argv or [])):
        runpy.run_path(str(path), run_name="__main__")


def test_quickstart_runs(capsys):
    _run_example("quickstart")
    out = capsys.readouterr().out
    assert "difference: [1, 2, 3, 6]" in out
    assert "reconciled d=1000" in out


@pytest.mark.filterwarnings("ignore")
def test_blockchain_relay_runs(capsys):
    _run_example("blockchain_relay")
    out = capsys.readouterr().out
    assert "PBS relay" in out
    assert "reconciliation is" in out


def test_file_sync_runs(capsys):
    _run_example("file_sync")
    out = capsys.readouterr().out
    assert "sync plan" in out
    assert "conflicts:" in out


def test_service_sync_runs(capsys):
    _run_example("service_sync")
    out = capsys.readouterr().out
    assert "server listening on" in out
    assert "all parties converged to the union" in out


def test_parameter_tuning_runs(capsys):
    _run_example("parameter_tuning", argv=["300"])
    out = capsys.readouterr().out
    assert "optimal: n=" in out
    assert "round-target sweep" in out
