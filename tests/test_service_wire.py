"""The service frame codec: every message type must round-trip."""

from __future__ import annotations

import asyncio

import numpy as np
import pytest

from repro.core.messages import ReplyMessage, SketchMessage, UnitReply
from repro.core.params import PBSParams
from repro.errors import SerializationError
from repro.service.wire import (
    CONTROL_MESSAGES,
    FRAME_HEADER_BYTES,
    FrameType,
    Error,
    Hello,
    ParamsAnnounce,
    Push,
    Result,
    Retry,
    Welcome,
    decode_frames,
    encode_frame,
    read_frame,
)

#: One representative instance per control message type.
SAMPLES = {
    FrameType.HELLO: Hello(
        set_name="inventory/eu-west",
        seed=0xDEADBEEFCAFE,
        n_sketches=128,
        family="fourwise",
        log_u=32,
        bidirectional=False,
    ),
    FrameType.WELCOME: Welcome(set_size=99, created=True, set_version=7),
    FrameType.PARAMS: ParamsAnnounce(
        d_hat=37.25, n=127, t=13, g=4, delta=5, r=3, p0=0.99, log_u=32,
        set_size=99, set_version=7,
    ),
    FrameType.PUSH: Push(
        success=True,
        elements=np.array([1, 2, 2**32 - 1, 77], dtype=np.uint64),
    ),
    FrameType.RESULT: Result(
        success=True, applied=3, store_size=1000, store_version=8
    ),
    FrameType.RETRY: Retry(retry_after_s=0.25, message="shard 1 at capacity"),
    FrameType.ERROR: Error(message="no such set: 'x'"),
}


class TestControlMessages:
    def test_every_control_type_has_a_sample(self):
        assert set(SAMPLES) == set(CONTROL_MESSAGES)

    @pytest.mark.parametrize("ftype", sorted(CONTROL_MESSAGES))
    def test_round_trip(self, ftype):
        message = SAMPLES[ftype]
        cls = CONTROL_MESSAGES[ftype]
        restored = cls.deserialize(message.serialize())
        if ftype is FrameType.PUSH:
            assert restored.success == message.success
            assert np.array_equal(restored.elements, message.elements)
        else:
            assert restored == message

    def test_hello_rejects_wrong_version(self):
        data = bytearray(SAMPLES[FrameType.HELLO].serialize())
        data[0] = 99
        with pytest.raises(SerializationError):
            Hello.deserialize(bytes(data))

    def test_hello_rejects_non_u64_seed(self):
        with pytest.raises(SerializationError):
            Hello(set_name="x", seed=1 << 64).serialize()

    def test_params_announce_reconstructs_pbs_params(self):
        params = PBSParams.from_d(40)
        announce = ParamsAnnounce.from_params(params, d_hat=29.0)
        restored = ParamsAnnounce.deserialize(announce.serialize()).to_params()
        assert restored == params

    def test_push_rejects_short_payload(self):
        good = SAMPLES[FrameType.PUSH].serialize()
        with pytest.raises(SerializationError):
            Push.deserialize(good[:-4])


class TestCoreMessagesOverFrames:
    """SKETCH/REPLY payloads reuse the core bit-packed wire format."""

    def test_sketch_message_round_trip(self):
        msg = SketchMessage(
            round_no=2,
            continue_mask=[True, False, True],
            sketches=[[1, 2, 3], [4, 5, 6]],
        )
        t, m = 3, 7
        frame = encode_frame(FrameType.SKETCH, msg.serialize(t, m))
        [(ftype, payload)] = decode_frames(frame)
        assert ftype is FrameType.SKETCH
        assert SketchMessage.deserialize(payload, t, m) == msg

    def test_reply_message_round_trip(self):
        msg = ReplyMessage(
            round_no=1,
            replies=[
                UnitReply(decode_failed=False, positions=[3, 9],
                          xor_sums=[10, 20], checksum=42),
                UnitReply(decode_failed=True, positions=[], xor_sums=[],
                          checksum=None),
            ],
        )
        t, m, log_u = 5, 7, 32
        frame = encode_frame(FrameType.REPLY, msg.serialize(t, m, log_u))
        [(ftype, payload)] = decode_frames(frame)
        assert ftype is FrameType.REPLY
        assert ReplyMessage.deserialize(payload, t, m, log_u) == msg


class TestFraming:
    def test_header_overhead_is_constant(self):
        assert len(encode_frame(FrameType.ERROR, b"")) == FRAME_HEADER_BYTES
        assert (
            len(encode_frame(FrameType.SKETCH, b"abc"))
            == FRAME_HEADER_BYTES + 3
        )

    def test_decode_many_frames_back_to_back(self):
        buffer = encode_frame(FrameType.HELLO, b"h") + encode_frame(
            FrameType.WELCOME, b"w"
        )
        assert decode_frames(buffer) == [
            (FrameType.HELLO, b"h"),
            (FrameType.WELCOME, b"w"),
        ]

    def test_truncated_frame_raises(self):
        frame = encode_frame(FrameType.SKETCH, b"abcdef")
        with pytest.raises(SerializationError):
            decode_frames(frame[:-1])
        with pytest.raises(SerializationError):
            decode_frames(frame[:3])

    def test_unknown_type_raises(self):
        frame = bytearray(encode_frame(FrameType.SKETCH, b""))
        frame[4] = 200
        with pytest.raises(ValueError):
            decode_frames(bytes(frame))

    def test_read_frame_from_stream(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(encode_frame(FrameType.PARAMS, b"payload"))
            reader.feed_eof()
            ftype, payload = await read_frame(reader)
            assert ftype is FrameType.PARAMS
            assert payload == b"payload"
            with pytest.raises(asyncio.IncompleteReadError):
                await read_frame(reader)

        asyncio.run(scenario())

    def test_read_frame_rejects_bad_length(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\x00\x00\x00\x00rest")
            with pytest.raises(SerializationError):
                await read_frame(reader)

        asyncio.run(scenario())
