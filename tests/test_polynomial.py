"""Polynomial arithmetic over GF(2^m)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gf import field_for
from repro.gf import polynomial as P

F = field_for(8)

poly_strategy = st.lists(st.integers(0, 255), min_size=0, max_size=8).map(P.trim)


class TestBasics:
    def test_trim_removes_trailing_zeros(self):
        assert P.trim([1, 2, 0, 0]) == [1, 2]
        assert P.trim([0, 0]) == []

    def test_degree(self):
        assert P.degree([]) == -1
        assert P.degree([7]) == 0
        assert P.degree([0, 1]) == 1

    def test_add_is_xor(self):
        assert P.add([1, 2], [3]) == [2, 2]
        assert P.add([1, 2], [1, 2]) == []

    def test_scale(self):
        assert P.scale([1, 1], 0, F) == []
        assert P.scale([1, 2], 1, F) == [1, 2]

    def test_mul_simple(self):
        # (x + 1)(x + 1) = x^2 + 1 in characteristic 2
        assert P.mul([1, 1], [1, 1], F) == [1, 0, 1]

    def test_mul_by_zero(self):
        assert P.mul([], [1, 2, 3], F) == []

    def test_evaluate_horner(self):
        # p(x) = 3 + 2x at x = 1 -> 3 ^ 2 = 1
        assert P.evaluate([3, 2], 1, F) == 1
        assert P.evaluate([], 5, F) == 0
        assert P.evaluate([9], 123, F) == 9

    def test_from_roots_has_those_roots(self):
        roots = [3, 17, 200]
        poly = P.from_roots(roots, F)
        assert P.degree(poly) == 3
        for r in roots:
            assert P.evaluate(poly, r, F) == 0
        assert P.evaluate(poly, 5, F) != 0


class TestDivMod:
    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            P.divmod_poly([1, 2], [], F)

    @given(poly_strategy, poly_strategy)
    @settings(max_examples=150)
    def test_division_identity(self, num, den):
        if not den:
            return
        q, r = P.divmod_poly(num, den, F)
        assert P.degree(r) < P.degree(den) or r == []
        recomposed = P.add(P.mul(q, den, F), r)
        assert recomposed == P.trim(list(num))

    def test_mod_of_smaller_degree_is_identity(self):
        assert P.mod([1, 2], [0, 0, 1], F) == [1, 2]


class TestGcd:
    def test_gcd_of_coprime_is_one(self):
        a = P.from_roots([3, 5], F)
        b = P.from_roots([7, 9], F)
        assert P.gcd(a, b, F) == [1]

    def test_gcd_extracts_common_roots(self):
        a = P.from_roots([3, 5, 7], F)
        b = P.from_roots([7, 11], F)
        g = P.gcd(a, b, F)
        assert g == P.monic(P.from_roots([7], F), F)

    @given(poly_strategy, poly_strategy)
    @settings(max_examples=100)
    def test_gcd_divides_both(self, a, b):
        if not a or not b:
            return
        g = P.gcd(a, b, F)
        assert P.mod(a, g, F) == []
        assert P.mod(b, g, F) == []

    def test_gcd_is_monic(self):
        a = P.scale(P.from_roots([3, 5], F), 7, F)
        b = P.scale(P.from_roots([5, 9], F), 13, F)
        g = P.gcd(a, b, F)
        assert g[-1] == 1


class TestModularPowers:
    def test_pow_x_mod_small(self):
        # x^(2^0) = x mod f
        f = P.from_roots([3, 5, 9], F)
        assert P.pow_x_mod(0, f, F) == [0, 1]

    def test_pow_x_mod_agrees_with_direct(self):
        f = P.from_roots([3, 5, 9], F)
        # x^4 mod f via two squarings
        direct = P.mod([0, 0, 0, 0, 1], f, F)
        assert P.pow_x_mod(2, f, F) == direct

    def test_x_to_field_order_fixes_roots(self):
        """x^(2^m) ≡ x on every field element — so gcd(f, x^(2^m) - x)
        keeps exactly the roots that live in the field."""
        f = P.from_roots([3, 77, 200], F)
        xq = P.pow_x_mod(8, f, F)
        # x^(2^8) - x must vanish at every root of f
        diff = P.add(xq, [0, 1])
        for r in (3, 77, 200):
            assert P.evaluate(diff, r, F) == 0

    def test_trace_poly_values_are_gf2(self):
        f = P.from_roots([3, 77, 200], F)
        tr = P.trace_poly_mod(5, f, F)
        for r in (3, 77, 200):
            val = P.evaluate(tr, r, F)
            assert val in (0, 1)
            assert val == F.trace(F.mul(5, r))
