"""The documentation is part of the contract: tier-1 runs the same
doc-rot checks as the CI ``docs`` job (``scripts/check_docs.py``)."""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]


def test_docs_exist_and_are_linked():
    readme = (REPO / "README.md").read_text()
    for doc in ("docs/architecture.md", "docs/operations.md",
                "docs/development.md"):
        assert (REPO / doc).exists(), doc
        assert doc in readme, f"README does not link {doc}"


def test_check_docs_passes():
    """Links resolve, referenced paths exist, CLI examples parse against
    the live argparse surface, and every documented `repro <cmd> --help`
    actually runs."""
    env = dict(os.environ)
    env["PYTHONPATH"] = (
        str(REPO / "src") + os.pathsep + env.get("PYTHONPATH", "")
    )
    proc = subprocess.run(
        [sys.executable, str(REPO / "scripts" / "check_docs.py")],
        capture_output=True, text=True, timeout=300, env=env,
    )
    assert proc.returncode == 0, f"{proc.stdout}\n{proc.stderr}"
    # the checker really exercised something, not vacuously passed
    assert "6 CLI modes exercised" in proc.stdout, proc.stdout
