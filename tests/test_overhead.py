"""Analytic overhead formulas (Formula (1), §8.3, Fig. 5)."""

from __future__ import annotations

import pytest

from repro.analysis.overhead import (
    bits_to_kb,
    ddigest_bits,
    overhead_ratio,
    pbs_first_round_bits,
    pbs_vs_pinsketch_wp_curves,
    pinsketch_bits,
    pinsketch_wp_first_round_bits,
    theoretical_minimum_bits,
)


class TestFormulas:
    def test_formula_one_paper_instance(self):
        """§5.2: (n, t) = (127, 13), delta = 5 -> 318 bits per group."""
        assert pbs_first_round_bits(127, 13, 5, 32) == 318

    def test_r_sweep_paper_values(self):
        """All four §5.2 optima re-derived from their (n, t) pairs."""
        assert pbs_first_round_bits((1 << 19) - 1, 16, 5, 32) == 591
        assert pbs_first_round_bits(1023, 16, 5, 32) == 402
        assert pbs_first_round_bits(127, 13, 5, 32) == 318
        assert pbs_first_round_bits(63, 11, 5, 32) == 288

    def test_pinsketch_wp_pays_symbol_width(self):
        pbs = pbs_first_round_bits(127, 13, 5, 32)
        wp = pinsketch_wp_first_round_bits(13, 5, 32)
        assert wp == 13 * 32 + 32
        # per-group totals: PBS carries delta*(log n + log u) payload, WP
        # carries none, yet WP is still more expensive at 32-bit log u
        assert wp > pbs - 5 * (7 + 32)

    def test_minimum_and_ratio(self):
        assert theoretical_minimum_bits(100, 32) == 3200
        assert overhead_ratio(6400, 100, 32) == 2.0
        assert overhead_ratio(100, 0) == float("inf")

    def test_ddigest_six_x(self):
        assert ddigest_bits(100, 32) == 6 * theoretical_minimum_bits(100, 32)

    def test_pinsketch_at_exact_d_is_minimum(self):
        assert pinsketch_bits(100, 32) == theoretical_minimum_bits(100, 32)

    def test_bits_to_kb(self):
        assert bits_to_kb(8000) == 1.0


class TestFig5Curves:
    def test_ratio_grows_with_log_u(self):
        d_values = [100, 1000]
        c32 = pbs_vs_pinsketch_wp_curves(d_values, log_u=32)
        c256 = pbs_vs_pinsketch_wp_curves(d_values, log_u=256)
        for d in d_values:
            r32 = c32[d]["pinsketch_wp_kb"] / c32[d]["pbs_kb"]
            r256 = c256[d]["pinsketch_wp_kb"] / c256[d]["pbs_kb"]
            assert r256 > r32

    def test_pbs_stays_near_minimum_at_256(self):
        curves = pbs_vs_pinsketch_wp_curves([1000], log_u=256)
        row = curves[1000]
        assert row["pbs_kb"] / row["minimum_kb"] < 2.0

    def test_curves_scale_linearly_in_d(self):
        curves = pbs_vs_pinsketch_wp_curves([100, 10_000], log_u=256)
        ratio = curves[10_000]["pbs_kb"] / curves[100]["pbs_kb"]
        assert ratio == pytest.approx(100, rel=0.35)
