"""The StorageBackend contract, backend conversion, and the config API.

Contract tests run against every registered backend through the public
``open_backend`` factory — a new backend that passes this file (plus the
parametrized cluster suites) is a drop-in.  SQLite-specific behaviors
(WAL pragmas, lazy materialization, torn-WAL crash recovery) and the
``ClusterConfig`` / deprecation-shim surface live here too.

Written against plain ``asyncio.run`` where a cluster is needed, so the
suite does not depend on a pytest-asyncio plugin being installed.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import sqlite3
import subprocess
import sys
import textwrap
from pathlib import Path

import pytest

from repro.cluster import (
    BACKEND_NAMES,
    ClusterConfig,
    ClusterStore,
    JournalBackend,
    SqliteBackend,
    StorageCorruptError,
    StorageMismatchError,
    backend_class,
    load_manifest,
    open_backend,
    open_cluster,
    rebalance,
)
from repro.cluster.sqlite import DEFAULT_CACHE_SETS, db_filename
from repro.errors import ReproError
from repro.service.store import SetStore, UnknownSetError


def _entries(seed: int, n: int = 8):
    rng = random.Random(seed)
    return [
        (
            f"s{i:02d}",
            frozenset(rng.sample(range(1, 1 << 30), rng.randint(1, 30))),
            rng.randrange(5),
        )
        for i in range(n)
    ]


def _committed(name: str, directory) -> list:
    """The durable truth as a read-only opener sees it, sorted."""
    backend = open_backend(name, directory, create=False)
    try:
        return sorted(backend.iter_sets())
    finally:
        backend.close()


class TestBackendContract:
    """Every registered backend must pass these identically."""

    def test_registry_covers_all_names(self):
        for name in BACKEND_NAMES:
            cls = backend_class(name)
            assert cls.name == name
            assert isinstance(cls.TUNING, frozenset)
        with pytest.raises(ReproError, match="unknown storage backend"):
            backend_class("bogus")

    def test_roundtrip_create_diff_reopen(self, tmp_path, storage_backend):
        backend = open_backend(storage_backend, tmp_path)
        store = backend.open_store()
        assert store.persistence is backend      # write-through wiring
        store.create("a", {1, 2, 3})
        store.create("b", {10})
        assert store.apply_diff("a", add=[4], remove=[1]) == 2
        assert store.apply_diff("b", add=[10]) == 0    # no-op: no version bump
        backend.close()

        committed = dict(
            (name, (values, version))
            for name, values, version in _committed(storage_backend, tmp_path)
        )
        assert committed == {
            "a": (frozenset({2, 3, 4}), 1),
            "b": (frozenset({10}), 0),
        }

    def test_failed_durable_write_persists_nothing(
        self, tmp_path, storage_backend, monkeypatch
    ):
        backend = open_backend(storage_backend, tmp_path)
        store = backend.open_store()
        store.create("s", {1, 2})

        def exploding(name, add=(), remove=()):
            raise OSError("no space left on device")

        monkeypatch.setattr(backend, "record_diff", exploding)
        with pytest.raises(OSError):
            store.apply_diff("s", add=[99])
        # visible state untouched, durable state untouched
        assert store.get("s") == {1, 2}
        assert store.version("s") == 0
        backend.close()
        assert _committed(storage_backend, tmp_path) == [
            ("s", frozenset({1, 2}), 0)
        ]

    def test_diff_against_unknown_set_raises_before_persisting(
        self, tmp_path, storage_backend
    ):
        backend = open_backend(storage_backend, tmp_path)
        store = backend.open_store()
        with pytest.raises(UnknownSetError):
            store.apply_diff("ghost", add=[1])
        backend.close()
        assert _committed(storage_backend, tmp_path) == []

    def test_stage_installs_a_complete_epoch(self, tmp_path, storage_backend):
        cls = backend_class(storage_backend)
        entries = _entries(seed=7)
        staged = cls.stage(tmp_path, entries, epoch=3)
        assert staged > 0
        # the staged files are exactly the backend's declared layout
        base_names = cls.data_filenames(3)
        present = {p.name for p in tmp_path.iterdir()}
        assert present <= base_names
        assert any(name in present for name in base_names)
        # and a read-only open at that epoch sees every entry
        backend = cls(tmp_path, epoch=3, create=False)
        try:
            assert sorted(backend.iter_sets()) == sorted(entries)
        finally:
            backend.close()

    def test_epoch_zero_and_nonzero_filenames_are_disjoint(
        self, storage_backend
    ):
        cls = backend_class(storage_backend)
        assert cls.data_filenames(0) & cls.data_filenames(2) == set()

    def test_stats_report_the_contract_keys(self, tmp_path, storage_backend):
        backend = open_backend(storage_backend, tmp_path)
        store = backend.open_store()
        store.create("s", {1})
        store.apply_diff("s", add=[2])
        stats = backend.stats()
        for key in (
            "epoch", "records_appended", "compactions", "recovered_sets",
            "tail_error",
        ):
            assert key in stats
        assert stats["records_appended"] >= 2
        assert stats["tail_error"] == ""
        backend.close()

    def test_compact_preserves_committed_state(
        self, tmp_path, storage_backend
    ):
        backend = open_backend(storage_backend, tmp_path)
        store = backend.open_store()
        store.create("s", range(1, 200))
        for i in range(30):
            store.apply_diff("s", add=[1000 + i], remove=[1 + i])
        expected = (frozenset(store.get("s")), store.version("s"))
        backend.compact(store.items() if backend.compact_from_entries
                        else None)
        backend.close()
        [(name, values, version)] = _committed(storage_backend, tmp_path)
        assert (values, version) == expected

    def test_tuning_keys_are_validated_and_filtered(self, tmp_path):
        # a key another backend owns is silently dropped ...
        backend = open_backend("journal", tmp_path / "j", cache_sets=5)
        assert not hasattr(backend, "cache_sets")
        backend.close()
        # ... a key nobody owns is an error on every backend
        for name in BACKEND_NAMES:
            with pytest.raises(ReproError, match="tuning"):
                open_backend(name, tmp_path / "x", wibble=1)

    def test_readonly_open_never_creates_files(
        self, tmp_path, storage_backend
    ):
        target = tmp_path / "missing"
        backend = open_backend(storage_backend, target, create=False)
        assert list(backend.iter_sets()) == []
        backend.close()
        assert not target.exists()


class TestCrossBackendEquivalence:
    def test_same_mutations_same_committed_state(self, tmp_path):
        """The version arithmetic is part of the contract: the identical
        mutation sequence must commit identical contents AND versions on
        every backend (SQLite's total_changes bump == the in-memory
        changed-count bump)."""
        rng = random.Random(0xBEEF)
        script = []
        for i in range(6):
            script.append(("create", f"s{i}", rng.sample(range(1, 999), 12)))
        for _ in range(80):
            name = f"s{rng.randrange(6)}"
            script.append((
                "apply", name,
                rng.sample(range(1, 999), rng.randrange(0, 5)),
                rng.sample(range(1, 999), rng.randrange(0, 3)),
            ))

        states = {}
        for name in BACKEND_NAMES:
            backend = open_backend(name, tmp_path / name)
            store = backend.open_store()
            for step in script:
                if step[0] == "create":
                    store.create(step[1], step[2])
                else:
                    store.apply_diff(step[1], add=step[2], remove=step[3])
            backend.close()
            states[name] = _committed(name, tmp_path / name)
        first, *rest = states.values()
        assert all(state == first for state in rest)
        assert len(first) == 6


class TestSqliteSpecific:
    def test_wal_mode_and_synchronous_pragmas(self, tmp_path):
        backend = SqliteBackend(tmp_path, fsync=False)
        conn = backend._conn
        assert conn.execute("PRAGMA journal_mode").fetchone()[0] == "wal"
        assert conn.execute("PRAGMA synchronous").fetchone()[0] == 1  # NORMAL
        backend.close()
        strict = SqliteBackend(tmp_path, fsync=True)
        assert (
            strict._conn.execute("PRAGMA synchronous").fetchone()[0] == 2
        )  # FULL
        strict.close()

    def test_uint64_elements_roundtrip(self, tmp_path):
        """Elements are uint64; SQLite INTEGERs are signed.  The high
        half of the range must survive the two's-complement mapping."""
        values = {0, 1, (1 << 63) - 1, 1 << 63, (1 << 64) - 1}
        backend = SqliteBackend(tmp_path)
        store = backend.open_store()
        store.create("wide", values)
        store.apply_diff("wide", remove=[1 << 63])
        backend.close()
        [(_, committed, _)] = _committed("sqlite", tmp_path)
        assert committed == frozenset(values) - {1 << 63}

    def test_lazy_store_faults_and_evicts_under_cache_cap(self, tmp_path):
        backend = SqliteBackend(tmp_path, cache_sets=4)
        store = backend.open_store()
        for i in range(12):
            store.create(f"s{i}", {i, i + 100})
        assert len(store._sets) <= 4          # write path already bounded
        assert store.cache_evictions > 0
        # cold reads fault evicted sets back in, bit-for-bit
        before = store.cache_faults
        for i in range(12):
            assert store.get(f"s{i}") == {i, i + 100}
        assert store.cache_faults > before
        assert len(store._sets) <= 4
        # the registry is the database, not the cache
        assert store.names() == sorted(f"s{i}" for i in range(12))
        assert len(store.stats()) == 12
        backend.close()

    def test_cache_default_is_generous(self):
        assert ClusterConfig().cache_sets is None     # backend default
        assert DEFAULT_CACHE_SETS >= 256

    def test_sigkilled_writer_loses_nothing_acknowledged(self, tmp_path):
        """The torn-WAL drill: a writer process SIGKILLs itself after N
        committed transactions without ever closing; reopening recovers
        every one of them (WAL recovery is the journal's torn-tail
        tolerance)."""
        script = textwrap.dedent(
            """
            import os, signal, sys
            from repro.cluster.sqlite import SqliteBackend

            backend = SqliteBackend(sys.argv[1])
            store = backend.open_store()
            store.create("crash", range(1, 100))
            for i in range(25):
                store.apply_diff("crash", add=[1000 + i])
            os.kill(os.getpid(), signal.SIGKILL)   # no close, no checkpoint
            """
        )
        src = str(Path(__file__).resolve().parent.parent / "src")
        env = {**os.environ}
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-c", script, str(tmp_path)], env=env
        )
        assert proc.returncode == -9
        [(name, values, version)] = _committed("sqlite", tmp_path)
        assert name == "crash"
        assert values == frozenset(range(1, 100)) | frozenset(
            1000 + i for i in range(25)
        )
        assert version == 25

    def test_compact_truncates_the_wal(self, tmp_path):
        backend = SqliteBackend(tmp_path, compact_min_bytes=1024)
        store = backend.open_store()
        store.create("s", range(1, 2000))
        for i in range(50):
            store.apply_diff("s", add=[100_000 + i])
        assert backend._wal_bytes() > 0
        assert backend.should_compact()
        backend.compact()
        assert backend._wal_bytes() == 0
        assert not backend.should_compact()
        backend.close()
        [(_, values, _)] = _committed("sqlite", tmp_path)
        assert len(values) == 1999 + 50

    def test_corrupt_database_is_a_storage_corrupt_error(self, tmp_path):
        backend = SqliteBackend(tmp_path)
        store = backend.open_store()
        store.create("s", {1})
        backend.close()
        (tmp_path / db_filename()).write_bytes(b"\xff" * 512)
        with pytest.raises(StorageCorruptError):
            SqliteBackend(tmp_path)


class TestStorageMismatch:
    def _populate(self, data_dir, storage):
        async def inner():
            config = ClusterConfig(shards=2, storage=storage)
            async with open_cluster(data_dir, config) as store:
                await store.create("a", {1, 2, 3})
                await store.apply_diff("a", add=[4])

        asyncio.run(inner())

    def test_manifest_records_the_backend(self, tmp_path, storage_backend):
        self._populate(tmp_path, storage_backend)
        assert load_manifest(tmp_path).storage == storage_backend

    def test_mismatched_backend_refuses_with_remediation(
        self, tmp_path, storage_backend
    ):
        self._populate(tmp_path, storage_backend)
        other = next(n for n in BACKEND_NAMES if n != storage_backend)

        async def inner():
            config = ClusterConfig(shards=2, storage=other)
            with pytest.raises(StorageMismatchError) as excinfo:
                await open_cluster(tmp_path, config).start()
            message = str(excinfo.value)
            assert storage_backend in message and other in message
            assert "repro rebalance" in message and "--storage" in message

        asyncio.run(inner())

    def test_legacy_manifest_is_adopted_as_journal(self, tmp_path):
        """A PR-4/5 manifest (format 1, no storage field) must read as
        journal — not refuse, not guess."""
        self._populate(tmp_path, "journal")
        path = tmp_path / "manifest.json"
        doc = json.loads(path.read_text())
        assert doc["storage"] == "journal"
        del doc["storage"]
        doc["format"] = 1
        path.write_text(json.dumps(doc))
        manifest = load_manifest(tmp_path)
        assert manifest.storage == "journal"

        async def inner():
            async with open_cluster(
                tmp_path, ClusterConfig(shards=2)
            ) as store:
                assert store.get("a") == {1, 2, 3, 4}

        asyncio.run(inner())

    def test_serve_mismatched_storage_fails_fast(self, tmp_path, capsys):
        from repro.cli import main

        self._populate(tmp_path, "journal")
        code = main([
            "serve", "--data-dir", str(tmp_path), "--shards", "2",
            "--storage", "sqlite", "--port", "0",
        ])
        err = capsys.readouterr().err
        assert code == 2
        assert "cannot serve" in err and "rebalance" in err

    def test_serve_storage_without_data_dir_is_usage_error(self, capsys):
        from repro.cli import main

        assert main(["serve", "--storage", "sqlite", "--port", "0"]) == 2
        assert "--data-dir" in capsys.readouterr().err


class TestBackendConversion:
    def _populate(self, data_dir, shards, storage, seed=0):
        rng = random.Random(seed)
        sets = {
            f"t{i}": set(rng.sample(range(1, 1 << 20), rng.randint(2, 25)))
            for i in range(10)
        }

        async def inner():
            config = ClusterConfig(shards=shards, storage=storage)
            async with open_cluster(data_dir, config) as store:
                for name, values in sets.items():
                    await store.create(name, values)
                    await store.apply_diff(name, add=[max(values) + 1])
                return (
                    {n: store.get(n) for n in store.names()},
                    {n: store.version(n) for n in store.names()},
                )

        return asyncio.run(inner())

    def _recovered(self, data_dir, shards, storage):
        async def inner():
            config = ClusterConfig(shards=shards, storage=storage)
            async with open_cluster(data_dir, config) as store:
                return (
                    {n: store.get(n) for n in store.names()},
                    {n: store.version(n) for n in store.names()},
                )

        return asyncio.run(inner())

    def test_conversion_roundtrip_is_bit_for_bit(
        self, tmp_path, storage_backend
    ):
        """journal -> sqlite -> journal (or the reverse): same shard
        count, every set and version identical at every step, shard
        files swept to exactly the committed backend's layout."""
        other = next(n for n in BACKEND_NAMES if n != storage_backend)
        expected = self._populate(tmp_path, 2, storage_backend, seed=1)

        there = rebalance(tmp_path, 2, storage=other)
        assert there.changed and there.converted
        assert (there.old_storage, there.new_storage) == (
            storage_backend, other,
        )
        assert set(there.rewritten_shards) == {0, 1}
        assert load_manifest(tmp_path).storage == other
        assert self._recovered(tmp_path, 2, other) == expected

        back = rebalance(tmp_path, 2, storage=storage_backend)
        assert back.changed and back.converted
        assert self._recovered(tmp_path, 2, storage_backend) == expected

        # the final sweep left only the committed backend's files
        manifest = load_manifest(tmp_path)
        for shard in range(2):
            shard_dir = tmp_path / f"shard-{shard:02d}"
            allowed = backend_class(storage_backend).data_filenames(
                manifest.shard_epoch(shard)
            )
            assert {p.name for p in shard_dir.iterdir()} <= allowed

    def test_conversion_combined_with_resize(self, tmp_path):
        expected = self._populate(tmp_path, 2, "journal", seed=2)
        result = rebalance(tmp_path, 5, storage="sqlite")
        assert result.converted and result.old_shards == 2
        assert self._recovered(tmp_path, 5, "sqlite") == expected

    def test_omitting_storage_keeps_the_committed_backend(self, tmp_path):
        expected = self._populate(tmp_path, 2, "sqlite", seed=3)
        result = rebalance(tmp_path, 4)           # no storage argument
        assert result.new_storage == "sqlite" and not result.converted
        assert self._recovered(tmp_path, 4, "sqlite") == expected

    def test_unknown_target_backend_fails_before_touching_files(
        self, tmp_path
    ):
        self._populate(tmp_path, 2, "journal", seed=4)
        before = load_manifest(tmp_path).to_dict()
        with pytest.raises(ReproError, match="unknown storage backend"):
            rebalance(tmp_path, 2, storage="wibble")
        assert load_manifest(tmp_path).to_dict() == before

    def test_cli_rebalance_converts_and_reports(self, tmp_path, capsys):
        from repro.cli import main

        expected = self._populate(tmp_path, 2, "journal", seed=5)
        code = main([
            "rebalance", "--data-dir", str(tmp_path), "--shards", "2",
            "--storage", "sqlite", "--json",
        ])
        out = json.loads(capsys.readouterr().out)
        assert code == 0
        assert out["changed"] is True
        assert out["old_storage"] == "journal"
        assert out["new_storage"] == "sqlite"
        assert self._recovered(tmp_path, 2, "sqlite") == expected


class TestClusterConfigApi:
    def test_validation(self):
        with pytest.raises(ValueError, match="shards"):
            ClusterConfig(shards=0)
        with pytest.raises(ValueError, match="storage"):
            ClusterConfig(storage="wibble")
        with pytest.raises(ValueError, match="executor"):
            ClusterConfig(executor="threads")
        with pytest.raises(ValueError, match="vnodes"):
            ClusterConfig(vnodes=0)

    def test_storage_kwargs_omit_unset_tuning(self):
        assert ClusterConfig().storage_kwargs() == {"fsync": False}
        full = ClusterConfig(
            fsync=True, compact_min_bytes=64, cache_sets=9
        ).storage_kwargs()
        assert full == {"fsync": True, "compact_min_bytes": 64,
                        "cache_sets": 9}

    def test_replace_returns_a_validated_copy(self):
        config = ClusterConfig(shards=2)
        grown = config.replace(shards=4)
        assert (config.shards, grown.shards) == (2, 4)
        with pytest.raises(ValueError):
            config.replace(storage="wibble")

    def test_legacy_kwargs_warn_but_work(self, tmp_path):
        with pytest.deprecated_call(match="ClusterConfig"):
            store = ClusterStore(shards=2, data_dir=tmp_path, fsync=True)
        assert store.config.shards == 2
        assert store.config.fsync is True

        async def inner():
            async with store:
                await store.create("s", {1})
                assert store.get("s") == {1}

        asyncio.run(inner())

    def test_config_plus_legacy_kwargs_is_an_error(self):
        with pytest.raises(ValueError, match="config"):
            ClusterStore(config=ClusterConfig(), shards=2)

    def test_unknown_legacy_kwarg_is_an_error(self):
        with pytest.raises(TypeError):
            ClusterStore(shardz=2)

    def test_shard_storage_alias_warns_and_aliases(self):
        import repro.cluster as cluster

        with pytest.deprecated_call(match="JournalBackend"):
            alias = cluster.ShardStorage
        assert alias is JournalBackend

    def test_open_store_wires_persistence(self, tmp_path, storage_backend):
        backend = open_backend(storage_backend, tmp_path)
        store = backend.open_store()
        assert isinstance(store, SetStore)
        assert store.persistence is backend
        backend.close()
