"""Edge cases of the byte-accounting Channel and the result record."""

from __future__ import annotations

from repro.service.wire import FRAME_HEADER_BYTES, FramedChannel
from repro.transport.channel import Channel, Direction
from repro.transport.runner import ReconciliationResult


class TestChannelEdgeCases:
    def test_empty_channel(self):
        ch = Channel()
        assert ch.total_bytes == 0
        assert ch.rounds == 0
        assert ch.bytes_in(Direction.ALICE_TO_BOB) == 0
        assert ch.bytes_by_label() == {}
        assert ch.bytes_by_round() == {}

    def test_zero_byte_send_is_recorded(self):
        ch = Channel()
        ch.send(Direction.ALICE_TO_BOB, b"", round_no=1, label="sketch")
        assert ch.total_bytes == 0
        assert len(ch.messages) == 1
        assert ch.rounds == 1
        assert ch.bytes_by_label() == {"sketch": 0}
        assert ch.bytes_by_round() == {1: 0}

    def test_send_returns_payload_for_chaining(self):
        ch = Channel()
        assert ch.send(Direction.BOB_TO_ALICE, b"xyz") == b"xyz"

    def test_per_direction_breakdown(self):
        ch = Channel()
        ch.send(Direction.ALICE_TO_BOB, b"aaaa", round_no=1, label="sketch")
        ch.send(Direction.BOB_TO_ALICE, b"bb", round_no=1, label="reply")
        ch.send(Direction.ALICE_TO_BOB, b"c", round_no=2, label="sketch")
        assert ch.bytes_in(Direction.ALICE_TO_BOB) == 5
        assert ch.bytes_in(Direction.BOB_TO_ALICE) == 2
        assert ch.total_bytes == 7

    def test_per_label_breakdown_aggregates_across_rounds(self):
        ch = Channel()
        ch.send(Direction.ALICE_TO_BOB, b"1234", round_no=1, label="sketch")
        ch.send(Direction.ALICE_TO_BOB, b"56", round_no=2, label="sketch")
        ch.send(Direction.BOB_TO_ALICE, b"789", round_no=2, label="reply")
        assert ch.bytes_by_label() == {"sketch": 6, "reply": 3}
        assert ch.bytes_by_round() == {1: 4, 2: 5}

    def test_rounds_is_highest_seen_not_count(self):
        ch = Channel()
        ch.send(Direction.ALICE_TO_BOB, b"x", round_no=5)
        ch.send(Direction.ALICE_TO_BOB, b"y", round_no=2)
        assert ch.rounds == 5

    def test_round_zero_messages_do_not_count_as_rounds(self):
        ch = Channel()
        ch.send(Direction.ALICE_TO_BOB, b"estimate", round_no=0, label="estimator")
        assert ch.rounds == 0


class TestFramedChannel:
    def test_framing_separate_from_payload(self):
        ch = FramedChannel()
        ch.record_frame(Direction.ALICE_TO_BOB, b"abcdef", round_no=1,
                        label="sketch")
        ch.record_frame(Direction.BOB_TO_ALICE, b"", round_no=1, label="reply")
        assert ch.total_bytes == 6                      # paper accounting
        assert ch.framing_bytes == 2 * FRAME_HEADER_BYTES
        assert ch.frames == 2
        assert ch.wire_bytes == 6 + 2 * FRAME_HEADER_BYTES

    def test_is_a_channel(self):
        ch = FramedChannel()
        assert isinstance(ch, Channel)
        ch.send(Direction.ALICE_TO_BOB, b"plain")       # inherited path
        assert ch.total_bytes == 5
        assert ch.framing_bytes == 0


class TestResultToDict:
    def _result(self, channel) -> ReconciliationResult:
        return ReconciliationResult(
            success=True,
            difference=frozenset({7, 3}),
            rounds=2,
            channel=channel,
            encode_s=0.5,
            decode_s=0.25,
            extra={"d_hat": 3.5, "params": object()},
        )

    def test_to_dict_shape(self):
        ch = Channel()
        ch.send(Direction.ALICE_TO_BOB, b"abc", round_no=1, label="sketch")
        out = self._result(ch).to_dict()
        assert out["success"] is True
        assert out["d"] == 2
        assert out["difference"] == [3, 7]
        assert out["rounds"] == 2
        assert out["total_bytes"] == 3
        assert out["bytes_by_label"] == {"sketch": 3}
        assert out["bytes_by_round"] == {"1": 3}
        assert out["bytes_by_direction"] == {"alice->bob": 3, "bob->alice": 0}
        # only JSON-safe extras survive; objects are dropped, not stringified
        assert out["extra"] == {"d_hat": 3.5}
        assert "framing_bytes" not in out

    def test_to_dict_framed_channel_reports_framing(self):
        ch = FramedChannel()
        ch.record_frame(Direction.ALICE_TO_BOB, b"abc", round_no=1,
                        label="sketch")
        out = self._result(ch).to_dict(include_difference=False)
        assert out["framing_bytes"] == 5
        assert "difference" not in out

    def test_to_json_round_trips(self):
        import json

        ch = Channel()
        ch.send(Direction.BOB_TO_ALICE, b"zz", round_no=1, label="reply")
        parsed = json.loads(self._result(ch).to_json())
        assert parsed["total_bytes"] == 2
        assert parsed["difference"] == [3, 7]
