"""BCH layer: syndromes, Berlekamp-Massey, root finding, full codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bch import (
    BCHCodec,
    berlekamp_massey,
    chien_roots,
    expand_syndromes,
    syndromes_of,
    trace_roots,
)
from repro.bch.roots import candidate_roots
from repro.errors import DecodeFailure, ParameterError
from repro.gf import CarrylessField, field_for
from repro.gf import polynomial as P


class TestSyndromes:
    def test_empty_set_all_zero(self, gf8):
        assert syndromes_of([], 4, gf8) == [0, 0, 0, 0]

    def test_single_element(self, gf8):
        s = syndromes_of([7], 3, gf8)
        assert s == [7, gf8.pow(7, 3), gf8.pow(7, 5)]

    def test_xor_homomorphism(self, gf8):
        a = syndromes_of([3, 9, 20], 5, gf8)
        b = syndromes_of([9, 50], 5, gf8)
        diff = syndromes_of([3, 20, 50], 5, gf8)
        assert [x ^ y for x, y in zip(a, b)] == diff

    def test_scalar_and_vector_paths_agree(self, gf8):
        values = [3, 9, 77, 200]
        vec = syndromes_of(np.array(values, dtype=np.int64), 4, gf8)
        ref = CarrylessField(8)
        scalar = syndromes_of(values, 4, ref)
        assert vec == scalar

    def test_tower_field_path(self, gf32):
        values = [0xDEADBEEF, 0x1234]
        s = syndromes_of(values, 3, gf32)
        expected0 = 0xDEADBEEF ^ 0x1234
        assert s[0] == expected0

    def test_duplicates_cancel(self, gf8):
        assert syndromes_of([5, 5], 4, gf8) == [0, 0, 0, 0]

    def test_expand_satisfies_frobenius(self, gf8):
        odd = syndromes_of([3, 77, 200], 4, gf8)
        full = expand_syndromes(odd, gf8)
        assert len(full) == 8
        # full[k-1] = s_k; s_{2j} = s_j^2
        for j in range(1, 5):
            assert full[2 * j - 1] == gf8.sqr(full[j - 1])
        # odd entries preserved
        assert [full[0], full[2], full[4], full[6]] == odd

    def test_expand_matches_direct_power_sums(self, gf8):
        values = [3, 77, 200]
        odd = syndromes_of(values, 4, gf8)
        full = expand_syndromes(odd, gf8)
        for k in range(1, 9):
            direct = 0
            for v in values:
                direct ^= gf8.pow(v, k)
            assert full[k - 1] == direct


class TestBerlekampMassey:
    def test_zero_syndromes_give_trivial_locator(self, gf8):
        locator, length = berlekamp_massey([0] * 8, gf8)
        assert locator == [1] and length == 0

    @pytest.mark.parametrize("errors", [[5], [3, 77], [3, 77, 200], [1, 2, 4, 8]])
    def test_locator_roots_are_inverse_errors(self, gf8, errors):
        t = 5
        full = expand_syndromes(syndromes_of(errors, t, gf8), gf8)
        locator, length = berlekamp_massey(full, gf8)
        assert length == len(errors)
        assert len(locator) - 1 == length
        for e in errors:
            assert P.evaluate(locator, gf8.inv(e), gf8) == 0

    def test_random_error_sets(self, gf7, rng):
        for _trial in range(30):
            k = int(rng.integers(0, 8))
            errors = list(
                rng.choice(np.arange(1, 128), size=k, replace=False)
            )
            full = expand_syndromes(syndromes_of(errors, 8, gf7), gf7)
            locator, length = berlekamp_massey(full, gf7)
            assert length == k


class TestRootFinding:
    def test_chien_finds_all_roots(self, gf8):
        roots = [3, 77, 200]
        poly = P.from_roots(roots, gf8)
        assert sorted(chien_roots(poly, gf8)) == sorted(roots)

    def test_chien_constant_poly_no_roots(self, gf8):
        assert chien_roots([5], gf8) == []

    def test_trace_roots_matches_chien(self, gf8, rng):
        for trial in range(10):
            roots = list(rng.choice(np.arange(1, 256), size=5, replace=False))
            poly = P.from_roots([int(r) for r in roots], gf8)
            assert sorted(trace_roots(poly, gf8, seed=trial)) == sorted(
                chien_roots(poly, gf8)
            )

    def test_trace_roots_drops_irreducible_factors(self, gf8):
        # multiply a linear factor by an irreducible quadratic: only the
        # linear root should come back
        linear_root = 42
        # find an irreducible quadratic by trial: x^2 + x + c with no roots
        for c in range(1, 256):
            quad = [c, 1, 1]
            if not chien_roots(quad, gf8) and P.evaluate(quad, 0, gf8) != 0:
                break
        poly = P.mul(P.from_roots([linear_root], gf8), quad, gf8)
        assert trace_roots(poly, gf8, seed=1) == [linear_root]

    def test_trace_roots_on_tower_field(self, gf32):
        roots = [0xDEADBEEF, 0xCAFEBABE, 0x12345678]
        poly = P.from_roots(roots, gf32)
        assert sorted(trace_roots(poly, gf32, seed=9)) == sorted(roots)

    def test_candidate_roots_finds_subset(self, gf32):
        roots = [111, 222, 333]
        poly = P.from_roots(roots, gf32)
        cands = np.array([111, 222, 333, 444, 555], dtype=np.int64)
        assert candidate_roots(poly, cands, gf32) == [111, 222, 333]

    def test_candidate_roots_misses_outside_candidates(self, gf32):
        poly = P.from_roots([777], gf32)
        cands = np.array([111, 222], dtype=np.int64)
        assert candidate_roots(poly, cands, gf32) == []


class TestCodecRoundtrip:
    def test_decode_empty_sketch(self, gf8):
        codec = BCHCodec(gf8, 4)
        assert codec.decode([0, 0, 0, 0]) == []

    @pytest.mark.parametrize("k", [1, 2, 3, 4, 5])
    def test_roundtrip_exact_capacity(self, gf7, rng, k):
        codec = BCHCodec(gf7, 5)
        values = sorted(
            int(v) for v in rng.choice(np.arange(1, 128), size=k, replace=False)
        )
        assert codec.decode(codec.sketch(values)) == values

    def test_symmetric_difference_decoding(self, gf8, rng):
        codec = BCHCodec(gf8, 6)
        a = set(int(v) for v in rng.choice(np.arange(1, 256), size=100, replace=False))
        b = set(a)
        moved = list(a)[:3]
        for v in moved:
            b.discard(v)
        b.add(77) if 77 not in a else None
        expected = sorted(a ^ b)
        if len(expected) <= 6:
            got = codec.decode(codec.sketch_xor(codec.sketch(a), codec.sketch(b)))
            assert got == expected

    @given(st.integers(0, 60))
    @settings(max_examples=40, deadline=None)
    def test_roundtrip_random_sets_within_capacity(self, seed):
        gf = field_for(9)
        codec = BCHCodec(gf, 7)
        rng = np.random.default_rng(seed)
        k = int(rng.integers(0, 8))
        values = sorted(
            int(v) for v in rng.choice(np.arange(1, 512), size=k, replace=False)
        )
        assert codec.decode(codec.sketch(values)) == values

    def test_overload_fails_or_is_caught(self, gf7, rng):
        """Beyond-capacity sketches must raise DecodeFailure (the §3.2
        exception) — or, in the rare aliasing case, any returned set must
        at least reproduce the sketch (the checksum then catches it)."""
        codec = BCHCodec(gf7, 3)
        failures = 0
        for trial in range(50):
            local = np.random.default_rng(trial)
            chosen = local.choice(np.arange(1, 128), size=10, replace=False)
            values = [int(v) for v in chosen]
            sketch = codec.sketch(values)
            try:
                out = codec.decode(sketch)
                assert codec.sketch(out) == sketch  # aliasing, not corruption
            except DecodeFailure:
                failures += 1
        # Most overloads are detected outright; the remainder alias to a
        # *consistent* small set, which the protocol checksum rejects.
        assert failures >= 30

    def test_wrong_sketch_length_rejected(self, gf8):
        codec = BCHCodec(gf8, 4)
        with pytest.raises(ParameterError):
            codec.decode([0] * 3)

    def test_mismatched_xor_rejected(self, gf8):
        codec = BCHCodec(gf8, 4)
        with pytest.raises(ParameterError):
            codec.sketch_xor([0] * 4, [0] * 3)

    def test_capacity_must_be_positive(self, gf8):
        with pytest.raises(ParameterError):
            BCHCodec(gf8, 0)

    def test_tower_field_roundtrip_with_candidates(self, gf32, rng):
        codec = BCHCodec(gf32, 5)
        values = sorted(int(v) for v in rng.integers(1, 1 << 32, size=4))
        noise = rng.integers(1, 1 << 32, size=100)
        cands = np.unique(np.concatenate([np.array(values), noise])).astype(np.int64)
        got = codec.decode(codec.sketch(values), candidates=cands)
        assert got == values

    def test_tower_field_roundtrip_with_trace(self, gf32, rng):
        codec = BCHCodec(gf32, 4)
        values = sorted(int(v) for v in rng.integers(1, 1 << 32, size=3))
        assert codec.decode(codec.sketch(values), seed=5) == values


class TestCodecSerialization:
    def test_sketch_bits_formula(self, gf7):
        codec = BCHCodec(gf7, 13)
        assert codec.sketch_bits == 13 * 7

    def test_serialize_roundtrip(self, gf7, rng):
        codec = BCHCodec(gf7, 6)
        values = [int(v) for v in rng.choice(np.arange(1, 128), size=4, replace=False)]
        sketch = codec.sketch(values)
        data = codec.serialize(sketch)
        assert len(data) == (codec.sketch_bits + 7) // 8
        assert codec.deserialize(data) == sketch
