"""End-to-end PBS protocol: correctness, rounds, exceptions, accounting."""

from __future__ import annotations

import pytest

from repro.core.params import PBSParams
from repro.core.protocol import PBSProtocol, reconcile_pbs
from repro.errors import ParameterError
from repro.workloads.generator import SetPairGenerator


class TestBasicReconciliation:
    def test_identical_sets(self):
        r = reconcile_pbs({1, 2, 3}, {1, 2, 3}, seed=1, true_d=0)
        assert r.success and r.difference == frozenset()

    def test_single_difference(self):
        r = reconcile_pbs({1, 2, 3}, {1, 2}, seed=1, true_d=1)
        assert r.success and r.difference == frozenset({3})

    def test_two_sided_difference(self):
        r = reconcile_pbs({1, 2, 3}, {2, 3, 9}, seed=1, true_d=2)
        assert r.success and r.difference == frozenset({1, 9})

    def test_empty_alice(self):
        r = reconcile_pbs(set(), {5, 6}, seed=1, true_d=2)
        assert r.success and r.difference == frozenset({5, 6})

    def test_empty_bob(self):
        r = reconcile_pbs({5, 6}, set(), seed=1, true_d=2)
        assert r.success and r.difference == frozenset({5, 6})

    def test_both_empty(self):
        r = reconcile_pbs(set(), set(), seed=1, true_d=0)
        assert r.success and r.difference == frozenset()

    def test_zero_element_rejected(self):
        """The all-zero element is excluded from the universe (§2.1)."""
        with pytest.raises(ParameterError):
            reconcile_pbs({0, 1}, {1}, seed=1, true_d=1)

    def test_out_of_universe_rejected(self):
        with pytest.raises(ParameterError):
            reconcile_pbs({2**32}, set(), seed=1, true_d=1)

    @pytest.mark.parametrize("d", [1, 3, 5, 10, 25])
    def test_small_d_sweep(self, d):
        gen = SetPairGenerator(seed=d)
        pair = gen.generate(size_a=2000, d=d)
        r = reconcile_pbs(pair.a, pair.b, seed=99, true_d=d)
        assert r.success
        assert r.difference == pair.difference


class TestMediumScale:
    @pytest.mark.parametrize("d", [100, 500])
    def test_b_subset_of_a(self, d):
        gen = SetPairGenerator(seed=7)
        pair = gen.generate(size_a=20_000, d=d)
        r = reconcile_pbs(pair.a, pair.b, seed=3, true_d=d)
        assert r.success and r.difference == pair.difference

    def test_two_sided(self):
        gen = SetPairGenerator(seed=8)
        pair = gen.generate_two_sided(common=10_000, only_a=60, only_b=40)
        r = reconcile_pbs(pair.a, pair.b, seed=4, true_d=100)
        assert r.success and r.difference == pair.difference

    def test_d_larger_than_reality_still_works(self):
        """Over-provisioned parameters only waste bytes, never correctness."""
        gen = SetPairGenerator(seed=9)
        pair = gen.generate(size_a=5000, d=20)
        r = reconcile_pbs(pair.a, pair.b, seed=5, true_d=200)
        assert r.success and r.difference == pair.difference

    def test_underestimated_d_eventually_succeeds(self):
        """Underestimating d overloads groups; splits and extra rounds must
        still converge when the round budget allows."""
        gen = SetPairGenerator(seed=10)
        pair = gen.generate(size_a=5000, d=200)
        r = reconcile_pbs(
            pair.a, pair.b, seed=6, true_d=40, max_rounds=12
        )
        assert r.success and r.difference == pair.difference


class TestMultiRoundBehaviour:
    def test_unlimited_rounds_converges(self):
        gen = SetPairGenerator(seed=11)
        pair = gen.generate(size_a=10_000, d=300)
        proto = PBSProtocol(seed=12, max_rounds=0)  # 0 -> unlimited cap
        r = proto.run(pair.a, pair.b, true_d=300)
        assert r.success and r.difference == pair.difference

    def test_round_budget_one_can_fail_gracefully(self):
        """One round with non-trivial d usually leaves residue; the result
        must report failure honestly rather than a wrong difference claim."""
        gen = SetPairGenerator(seed=13)
        successes = 0
        for trial in range(5):
            pair = gen.generate(size_a=5000, d=200)
            r = PBSProtocol(seed=trial, max_rounds=1).run(
                pair.a, pair.b, true_d=200
            )
            if r.success:
                assert r.difference == pair.difference
                successes += 1
        assert successes < 5  # d=200 in one round should not always succeed

    def test_round_count_reported(self):
        gen = SetPairGenerator(seed=14)
        pair = gen.generate(size_a=5000, d=100)
        r = reconcile_pbs(pair.a, pair.b, seed=15, true_d=100)
        assert 1 <= r.rounds <= 3

    def test_first_round_carries_most_bytes(self):
        """§5.3: the first round should account for the vast majority of
        the communication."""
        gen = SetPairGenerator(seed=16)
        pair = gen.generate(size_a=20_000, d=500)
        r = reconcile_pbs(pair.a, pair.b, seed=17, true_d=500)
        by_round = r.channel.bytes_by_round()
        assert by_round[1] / r.total_bytes > 0.80


class TestEstimatorIntegration:
    def test_estimator_flow_reconciles(self):
        gen = SetPairGenerator(seed=18)
        pair = gen.generate(size_a=3000, d=50)
        proto = PBSProtocol(seed=19, estimator_family="fast")
        r = proto.run(pair.a, pair.b)
        assert r.success and r.difference == pair.difference

    def test_estimator_bytes_labelled(self):
        gen = SetPairGenerator(seed=20)
        pair = gen.generate(size_a=3000, d=50)
        proto = PBSProtocol(seed=21, estimator_family="fast")
        r = proto.run(pair.a, pair.b)
        by_label = r.channel.bytes_by_label()
        assert by_label.get("estimator", 0) > 0

    def test_estimated_d_injection_skips_handshake(self):
        gen = SetPairGenerator(seed=22)
        pair = gen.generate(size_a=3000, d=50)
        r = PBSProtocol(seed=23).run(pair.a, pair.b, estimated_d=70)
        assert r.success
        assert "estimator" not in r.channel.bytes_by_label()


class TestAccounting:
    def test_overhead_ratio_near_paper_range(self):
        """PBS first-round accounting should land near Formula (1):
        roughly 2-3x the theoretical minimum."""
        gen = SetPairGenerator(seed=24)
        d = 1000
        pair = gen.generate(size_a=30_000, d=d)
        r = reconcile_pbs(pair.a, pair.b, seed=25, true_d=d)
        assert r.success
        assert 1.5 < r.overhead_ratio(d) < 3.5

    def test_bytes_split_between_directions(self):
        from repro.transport.channel import Direction

        gen = SetPairGenerator(seed=26)
        pair = gen.generate(size_a=5000, d=100)
        r = reconcile_pbs(pair.a, pair.b, seed=27, true_d=100)
        a2b = r.channel.bytes_in(Direction.ALICE_TO_BOB)
        b2a = r.channel.bytes_in(Direction.BOB_TO_ALICE)
        assert a2b > 0 and b2a > 0
        assert a2b + b2a == r.total_bytes

    def test_timings_populated(self):
        gen = SetPairGenerator(seed=28)
        pair = gen.generate(size_a=5000, d=100)
        r = reconcile_pbs(pair.a, pair.b, seed=29, true_d=100)
        assert r.encode_s > 0 and r.decode_s > 0

    def test_params_recorded(self):
        r = reconcile_pbs({1, 2}, {2, 3}, seed=30, true_d=2)
        assert isinstance(r.extra["params"], PBSParams)


class TestBidirectional:
    def test_union_push_present(self):
        gen = SetPairGenerator(seed=31)
        pair = gen.generate(size_a=2000, d=30)
        proto = PBSProtocol(seed=32, bidirectional=True)
        r = proto.run(pair.a, pair.b, true_d=30)
        assert r.success
        assert "union-push" in r.channel.bytes_by_label()
        # B subset of A: all 30 differences are in A, 8 bytes each (uint64)
        assert r.channel.bytes_by_label()["union-push"] == 30 * 8


class TestDeterminism:
    def test_same_seed_same_execution(self):
        gen = SetPairGenerator(seed=33)
        pair = gen.generate(size_a=4000, d=80)
        r1 = reconcile_pbs(pair.a, pair.b, seed=34, true_d=80)
        r2 = reconcile_pbs(pair.a, pair.b, seed=34, true_d=80)
        assert r1.total_bytes == r2.total_bytes
        assert r1.rounds == r2.rounds
        assert r1.difference == r2.difference

    def test_different_seed_may_change_layout(self):
        gen = SetPairGenerator(seed=35)
        pair = gen.generate(size_a=4000, d=80)
        r1 = reconcile_pbs(pair.a, pair.b, seed=36, true_d=80)
        r2 = reconcile_pbs(pair.a, pair.b, seed=37, true_d=80)
        assert r1.difference == r2.difference  # correctness is seed-free


class TestFakeElementDefense:
    def test_success_rate_with_tight_capacity(self):
        """Stress type I/II exceptions: small n and t force collisions; the
        checksum + sub-universe checks must still never yield a *wrong*
        final difference."""
        params = PBSParams(n=63, t=8, g=4)
        gen = SetPairGenerator(seed=38)
        for trial in range(10):
            pair = gen.generate(size_a=2000, d=20)
            proto = PBSProtocol(params=params, seed=trial, max_rounds=10)
            r = proto.run(pair.a, pair.b)
            if r.success:
                assert r.difference == pair.difference
