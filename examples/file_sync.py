"""Cloud-storage file synchronization — the Dropbox-style scenario (§1).

A laptop and a cloud replica each hold a directory tree.  Each file state
is summarized as a 32-bit signature of (path, content-version); the two
signature sets are reconciled with PBS, and only the differing files'
metadata is exchanged.  This is the "smart sync" regime the paper cites:
signatures get synchronized far more often than file contents, so the
reconciliation overhead matters.

Run:  python examples/file_sync.py
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.protocol import PBSProtocol
from repro.hashing import xxh64
from repro.utils.seeds import spawn_rng


@dataclass(frozen=True)
class FileState:
    path: str
    version: int

    def signature(self) -> int:
        sig = xxh64(f"{self.path}@{self.version}".encode()) & 0xFFFFFFFF
        return sig or 1


def make_replicas(n_files: int = 30_000, seed: int = 5):
    """A laptop and a cloud replica that have drifted apart."""
    rng = spawn_rng(seed, "files")
    base = {f"dir{int(i) % 200}/file{int(i)}.dat": 1 for i in range(n_files)}

    laptop = dict(base)
    cloud = dict(base)
    # local edits (bumped versions), local new files, cloud-side changes
    edited_locally = rng.choice(n_files, size=120, replace=False)
    for i in edited_locally:
        laptop[f"dir{int(i) % 200}/file{int(i)}.dat"] += 1
    for i in range(40):
        laptop[f"drafts/new{i}.txt"] = 1
    edited_in_cloud = rng.choice(n_files, size=80, replace=False)
    for i in edited_in_cloud:
        cloud[f"dir{int(i) % 200}/file{int(i)}.dat"] += 10
    for i in range(25):
        cloud[f"shared/upload{i}.bin"] = 1
    return laptop, cloud


def main() -> None:
    laptop, cloud = make_replicas()
    sig_to_file_laptop = {
        FileState(p, v).signature(): FileState(p, v) for p, v in laptop.items()
    }
    sig_to_file_cloud = {
        FileState(p, v).signature(): FileState(p, v) for p, v in cloud.items()
    }
    set_laptop = set(sig_to_file_laptop)
    set_cloud = set(sig_to_file_cloud)
    print(f"laptop: {len(laptop)} files, cloud: {len(cloud)} files")
    print(f"signature difference: {len(set_laptop ^ set_cloud)}")

    protocol = PBSProtocol(seed=11, estimator_family="fast")
    result = protocol.run(set_laptop, set_cloud)
    assert result.success

    # Classify the differing signatures into actionable sync items.
    to_pull, to_push = [], []
    for sig in result.difference:
        if sig in sig_to_file_laptop:
            to_push.append(sig_to_file_laptop[sig])   # laptop-side state
        else:
            to_pull.append(sig_to_file_cloud.get(sig))
    # A file edited on both sides appears twice (two signatures) -> conflict.
    push_paths = {f.path for f in to_push if f}
    pull_paths = {f.path for f in to_pull if f}
    conflicts = push_paths & pull_paths

    print("\n--- sync plan ---")
    print(f"push to cloud:   {len(push_paths)} files")
    print(f"pull from cloud: {len(pull_paths)} files")
    print(f"conflicts:       {len(conflicts)} files need merge")
    print(f"\nreconciliation cost: {result.total_bytes} B in "
          f"{result.rounds} rounds "
          f"(vs {4 * len(set_cloud)} B for shipping the cloud's signature list)")


if __name__ == "__main__":
    main()
