"""Blockchain transaction relay — the paper's motivating application (§1.3.4).

Simulates an Erlay-style mempool synchronization between two peers: both
see most transactions through normal gossip, but each also holds
transactions the other has not received yet (a *two-sided* difference).
Transaction IDs are 32-bit short hashes of the transaction payloads, as
in Erlay's compressed-ID scheme.

The peers reconcile their ID sets with PBS, then exchange only the
missing transaction payloads.  For comparison, the script also prices the
naive protocol (ship the whole mempool) and Difference Digest on the
same instance.

Run:  python examples/blockchain_relay.py
"""

from __future__ import annotations

import numpy as np

from repro.baselines import DifferenceDigestProtocol
from repro.core.protocol import PBSProtocol
from repro.hashing import xxh64
from repro.utils.seeds import spawn_rng

TX_BYTES = 250          # average Bitcoin transaction size
MEMPOOL_SIZE = 50_000   # transactions already shared by both peers
ONLY_AT_ALICE = 300     # fresh transactions gossip delivered only to Alice
ONLY_AT_BOB = 200       # ... and only to Bob


def short_id(payload: bytes) -> int:
    """32-bit transaction short ID (nonzero, as PBS's universe requires)."""
    h = xxh64(payload) & 0xFFFFFFFF
    return h if h != 0 else 1


def make_mempools(seed: int = 0):
    """Two mempools as {short_id: payload} dicts."""
    rng = spawn_rng(seed, "mempool")

    def fresh_tx() -> bytes:
        return rng.bytes(TX_BYTES)

    shared = [fresh_tx() for _ in range(MEMPOOL_SIZE)]
    alice_only = [fresh_tx() for _ in range(ONLY_AT_ALICE)]
    bob_only = [fresh_tx() for _ in range(ONLY_AT_BOB)]

    alice = {short_id(tx): tx for tx in shared + alice_only}
    bob = {short_id(tx): tx for tx in shared + bob_only}
    return alice, bob


def main() -> None:
    alice_pool, bob_pool = make_mempools()
    ids_a = set(alice_pool)
    ids_b = set(bob_pool)
    true_d = len(ids_a ^ ids_b)
    print(f"mempools: |A|={len(ids_a)}, |B|={len(ids_b)}, d={true_d}")

    # --- PBS reconciliation (bidirectional: both peers end with the union)
    protocol = PBSProtocol(seed=3, estimator_family="fast", bidirectional=True)
    result = protocol.run(ids_a, ids_b)
    assert result.success

    missing_at_bob = result.difference & ids_a     # Alice pushes these
    missing_at_alice = result.difference & ids_b   # Bob pushes these
    payload_bytes = TX_BYTES * (len(missing_at_bob) + len(missing_at_alice))

    # Apply the sync.
    for tx_id in missing_at_alice:
        alice_pool[tx_id] = bob_pool[tx_id]
    for tx_id in missing_at_bob:
        bob_pool[tx_id] = alice_pool[tx_id]
    assert set(alice_pool) == set(bob_pool)

    print("\n--- PBS relay ---")
    print(f"reconciliation: {result.total_bytes} B in {result.rounds} rounds")
    print(f"payload sync:   {payload_bytes} B "
          f"({len(missing_at_bob)} -> Bob, {len(missing_at_alice)} -> Alice)")
    overhead_pct = 100 * result.total_bytes / (result.total_bytes + payload_bytes)
    print(f"reconciliation is {overhead_pct:.1f}% of total relay traffic")

    # --- comparisons on the same instance ---------------------------------
    naive_bytes = len(bob_pool) * (TX_BYTES + 4)  # Bob ships everything
    dd = DifferenceDigestProtocol(seed=4).run(ids_a, ids_b, estimated_d=true_d)
    print("\n--- alternatives ---")
    print(f"naive (ship the mempool): {naive_bytes} B "
          f"({naive_bytes / (result.total_bytes + payload_bytes):.0f}x PBS total)")
    if dd.success:
        print(f"difference digest:        {dd.total_bytes} B of reconciliation "
              f"({dd.total_bytes / result.total_bytes:.1f}x PBS)")

    # ID collisions: with 32-bit short IDs and 50k transactions, occasional
    # collisions are expected (~0.03%); production systems handle them by
    # falling back to full IDs for colliding slots, as Erlay does.
    all_payloads = len(set(alice_pool)) + ONLY_AT_BOB
    print(f"\nshort-ID space usage: {len(ids_a | ids_b)} ids for "
          f"{all_payloads} transactions")


if __name__ == "__main__":
    np.random.seed(0)
    main()
