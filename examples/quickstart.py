"""Quickstart: reconcile two sets with PBS in a few lines.

Run:  python examples/quickstart.py
"""

from repro import PBSProtocol, reconcile_pbs
from repro.workloads import SetPairGenerator


def main() -> None:
    # --- the one-liner ----------------------------------------------------
    # Alice holds A, Bob holds B; Alice learns the symmetric difference.
    result = reconcile_pbs({1, 2, 3, 4, 5}, {4, 5, 6}, seed=7, true_d=4)
    print("difference:", sorted(result.difference))      # [1, 2, 3, 6]
    print("success:   ", result.success)
    print("rounds:    ", result.rounds)
    print("bytes:     ", result.total_bytes)

    # --- a realistic instance --------------------------------------------
    # 100k-element sets differing in 1000 elements, d unknown a priori:
    # the protocol runs the Tug-of-War estimation handshake first (§6.2).
    pair = SetPairGenerator(universe_bits=32, seed=42).generate(
        size_a=100_000, d=1000
    )
    protocol = PBSProtocol(
        seed=1,
        r=3,            # target rounds (the paper's sweet spot, §5.2)
        p0=0.99,        # target success probability
        estimator_family="fast",
    )
    result = protocol.run(pair.a, pair.b)

    assert result.success and result.difference == pair.difference
    params = result.extra["params"]
    print(f"\nreconciled d={pair.d} out of |A|={len(pair.a)}")
    print(f"parameters: n={params.n}, t={params.t}, g={params.g} groups")
    print(f"rounds:     {result.rounds}")
    print(f"data:       {result.total_kb:.2f} KB "
          f"({result.overhead_ratio(pair.d):.2f}x the d*log|U| minimum)")
    print(f"encode:     {result.encode_s * 1000:.1f} ms, "
          f"decode: {result.decode_s * 1000:.1f} ms")


if __name__ == "__main__":
    main()
