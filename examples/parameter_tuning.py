"""A tour of the analytical framework (§4, §5): tune PBS before running it.

Reproduces, for any (d, p0, r), the three applications of the paper's
Markov-chain framework:

1. the Table-1-style (n, t) feasibility grid and the optimal choice;
2. the §5.2 round-target sweep (why r = 3 is the sweet spot);
3. the §5.3 piecewise-reconciliability profile.

Run:  python examples/parameter_tuning.py [d]
"""

from __future__ import annotations

import sys

from repro.analysis.optimizer import (
    DEFAULT_N_CANDIDATES,
    default_t_candidates,
    groups_for,
    lower_bound_grid,
    optimize_params,
    sweep_round_targets,
)
from repro.analysis.piecewise import expected_round_proportions


def main(d: int = 1000, delta: int = 5, r: int = 3, p0: float = 0.99) -> None:
    g = groups_for(d, delta)
    print(f"tuning PBS for d={d} (delta={delta} -> g={g} groups), "
          f"target Pr[R <= {r}] >= {p0}\n")

    # 1. the feasibility grid -------------------------------------------------
    grid = lower_bound_grid(d, delta=delta, r=r)
    t_values = default_t_candidates(delta)
    header = "t\\n  " + "".join(f"{n:>8}" for n in DEFAULT_N_CANDIDATES)
    print(header)
    for t in t_values:
        cells = []
        for n in DEFAULT_N_CANDIDATES:
            bound = grid[(n, t)]
            mark = "*" if bound >= p0 else " "
            cells.append(f"{max(0, bound):7.3f}{mark}")
        print(f"{t:<5}" + "".join(cells))
    best = optimize_params(d, delta=delta, r=r, p0=p0)
    print(f"\noptimal: n={best.n}, t={best.t} "
          f"(bound {best.bound:.4f}, {best.objective_bits} objective bits, "
          f"{best.first_round_bits_per_group():.0f} bits/group first round)")

    # 2. the round-target sweep ----------------------------------------------
    print("\nround-target sweep (§5.2):")
    for rr, params in sorted(sweep_round_targets(d, delta=delta, p0=p0).items()):
        print(f"  r={rr}: n={params.n:>7}, t={params.t:>2} -> "
              f"{params.first_round_bits_per_group():.0f} bits/group")

    # 3. piecewise reconciliability -------------------------------------------
    print("\nexpected fraction reconciled per round (§5.3):")
    proportions = expected_round_proportions(d, g, best.n, best.t, rounds=4)
    for k, frac in enumerate(proportions, start=1):
        print(f"  round {k}: {frac:.3e}")
    tail = 1.0 - sum(proportions)
    if tail > 0.01:
        print(f"  (+{tail:.3f} carried by over-capacity groups, which the "
              "analysis truncates at x > t; the protocol recovers them via "
              "three-way splits)")


if __name__ == "__main__":
    main(d=int(sys.argv[1]) if len(sys.argv) > 1 else 1000)
