"""Run a reconciliation server and sync two clients against one set.

Demonstrates the service subsystem end to end, in one process:

1. a server holds the ``inventory`` set;
2. two clients with different local views sync *concurrently* — both
   reconcile against the same snapshot, and the server merges both
   pushes into the union;
3. a second pass lets each client pull what the other pushed, after
   which every party holds the same set.

Run:  python examples/service_sync.py
"""

from __future__ import annotations

import asyncio

from repro.service import ReconciliationServer, SetStore, sync_with_server


async def main() -> None:
    warehouse = set(range(1, 1001))                 # the server's inventory
    client_1 = warehouse - {10, 20} | {5001, 5002}  # two diverged replicas
    client_2 = warehouse - {30} | {7001}

    store = SetStore()
    store.create("inventory", warehouse)

    async with ReconciliationServer(store) as server:
        print(f"server listening on {server.host}:{server.port}")
        print(f"inventory: {store.size('inventory')} elements\n")

        # -- pass 1: both clients sync concurrently ------------------------
        r1, r2 = await asyncio.gather(
            sync_with_server("127.0.0.1", server.port, client_1,
                             set_name="inventory", seed=1),
            sync_with_server("127.0.0.1", server.port, client_2,
                             set_name="inventory", seed=2),
        )
        client_1 |= r1.difference     # A ∪ (A xor B) = A ∪ B
        client_2 |= r2.difference
        print("pass 1 (concurrent):")
        for name, r in (("client 1", r1), ("client 2", r2)):
            print(f"  {name}: d={len(r.difference)} rounds={r.rounds} "
                  f"payload={r.total_bytes} B "
                  f"framing={r.channel.framing_bytes} B "
                  f"pushed={r.extra['applied']}")
        print(f"  server inventory now {store.size('inventory')} elements")

        # -- pass 2: pull what the other client pushed ---------------------
        r1, r2 = await asyncio.gather(
            sync_with_server("127.0.0.1", server.port, client_1,
                             set_name="inventory", seed=3),
            sync_with_server("127.0.0.1", server.port, client_2,
                             set_name="inventory", seed=4),
        )
        client_1 |= r1.difference
        client_2 |= r2.difference
        print("\npass 2 (convergence):")
        print(f"  client 1 pulled {len(r1.difference)}, "
              f"client 2 pulled {len(r2.difference)}")

        union = warehouse | {5001, 5002, 7001}
        assert client_1 == client_2 == store.get("inventory") == union
        print(f"\nall parties converged to the union "
              f"({len(union)} elements)")

        snapshot = server.metrics.snapshot()
        sessions = snapshot["sessions"]
        print(f"server metrics: {sessions['completed']} sessions, "
              f"{snapshot['rounds_total']} rounds, "
              f"{snapshot['payload_bytes']} payload bytes, "
              f"decode {snapshot['decode_s'] * 1000:.1f} ms")


if __name__ == "__main__":
    asyncio.run(main())
