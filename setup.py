"""Shim for environments without the `wheel` package (offline legacy install)."""
from setuptools import setup

setup()
