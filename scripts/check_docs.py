#!/usr/bin/env python3
"""Documentation CI: links resolve, CLI examples match the real CLI.

Guards against doc rot in README.md, ROADMAP.md, and docs/:

1. every relative markdown link points at a file that exists;
2. every backticked repo path (``src/...py``, ``docs/...md``, ...)
   points at a file that exists;
3. every ``repro ...`` invocation shown in the docs names a subcommand
   that exists and only flags that subcommand actually accepts
   (validated against the live argparse parsers);
4. ``repro <cmd> --help`` actually runs (exit 0) for every subcommand
   the docs mention.

Run directly (``python scripts/check_docs.py``) or via
``tests/test_docs.py`` so the tier-1 suite enforces it too.  Exit code
is the number of problems found.
"""

from __future__ import annotations

import os
import re
import shlex
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO / "src"))

from repro import cli  # noqa: E402  (path bootstrap above)

#: Subcommand name -> its argparse parser factory (None = the bare
#: two-file reconcile mode).
PARSERS = {
    None: cli.build_parser,
    "serve": cli.build_serve_parser,
    "sync": cli.build_sync_parser,
    "rebalance": cli.build_rebalance_parser,
    "loadgen": cli.build_loadgen_parser,
    "check": cli.build_check_parser,
}

LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
CODE_PATH_RE = re.compile(
    r"`((?:src|docs|tests|benchmarks|examples|scripts)/[\w./-]+\.(?:py|md))`"
)
FENCE_RE = re.compile(r"^(```|~~~)")


def doc_files() -> list[Path]:
    files = [REPO / "README.md", REPO / "ROADMAP.md"]
    files.extend(sorted((REPO / "docs").glob("**/*.md")))
    return [f for f in files if f.exists()]


def check_links(path: Path, text: str, errors: list[str]) -> None:
    for line_no, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                errors.append(
                    f"{path.relative_to(REPO)}:{line_no}: broken link "
                    f"-> {target}"
                )
        for match in CODE_PATH_RE.finditer(line):
            if not (REPO / match.group(1)).exists():
                errors.append(
                    f"{path.relative_to(REPO)}:{line_no}: backticked "
                    f"path does not exist -> {match.group(1)}"
                )


def repro_invocations(text: str):
    """Yield ``repro ...`` command lines from fenced blocks and inline
    code spans (continuation backslashes joined, comments stripped)."""
    in_fence = False
    pending = ""
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            pending = ""
            continue
        if in_fence:
            candidate = (pending + " " + line.strip()).strip() if pending \
                else line.strip()
            if candidate.endswith("\\"):
                pending = candidate[:-1].strip()
                continue
            pending = ""
            candidate = candidate.split("#", 1)[0].strip()
            if candidate.startswith(("repro ", "python -m repro ")):
                yield candidate
        else:
            for span in re.findall(r"`(repro [^`]+)`", line):
                yield span.split("#", 1)[0].strip()


def check_cli_line(command: str, errors: list[str], used: set) -> None:
    command = re.sub(r"^python -m repro", "repro", command)
    try:
        tokens = shlex.split(command)
    except ValueError:
        return   # prose in a code span, not a runnable example
    tokens = tokens[1:]                       # drop "repro"
    sub = tokens[0] if tokens and tokens[0] in PARSERS else None
    if sub is not None:
        tokens = tokens[1:]
    used.add(sub)
    parser = PARSERS[sub]()
    known = set(parser._option_string_actions)
    for token in tokens:
        if not token.startswith("--"):
            continue
        # prose like `--shards/--data-dir/--fsync` lists several flags
        for piece in token.split("/"):
            flag = piece.split("=", 1)[0]
            if flag.startswith("--") and flag not in known:
                mode = f"repro {sub}" if sub else "repro"
                errors.append(
                    f"doc example uses unknown flag {flag!r} for "
                    f"'{mode}': {command!r}"
                )


def check_help(used: set, errors: list[str]) -> None:
    for sub in sorted(used, key=str):
        argv = [sys.executable, "-m", "repro"]
        if sub is not None:
            argv.append(sub)
        argv.append("--help")
        proc = subprocess.run(
            argv, capture_output=True, text=True, timeout=60,
            cwd=REPO,
            env={**os.environ, "PYTHONPATH": str(REPO / "src")},
        )
        if proc.returncode != 0:
            errors.append(
                f"'repro {sub or ''} --help' exited "
                f"{proc.returncode}: {proc.stderr.strip()[:200]}"
            )


def main() -> int:
    errors: list[str] = []
    used: set = set()
    files = doc_files()
    if len(files) < 3:
        errors.append(f"expected README/ROADMAP/docs markdown, found {files}")
    for path in files:
        text = path.read_text(encoding="utf-8")
        check_links(path, text, errors)
        for command in repro_invocations(text):
            check_cli_line(command, errors, used)
    check_help(used, errors)
    for problem in errors:
        print(f"doc-check: {problem}", file=sys.stderr)
    checked = ", ".join(str(p.relative_to(REPO)) for p in files)
    print(
        f"doc-check: {len(files)} files ({checked}); "
        f"{len(used)} CLI modes exercised; {len(errors)} problem(s)"
    )
    return min(len(errors), 125)


if __name__ == "__main__":
    sys.exit(main())
