"""§5.3 / Appendix G: per-round reconciled fractions, analytic vs simulated."""

import pytest

from repro.evaluation import sec53


def test_sec53_piecewise(run_driver):
    table = run_driver(sec53.run, "sec53_piecewise")
    rows = {r["round"]: r for r in table.rows}
    # Analytic values must match the paper's quadruple.
    assert rows[1]["analytic"] == pytest.approx(0.962, abs=0.01)
    assert rows[2]["analytic"] == pytest.approx(0.0380, rel=0.05)
    assert rows[3]["analytic"] == pytest.approx(3.61e-4, rel=0.05)
    # Simulation should agree with the analytic first two rounds.
    assert rows[1]["simulated"] == pytest.approx(rows[1]["analytic"], abs=0.02)
    assert rows[2]["simulated"] == pytest.approx(rows[2]["analytic"], abs=0.02)
    # First round carries > 95% of the work (the Formula (1) justification).
    assert rows[1]["simulated"] > 0.9
