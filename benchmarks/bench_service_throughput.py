"""Service throughput: N concurrent sync clients against one server,
with and without cross-session decode coalescing (see
``repro.evaluation.service_throughput``)."""

from repro.evaluation import service_throughput


def test_service_throughput(run_driver):
    table = run_driver(service_throughput.run, "service_throughput")
    by_key = {(r["concurrency"], r["mode"]): r for r in table.rows}
    # every session must have reconciled successfully in every configuration
    assert all(r["ok"] == r["sessions"] for r in table.rows)
    # coalescing must actually merge sessions once there is concurrency
    high = max(r["concurrency"] for r in table.rows)
    assert high >= 8
    coalesced = by_key[(high, "coalesced")]
    per_session = by_key[(high, "per-session")]
    assert coalesced["mean_sessions_per_batch"] > 1.5
    # the acceptance claim: at >= 8 concurrent sessions the cross-session
    # batch beats per-session decode on server engine time
    assert coalesced["decode_s"] < per_session["decode_s"]
    assert coalesced["decode_speedup"] > 1.0
