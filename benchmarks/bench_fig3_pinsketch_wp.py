"""Figure 3 (a-d): PBS vs PinSketch-with-partition (§8.3)."""

from repro.evaluation import fig3


def test_fig3_pbs_vs_pinsketch_wp(run_driver):
    table = run_driver(fig3.run, "fig3_pbs_vs_pinsketch_wp")
    by_d: dict[int, dict[str, dict]] = {}
    for row in table.rows:
        by_d.setdefault(row["d"], {})[row["algorithm"]] = row
    # PBS must transmit less at every d — the §8.3 symbol-width argument.
    for _d, rows in by_d.items():
        assert rows["pbs"]["kb"] < rows["pinsketch/wp"]["kb"]
