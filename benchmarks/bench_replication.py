"""Async vs quorum replication ack cost at R ∈ {0, 1, 2} (see
``repro.evaluation.replication_bench``)."""

from repro.evaluation import replication_bench
from repro.evaluation.harness import scale_factor


def test_replication_ack_cost(run_driver):
    table = run_driver(replication_bench.run, "replication_ack_cost")
    by = {(r["replicas"], r["mode"]): r for r in table.rows}
    # every point produced a converged replica set and sane quantiles
    assert all(r["converged"] for r in table.rows)
    assert all(r["p99_ms"] >= r["p50_ms"] for r in table.rows)
    assert (0, "async") in by and (2, "quorum") in by
    if scale_factor() >= 1.0:
        # the headline delta: a quorum ack waits for a follower's
        # durable apply + cursor write, so its median cannot undercut
        # the async ack at the same R
        for replicas in (1, 2):
            assert (
                by[(replicas, "quorum")]["p50_ms"]
                >= by[(replicas, "async")]["p50_ms"]
            ), (replicas, by[(replicas, "quorum")], by[(replicas, "async")])
