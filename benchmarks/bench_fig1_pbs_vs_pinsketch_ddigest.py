"""Figure 1 (a-d): PBS vs PinSketch vs D.Digest — success rate,
communication, encoding time, decoding time over a d sweep (§8.1)."""

from repro.evaluation import fig1


def test_fig1_pbs_vs_pinsketch_ddigest(run_driver):
    table = run_driver(fig1.run, "fig1_pbs_vs_pinsketch_ddigest")
    pbs_rows = [r for r in table.rows if r["algorithm"] == "pbs"]
    dd_rows = [r for r in table.rows if r["algorithm"] == "d.digest"]
    ps_rows = [r for r in table.rows if r["algorithm"] == "pinsketch"]
    # Shape assertions from the paper:
    # PBS communication sits at ~2-3x the minimum...
    assert all(1.5 < r["kb/min"] < 3.5 for r in pbs_rows)
    # ... D.Digest at ~6x ...
    assert all(4.5 < r["kb/min"] < 9.0 for r in dd_rows if r["d"] >= 100)
    # ... PinSketch lowest (1.38x of the estimate).
    assert all(r["kb/min"] < 2.3 for r in ps_rows)
    # PinSketch's decode blows up with d; PBS stays linear-ish.
    if len(ps_rows) >= 3:
        assert ps_rows[-1]["decode_s"] > 5 * ps_rows[0]["decode_s"]
