"""§5.2: optimal overhead per group for target rounds r = 1..4."""

from repro.evaluation import sec52


def test_sec52_round_target_sweep(run_driver):
    table = run_driver(sec52.run, "sec52_round_target_sweep")
    for model in ("three-way", "none"):
        rows = sorted(
            (r for r in table.rows if r["model"] == model),
            key=lambda r: r["r"],
        )
        bits = [r["bits_per_group"] for r in rows]
        # sharp drop then flattening; r = 3 is the sweet spot
        assert bits == sorted(bits, reverse=True)
        assert (bits[0] - bits[1]) > 3 * (bits[2] - bits[3])
    # r = 1: no split can finish, so the two models coincide and should be
    # in the ballpark of the paper's 591 bits.
    r1 = [r for r in table.rows if r["r"] == 1]
    assert all(500 <= r["bits_per_group"] <= 700 for r in r1)
