"""Journal vs SQLite shard storage: throughput and RAM residency (see
``repro.evaluation.storage_backends``)."""

from repro.evaluation import storage_backends
from repro.evaluation.harness import scale_factor


def test_storage_backends(run_driver):
    table = run_driver(storage_backends.run, "storage_backends")
    by = {(r["backend"], r["phase"]): r for r in table.rows}
    # every phase verified its reads bit-for-bit on every backend
    assert all(r["ok"] for r in table.rows)
    # both backends persisted real durable state
    assert all(r["disk_mb"] > 0 for r in table.rows)
    if scale_factor() >= 1.0:
        journal = by[("journal", "serve")]
        sqlite = by[("sqlite", "serve")]
        # the PR-6 acceptance claim: SQLite serves a store whose full
        # materialization exceeds what the serving process ever held
        assert sqlite["rss_delta_mb"] < sqlite["materialized_mb_est"], (
            sqlite["rss_delta_mb"], sqlite["materialized_mb_est"],
        )
        # ... while the journal's replay-into-RAM footprint tracks the
        # store size: the residency gap is the point of the backend
        assert sqlite["rss_delta_mb"] < journal["rss_delta_mb"], (
            sqlite["rss_delta_mb"], journal["rss_delta_mb"],
        )
