"""Figure 5 / Appendix J.3: 256-bit signatures (analytic accounting)."""

from repro.evaluation import fig5


def test_fig5_256bit_signatures(run_driver):
    table = run_driver(fig5.run, "fig5_256bit_signatures")
    # PinSketch/WP-to-PBS ratio must exceed the 32-bit ratio everywhere
    # (the whole point of Fig. 5): compute the 32-bit analytic ratios too.
    table32 = fig5.run(log_u=32)
    for row256, row32 in zip(table.rows, table32.rows):
        assert row256["ratio"] > row32["ratio"]
    # And PBS stays within a small factor of the 256-bit minimum.
    assert all(r["pbs/min"] < 2.5 for r in table.rows)
