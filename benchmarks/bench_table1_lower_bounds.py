"""Table 1 / Appendix H: the (n, t) success-probability grid."""

from repro.evaluation import table1


def test_table1_lower_bounds(run_driver):
    table = run_driver(table1.run, "table1_lower_bounds")
    rows = {(r["n"], r["t"]): r for r in table.rows}
    # The paper's darkened optimum (127, 13) must be feasible under both
    # models' published-value neighborhood...
    assert rows[(127, 13)]["split_model"] >= 0.99
    assert rows[(127, 13)]["paper"] >= 0.99
    # ...and the infeasible corners stay infeasible.
    assert rows[(63, 8)]["split_model"] < 0.99 or rows[(63, 8)]["paper"] == 0.0
    # Monotonicity in n at fixed t (both models).
    for t in (9, 13, 17):
        seq = [rows[(n, t)]["split_model"] for n in (63, 127, 255, 511)]
        assert seq == sorted(seq)
