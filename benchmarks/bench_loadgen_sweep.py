"""Open-loop rate sweep: client-side p99 and shed rate vs offered load
against an admission-capped server (see ``repro.evaluation.loadgen_sweep``).
Every underlying loadgen report is schema-validated before its row lands."""

from repro.evaluation import loadgen_sweep


def test_loadgen_sweep(run_driver):
    table = run_driver(loadgen_sweep.run, "loadgen_sweep")
    by_rate = {r["rate"]: r for r in table.rows}
    assert len(by_rate) == len(table.rows)          # one row per rate
    # open-loop accounting conserved at every rate
    for row in table.rows:
        assert row["scheduled"] > 0
        assert row["ok"] + row["shed"] + row["failed"] <= row["scheduled"]
        assert 0.0 <= row["shed_rate"] <= 1.0
        assert row["windows"] >= 2                  # timeseries populated
    low, high = min(by_rate), max(by_rate)
    # the bottom of the sweep must be comfortably inside capacity: most
    # sessions complete and the windowed SLO holds
    assert by_rate[low]["ok"] > 0
    assert by_rate[low]["shed_rate"] < 0.5
    # offering more must deliver at least as many completed sessions —
    # an open loop cannot be throttled by the server into offering less
    assert by_rate[high]["scheduled"] > by_rate[low]["scheduled"]
    assert by_rate[high]["ok"] >= by_rate[low]["ok"]
