"""Ablations of PBS design choices (split arity, Procedure 3, gamma)."""

from repro.evaluation import ablations


def test_ablations(run_driver):
    table = run_driver(ablations.run, "ablations")
    rows = {(r["ablation"], r["variant"]): r for r in table.rows}
    # Three-way splits should converge at least as fast as two-way under
    # overload (§3.2's argument).
    assert (
        rows[("split-arity (under-provisioned)", "3-way")]["mean_rounds"]
        <= rows[("split-arity (under-provisioned)", "2-way")]["mean_rounds"] + 0.5
    )
    # The Procedure-3 check never hurts; disabling it must not *improve*
    # within-3-rounds success.
    assert (
        rows[("procedure-3 check", "on")]["success_r3"]
        >= rows[("procedure-3 check", "off")]["success_r3"] - 1e-9
    )
    # gamma = 1.38 must beat gamma = 1.0 on within-3-rounds success.
    assert (
        rows[("estimator inflation", "gamma=1.38")]["success_r3"]
        >= rows[("estimator inflation", "gamma=1.0")]["success_r3"]
    )
