"""Figure 2 (a-d): PBS vs Graphene at p0 = 239/240 (§8.2)."""

from repro.evaluation import fig2


def test_fig2_pbs_vs_graphene(run_driver):
    table = run_driver(fig2.run, "fig2_pbs_vs_graphene")
    by_d: dict[int, dict[str, dict]] = {}
    for row in table.rows:
        by_d.setdefault(row["d"], {})[row["algorithm"]] = row
    # PBS transmits less than Graphene for small/medium d (paper: 1.2-7.4x).
    small_d = [d for d in by_d if d <= 1000]
    for d in small_d:
        assert by_d[d]["pbs"]["kb"] < by_d[d]["graphene"]["kb"]
    # Graphene's per-difference overhead falls as d approaches |A|.
    ds = sorted(by_d)
    if len(ds) >= 3:
        g_first = by_d[ds[0]]["graphene"]["kb/min"]
        g_last = by_d[ds[-1]]["graphene"]["kb/min"]
        assert g_last < g_first
