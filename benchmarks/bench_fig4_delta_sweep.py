"""Figure 4 / Appendix J.2: PBS under varying delta."""

from repro.evaluation import fig4


def test_fig4_delta_sweep(run_driver):
    table = run_driver(fig4.run, "fig4_delta_sweep")
    rows = sorted(table.rows, key=lambda r: r["delta"])
    # Communication falls as delta grows...
    assert rows[-1]["kb"] < rows[0]["kb"]
    # ... and decoding gets more expensive (O(t^2) per group, t ~ delta).
    assert rows[-1]["decode_s"] > rows[0]["decode_s"]
