"""Micro-benchmarks of the substrates backing every protocol.

These are classic pytest-benchmark timings (many rounds) rather than
experiment drivers: GF multiplication in all three backends, BCH sketch
encode/decode, IBF insertion/peeling, and bulk hashing throughput.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.ibf import IBF
from repro.bch.codec import BCHCodec
from repro.core.partition import bin_indices, bin_tables
from repro.gf import CarrylessField, TableField, TowerField32
from repro.hashing.families import SaltedHash


@pytest.fixture(scope="module")
def values_100k():
    rng = np.random.default_rng(1)
    return np.unique(rng.integers(1, 1 << 32, size=100_000, dtype=np.uint64))


class TestFieldMultiply:
    def test_table_field_mul(self, benchmark):
        field = TableField(11)
        benchmark(lambda: [field.mul(1234, 987) for _ in range(1000)])

    def test_tower_field_mul(self, benchmark):
        field = TowerField32()
        benchmark(lambda: [field.mul(0xDEADBEEF, 0xCAFE1234) for _ in range(1000)])

    def test_carryless_field_mul(self, benchmark):
        field = CarrylessField(32)
        benchmark(lambda: [field.mul(0xDEADBEEF, 0xCAFE1234) for _ in range(1000)])

    def test_tower_field_mul_vec_100k(self, benchmark, values_100k):
        field = TowerField32()
        a = values_100k.astype(np.int64)
        benchmark(lambda: field.mul_vec(a, a))


class TestBCH:
    def test_sketch_bitmap_positions(self, benchmark):
        field = TableField(7)
        codec = BCHCodec(field, 13)
        rng = np.random.default_rng(2)
        positions = np.unique(rng.integers(1, 128, size=40, dtype=np.int64))
        benchmark(lambda: codec.sketch(positions))

    def test_decode_five_errors(self, benchmark):
        field = TableField(7)
        codec = BCHCodec(field, 13)
        sketch = codec.sketch([3, 17, 44, 99, 120])
        benchmark(lambda: codec.decode(sketch))

    def test_pinsketch_syndromes_10k(self, benchmark, values_100k):
        field = TowerField32()
        codec = BCHCodec(field, 14)
        subset = values_100k[:10_000].astype(np.int64)
        benchmark(lambda: codec.sketch(subset))


class TestIBF:
    def test_insert_10k(self, benchmark, values_100k):
        subset = values_100k[:10_000]

        def insert():
            ibf = IBF(n_cells=2000, n_hashes=3, seed=3)
            ibf.insert_many(subset)
            return ibf

        benchmark(insert)

    def test_peel_200_differences(self, benchmark, values_100k):
        diff = values_100k[:200]

        def build_and_peel():
            ibf = IBF(n_cells=400, n_hashes=4, seed=4)
            ibf.insert_many(diff)
            return ibf.decode()

        benchmark(build_and_peel)


class TestHashingAndPartition:
    def test_bulk_hash_100k(self, benchmark, values_100k):
        h = SaltedHash(7)
        benchmark(lambda: h.hash_vec(values_100k))

    def test_partition_and_parity_100k(self, benchmark, values_100k):
        def partition():
            idx = bin_indices(values_100k, salt=9, n=127)
            return bin_tables(values_100k, idx, 127)

        benchmark(partition)
