"""Micro-benchmarks of the substrates backing every protocol.

These are classic pytest-benchmark timings (many rounds) rather than
experiment drivers: GF multiplication in all three backends, BCH sketch
encode/decode (scalar and batched), IBF insertion/peeling, and bulk
hashing throughput.  ``TestBatchVsScalar`` additionally archives a
scalar-vs-batch decode comparison on the Figure-1 workload shape under
``benchmarks/results/``.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.baselines.ibf import IBF
from repro.bch.codec import BCHCodec
from repro.core.params import PBSParams
from repro.core.partition import bin_indices, bin_tables
from repro.core.protocol import PBSProtocol
from repro.errors import DecodeFailure
from repro.evaluation.harness import (
    ExperimentTable,
    batch_mode_rows,
    instances,
    scaled,
)
from repro.gf import CarrylessField, TableField, TowerField32
from repro.hashing.families import SaltedHash


@pytest.fixture(scope="module")
def values_100k():
    rng = np.random.default_rng(1)
    return np.unique(rng.integers(1, 1 << 32, size=100_000, dtype=np.uint64))


class TestFieldMultiply:
    def test_table_field_mul(self, benchmark):
        field = TableField(11)
        benchmark(lambda: [field.mul(1234, 987) for _ in range(1000)])

    def test_tower_field_mul(self, benchmark):
        field = TowerField32()
        benchmark(lambda: [field.mul(0xDEADBEEF, 0xCAFE1234) for _ in range(1000)])

    def test_carryless_field_mul(self, benchmark):
        field = CarrylessField(32)
        benchmark(lambda: [field.mul(0xDEADBEEF, 0xCAFE1234) for _ in range(1000)])

    def test_tower_field_mul_vec_100k(self, benchmark, values_100k):
        field = TowerField32()
        a = values_100k.astype(np.int64)
        benchmark(lambda: field.mul_vec(a, a))


class TestBCH:
    def test_sketch_bitmap_positions(self, benchmark):
        field = TableField(7)
        codec = BCHCodec(field, 13)
        rng = np.random.default_rng(2)
        positions = np.unique(rng.integers(1, 128, size=40, dtype=np.int64))
        benchmark(lambda: codec.sketch(positions))

    def test_decode_five_errors(self, benchmark):
        field = TableField(7)
        codec = BCHCodec(field, 13)
        sketch = codec.sketch([3, 17, 44, 99, 120])
        benchmark(lambda: codec.decode(sketch))

    def test_pinsketch_syndromes_10k(self, benchmark, values_100k):
        field = TowerField32()
        codec = BCHCodec(field, 14)
        subset = values_100k[:10_000].astype(np.int64)
        benchmark(lambda: codec.sketch(subset))


def _fig1_round_sketches(d: int = 3000, seed: int = 0):
    """One fig1-shaped PBS round: the per-group delta sketches at scale d.

    Group loads are Poisson(delta) like the real partition, including
    over-capacity groups (decode failures), so both paths exercise their
    failure handling.
    """
    params = PBSParams.from_d(d)
    codec = params.codec
    rng = np.random.default_rng(seed)
    sketches = []
    for _ in range(params.g):
        k = min(int(rng.poisson(params.delta)), params.n)
        positions = rng.choice(
            np.arange(1, params.n + 1), size=k, replace=False
        )
        sketches.append(codec.sketch(np.sort(positions).astype(np.int64)))
    return codec, sketches


class TestBatchVsScalar:
    """The batch decode engine against the per-group scalar loop."""

    def test_decode_fig1_round_scalar(self, benchmark):
        codec, sketches = _fig1_round_sketches()

        def scalar():
            out = []
            for sk in sketches:
                try:
                    out.append(codec.decode(sk))
                except DecodeFailure:
                    out.append(None)
            return out

        benchmark(scalar)

    def test_decode_fig1_round_batch(self, benchmark):
        codec, sketches = _fig1_round_sketches()
        benchmark(lambda: codec.decode_many(sketches))

    def test_sketch_fig1_round_batch(self, benchmark):
        params = PBSParams.from_d(3000)
        rng = np.random.default_rng(1)
        groups = [
            np.sort(
                rng.choice(np.arange(1, params.n + 1), size=8, replace=False)
            ).astype(np.int64)
            for _ in range(params.g)
        ]
        benchmark(lambda: params.codec.sketch_many(groups))

    def test_fig1_decode_speedup_table(self):
        """Archive the measured speedup; engine target is >= 5x on fig1.

        The assertion floor is deliberately below the target so a noisy
        CI runner cannot flake the build; the archived table carries the
        real number.
        """
        table = ExperimentTable(
            name="Micro — batch vs scalar BCH decode (fig1 workload)",
            columns=[
                "layer", "d", "mode", "success", "decode_s", "encode_s",
                "decode_speedup",
            ],
        )
        codec, sketches = _fig1_round_sketches()
        best = {"scalar": float("inf"), "batch": float("inf")}
        for _ in range(5):
            start = time.perf_counter()
            for sk in sketches:
                try:
                    codec.decode(sk)
                except DecodeFailure:
                    pass
            best["scalar"] = min(best["scalar"], time.perf_counter() - start)
            start = time.perf_counter()
            codec.decode_many(sketches)
            best["batch"] = min(best["batch"], time.perf_counter() - start)
        engine_speedup = best["scalar"] / max(best["batch"], 1e-12)
        for mode in ("scalar", "batch"):
            table.add_row(
                layer="bch-engine", d=3000, mode=mode, success=1.0,
                decode_s=best[mode], encode_s=0.0,
                decode_speedup=engine_speedup if mode == "batch" else "",
            )
        # Protocol level: the same comparison end-to-end (includes the
        # non-BCH per-round work, so the ratio is lower than the engine's).
        d = scaled(1000, minimum=100)
        pairs = instances(20_000, d, scaled(3, minimum=2), seed=7)
        for row in batch_mode_rows(
            lambda batch: PBSProtocol(seed=7, batch=batch), pairs, true_d=d
        ):
            table.add_row(
                layer="pbs-protocol", d=d, mode=row["mode"],
                success=row["success"], decode_s=row["decode_s"],
                encode_s=row["encode_s"],
                decode_speedup=row.get("decode_speedup", ""),
            )
        table.note(
            f"engine best-of-5 speedup {engine_speedup:.1f}x "
            "(target >= 5x on the fig1 workload at default scale)"
        )
        table.print()
        table.save("micro_batch_vs_scalar")
        assert engine_speedup >= 3.0


class TestIBF:
    def test_insert_10k(self, benchmark, values_100k):
        subset = values_100k[:10_000]

        def insert():
            ibf = IBF(n_cells=2000, n_hashes=3, seed=3)
            ibf.insert_many(subset)
            return ibf

        benchmark(insert)

    def test_peel_200_differences(self, benchmark, values_100k):
        diff = values_100k[:200]

        def build_and_peel():
            ibf = IBF(n_cells=400, n_hashes=4, seed=4)
            ibf.insert_many(diff)
            return ibf.decode()

        benchmark(build_and_peel)


class TestHashingAndPartition:
    def test_bulk_hash_100k(self, benchmark, values_100k):
        h = SaltedHash(7)
        benchmark(lambda: h.hash_vec(values_100k))

    def test_partition_and_parity_100k(self, benchmark, values_100k):
        def partition():
            idx = bin_indices(values_100k, salt=9, n=127)
            return bin_tables(values_100k, idx, 127)

        benchmark(partition)
