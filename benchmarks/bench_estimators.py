"""§6 / Appendix B: estimator accuracy vs wire cost."""

from repro.evaluation import estimators_bench


def test_estimators_comparison(run_driver):
    table = run_driver(estimators_bench.run, "estimators_comparison")
    by_key = {(r["d"], r["estimator"]): r for r in table.rows}
    ds = sorted({r["d"] for r in table.rows})
    for d in ds:
        tow = by_key[(d, "tow-128")]
        strata = by_key[(d, "strata-32x80")]
        # Appendix B: ToW is far more space-efficient at comparable accuracy.
        assert tow["wire_bytes"] * 20 < strata["wire_bytes"]
        assert tow["mean_rel_err"] < 1.0
    # §6.2 calibration: 1.38 inflation covers the true d ~99% of the time.
    coverages = [by_key[(d, "tow-128")]["coverage_1.38"] for d in ds]
    assert all(c >= 0.9 for c in coverages)
