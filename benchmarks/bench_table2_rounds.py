"""Table 2 / Appendix J.1: empirical rounds-to-completion PMF."""

from repro.evaluation import table2


def test_table2_rounds_pmf(run_driver):
    table = run_driver(table2.run, "table2_rounds_pmf")
    rows = {r["d"]: r for r in table.rows}
    # Paper shape: mass concentrated on rounds 1-3; mean rounds grow with d
    # (1.20 / 1.81 / 2.04 for d = 10 / 100 / 1000) and stay close to 2.
    means = [rows[d]["mean"] for d in sorted(rows)]
    assert means == sorted(means)
    assert all(1.0 <= m <= 3.5 for m in means)
    for row in table.rows:
        assert row["r=1"] + row["r=2"] + row["r=3"] + row["r>=4"] == 1.0
