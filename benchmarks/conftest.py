"""Benchmark-suite configuration.

Every benchmark wraps one evaluation driver (``repro.evaluation.*``) in a
single pytest-benchmark round, prints the resulting table, and saves
markdown + JSON artifacts under ``benchmarks/results/``.

Scale with ``REPRO_SCALE`` (e.g. ``REPRO_SCALE=0.2 pytest benchmarks/``
for a quick pass, ``REPRO_SCALE=5`` to approach paper scale).
"""

from __future__ import annotations

import pytest


@pytest.fixture()
def run_driver(benchmark):
    """Run an evaluation driver once under pytest-benchmark and archive it."""

    def _run(driver_fn, stem: str, **kwargs):
        table = benchmark.pedantic(
            lambda: driver_fn(**kwargs), rounds=1, iterations=1
        )
        table.print()
        path = table.save(stem)
        benchmark.extra_info["rows"] = len(table.rows)
        benchmark.extra_info["artifact"] = str(path)
        return table

    return _run
