"""Multi-process decode scaling: ``--workers proc`` vs the inline
executor on a decode-bound concurrent-session workload (see
``repro.evaluation.multiproc_scaling``)."""

from repro.cluster.proc import fork_safe_cpu_count
from repro.evaluation import multiproc_scaling
from repro.evaluation.harness import scale_factor


def test_multiproc_scaling(run_driver):
    table = run_driver(multiproc_scaling.run, "multiproc_scaling")
    by_level = {(r["executor"], r["workers"]): r for r in table.rows}
    inline = by_level[("inline", 4)]
    proc4 = by_level[("proc", 4)]
    # every session converged, at every level — the executor swap must
    # never cost correctness
    assert all(r["ok"] == r["sessions"] for r in table.rows)
    # real decode work flowed through both executors' coalescers
    assert inline["decode_groups"] > 0 and proc4["decode_groups"] > 0
    cores = fork_safe_cpu_count()
    if scale_factor() >= 1.0 and cores >= 2:
        # with any parallelism at all, 4 proc workers must beat 1
        # (reduced-scale smoke runs are too short to assert timing)
        assert (
            proc4["sessions_per_s"] > by_level[("proc", 1)]["sessions_per_s"]
        )
    if scale_factor() >= 1.0 and cores >= 4:
        # the ISSUE-5 acceptance bar, on hosts that can express it:
        # >1.5x aggregate decode throughput at 4 proc workers vs inline
        assert proc4["speedup_vs_inline"] >= 1.5, (
            proc4["speedup_vs_inline"],
            inline["sessions_per_s"],
            proc4["sessions_per_s"],
        )
