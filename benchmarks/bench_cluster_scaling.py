"""Cluster scaling: delivered reconciliation throughput at 1/2/4 shards
under the PR-2 concurrent-session workload with per-shard admission and
journaled (fsync) durability (see ``repro.evaluation.cluster_scaling``)."""

from repro.evaluation import cluster_scaling
from repro.evaluation.harness import scale_factor


def test_cluster_scaling(run_driver):
    table = run_driver(cluster_scaling.run, "cluster_scaling")
    by_shards = {r["shards"]: r for r in table.rows}
    # every shed session must have retried through to success in every
    # configuration — overload is deferred work, never lost work
    assert all(r["ok"] == r["sessions"] for r in table.rows)
    # the single-shard config must actually have been overloaded (its cap
    # binds), and every apply must have hit a journal
    assert by_shards[1]["shed"] > 0
    assert all(r["journal_records"] > 0 for r in table.rows)
    # capacity scales with shards; at full scale the acceptance bar is
    # the ISSUE's >= 1.5x at 4 shards (reduced-scale CI smoke runs only
    # sanity-check the direction)
    top = max(by_shards)
    assert by_shards[top]["sessions_per_s"] > by_shards[1]["sessions_per_s"]
    if scale_factor() >= 1.0:
        assert by_shards[top]["speedup"] >= 1.5
