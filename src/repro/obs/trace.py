"""Cross-process trace spans in Chrome trace-event format.

One reconciliation session touches up to three processes: the client,
the server parent, and (in proc mode) the shard-worker subprocess that
decodes and commits.  To see that session as a single tree, the client
mints a random 64-bit *trace id* at connect time, the id rides the
HELLO frame (wire v3) and every proc-executor RPC body, and each
process appends its own spans to a per-process JSONL file under the
configured trace directory.  ``python -m repro.obs.trace <dir>``
merges the files into one Chrome JSON trace for
``chrome://tracing`` / `Perfetto <https://ui.perfetto.dev>`_.

Span events are the Chrome trace-event ``"ph": "X"`` (complete) form:
wall-clock ``ts`` microseconds (processes share a host clock, so spans
line up across files) with the *duration* measured on
``perf_counter`` so NTP steps cannot produce negative spans.  Span
identity and parentage live in ``args`` (``trace``/``span``/
``parent`` hex ids) since the Chrome format has no native span tree.

Tracing is configured per process (:func:`configure_tracing`) and off
by default; a disabled tracer's ``span()`` yields its parent context
unchanged, so trace ids still *propagate* through a non-tracing
middle hop at the cost of an attribute check.
"""

from __future__ import annotations

import json
import os
import secrets
import time
from contextlib import contextmanager
from pathlib import Path
from typing import IO, NamedTuple

__all__ = [
    "TraceContext",
    "Tracer",
    "configure_tracing",
    "tracer",
    "load_events",
    "merge_trace",
]


class TraceContext(NamedTuple):
    """Identity of one span: which trace, and which node in its tree."""

    trace_id: int
    span_id: int

    def hex(self) -> str:
        return f"{self.trace_id:016x}"


def _new_id() -> int:
    """Random non-zero 64-bit id (zero means 'absent' on the wire)."""
    while True:
        value = secrets.randbits(64)
        if value:
            return value


class Tracer:
    """Per-process span writer; inert unless given a directory.

    ``max_bytes`` caps the span file: when the current file grows past
    it, the file rotates once (``trace-<role>-<pid>.jsonl`` is renamed
    to ``trace-<role>-<pid>.1.jsonl``, replacing any previous rotation)
    and writing restarts fresh — so a long-running load test keeps at
    most ~2x ``max_bytes`` of the *newest* spans per process instead of
    growing a JSONL file without bound.  The rotated name still matches
    the ``trace-*.jsonl`` merge glob, so :func:`load_events` sees both
    generations.
    """

    def __init__(
        self,
        trace_dir: str | Path | None,
        role: str,
        max_bytes: int | None = None,
    ) -> None:
        self.trace_dir = Path(trace_dir) if trace_dir else None
        self.role = role
        self.max_bytes = max_bytes if max_bytes and max_bytes > 0 else None
        self._file: IO[str] | None = None
        self._written = 0

    @property
    def enabled(self) -> bool:
        return self.trace_dir is not None

    def mint(self) -> TraceContext | None:
        """A fresh root context, or None when tracing is off."""
        if self.trace_dir is None:
            return None
        return TraceContext(_new_id(), _new_id())

    def child(self, parent: TraceContext | None) -> TraceContext | None:
        """A child context under ``parent`` (same trace, new span)."""
        if self.trace_dir is None or parent is None:
            return parent
        return TraceContext(parent.trace_id, _new_id())

    @contextmanager
    def span(
        self,
        name: str,
        parent: TraceContext | None = None,
        **args,
    ):
        """Time a block as one span; yields the block's own context.

        With tracing disabled the parent context passes through
        untouched and nothing is written — the caller can always
        forward whatever ``span()`` yields.  With tracing enabled and
        no parent (e.g. a v2 client that sent no trace id), the span
        roots a fresh trace so server-side timing is never lost.
        """
        if self.trace_dir is None:
            yield parent
            return
        if parent is None:
            ctx = TraceContext(_new_id(), _new_id())
        else:
            ctx = TraceContext(parent.trace_id, _new_id())
        ts_unix = time.time()
        start = time.perf_counter()
        try:
            yield ctx
        finally:
            self._emit(
                name, ctx, parent, ts_unix,
                time.perf_counter() - start, args,
            )

    def emit(
        self,
        name: str,
        ctx: TraceContext,
        parent: TraceContext | None,
        ts_unix: float,
        duration_s: float,
        **args,
    ) -> None:
        """Record an already-timed span (for callers that measured)."""
        if self.trace_dir is not None:
            self._emit(name, ctx, parent, ts_unix, duration_s, args)

    def _emit(self, name, ctx, parent, ts_unix, duration_s, args) -> None:
        event = {
            "name": name,
            "cat": "repro",
            "ph": "X",
            "ts": round(ts_unix * 1e6),
            "dur": max(0, round(duration_s * 1e6)),
            "pid": os.getpid(),
            "tid": 0,
            "args": {
                "trace": f"{ctx.trace_id:016x}",
                "span": f"{ctx.span_id:016x}",
                "parent": (
                    f"{parent.span_id:016x}" if parent is not None else ""
                ),
                "role": self.role,
                **args,
            },
        }
        if self._file is None:
            self.trace_dir.mkdir(parents=True, exist_ok=True)
            path = self._path()
            # line-buffered append: each span is one flushed JSON line,
            # so a crashed process loses at most a partial final line
            self._file = open(path, "a", buffering=1, encoding="utf-8")
            self._written = path.stat().st_size
        line = json.dumps(event, separators=(",", ":")) + "\n"
        self._file.write(line)
        self._written += len(line)
        if self.max_bytes is not None and self._written >= self.max_bytes:
            self._rotate()

    def _path(self) -> Path:
        return self.trace_dir / f"trace-{self.role}-{os.getpid()}.jsonl"

    def _rotate(self) -> None:
        """One-deep rotation: current file becomes ``.1``, writing
        restarts fresh; a previous ``.1`` (older spans) is replaced."""
        self._file.close()
        self._file = None
        self._written = 0
        path = self._path()
        rotated = path.with_name(
            f"trace-{self.role}-{os.getpid()}.1.jsonl"
        )
        try:
            os.replace(path, rotated)
        except OSError:
            pass   # rotation is best-effort; worst case the file regrows

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


#: The per-process tracer; disabled until :func:`configure_tracing`.
_TRACER = Tracer(None, "main")


def configure_tracing(
    trace_dir: str | Path | None,
    role: str = "main",
    max_bytes: int | None = None,
) -> Tracer:
    """(Re)configure this process's tracer; None disables tracing.

    ``max_bytes`` caps the span file with one-deep rotation (see
    :class:`Tracer`); None keeps the file unbounded.
    """
    global _TRACER
    _TRACER.close()
    _TRACER = Tracer(trace_dir, role, max_bytes=max_bytes)
    return _TRACER


def tracer() -> Tracer:
    """The process-wide tracer (possibly disabled)."""
    return _TRACER


def load_events(trace_dir: str | Path) -> list[dict]:
    """All span events across every per-process file, ts-ordered."""
    events: list[dict] = []
    for path in sorted(Path(trace_dir).glob("trace-*.jsonl")):
        with open(path, encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    events.append(json.loads(line))
                except json.JSONDecodeError:
                    continue  # torn final line from a killed process
    events.sort(key=lambda e: e.get("ts", 0))
    return events


def merge_trace(trace_dir: str | Path) -> dict:
    """One Chrome-format trace object covering every process's file."""
    return {
        "traceEvents": load_events(trace_dir),
        "displayTimeUnit": "ms",
    }


def _main() -> int:  # pragma: no cover - exercised via CLI smoke
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.trace",
        description=(
            "Merge per-process trace JSONL files into one Chrome "
            "trace JSON for chrome://tracing or Perfetto."
        ),
    )
    parser.add_argument("trace_dir", help="directory of trace-*.jsonl")
    parser.add_argument(
        "-o", "--output",
        help="output path (default: <trace_dir>/trace.json)",
    )
    opts = parser.parse_args()
    merged = merge_trace(opts.trace_dir)
    out = Path(opts.output or Path(opts.trace_dir) / "trace.json")
    out.write_text(json.dumps(merged, indent=1), encoding="utf-8")
    print(f"{len(merged['traceEvents'])} events -> {out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(_main())
