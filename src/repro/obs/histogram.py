"""Log-linear fixed-bucket latency histogram.

The service records latencies at very different magnitudes — a decode
batch is hundreds of microseconds, a journal ``fsync`` is milliseconds,
a multi-pass session can be seconds — so fixed-width buckets would
either blur the fast end or explode in count.  The classic answer
(HdrHistogram, OpenTelemetry's exponential histograms) is log-linear
bucketing: bucket boundaries double every *stride*, and each doubling
is split into ``SUBBUCKETS`` linear sub-buckets, giving a constant
*relative* error bound of ``1/SUBBUCKETS`` across the whole range.

Design constraints that shaped this type:

* **Fixed layout** — every process builds the identical boundary
  array, so histograms merge across shard-worker subprocesses by
  adding counts (no boundary negotiation in the RPC).
* **No stored samples** — recording is O(log buckets) via bisect and
  a handful of scalar updates; memory is one small int array
  regardless of event count.  Percentiles come from bucket
  interpolation, exact ``min``/``max``/``sum``/``count`` ride along.
* **Serializable sparsely** — :meth:`to_dict` emits only non-zero
  buckets, so shipping a mostly-idle histogram over the worker RPC
  costs a few dozen bytes.
"""

from __future__ import annotations

import math
from bisect import bisect_right

__all__ = ["LatencyHistogram"]

#: Smallest resolvable latency (seconds).  Anything below lands in the
#: first bucket; 1 µs is far below every event this service times.
MIN_LATENCY_S = 1e-6

#: Doublings covered above :data:`MIN_LATENCY_S`.  26 doublings puts the
#: top boundary at ``1e-6 * 2**26`` ≈ 67 s; slower events count in the
#: overflow bucket (their exact sum/max are still tracked).
DOUBLINGS = 26

#: Linear sub-buckets per doubling.  8 bounds the relative quantile
#: error at 12.5% worst-case (half that at bucket midpoints) — plenty
#: for p99 dashboards — at 26 * 8 + 2 = 210 total buckets.
SUBBUCKETS = 8


def _build_boundaries() -> tuple[float, ...]:
    """Upper bucket boundaries, shared by every histogram instance."""
    bounds: list[float] = []
    low = MIN_LATENCY_S
    for _ in range(DOUBLINGS):
        step = low / SUBBUCKETS
        bounds.extend(low + step * (i + 1) for i in range(SUBBUCKETS))
        low *= 2.0
    return tuple(bounds)


#: ``BOUNDARIES[i]`` is the *exclusive* upper edge of bucket ``i + 1``;
#: bucket 0 is the underflow bucket ``[0, MIN_LATENCY_S)`` and the last
#: bucket is the overflow bucket ``[BOUNDARIES[-1], inf)``.
BOUNDARIES: tuple[float, ...] = _build_boundaries()

#: Total bucket count: underflow + log-linear grid + overflow.
BUCKET_COUNT = len(BOUNDARIES) + 2

#: Layout identifier recorded in serialized form.  Merging refuses to
#: mix layouts, so a future re-bucketing cannot silently corrupt counts
#: shipped from an older worker binary.
LAYOUT = f"loglin-{MIN_LATENCY_S:g}-{DOUBLINGS}x{SUBBUCKETS}"


class LatencyHistogram:
    """Mergeable fixed-bucket histogram of latencies in seconds."""

    __slots__ = ("counts", "count", "sum", "min", "max")

    def __init__(self) -> None:
        self.counts = [0] * BUCKET_COUNT
        self.count = 0
        self.sum = 0.0
        self.min = 0.0
        self.max = 0.0

    def record(self, seconds: float) -> None:
        """Count one event that took ``seconds`` (negatives clamp to 0)."""
        if seconds < 0.0:
            seconds = 0.0
        if seconds < MIN_LATENCY_S:
            index = 0
        else:
            index = bisect_right(BOUNDARIES, seconds) + 1
        self.counts[index] += 1
        if self.count == 0 or seconds < self.min:
            self.min = seconds
        if seconds > self.max:
            self.max = seconds
        self.count += 1
        self.sum += seconds

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Latency at quantile ``q`` in [0, 1], interpolated in-bucket.

        Exact observed ``min``/``max`` clamp the answer, so q=0 / q=1
        are exact and a single-sample histogram reports that sample
        (not its bucket midpoint) at every quantile.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile out of range: {q}")
        if self.count == 0:
            return 0.0
        # rank of the target sample, 1-based; q=0 -> first sample
        rank = max(1, math.ceil(q * self.count))
        if rank == self.count:
            return self.max
        seen = 0
        for index, n in enumerate(self.counts):
            if n == 0:
                continue
            if seen + n >= rank:
                low, high = self._bucket_edges(index)
                # linear interpolation within the bucket's rank span
                frac = (rank - seen) / n
                value = low + (high - low) * frac
                return min(max(value, self.min), self.max)
            seen += n
        return self.max  # unreachable unless counts drifted

    def percentiles(self) -> dict[str, float]:
        """The standard dashboard set: p50/p95/p99/p999."""
        return {
            "p50": self.percentile(0.50),
            "p95": self.percentile(0.95),
            "p99": self.percentile(0.99),
            "p999": self.percentile(0.999),
        }

    @staticmethod
    def _bucket_edges(index: int) -> tuple[float, float]:
        if index == 0:
            return 0.0, MIN_LATENCY_S
        if index == BUCKET_COUNT - 1:
            # overflow: treat as one more doubling wide
            top = BOUNDARIES[-1]
            return top, top * 2.0
        return (
            BOUNDARIES[index - 2] if index >= 2 else MIN_LATENCY_S,
            BOUNDARIES[index - 1],
        )

    def merge(self, other: LatencyHistogram) -> None:
        """Fold ``other``'s counts into self (other is unchanged)."""
        if other.count == 0:
            return
        for index, n in enumerate(other.counts):
            if n:
                self.counts[index] += n
        if self.count == 0 or other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max
        self.count += other.count
        self.sum += other.sum

    def copy(self) -> LatencyHistogram:
        """An independent snapshot of this histogram's current counts."""
        out = LatencyHistogram()
        out.merge(self)
        return out

    def delta(self, earlier: LatencyHistogram) -> LatencyHistogram:
        """The window of events recorded since ``earlier`` was snapshot.

        ``earlier`` must be a previous snapshot of the *same* cumulative
        histogram (counts only ever grow), so per-bucket subtraction is
        exact; a counter reset (self behind earlier, e.g. after a worker
        restart dropped its registry) clamps to an all-zero window
        rather than going negative.

        ``min``/``max`` are not recoverable from cumulative extremes, so
        the window's are approximated by the edges of its outermost
        non-zero buckets (clamped into the cumulative observed range).
        Quantiles interpolate within buckets anyway, so windowed
        percentiles keep the grid's relative error bound.
        """
        out = LatencyHistogram()
        if self.count <= earlier.count:
            return out
        lo_index = hi_index = -1
        for index, n in enumerate(self.counts):
            d = n - earlier.counts[index]
            if d > 0:
                out.counts[index] = d
                out.count += d
                if lo_index < 0:
                    lo_index = index
                hi_index = index
        if out.count == 0:
            return out
        out.sum = max(0.0, self.sum - earlier.sum)
        out.min = max(self.min, self._bucket_edges(lo_index)[0])
        out.max = min(self.max, self._bucket_edges(hi_index)[1])
        if out.max < out.min:      # single-bucket window edge case
            out.max = out.min
        return out

    def cumulative(
        self, bounds: tuple[float, ...]
    ) -> list[tuple[float, int]]:
        """Cumulative counts at each of ``bounds`` (seconds, ascending).

        This is the Prometheus ``le`` view: each entry is ``(bound,
        number of samples <= bound)``, computed conservatively (a bucket
        counts toward a bound only once the whole bucket is below it,
        so the cumulative counts never overstate how fast we were).
        """
        out = []
        for bound in bounds:
            total = 0
            for index, n in enumerate(self.counts):
                if n and self._bucket_edges(index)[1] <= bound:
                    total += n
            out.append((bound, total))
        return out

    def to_dict(self) -> dict:
        """Sparse serialized form, safe to ship across processes."""
        return {
            "layout": LAYOUT,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "buckets": {
                str(i): n for i, n in enumerate(self.counts) if n
            },
        }

    @classmethod
    def from_dict(cls, data: dict) -> LatencyHistogram:
        layout = data.get("layout")
        if layout != LAYOUT:
            raise ValueError(
                f"histogram layout mismatch: got {layout!r}, "
                f"this build uses {LAYOUT!r}"
            )
        hist = cls()
        hist.count = int(data["count"])
        hist.sum = float(data["sum"])
        hist.min = float(data["min"])
        hist.max = float(data["max"])
        for key, n in data["buckets"].items():
            hist.counts[int(key)] = int(n)
        return hist

    def summary(self) -> dict:
        """Count + mean + quantiles, as nested into metrics snapshots."""
        out = {
            "count": self.count,
            "mean_s": self.mean,
            "min_s": self.min,
            "max_s": self.max,
        }
        out.update(
            {k + "_s": v for k, v in self.percentiles().items()}
        )
        return out
