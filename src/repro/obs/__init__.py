"""Observability: histograms, trace spans, metrics registry, admin HTTP.

The service layers (PR 2's server, PR 3's cluster, PR 5's worker
subprocesses) report *counters* well but say nothing about latency
shape, and nothing connects one reconciliation session's work across
the client, server, and shard-worker processes.  This package is the
telemetry tier that the ROADMAP's next stage (replication cutover
timing, metrics-driven autoscaling) reads from:

* :mod:`repro.obs.histogram` — a log-linear fixed-bucket latency
  histogram (p50/p95/p99/p999 without storing samples, mergeable
  across processes);
* :mod:`repro.obs.metrics` — the process-global registry of named
  histograms that every layer records into and
  :meth:`~repro.service.metrics.ServiceMetrics.snapshot` reads from;
* :mod:`repro.obs.trace` — trace-context minting/propagation and
  Chrome-trace-event span emission (``repro serve --trace-dir``);
* :mod:`repro.obs.logs` — stdlib ``logging`` wiring with component
  loggers, an optional JSON formatter, and the slow-op threshold
  (``--log-level`` / ``--log-json``);
* :mod:`repro.obs.admin` — the live admin endpoint
  (``repro serve --admin-port``): ``/metrics`` (Prometheus text),
  ``/healthz`` (liveness, non-200 while a shard is shedding) and
  ``/varz`` (the JSON metrics snapshot).

Everything here is off (and costs nothing measurable) until switched
on: spans are no-ops without a configured trace dir, the admin server
only exists under ``--admin-port``, and histogram recording is a few
arithmetic ops on already-coarse events (sessions, batches, commits).
"""

from repro.obs.histogram import LatencyHistogram
from repro.obs.metrics import REGISTRY, MetricsRegistry
from repro.obs.trace import TraceContext, Tracer, configure_tracing, tracer

__all__ = [
    "LatencyHistogram",
    "MetricsRegistry",
    "REGISTRY",
    "TraceContext",
    "Tracer",
    "configure_tracing",
    "tracer",
]
