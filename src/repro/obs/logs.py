"""Structured logging for the service: component loggers + JSON lines.

``repro serve`` historically printed ad-hoc lines to stderr (a banner,
heartbeat JSON, shutdown notes).  This module is the stdlib
``logging`` wiring behind ``--log-level`` / ``--log-json``:

* every layer gets a component logger via :func:`get_logger`
  (``repro.server``, ``repro.cluster``, ``repro.storage``, ...), all
  under the one ``repro`` root so a single handler governs them;
* the human format keeps one event per line
  (``HH:MM:SS.mmm LEVEL component: message``); ``--log-json`` swaps in
  :class:`JsonFormatter`, one JSON object per line with any extra
  fields (``trace``, ``shard``, ``elapsed_ms``, ...) hoisted to top
  level — ready for ``jq`` or a log shipper;
* :func:`slow_op_threshold_s` is the shared knob (``--slow-op-ms``)
  that storage commits and decode batches compare against before
  logging a WARNING tagged with the current trace id.

Nothing configures itself at import time: library users who embed
:class:`ReconciliationServer` keep full control of the root logger,
and the CLI calls :func:`configure_logging` exactly once per process
(workers re-run it from their spawn config).
"""

from __future__ import annotations

import json
import logging
import sys
import time

__all__ = [
    "configure_logging",
    "get_logger",
    "logging_config",
    "JsonFormatter",
    "slow_op_threshold_s",
    "set_slow_op_threshold",
]

#: Root of every component logger this package hands out.
ROOT = "repro"

#: ``LogRecord`` attributes that are logging plumbing, not event fields.
#: Anything *not* in this set that shows up on a record came in through
#: ``extra=`` and belongs in the JSON output.
_RESERVED = frozenset(vars(
    logging.LogRecord("", 0, "", 0, "", (), None)
)) | {"message", "asctime", "taskName"}

#: Default slow-op threshold: ops slower than this WARN (see
#: :func:`set_slow_op_threshold`); 100 ms is glacial for a single
#: journal fsync or decode batch yet quiet under normal load.
_slow_op_threshold_s = 0.100


def slow_op_threshold_s() -> float:
    """Seconds above which storage/decode ops log a slow-op WARNING."""
    return _slow_op_threshold_s


def set_slow_op_threshold(seconds: float) -> None:
    global _slow_op_threshold_s
    _slow_op_threshold_s = max(0.0, seconds)


#: Last arguments :func:`configure_logging` ran with — what a worker
#: subprocess must replicate to log like its parent.
_config: tuple[str, bool] = ("info", False)


def logging_config() -> tuple[str, bool]:
    """``(level, json_out)`` of the current process's configuration."""
    return _config


def get_logger(component: str) -> logging.Logger:
    """The logger for one component, e.g. ``get_logger("server")``."""
    return logging.getLogger(f"{ROOT}.{component}")


class JsonFormatter(logging.Formatter):
    """One JSON object per line; ``extra=`` fields hoisted to top level."""

    def format(self, record: logging.LogRecord) -> str:
        event = {
            "ts": round(record.created, 6),
            "level": record.levelname,
            "component": record.name.removeprefix(ROOT + "."),
            "msg": record.getMessage(),
        }
        for key, value in vars(record).items():
            if key not in _RESERVED and not key.startswith("_"):
                event[key] = value
        if record.exc_info and record.exc_info[1] is not None:
            event["exc"] = repr(record.exc_info[1])
        return json.dumps(event, default=repr, separators=(",", ":"))


class HumanFormatter(logging.Formatter):
    """``HH:MM:SS.mmm LEVEL component: message [k=v ...]``."""

    def format(self, record: logging.LogRecord) -> str:
        clock = time.strftime(
            "%H:%M:%S", time.localtime(record.created)
        )
        extras = " ".join(
            f"{key}={value}"
            for key, value in vars(record).items()
            if key not in _RESERVED and not key.startswith("_")
        )
        line = (
            f"{clock}.{int(record.msecs):03d} {record.levelname:<7} "
            f"{record.name.removeprefix(ROOT + '.')}: "
            f"{record.getMessage()}"
        )
        if extras:
            line += f" [{extras}]"
        if record.exc_info and record.exc_info[1] is not None:
            line += f" exc={record.exc_info[1]!r}"
        return line


def configure_logging(
    level: str = "info",
    json_out: bool = False,
    stream=None,
) -> logging.Logger:
    """Install one stderr handler on the ``repro`` root logger.

    Idempotent: reconfiguring replaces the previous handler instead of
    stacking a second one (the CLI and worker subprocesses both call
    this on startup).  Only the ``repro`` subtree is touched — the
    process root logger is left alone.
    """
    global _config
    _config = (level, json_out)
    root = logging.getLogger(ROOT)
    root.setLevel(getattr(logging, level.upper(), logging.INFO))
    handler = logging.StreamHandler(stream or sys.stderr)
    handler.setFormatter(JsonFormatter() if json_out else HumanFormatter())
    for old in list(root.handlers):
        root.removeHandler(old)
    root.addHandler(handler)
    root.propagate = False
    return root
