"""Live admin endpoint: ``/metrics``, ``/healthz``, ``/varz``, ``/timeseries``.

``repro serve --admin-port N`` binds a second, loopback-by-default
HTTP listener next to the reconciliation port (the bind host is
``--admin-host``, default ``127.0.0.1`` regardless of ``--host``):

* ``GET /metrics`` — Prometheus text exposition (format 0.0.4):
  latency histograms with cumulative ``le`` buckets, session/byte
  counters, per-shard gauges, and — when SLO targets are configured —
  the SLO burn gauges, all under the ``repro_`` prefix;
* ``GET /healthz`` — liveness: 200 with a small JSON body while every
  shard can take sessions and storage is clean, 503 naming the sick
  shards while any worker is down/restarting or a storage backend
  reported a tail error (load-balancer / systemd-watchdog shaped);
* ``GET /varz`` — the full :meth:`ServiceMetrics.snapshot` JSON, the
  same document the stderr heartbeat prints;
* ``GET /timeseries`` — the sliding-window ring
  (:class:`~repro.obs.metrics.WindowedMetrics`): recent per-interval
  deltas, rates, and windowed latency summaries, so operators see
  "now" instead of since-boot cumulative totals.

The server is deliberately not a web framework: a ~hundred-line
``asyncio.start_server`` loop that answers GET, closes the
connection, and refuses everything else.  It shares the event loop
with the reconciliation server — every handler only reads in-memory
stats, so an admin scrape cannot block a session any longer than a
heartbeat tick does.
"""

from __future__ import annotations

import asyncio
import json
from typing import Callable

from repro.obs.histogram import (
    BOUNDARIES,
    DOUBLINGS,
    MIN_LATENCY_S,
    SUBBUCKETS,
    LatencyHistogram,
)
from repro.obs.logs import get_logger

__all__ = ["AdminServer", "prometheus_text"]

log = get_logger("admin")

#: ``le`` bounds exposed on /metrics: the doubling edges of the
#: histogram grid (27 bounds from 1 µs to ~67 s).  Exposing every
#: sub-bucket would be 8x the series for no dashboard value; at
#: doubling edges the histogram's conservative cumulative counts are
#: exact because bucket edges coincide with the bounds.
PROMETHEUS_BOUNDS: tuple[float, ...] = tuple(
    MIN_LATENCY_S * (1 << k) for k in range(DOUBLINGS + 1)
)

assert PROMETHEUS_BOUNDS[-1] == BOUNDARIES[-1], (
    "doubling edges drifted from the histogram grid",
    SUBBUCKETS,
)

_RESPONSE_HEAD = (
    "HTTP/1.1 {status}\r\n"
    "Content-Type: {ctype}\r\n"
    "Content-Length: {length}\r\n"
    "Connection: close\r\n"
    "\r\n"
)


def _sanitize(value) -> float:
    return float(value) if isinstance(value, (int, float)) else 0.0


def prometheus_text(
    snapshot: dict, histograms: dict[str, LatencyHistogram]
) -> str:
    """Render the metrics snapshot as Prometheus exposition text.

    ``snapshot`` is the :meth:`ServiceMetrics.snapshot` document (its
    ``sessions``/``cluster``/``admission`` sections feed counters and
    gauges); ``histograms`` are the merged live histogram objects
    (bucket detail is not in the snapshot — summaries only)."""
    lines: list[str] = []

    def scalar(name: str, kind: str, help_: str, value) -> None:
        lines.append(f"# HELP repro_{name} {help_}")
        lines.append(f"# TYPE repro_{name} {kind}")
        lines.append(f"repro_{name} {_sanitize(value):.10g}")

    def labeled(name: str, labels: dict, value) -> None:
        body = ",".join(
            f'{k}="{v}"' for k, v in labels.items()
        )
        lines.append(f"repro_{name}{{{body}}} {_sanitize(value):.10g}")

    sessions = snapshot.get("sessions", {})
    scalar("uptime_seconds", "gauge",
           "Seconds since the server started.",
           snapshot.get("uptime_s", 0.0))
    scalar("sessions_active", "gauge",
           "Reconciliation sessions in flight right now.",
           sessions.get("active", 0))
    for key, help_ in (
        ("started", "Sessions accepted (HELLO seen)."),
        ("completed", "Sessions that finished every pass."),
        ("failed", "Sessions that errored or disconnected."),
        ("shed", "Sessions rejected by admission with RETRY."),
    ):
        lines.append(
            f"# HELP repro_sessions_{key}_total "
            f"{help_}"
        )
        lines.append(f"# TYPE repro_sessions_{key}_total counter")
        lines.append(
            f"repro_sessions_{key}_total "
            f"{_sanitize(sessions.get(key, 0)):.10g}"
        )
    for key, help_ in (
        ("syncs", "Completed reconciliation passes."),
        ("rounds", "Sketch/decode rounds served."),
        ("applied", "Elements applied into stores by PUSH frames."),
        ("payload_bytes", "Wire payload bytes moved (both directions)."),
        ("framing_bytes", "Wire framing overhead bytes."),
    ):
        src = {"syncs": "syncs_total", "rounds": "rounds_total",
               "applied": "applied_total"}.get(key, key)
        scalar(f"{key}_total", "counter", help_, snapshot.get(src, 0))

    # latency histograms: cumulative le buckets at the doubling edges
    for name in sorted(histograms):
        hist = histograms[name]
        metric = f"repro_{name.removesuffix('_s')}_seconds"
        lines.append(
            f"# HELP {metric} Latency histogram recorded by repro.obs."
        )
        lines.append(f"# TYPE {metric} histogram")
        for bound, count in hist.cumulative(PROMETHEUS_BOUNDS):
            lines.append(
                f'{metric}_bucket{{le="{bound:.10g}"}} {count}'
            )
        lines.append(f'{metric}_bucket{{le="+Inf"}} {hist.count}')
        lines.append(f"{metric}_sum {hist.sum:.10g}")
        lines.append(f"{metric}_count {hist.count}")

    cluster = snapshot.get("cluster") or {}
    per_shard = cluster.get("per_shard") or []
    if per_shard:
        lines.append("# HELP repro_shard_sets Named sets on the shard.")
        lines.append("# TYPE repro_shard_sets gauge")
        for entry in per_shard:
            labeled("shard_sets", {"shard": entry.get("shard", "?")},
                    entry.get("sets", 0))
        lines.append(
            "# HELP repro_shard_elements Elements held by the shard "
            "(parent mirror size in proc mode)."
        )
        lines.append("# TYPE repro_shard_elements gauge")
        for entry in per_shard:
            labeled("shard_elements",
                    {"shard": entry.get("shard", "?")},
                    entry.get("elements", 0))
        lines.append(
            "# HELP repro_shard_queue_depth Mutations queued on the "
            "shard executor."
        )
        lines.append("# TYPE repro_shard_queue_depth gauge")
        for entry in per_shard:
            labeled("shard_queue_depth",
                    {"shard": entry.get("shard", "?")},
                    entry.get("queue_depth", 0))
        if any("worker" in entry for entry in per_shard):
            lines.append(
                "# HELP repro_shard_worker_alive 1 while the shard's "
                "subprocess worker is up, else 0."
            )
            lines.append("# TYPE repro_shard_worker_alive gauge")
            for entry in per_shard:
                worker = entry.get("worker")
                if worker is not None:
                    labeled("shard_worker_alive",
                            {"shard": entry.get("shard", "?")},
                            1 if worker.get("alive") else 0)
        if any("set_cache" in entry for entry in per_shard):
            lines.append(
                "# HELP repro_shard_set_cache_hit_rate Hit rate of the "
                "SQLite LazySetStore LRU (1.0 = fully resident)."
            )
            lines.append("# TYPE repro_shard_set_cache_hit_rate gauge")
            for entry in per_shard:
                cache = entry.get("set_cache")
                if cache is not None:
                    labeled("shard_set_cache_hit_rate",
                            {"shard": entry.get("shard", "?")},
                            cache.get("hit_rate", 0.0))
        if any("replication" in entry for entry in per_shard):
            lines.append(
                "# HELP repro_replication_seq Logical operations shipped "
                "by the shard's primary."
            )
            lines.append("# TYPE repro_replication_seq counter")
            lines.append(
                "# HELP repro_replication_durable_seq Highest sequence "
                "durable on a write quorum of the shard's replicas."
            )
            lines.append("# TYPE repro_replication_durable_seq counter")
            lines.append(
                "# HELP repro_replication_quorum_ok 1 while the shard "
                "can reach a write quorum (always 1 in async mode)."
            )
            lines.append("# TYPE repro_replication_quorum_ok gauge")
            lines.append(
                "# HELP repro_replication_promotions_total Follower "
                "promotions (primary failovers) on the shard."
            )
            lines.append("# TYPE repro_replication_promotions_total counter")
            lines.append(
                "# HELP repro_replication_follower_alive 1 while the "
                "follower replica is live and applying, else 0."
            )
            lines.append("# TYPE repro_replication_follower_alive gauge")
            lines.append(
                "# HELP repro_replication_lag Shipped operations the "
                "follower replica has not yet acked."
            )
            lines.append("# TYPE repro_replication_lag gauge")
            for entry in per_shard:
                repl = entry.get("replication")
                if repl is None:
                    continue
                shard = entry.get("shard", "?")
                labeled("replication_seq", {"shard": shard},
                        repl.get("seq", 0))
                labeled("replication_durable_seq", {"shard": shard},
                        repl.get("durable_seq", 0))
                labeled("replication_quorum_ok", {"shard": shard},
                        1 if repl.get("quorum_ok") else 0)
                labeled("replication_promotions_total", {"shard": shard},
                        repl.get("promotions", 0))
                for follower in repl.get("followers", []):
                    labels = {"shard": shard,
                              "replica": follower.get("replica", "?")}
                    labeled("replication_follower_alive", labels,
                            1 if follower.get("alive") else 0)
                    labeled("replication_lag", labels,
                            follower.get("lag", 0))

    slo = snapshot.get("slo")
    if slo:
        scalar("slo_window_breach", "gauge",
               "1 if the most recently graded window breached an SLO "
               "target, else 0.",
               1 if slo.get("burning") else 0)
        scalar("slo_burn_rate", "gauge",
               "Fraction of recently graded windows that breached an "
               "SLO target.",
               slo.get("burn_rate", 0.0))
        scalar("slo_consecutive_breaches", "gauge",
               "Closed windows breaching in a row (0 = healthy).",
               slo.get("consecutive_breaches", 0))
        scalar("slo_windows_breached_total", "counter",
               "Graded windows that breached any SLO target.",
               slo.get("windows_breached", 0))
        scalar("slo_windows_graded_total", "counter",
               "Windows graded against the configured SLO targets.",
               slo.get("windows_graded", 0))

    admission = snapshot.get("admission") or {}
    adm_shards = admission.get("per_shard") or []
    if adm_shards:
        lines.append(
            "# HELP repro_decode_waiting Sessions queued for a decode "
            "slot on the shard."
        )
        lines.append("# TYPE repro_decode_waiting gauge")
        for index, entry in enumerate(adm_shards):
            labeled("decode_waiting",
                    {"shard": entry.get("shard", index)},
                    entry.get("decode_waiting", 0))

    return "\n".join(lines) + "\n"


class AdminServer:
    """Tiny GET-only HTTP listener for operational introspection."""

    def __init__(
        self,
        varz: Callable[[], dict],
        health: Callable[[], tuple[bool, dict]],
        histograms: Callable[[], dict[str, LatencyHistogram]],
        host: str = "127.0.0.1",
        port: int = 0,
        timeseries: Callable[[], dict] | None = None,
    ) -> None:
        self._varz = varz
        self._health = health
        self._histograms = histograms
        self._timeseries = timeseries
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        log.info("admin endpoint up", extra={
            "host": self.host, "port": self.port,
        })

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> AdminServer:
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()

    # -- request handling -------------------------------------------------
    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            status, ctype, body = await self._respond(reader)
            writer.write(
                _RESPONSE_HEAD.format(
                    status=status, ctype=ctype, length=len(body)
                ).encode("ascii") + body
            )
            await writer.drain()
        except (ConnectionError, asyncio.TimeoutError):
            pass
        except Exception:
            log.exception("admin request failed")
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, bytes]:
        request = await asyncio.wait_for(reader.readline(), timeout=5.0)
        parts = request.decode("latin-1", "replace").split()
        # drain headers so well-behaved clients aren't reset mid-send
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=5.0)
            if line in (b"\r\n", b"\n", b""):
                break
        if len(parts) < 2 or parts[0] != "GET":
            return ("405 Method Not Allowed", "text/plain",
                    b"only GET is served here\n")
        path = parts[1].split("?", 1)[0]
        if path == "/metrics":
            snapshot = self._varz()
            text = prometheus_text(snapshot, self._histograms())
            return ("200 OK",
                    "text/plain; version=0.0.4; charset=utf-8",
                    text.encode("utf-8"))
        if path == "/healthz":
            ok, detail = self._health()
            body = json.dumps(detail, indent=1).encode("utf-8") + b"\n"
            status = "200 OK" if ok else "503 Service Unavailable"
            return (status, "application/json", body)
        if path == "/varz":
            body = json.dumps(
                self._varz(), indent=1, default=repr
            ).encode("utf-8") + b"\n"
            return ("200 OK", "application/json", body)
        if path == "/timeseries" and self._timeseries is not None:
            body = json.dumps(
                self._timeseries(), indent=1, default=repr
            ).encode("utf-8") + b"\n"
            return ("200 OK", "application/json", body)
        return ("404 Not Found", "text/plain",
                b"try /metrics, /healthz, /varz or /timeseries\n")
