"""Process-global registry of named latency histograms.

Latency events happen deep inside layers that have no reference to the
server's :class:`~repro.service.metrics.ServiceMetrics` — the decode
coalescer, ``apply_mutation`` in the storage layer, the worker RPC
client.  Rather than thread a metrics object through every
constructor, each process owns one module-level
:data:`REGISTRY` (the same shape as ``prometheus_client``'s default
registry): layers call ``REGISTRY.histogram(name).record(dt)``, and
the one consumer (``ServiceMetrics.snapshot()`` / the admin endpoint)
reads everything back at snapshot time.

In proc mode each shard-worker subprocess has its *own* registry; the
worker ships ``REGISTRY.to_dict()`` on its stats/decode acks (counts
are cumulative, so latest-wins per worker), and the parent merges the
per-worker dumps with its own registry when building a snapshot —
see ``ServiceMetrics.snapshot()`` and ``_Worker._stats``.

Metric names are declared here so that the exposition layer, the
snapshot, and the tests agree on one spelling.
"""

from __future__ import annotations

import time
from collections import deque

from repro.obs.histogram import LatencyHistogram

__all__ = [
    "MetricsRegistry",
    "REGISTRY",
    "WindowedMetrics",
    "SloTracker",
    "SESSION_DURATION",
    "PASS_DURATION",
    "DECODE_BATCH",
    "STORAGE_COMMIT",
    "WORKER_RPC",
]

#: Wall time of one reconciliation session, HELLO to close (server side).
SESSION_DURATION = "session_duration_s"

#: One client-observed pass: ESTIMATE sent to RESULT received.
PASS_DURATION = "pass_duration_s"

#: One coalesced BCH decode batch, submit to results fanned out.
DECODE_BATCH = "decode_batch_s"

#: One durable storage commit (journal append+fsync / SQLite txn).
STORAGE_COMMIT = "storage_commit_s"

#: One proc-executor RPC round-trip, parent send to ack.
WORKER_RPC = "worker_rpc_s"


class MetricsRegistry:
    """Named histograms, created on first use."""

    def __init__(self) -> None:
        self._histograms: dict[str, LatencyHistogram] = {}

    def histogram(self, name: str) -> LatencyHistogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = LatencyHistogram()
        return hist

    def histograms(self) -> dict[str, LatencyHistogram]:
        """Live name -> histogram view (do not mutate the dict)."""
        return self._histograms

    def to_dict(self) -> dict[str, dict]:
        """Serialized non-empty histograms, for cross-process shipping."""
        return {
            name: hist.to_dict()
            for name, hist in self._histograms.items()
            if hist.count
        }

    def merged_with(
        self, dumps: list[dict[str, dict]]
    ) -> dict[str, LatencyHistogram]:
        """This registry plus remote ``to_dict()`` dumps, merged by name.

        Returns fresh histogram objects — neither the registry nor the
        dumps are mutated, so snapshotting stays read-only.
        """
        merged: dict[str, LatencyHistogram] = {}
        for name, hist in self._histograms.items():
            if hist.count:
                copy = LatencyHistogram()
                copy.merge(hist)
                merged[name] = copy
        for dump in dumps:
            for name, data in dump.items():
                merged.setdefault(
                    name, LatencyHistogram()
                ).merge(LatencyHistogram.from_dict(data))
        return merged

    def reset(self) -> None:
        """Drop all histograms (test isolation; never on a live path)."""
        self._histograms.clear()


#: The per-process registry every layer records into.
REGISTRY = MetricsRegistry()


#: Version of one window document in :class:`WindowedMetrics`; bump on
#: any key rename/removal so `/timeseries` consumers can pin the shape.
WINDOW_SCHEMA = 1

#: Default windows retained in the ring (at the 5 s default interval:
#: ten minutes of "now", bounded regardless of uptime).
WINDOW_CAPACITY = 120


class WindowedMetrics:
    """Sliding-window view over cumulative counters and histograms.

    Cumulative totals answer "since boot"; operators watching a live
    system need "now".  Each :meth:`tick` closes one window: it samples
    the caller's cumulative counters and histograms, subtracts the
    previous sample (clamping resets to zero), and appends a window
    document — per-interval deltas, per-second rates, and delta
    histogram summaries — to a bounded ring.  The ring is what the
    admin endpoint serves as ``/timeseries`` and what the SLO tracker
    grades; the latest window also rides ``/varz``.

    The first tick only baselines (returns ``None``); ticking is driven
    externally (an asyncio task in ``repro serve``, the progress loop
    in ``repro loadgen``), so this class stays clock-injectable and
    loop-free for tests.
    """

    def __init__(
        self,
        interval_s: float = 5.0,
        capacity: int = WINDOW_CAPACITY,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self.interval_s = interval_s
        self._windows: deque[dict] = deque(maxlen=max(2, capacity))
        self._prev_counters: dict[str, float] = {}
        self._prev_hists: dict[str, LatencyHistogram] = {}
        self._prev_mono: float | None = None
        self._prev_unix = 0.0
        self._index = 0

    def tick(
        self,
        counters: dict[str, float],
        histograms: dict[str, LatencyHistogram] | None = None,
        now_unix: float | None = None,
        now_mono: float | None = None,
    ) -> dict | None:
        """Close one window against fresh cumulative samples.

        ``counters`` are cumulative totals (sessions completed, sheds,
        ...); ``histograms`` are live cumulative histogram objects
        (snapshot-copied here, so callers pass them as-is).  Returns the
        closed window document, or ``None`` on the baselining first
        call.
        """
        now_unix = time.time() if now_unix is None else now_unix
        now_mono = time.monotonic() if now_mono is None else now_mono
        hists = {
            name: hist.copy()
            for name, hist in (histograms or {}).items()
        }
        if self._prev_mono is None:
            self._baseline(counters, hists, now_unix, now_mono)
            return None
        duration = now_mono - self._prev_mono
        if duration <= 0:
            return None      # clock went nowhere; keep the old baseline
        deltas = {
            name: max(0.0, float(value) - self._prev_counters.get(name, 0.0))
            for name, value in counters.items()
        }
        latency = {}
        for name, hist in hists.items():
            prev = self._prev_hists.get(name)
            window_hist = hist.delta(prev) if prev is not None else hist
            if window_hist.count:
                latency[name] = window_hist.summary()
        self._index += 1
        window = {
            "schema": WINDOW_SCHEMA,
            "index": self._index,
            "start_unix": self._prev_unix,
            "end_unix": now_unix,
            "duration_s": duration,
            "deltas": deltas,
            "rates": {
                f"{name}_per_s": value / duration
                for name, value in deltas.items()
            },
            "latency": latency,
        }
        self._windows.append(window)
        self._baseline(counters, hists, now_unix, now_mono)
        return window

    def _baseline(self, counters, hists, now_unix, now_mono) -> None:
        self._prev_counters = {
            name: float(value) for name, value in counters.items()
        }
        self._prev_hists = hists
        self._prev_unix = now_unix
        self._prev_mono = now_mono

    def windows(self) -> list[dict]:
        """Oldest-to-newest ring contents (each a window document)."""
        return list(self._windows)

    def latest(self) -> dict | None:
        return self._windows[-1] if self._windows else None

    def timeseries(self) -> dict:
        """The `/timeseries` document: config + the whole ring."""
        return {
            "schema": WINDOW_SCHEMA,
            "interval_s": self.interval_s,
            "windows": self.windows(),
        }


class SloTracker:
    """Grades closed windows against latency / shed-rate objectives.

    Two targets, both optional: ``p99_ms`` bounds the window's p99 of
    ``latency_metric`` (default: session duration), ``shed_rate``
    bounds the window's shed fraction (sheds over session outcomes,
    sheds included).  Each :meth:`grade` call annotates the window with
    an ``slo`` block and updates burn state: consecutive breaches,
    total breached windows, and the breach fraction over the recent
    grading history — the signal an alert (or the autoscaler open item)
    keys on.
    """

    def __init__(
        self,
        p99_ms: float | None = None,
        shed_rate: float | None = None,
        latency_metric: str = SESSION_DURATION,
        history: int = WINDOW_CAPACITY,
    ) -> None:
        self.p99_ms = p99_ms
        self.shed_rate = shed_rate
        self.latency_metric = latency_metric
        self.windows_graded = 0
        self.windows_breached = 0
        self.consecutive_breaches = 0
        self._recent: deque[bool] = deque(maxlen=max(1, history))

    @property
    def enabled(self) -> bool:
        return self.p99_ms is not None or self.shed_rate is not None

    def grade(self, window: dict) -> dict:
        """Grade one closed window; annotates and returns its slo block."""
        breaches: list[str] = []
        summary = window.get("latency", {}).get(self.latency_metric)
        p99_ms = summary["p99_s"] * 1000.0 if summary else None
        if (
            self.p99_ms is not None
            and p99_ms is not None
            and p99_ms > self.p99_ms
        ):
            breaches.append("p99")
        deltas = window.get("deltas", {})
        sheds = deltas.get("sheds", 0.0)
        outcomes = (
            deltas.get("sessions", 0.0)
            + deltas.get("failed", 0.0)
            + sheds
        )
        observed_shed_rate = sheds / outcomes if outcomes else 0.0
        if (
            self.shed_rate is not None
            and outcomes
            and observed_shed_rate > self.shed_rate
        ):
            breaches.append("shed_rate")
        breached = bool(breaches)
        self.windows_graded += 1
        self._recent.append(breached)
        if breached:
            self.windows_breached += 1
            self.consecutive_breaches += 1
        else:
            self.consecutive_breaches = 0
        block = {
            "ok": not breached,
            "breaches": breaches,
            "p99_ms": p99_ms,
            "shed_rate": observed_shed_rate,
        }
        window["slo"] = block
        return block

    def state(self) -> dict:
        """Burn state for `/varz`, `/metrics`, and loadgen reports."""
        recent = len(self._recent)
        return {
            "targets": {
                "p99_ms": self.p99_ms,
                "shed_rate": self.shed_rate,
            },
            "windows_graded": self.windows_graded,
            "windows_breached": self.windows_breached,
            "consecutive_breaches": self.consecutive_breaches,
            "burning": self.consecutive_breaches > 0,
            "burn_rate": (
                sum(self._recent) / recent if recent else 0.0
            ),
        }
