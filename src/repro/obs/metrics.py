"""Process-global registry of named latency histograms.

Latency events happen deep inside layers that have no reference to the
server's :class:`~repro.service.metrics.ServiceMetrics` — the decode
coalescer, ``apply_mutation`` in the storage layer, the worker RPC
client.  Rather than thread a metrics object through every
constructor, each process owns one module-level
:data:`REGISTRY` (the same shape as ``prometheus_client``'s default
registry): layers call ``REGISTRY.histogram(name).record(dt)``, and
the one consumer (``ServiceMetrics.snapshot()`` / the admin endpoint)
reads everything back at snapshot time.

In proc mode each shard-worker subprocess has its *own* registry; the
worker ships ``REGISTRY.to_dict()`` on its stats/decode acks (counts
are cumulative, so latest-wins per worker), and the parent merges the
per-worker dumps with its own registry when building a snapshot —
see ``ServiceMetrics.snapshot()`` and ``_Worker._stats``.

Metric names are declared here so that the exposition layer, the
snapshot, and the tests agree on one spelling.
"""

from __future__ import annotations

from repro.obs.histogram import LatencyHistogram

__all__ = [
    "MetricsRegistry",
    "REGISTRY",
    "SESSION_DURATION",
    "PASS_DURATION",
    "DECODE_BATCH",
    "STORAGE_COMMIT",
    "WORKER_RPC",
]

#: Wall time of one reconciliation session, HELLO to close (server side).
SESSION_DURATION = "session_duration_s"

#: One client-observed pass: ESTIMATE sent to RESULT received.
PASS_DURATION = "pass_duration_s"

#: One coalesced BCH decode batch, submit to results fanned out.
DECODE_BATCH = "decode_batch_s"

#: One durable storage commit (journal append+fsync / SQLite txn).
STORAGE_COMMIT = "storage_commit_s"

#: One proc-executor RPC round-trip, parent send to ack.
WORKER_RPC = "worker_rpc_s"


class MetricsRegistry:
    """Named histograms, created on first use."""

    def __init__(self) -> None:
        self._histograms: dict[str, LatencyHistogram] = {}

    def histogram(self, name: str) -> LatencyHistogram:
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = LatencyHistogram()
        return hist

    def histograms(self) -> dict[str, LatencyHistogram]:
        """Live name -> histogram view (do not mutate the dict)."""
        return self._histograms

    def to_dict(self) -> dict[str, dict]:
        """Serialized non-empty histograms, for cross-process shipping."""
        return {
            name: hist.to_dict()
            for name, hist in self._histograms.items()
            if hist.count
        }

    def merged_with(
        self, dumps: list[dict[str, dict]]
    ) -> dict[str, LatencyHistogram]:
        """This registry plus remote ``to_dict()`` dumps, merged by name.

        Returns fresh histogram objects — neither the registry nor the
        dumps are mutated, so snapshotting stays read-only.
        """
        merged: dict[str, LatencyHistogram] = {}
        for name, hist in self._histograms.items():
            if hist.count:
                copy = LatencyHistogram()
                copy.merge(hist)
                merged[name] = copy
        for dump in dumps:
            for name, data in dump.items():
                merged.setdefault(
                    name, LatencyHistogram()
                ).merge(LatencyHistogram.from_dict(data))
        return merged

    def reset(self) -> None:
        """Drop all histograms (test isolation; never on a live path)."""
        self._histograms.clear()


#: The per-process registry every layer records into.
REGISTRY = MetricsRegistry()
