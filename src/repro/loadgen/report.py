"""The versioned loadgen run report, and its validator.

A load-test number nobody can re-read is a rumor.  Every ``repro
loadgen`` run emits one JSON document with everything needed to judge
and reproduce the claim: the full config (seed included), outcome
totals, achieved-vs-offered rates, client-side latency summaries, the
per-window timeseries, and SLO burn state when objectives were set.
:data:`REPORT_SCHEMA` versions the shape; :func:`validate_report` is
the hand-rolled structural check (no jsonschema dependency) that the
CI smoke job and the rate-sweep benchmark run against every report, so
a shape drift fails loudly instead of silently un-pinning dashboards.
"""

from __future__ import annotations

from numbers import Real

__all__ = ["REPORT_SCHEMA", "build_report", "validate_report"]

#: Version of the report document.  Bump on any key rename/removal and
#: update :func:`validate_report` plus the pinning test alongside it.
REPORT_SCHEMA = 1

_TOTAL_KEYS = ("scheduled", "sessions", "failed", "sheds", "abandoned",
               "mutations")
_RATE_KEYS = ("offered_per_s", "achieved_per_s", "shed_rate", "error_rate")
_CONFIG_KEYS = ("host", "port", "rate", "duration_s", "sets", "seed")
_SUMMARY_KEYS = ("count", "mean_s", "p50_s", "p99_s", "p999_s")


def build_report(
    *,
    config: dict,
    started_unix: float,
    wall_s: float,
    totals: dict,
    rates: dict,
    latency: dict,
    timeseries: dict,
    slo: dict | None = None,
) -> dict:
    """Assemble the report document (callers pass already-shaped blocks)."""
    return {
        "schema": REPORT_SCHEMA,
        "kind": "repro-loadgen-report",
        "started_unix": started_unix,
        "wall_s": wall_s,
        "config": config,
        "totals": totals,
        "rates": rates,
        "latency": latency,
        "timeseries": timeseries,
        # always present: None means "no objectives were set", which is
        # different from an SLO block full of zeros
        "slo": slo,
    }


def _is_num(value) -> bool:
    return isinstance(value, Real) and not isinstance(value, bool)


def validate_report(doc) -> None:
    """Structurally validate a report; raise ValueError listing every flaw.

    Checks shape and the invariants that catch real accounting bugs:
    outcome totals must not exceed scheduled sessions, rates must be
    sane fractions, every latency summary must carry the quantile keys
    the sweep benchmark and dashboards read.
    """
    problems: list[str] = []

    def need(container: dict, key: str, pred, what: str) -> None:
        if key not in container:
            problems.append(f"missing key {key!r}")
        elif not pred(container[key]):
            problems.append(f"{key!r} is not {what}: {container[key]!r}")

    if not isinstance(doc, dict):
        raise ValueError(f"report must be a dict, got {type(doc).__name__}")
    if doc.get("schema") != REPORT_SCHEMA:
        problems.append(
            f"schema is {doc.get('schema')!r}, expected {REPORT_SCHEMA}"
        )
    if doc.get("kind") != "repro-loadgen-report":
        problems.append(f"kind is {doc.get('kind')!r}")
    need(doc, "started_unix", _is_num, "a number")
    need(doc, "wall_s", lambda v: _is_num(v) and v >= 0,
         "a non-negative number")

    config = doc.get("config")
    if not isinstance(config, dict):
        problems.append("config is not a dict")
    else:
        for key in _CONFIG_KEYS:
            if key not in config:
                problems.append(f"config missing {key!r}")

    totals = doc.get("totals")
    if not isinstance(totals, dict):
        problems.append("totals is not a dict")
    else:
        for key in _TOTAL_KEYS:
            need(totals, key,
                 lambda v: isinstance(v, int) and not isinstance(v, bool)
                 and v >= 0,
                 "a non-negative int")
        if not isinstance(totals.get("errors"), dict):
            problems.append("totals.errors is not a dict")
        if all(isinstance(totals.get(k), int) for k in _TOTAL_KEYS):
            outcomes = (totals["sessions"] + totals["failed"]
                        + totals["sheds"])
            if outcomes + totals["abandoned"] > totals["scheduled"]:
                problems.append(
                    f"outcomes ({outcomes}) + abandoned "
                    f"({totals['abandoned']}) exceed scheduled "
                    f"({totals['scheduled']})"
                )

    rates = doc.get("rates")
    if not isinstance(rates, dict):
        problems.append("rates is not a dict")
    else:
        for key in _RATE_KEYS:
            need(rates, key, lambda v: _is_num(v) and v >= 0,
                 "a non-negative number")
        for key in ("shed_rate", "error_rate"):
            value = rates.get(key)
            if _is_num(value) and value > 1.0:
                problems.append(f"rates.{key} is a fraction; got {value}")

    latency = doc.get("latency")
    if not isinstance(latency, dict):
        problems.append("latency is not a dict")
    else:
        for name, summary in latency.items():
            if not isinstance(summary, dict):
                problems.append(f"latency[{name!r}] is not a dict")
                continue
            for key in _SUMMARY_KEYS:
                if key not in summary:
                    problems.append(f"latency[{name!r}] missing {key!r}")

    timeseries = doc.get("timeseries")
    if not isinstance(timeseries, dict):
        problems.append("timeseries is not a dict")
    else:
        if not _is_num(timeseries.get("interval_s")):
            problems.append("timeseries.interval_s is not a number")
        windows = timeseries.get("windows")
        if not isinstance(windows, list):
            problems.append("timeseries.windows is not a list")
        else:
            for pos, window in enumerate(windows):
                if not isinstance(window, dict):
                    problems.append(f"windows[{pos}] is not a dict")
                    continue
                for key in ("schema", "index", "duration_s", "deltas",
                            "rates"):
                    if key not in window:
                        problems.append(f"windows[{pos}] missing {key!r}")

    slo = doc.get("slo", "absent")
    if slo == "absent":
        problems.append("missing key 'slo' (use None when no objectives)")
    elif slo is not None:
        if not isinstance(slo, dict):
            problems.append("slo is neither None nor a dict")
        else:
            for key in ("targets", "windows_graded", "windows_breached",
                        "consecutive_breaches", "burning", "burn_rate"):
                if key not in slo:
                    problems.append(f"slo missing {key!r}")

    if problems:
        raise ValueError(
            "invalid loadgen report:\n  - " + "\n  - ".join(problems)
        )
