"""Open-loop load generation against a reconciliation server.

The throughput benchmarks answer "how fast can the service go when the
client waits for it" — a *closed* loop, where a slow server slows its
own offered load and the measured latency flatters the system
(coordinated omission).  This package is the other half: an **open
loop** that offers traffic on its own schedule.  Sessions arrive as a
Poisson process at a target rate, pick sets by Zipf popularity, mutate
them (the churn whose diff each sync reconciles), and every session's
latency is charged from its *intended* arrival time — a stalled server
makes the queue, and therefore the measured p99, grow.

- :mod:`repro.loadgen.arrivals` — the statistical machinery
  (:class:`PoissonArrivals`, :class:`ZipfPopularity`,
  :class:`DiffSizes`), seeded and reproducible.
- :mod:`repro.loadgen.driver` — :class:`LoadGenerator`, the asyncio
  driver behind ``repro loadgen``.
- :mod:`repro.loadgen.report` — the versioned JSON run report and its
  validator (what the CI smoke job and the rate-sweep benchmark pin).
"""

from repro.loadgen.arrivals import DiffSizes, PoissonArrivals, ZipfPopularity
from repro.loadgen.driver import LoadgenConfig, LoadGenerator, SessionSpec
from repro.loadgen.report import REPORT_SCHEMA, validate_report

__all__ = [
    "PoissonArrivals",
    "ZipfPopularity",
    "DiffSizes",
    "LoadgenConfig",
    "LoadGenerator",
    "SessionSpec",
    "REPORT_SCHEMA",
    "validate_report",
]
