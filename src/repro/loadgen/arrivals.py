"""Seeded traffic-shape distributions for the open-loop driver.

Three knobs define an offered workload: *when* sessions arrive
(:class:`PoissonArrivals`), *which* set each one touches
(:class:`ZipfPopularity`), and *how much* the set changed since its
last sync (:class:`DiffSizes`).  All three derive their randomness from
one seed via :func:`~repro.utils.seeds.derive_seed`, so a load-test run
is replayable bit-for-bit: same seed, same arrival times, same set
choices, same mutation batches.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.utils.seeds import spawn_rng

__all__ = ["PoissonArrivals", "ZipfPopularity", "DiffSizes"]


class PoissonArrivals:
    """Intended session start offsets of a Poisson process.

    Iterating yields cumulative offsets in seconds from the run's t0,
    with i.i.d. exponential inter-arrival gaps of mean ``1/rate`` — the
    memoryless process a population of independent clients produces.
    The schedule is fixed by the seed alone; the driver sleeps *until*
    each offset rather than *between* sessions, which is what makes the
    loop open.

    >>> times = PoissonArrivals(rate_per_s=100.0, seed=7)
    >>> first = [round(t, 4) for _, t in zip(range(3), times)]
    >>> first == sorted(first)
    True
    """

    def __init__(self, rate_per_s: float, seed: int = 0) -> None:
        if rate_per_s <= 0:
            raise ValueError(f"rate_per_s must be > 0, got {rate_per_s}")
        self.rate_per_s = float(rate_per_s)
        self._rng = spawn_rng(seed, "loadgen", "poisson")

    def __iter__(self) -> Iterator[float]:
        offset = 0.0
        mean_gap = 1.0 / self.rate_per_s
        while True:
            offset += float(self._rng.exponential(mean_gap))
            yield offset


class ZipfPopularity:
    """Zipf(s) choice over a fixed population of set indices.

    Rank ``k`` (0-based) is drawn with probability proportional to
    ``1/(k+1)**s`` — a handful of hot sets absorb most sessions while
    the long tail stays warm, the popularity skew real sync workloads
    show.  ``s=0`` degenerates to uniform.  Sampling is an inverse-CDF
    lookup (binary search over the precomputed cumulative weights), so
    the population size only costs setup time.
    """

    def __init__(self, n_sets: int, s: float = 1.1, seed: int = 0) -> None:
        if n_sets < 1:
            raise ValueError(f"n_sets must be >= 1, got {n_sets}")
        if s < 0:
            raise ValueError(f"zipf exponent must be >= 0, got {s}")
        self.n_sets = int(n_sets)
        self.s = float(s)
        ranks = np.arange(1, self.n_sets + 1, dtype=np.float64)
        weights = ranks ** -self.s
        self.pmf = weights / weights.sum()
        self._cdf = np.cumsum(self.pmf)
        self._cdf[-1] = 1.0  # guard fp drift: the last bucket covers 1.0
        self._rng = spawn_rng(seed, "loadgen", "zipf")

    def sample(self) -> int:
        """One set index in ``[0, n_sets)``; 0 is the hottest."""
        return int(
            np.searchsorted(self._cdf, self._rng.random(), side="right")
        )

    def sample_many(self, count: int) -> np.ndarray:
        """``count`` i.i.d. indices at once (for statistical tests)."""
        return np.searchsorted(
            self._cdf, self._rng.random(count), side="right"
        ).astype(np.int64)


class DiffSizes:
    """Per-session mutation batch sizes, from a ``kind:...`` spec.

    The batch a session adds to its set before syncing *is* the
    difference that sync reconciles (the loadgen is the set's only
    writer), so this distribution directly controls the paper's ``d``:

    - ``fixed:N`` — every session mutates exactly N elements
    - ``uniform:LO:HI`` — N drawn uniformly from [LO, HI] inclusive
    - ``geometric:MEAN`` — N geometric with the given mean (>= 1);
      heavy-tailed, so occasional big diffs stress multi-round decode

    Specs are validated eagerly so a typo dies at argparse time, not
    minutes into a load run.
    """

    KINDS = ("fixed", "uniform", "geometric")

    def __init__(self, spec: str = "fixed:8", seed: int = 0) -> None:
        self.spec = spec
        kind, _, rest = spec.partition(":")
        parts = rest.split(":") if rest else []
        try:
            if kind == "fixed":
                (self._n,) = (int(parts[0]),)
                if self._n < 0:
                    raise ValueError
            elif kind == "uniform":
                self._lo, self._hi = int(parts[0]), int(parts[1])
                if not 0 <= self._lo <= self._hi:
                    raise ValueError
            elif kind == "geometric":
                self._mean = float(parts[0])
                if self._mean < 1.0:
                    raise ValueError
            else:
                raise ValueError
        except (ValueError, IndexError):
            raise ValueError(
                f"bad diff spec {spec!r}: want fixed:N, uniform:LO:HI "
                f"(0 <= LO <= HI), or geometric:MEAN (MEAN >= 1)"
            ) from None
        self.kind = kind
        self._rng = spawn_rng(seed, "loadgen", "diff")

    def sample(self) -> int:
        """One batch size (elements to mutate before the sync)."""
        if self.kind == "fixed":
            return self._n
        if self.kind == "uniform":
            return int(self._rng.integers(self._lo, self._hi + 1))
        return int(self._rng.geometric(1.0 / self._mean))

    @property
    def mean(self) -> float:
        """Expected batch size (rate x mean = offered mutation rate)."""
        if self.kind == "fixed":
            return float(self._n)
        if self.kind == "uniform":
            return (self._lo + self._hi) / 2.0
        return self._mean
