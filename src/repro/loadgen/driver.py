"""The open-loop asyncio driver behind ``repro loadgen``.

The loop is *open*: session start times come from a pre-committed
Poisson schedule, and each session's latency is measured from its
**intended** start — not from when the driver got around to dialing.
A saturated server therefore cannot slow the offered load down; the
backlog it causes (semaphore waits, per-set queueing, connect stalls)
lands in the latency histogram where an operator can see it.  Closed
loops silently drop exactly those samples — the coordinated-omission
trap this driver exists to avoid.

Structure of one scheduled session:

1. At its intended time the scheduler picks a set (Zipf), applies the
   mutation batch (DiffSizes) to the local mirror, stamps the batch
   with the *intended* time, and spawns the session task.
2. The task acquires the global in-flight semaphore, then the per-set
   lock — sessions on one set are serialized, like a real per-replica
   syncer, so hot-set contention is part of the measurement.
3. It dials, HELLOs, and syncs the mirror via
   :class:`~repro.service.client.ClientConnection`.  A RETRY shed
   counts as ``sheds``; any other failure as ``failed`` (by exception
   type); success records session latency and, for every mutation
   batch the sync covered, convergence time (intended mutation time to
   sync completion).

Progress and SLO grading reuse the server-side windowed machinery
(:class:`~repro.obs.metrics.WindowedMetrics`,
:class:`~repro.obs.metrics.SloTracker`) on the client's own counters,
so the report's timeseries has the same window-document shape as the
server's ``/timeseries``.

Tests inject ``session_runner`` (any async callable taking a
:class:`SessionSpec`) and ``arrivals`` (any iterable of offsets) to
drive the accounting without sockets.
"""

from __future__ import annotations

import asyncio
import time
from collections import Counter, deque
from dataclasses import asdict, dataclass
from typing import Awaitable, Callable, Iterable

import numpy as np

from repro.loadgen.arrivals import DiffSizes, PoissonArrivals, ZipfPopularity
from repro.loadgen.report import build_report
from repro.obs.histogram import LatencyHistogram
from repro.obs.metrics import SESSION_DURATION, SloTracker, WindowedMetrics
from repro.service.client import ClientConnection
from repro.service.wire import ServerBusy
from repro.utils.seeds import derive_seed, spawn_rng

__all__ = ["CONVERGENCE", "LoadgenConfig", "SessionSpec", "LoadGenerator"]

#: Client-side metric: oldest unsynced mutation (intended time) to the
#: completion of the sync that carried it.
CONVERGENCE = "convergence_s"


@dataclass
class LoadgenConfig:
    """Everything one run needs; serialized verbatim into the report."""

    host: str = "127.0.0.1"
    port: int = 7171
    rate: float = 20.0              #: offered sessions per second
    duration_s: float = 10.0        #: scheduling horizon (drain extra)
    sets: int = 16                  #: set population size
    zipf_s: float = 1.1             #: popularity skew (0 = uniform)
    diff: str = "fixed:8"           #: DiffSizes spec (mutations/session)
    seed: int = 0
    max_in_flight: int = 64         #: concurrent session cap, driver-side
    set_prefix: str = "lg"
    n_sketches: int = 128
    family: str = "fast"
    log_u: int = 32
    connect_timeout: float = 5.0    #: dial+HELLO deadline per session
    window_s: float = 2.0           #: progress/SLO window interval
    slo_p99_ms: float | None = None
    slo_shed_rate: float | None = None
    drain_s: float = 30.0           #: wait for stragglers after horizon


@dataclass
class SessionSpec:
    """One scheduled session, fixed at its intended arrival time."""

    index: int
    set_name: str
    values: list[int]          #: mirror snapshot to reconcile
    intended_mono: float       #: loop-clock intended start (latency t0)
    intended_unix: float       #: wall-clock twin, for humans
    mutations: int             #: fresh elements this arrival added
    covers_seq: int            #: newest mutation batch the sync covers


class _SetState:
    """Client-side mirror of one server set, plus its sync queue."""

    __slots__ = ("values", "lock", "stamps", "seq")

    def __init__(self) -> None:
        self.values: set[int] = set()
        self.lock = asyncio.Lock()
        #: (seq, intended_mono) per mutation batch not yet confirmed
        #: synced — the convergence clock starts at the *intended* time
        self.stamps: deque[tuple[int, float]] = deque()
        self.seq = 0


class LoadGenerator:
    """Drive one open-loop run; :meth:`run` returns the report dict."""

    def __init__(
        self,
        config: LoadgenConfig,
        session_runner: (
            Callable[[SessionSpec], Awaitable[object]] | None
        ) = None,
        arrivals: Iterable[float] | None = None,
        progress: Callable[[str], None] | None = None,
    ) -> None:
        self._config = config
        self._runner = session_runner or self._default_runner
        self._arrivals = (
            arrivals
            if arrivals is not None
            else PoissonArrivals(config.rate, seed=config.seed)
        )
        self._progress = progress
        self._zipf = ZipfPopularity(
            config.sets, s=config.zipf_s, seed=config.seed
        )
        self._diffs = DiffSizes(config.diff, seed=config.seed)
        self._values_rng = spawn_rng(config.seed, "loadgen", "values")
        self._sets: dict[str, _SetState] = {}
        self._sem = asyncio.Semaphore(max(1, config.max_in_flight))
        self._hist_session = LatencyHistogram()
        self._hist_converge = LatencyHistogram()
        self._windowed = WindowedMetrics(interval_s=config.window_s)
        self._slo = SloTracker(
            p99_ms=config.slo_p99_ms, shed_rate=config.slo_shed_rate
        )
        self.scheduled = 0
        self.sessions = 0          #: completed (the SloTracker contract)
        self.failed = 0
        self.sheds = 0
        self.abandoned = 0         #: cancelled at drain timeout
        self.mutations = 0
        self.errors: Counter[str] = Counter()
        self.in_flight = 0
        self._loop: asyncio.AbstractEventLoop | None = None

    # -- the run ---------------------------------------------------------------
    async def run(self) -> dict:
        cfg = self._config
        loop = asyncio.get_running_loop()
        self._loop = loop
        started_unix = time.time()
        t0 = loop.time()
        # baseline the first window so the ticker's deltas start at t0
        self._windowed.tick(
            self._counters(), self._hists(),
            now_unix=started_unix, now_mono=t0,
        )
        ticker = asyncio.create_task(self._ticker())
        tasks: set[asyncio.Task] = set()
        try:
            for index, offset in enumerate(self._arrivals):
                if offset >= cfg.duration_s:
                    break
                intended = t0 + offset
                delay = intended - loop.time()
                if delay > 0:
                    await asyncio.sleep(delay)
                # the spec is built at (or after) the intended moment but
                # stamped with the intended time itself: if the loop fell
                # behind, that lag is real queueing and must be charged
                spec = self._make_spec(
                    index, intended, started_unix + offset
                )
                self.scheduled += 1
                task = asyncio.create_task(self._session(spec))
                tasks.add(task)
                task.add_done_callback(tasks.discard)
            if tasks:
                _, pending = await asyncio.wait(
                    set(tasks), timeout=cfg.drain_s
                )
                self.abandoned = len(pending)
                for task in pending:
                    task.cancel()
                if pending:
                    await asyncio.gather(*pending, return_exceptions=True)
        finally:
            ticker.cancel()
            await asyncio.gather(ticker, return_exceptions=True)
        self._close_window()     # flush the partial final window
        return self._report(started_unix, loop.time() - t0)

    def _make_spec(
        self, index: int, intended_mono: float, intended_unix: float
    ) -> SessionSpec:
        cfg = self._config
        name = f"{cfg.set_prefix}-{self._zipf.sample():04d}"
        state = self._sets.get(name)
        if state is None:
            state = self._sets[name] = _SetState()
        d = self._diffs.sample()
        if d:
            fresh = self._values_rng.integers(
                1, (1 << cfg.log_u) - 1, size=d, dtype=np.uint64,
                endpoint=True,
            )
            state.values.update(int(v) for v in fresh)
            state.seq += 1
            state.stamps.append((state.seq, intended_mono))
            self.mutations += d
        return SessionSpec(
            index=index,
            set_name=name,
            values=list(state.values),
            intended_mono=intended_mono,
            intended_unix=intended_unix,
            mutations=d,
            covers_seq=state.seq,
        )

    async def _session(self, spec: SessionSpec) -> None:
        state = self._sets[spec.set_name]
        self.in_flight += 1
        try:
            try:
                # both waits happen inside the session so they charge to
                # its latency: the global in-flight cap, then the per-set
                # serialization (one syncer per set, like a real replica)
                async with self._sem:
                    async with state.lock:
                        await self._runner(spec)
            except asyncio.CancelledError:
                raise
            except ServerBusy:
                self.sheds += 1
                return
            except Exception as exc:
                self.failed += 1
                self.errors[type(exc).__name__] += 1
                return
            now = self._loop.time()
            self._hist_session.record(max(0.0, now - spec.intended_mono))
            self.sessions += 1
            # pop every mutation batch this sync covered; convergence is
            # measured from the *oldest* (a failed earlier sync leaves
            # its batches queued, so the next success pays their full age)
            oldest = None
            while state.stamps and state.stamps[0][0] <= spec.covers_seq:
                _, stamp = state.stamps.popleft()
                if oldest is None:
                    oldest = stamp
            if oldest is not None:
                self._hist_converge.record(max(0.0, now - oldest))
        finally:
            self.in_flight -= 1

    async def _default_runner(self, spec: SessionSpec) -> object:
        cfg = self._config
        conn = ClientConnection(
            cfg.host,
            cfg.port,
            set_name=spec.set_name,
            seed=derive_seed(cfg.seed, "loadgen", "session", spec.index),
            n_sketches=cfg.n_sketches,
            family=cfg.family,
            log_u=cfg.log_u,
            connect_timeout=cfg.connect_timeout,
        )
        try:
            await conn.connect()
            return await conn.sync(spec.values)
        finally:
            await conn.close()

    # -- windows / progress ----------------------------------------------------
    async def _ticker(self) -> None:
        while True:
            await asyncio.sleep(self._config.window_s)
            self._close_window()

    def _close_window(self) -> dict | None:
        window = self._windowed.tick(self._counters(), self._hists())
        if window is None:
            return None
        if self._slo.enabled:
            self._slo.grade(window)
        if self._progress is not None:
            self._progress(self._format_progress(window))
        return window

    def _counters(self) -> dict[str, float]:
        return {
            "scheduled": self.scheduled,
            "sessions": self.sessions,
            "failed": self.failed,
            "sheds": self.sheds,
            "mutations": self.mutations,
        }

    def _hists(self) -> dict[str, LatencyHistogram]:
        return {
            SESSION_DURATION: self._hist_session,
            CONVERGENCE: self._hist_converge,
        }

    def _format_progress(self, window: dict) -> str:
        rates = window["rates"]
        deltas = window["deltas"]
        summary = window["latency"].get(SESSION_DURATION)
        p99 = f"{summary['p99_s'] * 1e3:.1f}ms" if summary else "-"
        line = (
            f"[loadgen] win#{window['index']:<3d}"
            f" ok {rates.get('sessions_per_s', 0.0):6.1f}/s"
            f" shed {int(deltas.get('sheds', 0))}"
            f" fail {int(deltas.get('failed', 0))}"
            f" p99 {p99}"
            f" in-flight {self.in_flight}"
        )
        slo = window.get("slo")
        if slo is not None:
            verdict = "OK" if slo["ok"] else ",".join(slo["breaches"])
            line += f" slo {verdict}"
        return line

    # -- the report ------------------------------------------------------------
    def _report(self, started_unix: float, wall_s: float) -> dict:
        outcomes = self.sessions + self.failed + self.sheds
        return build_report(
            config=asdict(self._config),
            started_unix=started_unix,
            wall_s=wall_s,
            totals={
                "scheduled": self.scheduled,
                "sessions": self.sessions,
                "failed": self.failed,
                "sheds": self.sheds,
                "abandoned": self.abandoned,
                "mutations": self.mutations,
                "errors": dict(sorted(self.errors.items())),
            },
            rates={
                "offered_per_s": self._config.rate,
                "achieved_per_s": (
                    self.sessions / wall_s if wall_s > 0 else 0.0
                ),
                "shed_rate": self.sheds / outcomes if outcomes else 0.0,
                "error_rate": self.failed / outcomes if outcomes else 0.0,
            },
            latency={
                name: hist.summary()
                for name, hist in self._hists().items()
                if hist.count
            },
            timeseries=self._windowed.timeseries(),
            slo=self._slo.state() if self._slo.enabled else None,
        )
