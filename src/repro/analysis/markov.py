"""Transition matrix of the PBS Markov chain (§4, Appendix E).

State i = number of yet-unreconciled distinct elements ("bad balls") at the
start of a round; one round throws them uniformly into n bins and a ball is
"good" (reconciled) iff it lands alone.  ``M(i, j)`` is the probability
that throwing i balls leaves j of them bad.

Direct summation over occupancy configurations explodes combinatorially
(Appendix E quotes 2.47e12 atom states at j = 13), so the paper decomposes
each state j into sub-states (j, k) — j bad balls occupying exactly k bad
bins — and derives a recurrence by throwing the i-th ball "in slow motion":

  Mt(i, j, k) = (i-j+1)/n       * Mt(i-1, j-2, k-1)   # lands on a good ball
              + k/n             * Mt(i-1, j-1, k)     # lands in a bad bin
              + (1-(i-1-j+k)/n) * Mt(i-1, j, k)       # lands in an empty bin

with Mt(0, 0, 0) = 1.  The full (t+1)^3 table costs O(t^3) — trivial for
the t <= ~35 used anywhere in the paper.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.errors import ParameterError


@lru_cache(maxsize=256)
def _substate_table(n: int, i_max: int) -> np.ndarray:
    """The Mt(i, j, k) table for i, j, k in [0, i_max]."""
    size = i_max + 1
    table = np.zeros((size, size, size), dtype=np.float64)
    table[0, 0, 0] = 1.0
    for i in range(1, size):
        for j in range(0, i + 1):
            # j bad balls occupy k bad bins, each holding >= 2 of them.
            for k in range(0, j // 2 + 1):
                if j == 1:
                    continue  # a lone ball in a bin is good, never bad
                acc = 0.0
                if j >= 2 and k >= 1:
                    acc += (i - j + 1) / n * table[i - 1, j - 2, k - 1]
                if j >= 1:
                    acc += k / n * table[i - 1, j - 1, k]
                empty_frac = 1.0 - (i - 1 - j + k) / n
                if empty_frac > 0:
                    acc += empty_frac * table[i - 1, j, k]
                table[i, j, k] = acc
    return table


@lru_cache(maxsize=256)
def transition_matrix(n: int, t: int) -> np.ndarray:
    """The (t+1) x (t+1) transition matrix ``M`` for bitmap size n.

    ``M[i, j] = Pr[j balls remain bad | i balls thrown into n bins]``.
    Row sums are exactly 1 (the chain is honest on states 0..t because a
    round never *increases* the number of bad balls).
    """
    if t < 0:
        raise ParameterError(f"t must be >= 0, got {t}")
    if n < 1:
        raise ParameterError(f"n must be >= 1, got {n}")
    table = _substate_table(n, t)
    matrix = table.sum(axis=2)
    return matrix


def chain_power(n: int, t: int, r: int) -> np.ndarray:
    """``M^r`` — r rounds of the chain."""
    return np.linalg.matrix_power(transition_matrix(n, t), r)
