"""Exact balls-into-bins probabilities used throughout the paper.

Hash-partitioning d distinct elements into n subset pairs is exactly
throwing d balls uniformly into n bins (§2.2.1).  This module provides the
closed forms the paper quotes:

* the *ideal case* — all balls in distinct bins — with probability
  ``prod_{k=1}^{d-1} (1 - k/n)`` (= 0.96 for d=5, n=255);
* the probability of a *type (I)* exception — some bin holding a nonzero
  even number of balls (≈ 0.04 for d=5, n=255);
* the probability of a *type (II)* exception — some bin holding an odd
  number ≥ 3 of balls (≈ 1.52e-4 for d=5, n=255).

The exception probabilities are computed *exactly* by summing over integer
partitions of d (occupancy patterns), which is cheap for the small per-group
d values PBS cares about (d ≲ 40).
"""

from __future__ import annotations

import math
from collections.abc import Iterator
from functools import lru_cache


def prob_ideal(d: int, n: int) -> float:
    """Probability that d balls land in d distinct bins of n."""
    if d > n:
        return 0.0
    p = 1.0
    for k in range(1, d):
        p *= 1.0 - k / n
    return p


def _partitions(d: int, max_part: int | None = None) -> Iterator[tuple[int, ...]]:
    """All integer partitions of d in weakly decreasing order."""
    if d == 0:
        yield ()
        return
    if max_part is None or max_part > d:
        max_part = d
    for first in range(max_part, 0, -1):
        for rest in _partitions(d - first, first):
            yield (first, *rest)


@lru_cache(maxsize=None)
def _occupancy_probability(pattern: tuple[int, ...], n: int) -> float:
    """Probability that the occupancy multiset of d balls in n bins equals
    ``pattern`` (the nonzero bin counts, sorted decreasingly).

    P = [ways to pick/label the occupied bins] * [ways to assign balls]
        / n^d
      = ( n! / ((n-len)! * prod_c mult_c!) ) * ( d! / prod_i pattern_i! )
        / n^d
    """
    d = sum(pattern)
    k = len(pattern)
    if k > n:
        return 0.0
    log_p = 0.0
    # falling factorial n * (n-1) * ... * (n-k+1)
    for i in range(k):
        log_p += math.log(n - i)
    # multiplicities of equal parts
    mult: dict[int, int] = {}
    for part in pattern:
        mult[part] = mult.get(part, 0) + 1
    for c in mult.values():
        log_p -= math.lgamma(c + 1)
    log_p += math.lgamma(d + 1)
    for part in pattern:
        log_p -= math.lgamma(part + 1)
    log_p -= d * math.log(n)
    return math.exp(log_p)


def prob_some_even_bin(d: int, n: int) -> float:
    """Probability that some bin holds a nonzero *even* number of balls.

    This is the paper's type (I) exception (§2.3): the parities of the two
    subset cardinalities agree, so the BCH codeword cannot see the bin.
    """
    total = 0.0
    for pattern in _partitions(d):
        if any(part >= 2 and part % 2 == 0 for part in pattern):
            total += _occupancy_probability(pattern, n)
    return total


def prob_some_odd_bin_ge3(d: int, n: int) -> float:
    """Probability that some bin holds an odd number >= 3 of balls.

    The paper's type (II) exception (§2.3): the recovered "element" is the
    XOR of several distinct elements — a fake distinct element, caught with
    probability 1 - 1/n by the sub-universe check (Procedure 3).
    """
    total = 0.0
    for pattern in _partitions(d):
        if any(part >= 3 and part % 2 == 1 for part in pattern):
            total += _occupancy_probability(pattern, n)
    return total
