"""Piecewise reconciliability analysis (§5.3, Appendix G).

How many of the d distinct elements does PBS reconcile in round 1, round 2,
...?  For one group with x initial differences,

    E[Z_1 + ... + Z_k | x] = sum_y (x - y) * Pr[x ->k y]
                           = x - E[remaining after k rounds],

and unconditioning over x ~ Binomial(d, 1/g) and differencing over k gives
the expected count reconciled in each round.  The paper's headline instance
(d = 1000, n = 127, t = 13) yields round proportions 0.962, 0.0380,
3.61e-4, 2.86e-6 — the basis of the claim that the first round carries
over 95% of the work (and hence of the communication).
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.analysis.markov import transition_matrix


def expected_cumulative_reconciled(
    x: int, k: int, n: int, t: int
) -> float:
    """``E[Z_1 + ... + Z_k | delta_1 = x]`` (Equation (6) of the paper)."""
    if x == 0:
        return 0.0
    powered = np.linalg.matrix_power(transition_matrix(n, t), k)
    ys = np.arange(t + 1)
    return float(((x - ys) * powered[x, : t + 1]).sum())


def expected_round_proportions(
    d: int, g: int, n: int, t: int, rounds: int = 4
) -> list[float]:
    """Expected fraction of the d elements reconciled in each round 1..rounds.

    Group differences above t are truncated (consistent with Appendix D's
    pessimistic convention); their Binomial mass is negligible for sane
    parameters.
    """
    pmf = stats.binom.pmf(np.arange(t + 1), d, 1.0 / g)
    matrix = transition_matrix(n, t)
    xs = np.arange(t + 1, dtype=np.float64)

    cumulative: list[float] = []
    powered = np.eye(t + 1)
    for _ in range(rounds):
        powered = powered @ matrix
        remaining = powered[: t + 1, : t + 1] @ xs  # E[left after k | x]
        expected = float((pmf * (xs - remaining)).sum())  # E[reconciled by k]
        cumulative.append(expected)

    per_round = [cumulative[0]] + [
        cumulative[k] - cumulative[k - 1] for k in range(1, rounds)
    ]
    delta = d / g
    return [v / delta for v in per_round]
