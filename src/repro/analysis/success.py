"""Success probabilities: ``Pr[x ->r 0]``, alpha, and the rigorous bound.

Appendix F of the paper: with sets hash-partitioned into g groups, the
per-group difference counts are Binomial(d, 1/g) but *not* independent
(they sum to d).  The per-group success probability is estimated by

    alpha(n, t) = sum_x Pr[X = x] * Pr[x ->r 0],

and the overall probability that all g groups finish within r rounds is
rigorously lower-bounded by ``1 - 2 (1 - alpha^g)`` via the
negative-association argument (Corollary 5.11 of [29]).

Two models for the over-capacity case ``x > t`` are provided:

* ``split_model="none"`` — the paper's *stated* convention (Appendix D):
  ``Pr[x ->r 0] = 0`` for x > t.  Note that this convention cannot
  reproduce the paper's own Table 1: with d=1000, g=200, t=13 the Binomial
  tail P[X > 13] ≈ 6.7e-4 (a value §3.2 itself quotes) alone caps the
  bound at ≈ 0.75, far below the 0.991 the table reports for (127, 13).
* ``split_model="three-way"`` (default) — models what the protocol
  actually does on a BCH decoding failure (§3.2): the group is split into
  three sub-group-pairs, consuming the round, and each sub-pair must then
  reconcile within the remaining rounds (recursively).  This matches the
  implemented protocol and is validated against simulation in the test
  suite; it is mildly more optimistic than Table 1's entries.

See EXPERIMENTS.md for the full discrepancy discussion.

The split model is evaluated bottom-up as a table ``F_r[x]`` for
x = 0..X_MAX with vectorized Multinomial(x; 1/3, 1/3, 1/3) convolutions,
so a full optimizer grid costs milliseconds per (n, t).
"""

from __future__ import annotations

import math
from functools import lru_cache

import numpy as np
from scipy import stats

from repro.analysis.markov import chain_power
from repro.errors import ParameterError

#: Per-group difference counts beyond this value carry negligible Binomial
#: mass for every configuration the paper considers (delta <= 30); they are
#: pessimistically treated as failures.
_X_MAX = 96


@lru_cache(maxsize=4)
def _binom_pmf_matrix(p_num: int, p_den: int) -> np.ndarray:
    """``B[x, k] = Binomial(x, p).pmf(k)`` for x, k in [0, X_MAX]."""
    size = _X_MAX + 1
    out = np.zeros((size, size))
    ks = np.arange(size)
    for x in range(size):
        out[x, : x + 1] = stats.binom.pmf(ks[: x + 1], x, p_num / p_den)
    return out


@lru_cache(maxsize=512)
def _success_table(n: int, t: int, r: int) -> np.ndarray:
    """``F[x] = Pr[x ->r 0]`` under the three-way-split model, x <= X_MAX."""
    size = _X_MAX + 1
    if r == 0:
        out = np.zeros(size)
        out[0] = 1.0
        return out
    prev = _success_table(n, t, r - 1)
    out = np.zeros(size)
    # In-capacity groups follow the Markov chain directly.
    powered = chain_power(n, t, r)
    top = min(t, _X_MAX)
    out[: top + 1] = powered[: top + 1, 0]
    out[0] = 1.0
    if r == 1:
        return out  # a split consumes the round; x > t cannot finish
    # Over-capacity groups split three ways, each sub-pair then has r - 1
    # rounds.  Multinomial(x; 1/3,1/3,1/3) factored as Binomial(x, 1/3)
    # then Binomial(x - x1, 1/2).
    b13 = _binom_pmf_matrix(1, 3)
    b12 = _binom_pmf_matrix(1, 2)
    # inner[rem] = sum_{x2} B12[rem, x2] * prev[x2] * prev[rem - x2]
    inner = np.array(
        [
            float((b12[rem, : rem + 1] * prev[: rem + 1] * prev[rem::-1]).sum())
            for rem in range(size)
        ]
    )
    for x in range(t + 1, size):
        # sum_{x1} B13[x, x1] * prev[x1] * inner[x - x1]
        out[x] = float((b13[x, : x + 1] * prev[: x + 1] * inner[x::-1]).sum())
    return out


def prob_reconcile_within(
    x: int, r: int, n: int, t: int, split_model: str = "three-way"
) -> float:
    """``Pr[x ->r 0]``: x differences fully reconciled within r rounds.

    For x <= t this is Formula (2) of the paper, ``(M^r)(x, 0)``; the
    ``split_model`` governs x > t (see module docstring).
    """
    if x < 0 or r < 0:
        raise ParameterError("x and r must be nonnegative")
    if x == 0:
        return 1.0
    if r == 0:
        return 0.0
    if split_model == "three-way":
        if x > _X_MAX:
            return 0.0
        return float(_success_table(n, t, r)[x])
    if split_model == "none":
        if x > t:
            return 0.0
        return float(chain_power(n, t, r)[x, 0])
    raise ParameterError(f"unknown split_model {split_model!r}")


def group_success_probability(
    n: int, t: int, d: int, g: int, r: int, split_model: str = "three-way"
) -> float:
    """``alpha(n, t)``: per-group success probability, X ~ Binomial(d, 1/g)."""
    x_max = min(d, _X_MAX)
    xs = np.arange(x_max + 1)
    pmf = stats.binom.pmf(xs, d, 1.0 / g)
    if split_model == "three-way":
        table = _success_table(n, t, r)
        return float((pmf * table[: x_max + 1]).sum())
    powered = chain_power(n, t, r)
    vals = np.zeros(x_max + 1)
    top = min(t, x_max)
    vals[: top + 1] = powered[: top + 1, 0]
    vals[0] = 1.0
    return float((pmf * vals).sum())


def overall_lower_bound(
    n: int, t: int, d: int, g: int, r: int, split_model: str = "three-way"
) -> float:
    """Rigorous lower bound ``1 - 2(1 - alpha^g)`` on ``Pr[R <= r]``.

    May be negative for hopeless parameter choices; callers compare it
    against the target p0 directly, as the optimizer does.
    """
    alpha = group_success_probability(n, t, d, g, r, split_model)
    if alpha <= 0.0:
        return -1.0
    # alpha^g with g in the hundreds: go through logs for stability.
    alpha_g = math.exp(g * math.log(alpha))
    return 1.0 - 2.0 * (1.0 - alpha_g)
