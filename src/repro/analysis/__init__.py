"""The paper's rigorous analytical framework (§4, §5, Appendices D–H).

* :mod:`repro.analysis.balls_bins` — closed-form balls-into-bins
  probabilities (ideal case, type I/II exceptions of §2.3).
* :mod:`repro.analysis.markov` — the Markov-chain transition matrix ``M``
  computed by the Appendix-E dynamic program over sub-states ``(i, j, k)``.
* :mod:`repro.analysis.success` — ``Pr[x ->r 0]``, the per-group success
  probability ``alpha(n, t)`` and the rigorous lower bound
  ``1 - 2(1 - alpha^g)`` on ``Pr[R <= r]`` (Appendix F).
* :mod:`repro.analysis.optimizer` — the (n, t) parameter optimization of
  §5.1/Appendix H and the target-rounds sweep of §5.2.
* :mod:`repro.analysis.piecewise` — expected per-round reconciled fractions
  (§5.3, Appendix G).
* :mod:`repro.analysis.overhead` — analytic communication-overhead formulas
  for PBS, PinSketch(/WP) and D.Digest (Formula (1), §8.3).
"""

from repro.analysis.balls_bins import (
    prob_ideal,
    prob_some_even_bin,
    prob_some_odd_bin_ge3,
)
from repro.analysis.markov import transition_matrix
from repro.analysis.optimizer import OptimalParams, optimize_params, sweep_round_targets
from repro.analysis.piecewise import expected_round_proportions
from repro.analysis.success import (
    group_success_probability,
    overall_lower_bound,
    prob_reconcile_within,
)

__all__ = [
    "prob_ideal",
    "prob_some_even_bin",
    "prob_some_odd_bin_ge3",
    "transition_matrix",
    "prob_reconcile_within",
    "group_success_probability",
    "overall_lower_bound",
    "OptimalParams",
    "optimize_params",
    "sweep_round_targets",
    "expected_round_proportions",
]
