"""Parameter optimization for PBS (§5.1, §5.2, Appendix H).

Find, among the practical bitmap sizes ``n in {63, 127, ..., 2047}`` and
capacities ``t in [ceil(1.5*delta), floor(3.5*delta)]``, the combination
minimizing the non-constant first-round overhead ``(t + delta) * log2(n+1)``
subject to the rigorous success-probability bound meeting the target p0.

The bound is computed under a configurable over-capacity model (see
:mod:`repro.analysis.success`): ``split_model="three-way"`` (default)
models the protocol's actual §3.2 recovery behaviour and certifies slightly
cheaper parameters than the paper's Table 1; ``split_model="none"`` is the
paper's stated truncation convention.  EXPERIMENTS.md quantifies the
difference; the protocol-level tests validate the default empirically.

For small round targets (r = 1, 2) the practical n grid is infeasible —
a single round must avoid *all* bin collisions, which needs n = Omega(d^2)
per group.  :func:`sweep_round_targets` therefore widens the grid; the
paper's §5.2 instance (d=1000, p0=0.99, r=1 → 591 bits/group) back-solves
to exactly (n = 2^19 - 1, t = 16), which the widened grid finds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.analysis.success import overall_lower_bound
from repro.errors import ParameterError

#: Practical bitmap sizes (§5.1): n = 2^m - 1 for m = 6..11.
DEFAULT_N_CANDIDATES: tuple[int, ...] = (63, 127, 255, 511, 1023, 2047)

#: Extended grid for small round targets (§5.2): m = 6..21.
WIDE_N_CANDIDATES: tuple[int, ...] = tuple((1 << m) - 1 for m in range(6, 22))


@dataclass(frozen=True)
class OptimalParams:
    """Result of the (n, t) optimization for one configuration."""

    n: int          #: parity-bitmap length (2^m - 1)
    t: int          #: BCH error-correction capacity per group
    m: int          #: log2(n + 1); bits per codeword symbol / position
    g: int          #: number of group pairs
    delta: int      #: average differences per group (d / g)
    r: int          #: target number of rounds
    p0: float       #: target success probability
    bound: float    #: achieved rigorous lower bound on Pr[R <= r]
    objective_bits: float  #: (t + delta) * m, the minimized objective

    def first_round_bits_per_group(self, log_u: int = 32) -> float:
        """Formula (1): full expected first-round bits for one group pair."""
        return self.objective_bits + self.delta * log_u + log_u

    def total_first_round_bits(self, log_u: int = 32) -> float:
        """First-round bits across all g group pairs."""
        return self.g * self.first_round_bits_per_group(log_u)


def groups_for(d: int, delta: int) -> int:
    """Number of groups ``g = d / delta`` (at least 1)."""
    return max(1, round(d / delta))


def default_t_candidates(delta: int) -> tuple[int, ...]:
    """The §3.1 capacity range: t in [ceil(1.5*delta), floor(3.5*delta)]."""
    return tuple(range(math.ceil(1.5 * delta), math.floor(3.5 * delta) + 1))


def optimize_params(
    d: int,
    delta: int = 5,
    r: int = 3,
    p0: float = 0.99,
    n_candidates: tuple[int, ...] = DEFAULT_N_CANDIDATES,
    t_candidates: tuple[int, ...] | None = None,
    split_model: str = "three-way",
) -> OptimalParams:
    """The §5.1 optimization: minimal overhead meeting ``Pr[R <= r] >= p0``.

    Raises :class:`ParameterError` when no candidate combination meets the
    target (callers should then raise r or widen the candidate grids).
    """
    if d < 1:
        raise ParameterError(f"d must be >= 1, got {d}")
    g = groups_for(d, delta)
    if t_candidates is None:
        t_candidates = default_t_candidates(delta)
    best: OptimalParams | None = None
    for n in n_candidates:
        m = (n + 1).bit_length() - 1
        if n != (1 << m) - 1:
            raise ParameterError(f"n={n} is not of the form 2^m - 1")
        for t in t_candidates:
            bound = overall_lower_bound(n, t, d, g, r, split_model)
            if bound < p0:
                continue
            objective = (t + delta) * m
            if (
                best is None
                or objective < best.objective_bits
                or (objective == best.objective_bits and bound > best.bound)
            ):
                best = OptimalParams(
                    n=n, t=t, m=m, g=g, delta=delta, r=r, p0=p0,
                    bound=bound, objective_bits=objective,
                )
    if best is None:
        raise ParameterError(
            f"no (n, t) combination meets p0={p0} for d={d}, delta={delta}, r={r}; "
            "increase r or widen the candidate grids"
        )
    return best


def lower_bound_grid(
    d: int,
    delta: int = 5,
    r: int = 3,
    n_candidates: tuple[int, ...] = DEFAULT_N_CANDIDATES,
    t_candidates: tuple[int, ...] | None = None,
    split_model: str = "three-way",
) -> dict[tuple[int, int], float]:
    """The Table-1 grid: lower-bound value for every (n, t) combination."""
    g = groups_for(d, delta)
    if t_candidates is None:
        t_candidates = default_t_candidates(delta)
    return {
        (n, t): overall_lower_bound(n, t, d, g, r, split_model)
        for t in t_candidates
        for n in n_candidates
    }


def sweep_round_targets(
    d: int,
    delta: int = 5,
    p0: float = 0.99,
    r_values: tuple[int, ...] = (1, 2, 3, 4),
    split_model: str = "three-way",
) -> dict[int, OptimalParams]:
    """§5.2: optimal parameters (and overheads) for each target r.

    Searches the widened grid (n up to 2^21 - 1, t up to 7*delta) so that
    even r = 1 — which requires a collision-free single round and hence a
    very large bitmap — is feasible.  The paper's instance (d=1000,
    p0=0.99) yields per-group first-round overheads of 591 / 402 / 318 /
    288 bits for r = 1 / 2 / 3 / 4.
    """
    t_grid = tuple(range(math.ceil(1.5 * delta), 7 * delta + 1))
    out: dict[int, OptimalParams] = {}
    for r in r_values:
        out[r] = optimize_params(
            d,
            delta=delta,
            r=r,
            p0=p0,
            n_candidates=WIDE_N_CANDIDATES,
            t_candidates=t_grid,
            split_model=split_model,
        )
    return out
