"""Analytic communication-overhead formulas (Formula (1), §7, §8.3).

These closed forms back the Figure-5 experiment (256-bit signatures, where
the paper itself resorts to analytic accounting over a simulated 32-bit
universe) and the overhead sanity tests that pin measured wire bytes to the
paper's formulas.
"""

from __future__ import annotations

import math

from repro.analysis.optimizer import OptimalParams, groups_for, optimize_params


def theoretical_minimum_bits(d: int, log_u: int = 32) -> float:
    """Information-theoretic minimum ``d * log|U|`` (§1.1)."""
    return d * log_u


def pbs_first_round_bits(n: int, t: int, delta: int, log_u: int = 32) -> float:
    """Formula (1): per-group first-round bits for PBS."""
    m = (n + 1).bit_length() - 1
    return t * m + delta * m + delta * log_u + log_u


def pinsketch_wp_first_round_bits(t: int, delta: int, log_u: int = 32) -> float:
    """Per-group first-round bits for PinSketch-with-partition (§8.3).

    The sketch symbols and any safety margin cost ``log|U|`` bits each
    instead of PBS's ``log n``; decoded elements are recovered directly
    from the sketch so no positions/XOR-sums flow back, but the per-group
    checksum remains.
    """
    del delta  # the sketch length depends only on t; kept for symmetry
    return t * log_u + log_u


def pinsketch_bits(d_assumed: int, log_u: int = 32) -> float:
    """Unpartitioned PinSketch: ``t = d_assumed`` syndromes of log|U| bits."""
    return d_assumed * log_u


def ddigest_bits(d_assumed: int, log_u: int = 32) -> float:
    """Difference Digest: ~2 d cells of 3 log|U|-bit fields ≈ 6x minimum."""
    return 2 * d_assumed * 3 * log_u


def pbs_vs_pinsketch_wp_curves(
    d_values: list[int],
    delta: int = 5,
    r: int = 3,
    p0: float = 0.99,
    log_u: int = 32,
) -> dict[int, dict[str, float]]:
    """Analytic total first-round KB for PBS and PinSketch/WP over a d sweep.

    Used by the Fig. 5 bench with ``log_u = 256``; both schemes share the
    same (delta, t) per the paper's §8.3 setup.
    """
    out: dict[int, dict[str, float]] = {}
    for d in d_values:
        params: OptimalParams = optimize_params(d, delta=delta, r=r, p0=p0)
        g = groups_for(d, delta)
        pbs_kb = g * pbs_first_round_bits(params.n, params.t, delta, log_u) / 8e3
        wp_kb = g * pinsketch_wp_first_round_bits(params.t, delta, log_u) / 8e3
        out[d] = {
            "pbs_kb": pbs_kb,
            "pinsketch_wp_kb": wp_kb,
            "minimum_kb": theoretical_minimum_bits(d, log_u) / 8e3,
            "n": params.n,
            "t": params.t,
        }
    return out


def bits_to_kb(bits: float) -> float:
    """Bits → kilobytes (1 KB = 8000 bits, as in the paper's KB axis)."""
    return bits / 8e3


def overhead_ratio(bits: float, d: int, log_u: int = 32) -> float:
    """Communication overhead as a multiple of the theoretical minimum."""
    if d == 0:
        return math.inf
    return bits / theoretical_minimum_bits(d, log_u)
