"""A duplex channel between Alice and Bob that accounts every byte.

All protocols in this package exchange *real serialized bytes* through a
:class:`Channel`; the communication-overhead numbers in the benchmarks are
the sum of these payload bytes (tight bit-packing, no transport framing),
which is the same accounting the paper uses for "data transmitted".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class Direction(enum.Enum):
    """Who sent a message."""

    ALICE_TO_BOB = "alice->bob"
    BOB_TO_ALICE = "bob->alice"


@dataclass
class MessageRecord:
    """One transmitted message."""

    direction: Direction
    round_no: int
    label: str
    n_bytes: int


@dataclass
class Channel:
    """Byte and round accounting for one protocol execution.

    >>> ch = Channel()
    >>> ch.send(Direction.ALICE_TO_BOB, b"abc", round_no=1, label="sketch")
    >>> ch.total_bytes
    3
    """

    messages: list[MessageRecord] = field(default_factory=list)

    def send(
        self,
        direction: Direction,
        payload: bytes,
        round_no: int = 0,
        label: str = "",
    ) -> bytes:
        """Record a message; returns the payload for convenient chaining."""
        self.messages.append(
            MessageRecord(direction, round_no, label, len(payload))
        )
        return payload

    @property
    def total_bytes(self) -> int:
        """Total payload bytes in both directions."""
        return sum(m.n_bytes for m in self.messages)

    @property
    def rounds(self) -> int:
        """Highest round number seen."""
        return max((m.round_no for m in self.messages), default=0)

    def bytes_in(self, direction: Direction) -> int:
        """Total payload bytes in one direction."""
        return sum(m.n_bytes for m in self.messages if m.direction == direction)

    def bytes_by_label(self) -> dict[str, int]:
        """Byte totals grouped by message label (sketches, sums, ...)."""
        out: dict[str, int] = {}
        for m in self.messages:
            out[m.label] = out.get(m.label, 0) + m.n_bytes
        return out

    def bytes_by_round(self) -> dict[int, int]:
        """Byte totals grouped by round."""
        out: dict[int, int] = {}
        for m in self.messages:
            out[m.round_no] = out.get(m.round_no, 0) + m.n_bytes
        return out
