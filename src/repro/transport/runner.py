"""Uniform result record for every reconciliation protocol.

All protocols (PBS, PinSketch, PinSketch/WP, D.Digest, Graphene) return a
:class:`ReconciliationResult`, so the evaluation harness can sweep them
interchangeably.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from repro.transport.channel import Channel, Direction


@dataclass
class ReconciliationResult:
    """Outcome of one unidirectional reconciliation (Alice learns A xor B).

    ``difference`` is Alice's view of the symmetric difference; ``success``
    is True when the protocol's own verification accepted it (for PBS:
    every group checksum matched within the round budget).  ``encode_s`` /
    ``decode_s`` aggregate the paper's two computational metrics across both
    hosts and all rounds.
    """

    success: bool
    difference: frozenset[int]
    rounds: int
    channel: Channel = field(repr=False)
    encode_s: float = 0.0
    decode_s: float = 0.0
    extra: dict = field(default_factory=dict, repr=False)

    @property
    def total_bytes(self) -> int:
        """Payload bytes transmitted (both directions, all rounds)."""
        return self.channel.total_bytes

    @property
    def total_kb(self) -> float:
        """Payload kilobytes (1 KB = 1000 bytes, matching the paper's axes)."""
        return self.channel.total_bytes / 1000.0

    def overhead_ratio(self, d: int, log_u: int = 32) -> float:
        """Transmitted bits as a multiple of the d * log|U| minimum."""
        if d == 0:
            return float("inf")
        return (8.0 * self.channel.total_bytes) / (d * log_u)

    def to_dict(self, include_difference: bool = True) -> dict:
        """Machine-readable summary (CLI ``--json``, service metrics).

        Everything is plain JSON types; ``extra`` is included only for
        values that already are (params objects and numpy arrays are
        dropped rather than stringified).
        """
        out: dict = {
            "success": self.success,
            "d": len(self.difference),
            "rounds": self.rounds,
            "total_bytes": self.channel.total_bytes,
            "bytes_by_label": self.channel.bytes_by_label(),
            "bytes_by_round": {
                str(k): v for k, v in self.channel.bytes_by_round().items()
            },
            "bytes_by_direction": {
                d.value: self.channel.bytes_in(d) for d in Direction
            },
            "encode_s": self.encode_s,
            "decode_s": self.decode_s,
        }
        framing = getattr(self.channel, "framing_bytes", None)
        if framing is not None:
            out["framing_bytes"] = framing
        if include_difference:
            out["difference"] = sorted(self.difference)
        extra = {
            k: v
            for k, v in self.extra.items()
            if isinstance(v, (bool, int, float, str))
        }
        if extra:
            out["extra"] = extra
        return out

    def to_json(self, include_difference: bool = True, indent: int = 2) -> str:
        """:meth:`to_dict` rendered as a JSON document."""
        return json.dumps(self.to_dict(include_difference), indent=indent)
