"""Uniform result record for every reconciliation protocol.

All protocols (PBS, PinSketch, PinSketch/WP, D.Digest, Graphene) return a
:class:`ReconciliationResult`, so the evaluation harness can sweep them
interchangeably.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.transport.channel import Channel


@dataclass
class ReconciliationResult:
    """Outcome of one unidirectional reconciliation (Alice learns A xor B).

    ``difference`` is Alice's view of the symmetric difference; ``success``
    is True when the protocol's own verification accepted it (for PBS:
    every group checksum matched within the round budget).  ``encode_s`` /
    ``decode_s`` aggregate the paper's two computational metrics across both
    hosts and all rounds.
    """

    success: bool
    difference: frozenset[int]
    rounds: int
    channel: Channel = field(repr=False)
    encode_s: float = 0.0
    decode_s: float = 0.0
    extra: dict = field(default_factory=dict, repr=False)

    @property
    def total_bytes(self) -> int:
        """Payload bytes transmitted (both directions, all rounds)."""
        return self.channel.total_bytes

    @property
    def total_kb(self) -> float:
        """Payload kilobytes (1 KB = 1000 bytes, matching the paper's axes)."""
        return self.channel.total_bytes / 1000.0

    def overhead_ratio(self, d: int, log_u: int = 32) -> float:
        """Transmitted bits as a multiple of the d * log|U| minimum."""
        if d == 0:
            return float("inf")
        return (8.0 * self.channel.total_bytes) / (d * log_u)
