"""Transport: byte-accounting message channel and protocol runner."""

from repro.transport.channel import Channel, Direction
from repro.transport.runner import ReconciliationResult

__all__ = ["Channel", "Direction", "ReconciliationResult"]
