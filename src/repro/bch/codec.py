"""The BCH sketch codec: the "sketching" of Parity Bitmap Sketch.

:class:`BCHCodec` bundles syndrome computation, the XOR homomorphism, and
full decoding (Berlekamp–Massey + root finding + verification) behind one
object parameterized by a field and an error-correction capacity ``t``.

Decoding is *sound*: when the sketched difference has more than ``t``
elements, the decoder either raises :class:`~repro.errors.DecodeFailure`
(the paper's §3.2 exception, triggering a three-way group split in PBS) or
— with negligible probability — returns a wrong element list, which the
protocol's checksum verification then rejects (§2.2.3).  Three defensive
checks make silent wrong answers rare: locator degree must equal the BM
length, the root count must equal the degree, and the recovered elements'
syndromes must reproduce the received sketch.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.bch.batch import BatchBCHDecoder
from repro.bch.berlekamp_massey import berlekamp_massey
from repro.bch.roots import candidate_roots, chien_roots, trace_roots
from repro.bch.syndromes import expand_syndromes, syndromes_of
from repro.errors import DecodeFailure, ParameterError
from repro.gf.base import GF2mField
from repro.gf.table_field import TableField
from repro.utils.bitio import BitReader, BitWriter


class BCHCodec:
    """Syndrome sketch with capacity ``t`` over a given GF(2^m).

    >>> from repro.gf import field_for
    >>> codec = BCHCodec(field_for(8), t=5)
    >>> sk_a = codec.sketch([3, 77, 200])
    >>> sk_b = codec.sketch([3, 150])
    >>> codec.decode(codec.sketch_xor(sk_a, sk_b))
    [77, 150, 200]
    """

    def __init__(self, field: GF2mField, t: int) -> None:
        if t < 1:
            raise ParameterError(f"capacity t must be >= 1, got {t}")
        self.field = field
        self.t = t
        self._batch_engine: BatchBCHDecoder | None = None

    @property
    def batch_engine(self) -> BatchBCHDecoder | None:
        """The multi-group engine, or None if the field cannot support it."""
        if self._batch_engine is None and hasattr(self.field, "mul_vec"):
            self._batch_engine = BatchBCHDecoder(self.field, self.t)
        return self._batch_engine

    # -- encoding ----------------------------------------------------------
    def sketch(self, values: Iterable[int]) -> list[int]:
        """Sketch a set of nonzero field elements (t syndromes)."""
        return syndromes_of(values, self.t, self.field)

    def sketch_xor(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Sketch of the symmetric difference of two sketched sets."""
        if len(a) != len(b):
            raise ParameterError("cannot XOR sketches of different capacity")
        return [x ^ y for x, y in zip(a, b)]

    def sketch_many(
        self, groups: Sequence[Iterable[int]], batch: bool = True
    ) -> list[list[int]]:
        """Sketch many sets at once (one vectorized pass over all groups).

        With ``batch=False`` (or a field without ``mul_vec``) this is a
        plain per-group loop — kept as the cross-checking reference.
        """
        engine = self.batch_engine if batch else None
        if engine is None:
            return [self.sketch(g) for g in groups]
        arrays = [
            np.asarray(g if isinstance(g, np.ndarray) else list(g))
            for g in groups
        ]
        return engine.sketch_many(arrays).tolist()

    # -- decoding ----------------------------------------------------------
    def decode(
        self,
        sketch: Sequence[int],
        candidates: np.ndarray | None = None,
        verify: bool = True,
        seed: int = 0,
        batch: bool = True,
    ) -> list[int]:
        """Recover the (at most t) elements whose sketch this is.

        ``candidates``: optional array of field elements known to contain
        all sketched elements; enables the fast evaluation-based root search
        for large fields.  Raises :class:`DecodeFailure` when the sketch is
        not decodable (more than t elements, or inconsistent).
        """
        if len(sketch) != self.t:
            raise ParameterError(
                f"sketch has {len(sketch)} syndromes, codec expects {self.t}"
            )
        if all(s == 0 for s in sketch):
            return []
        field = self.field
        full = expand_syndromes(list(sketch), field)
        locator, length = berlekamp_massey(full, field)
        if length > self.t or len(locator) - 1 != length:
            raise DecodeFailure(
                f"locator degree {len(locator) - 1} != BM length {length} "
                f"or exceeds capacity {self.t}"
            )
        roots = self._find_roots(locator, candidates, seed, batch)
        if 0 in roots:
            raise DecodeFailure("locator has 0 as a root")
        # BM's locator is prod (1 - e_i x): its roots are the inverses.
        elements = sorted(field.inv(r) for r in roots)
        if len(elements) != length:
            raise DecodeFailure(
                f"found {len(elements)} roots for a degree-{length} locator"
            )
        if verify and syndromes_of(elements, self.t, field) != list(sketch):
            raise DecodeFailure("recovered elements do not reproduce the sketch")
        return elements

    def decode_many(
        self,
        sketches: Sequence[Sequence[int]],
        candidates: Sequence[np.ndarray] | None = None,
        batch: bool = True,
        verify: bool = True,
        seed: int = 0,
    ) -> list[list[int] | None]:
        """Decode many sketches at once; ``None`` marks a failed group.

        The batch path runs syndromes, Berlekamp–Massey and root search
        across all groups on 2-D arrays (``batch=False`` falls back to a
        per-group :meth:`decode` loop, kept for cross-checking).  It
        requires a table field (Chien search) or per-group ``candidates``.
        """
        groups = list(sketches)
        # Below a handful of groups the lockstep machinery costs more than
        # it saves; the scalar loop produces identical results.
        engine = self.batch_engine if batch and len(groups) >= 4 else None
        if engine is not None and (
            candidates is not None or isinstance(self.field, TableField)
        ):
            if any(len(sk) != self.t for sk in groups):
                raise ParameterError(
                    f"sketch rows do not all have {self.t} syndromes"
                )
            matrix = np.asarray(groups, dtype=np.int64).reshape(-1, self.t)
            return engine.decode_many(matrix, candidates=candidates, verify=verify)
        out: list[list[int] | None] = []
        for i, sk in enumerate(groups):
            cand = candidates[i] if candidates is not None else None
            try:
                out.append(
                    self.decode(
                        sk, candidates=cand, verify=verify, seed=seed, batch=batch
                    )
                )
            except DecodeFailure:
                out.append(None)
        return out

    def _find_roots(
        self,
        locator: list[int],
        candidates: np.ndarray | None,
        seed: int,
        batch: bool = True,
    ) -> list[int]:
        if isinstance(self.field, TableField):
            return chien_roots(locator, self.field)
        if candidates is not None:
            # roots are inverses of sketched elements; invert the candidates
            if batch:
                nonzero = np.asarray(candidates, dtype=np.int64)
                inv_candidates = self.field.inv_vec(nonzero[nonzero != 0])
            else:
                inv_candidates = np.fromiter(
                    (self.field.inv(int(c)) for c in candidates if c != 0),
                    dtype=np.int64,
                    count=-1,
                )
            return candidate_roots(locator, inv_candidates, self.field)
        return trace_roots(locator, self.field, seed=seed)

    # -- serialization -----------------------------------------------------
    @property
    def sketch_bits(self) -> int:
        """Wire size of one sketch: ``t * m`` bits (§2.5)."""
        return self.t * self.field.m

    def serialize(self, sketch: Sequence[int]) -> bytes:
        """Bit-pack a sketch into ``ceil(t*m / 8)`` bytes."""
        writer = BitWriter()
        for s in sketch:
            writer.write(s, self.field.m)
        return writer.getvalue()

    def deserialize(self, data: bytes) -> list[int]:
        """Inverse of :meth:`serialize`."""
        reader = BitReader(data)
        return [reader.read(self.field.m) for _ in range(self.t)]
