"""The BCH sketch codec: the "sketching" of Parity Bitmap Sketch.

:class:`BCHCodec` bundles syndrome computation, the XOR homomorphism, and
full decoding (Berlekamp–Massey + root finding + verification) behind one
object parameterized by a field and an error-correction capacity ``t``.

Decoding is *sound*: when the sketched difference has more than ``t``
elements, the decoder either raises :class:`~repro.errors.DecodeFailure`
(the paper's §3.2 exception, triggering a three-way group split in PBS) or
— with negligible probability — returns a wrong element list, which the
protocol's checksum verification then rejects (§2.2.3).  Three defensive
checks make silent wrong answers rare: locator degree must equal the BM
length, the root count must equal the degree, and the recovered elements'
syndromes must reproduce the received sketch.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.bch.berlekamp_massey import berlekamp_massey
from repro.bch.roots import candidate_roots, chien_roots, trace_roots
from repro.bch.syndromes import expand_syndromes, syndromes_of
from repro.errors import DecodeFailure, ParameterError
from repro.gf.base import GF2mField
from repro.gf.table_field import TableField
from repro.utils.bitio import BitReader, BitWriter


class BCHCodec:
    """Syndrome sketch with capacity ``t`` over a given GF(2^m).

    >>> from repro.gf import field_for
    >>> codec = BCHCodec(field_for(8), t=5)
    >>> sk_a = codec.sketch([3, 77, 200])
    >>> sk_b = codec.sketch([3, 150])
    >>> codec.decode(codec.sketch_xor(sk_a, sk_b))
    [77, 150, 200]
    """

    def __init__(self, field: GF2mField, t: int) -> None:
        if t < 1:
            raise ParameterError(f"capacity t must be >= 1, got {t}")
        self.field = field
        self.t = t

    # -- encoding ----------------------------------------------------------
    def sketch(self, values: Iterable[int]) -> list[int]:
        """Sketch a set of nonzero field elements (t syndromes)."""
        return syndromes_of(values, self.t, self.field)

    def sketch_xor(self, a: Sequence[int], b: Sequence[int]) -> list[int]:
        """Sketch of the symmetric difference of two sketched sets."""
        if len(a) != len(b):
            raise ParameterError("cannot XOR sketches of different capacity")
        return [x ^ y for x, y in zip(a, b)]

    # -- decoding ----------------------------------------------------------
    def decode(
        self,
        sketch: Sequence[int],
        candidates: np.ndarray | None = None,
        verify: bool = True,
        seed: int = 0,
    ) -> list[int]:
        """Recover the (at most t) elements whose sketch this is.

        ``candidates``: optional array of field elements known to contain
        all sketched elements; enables the fast evaluation-based root search
        for large fields.  Raises :class:`DecodeFailure` when the sketch is
        not decodable (more than t elements, or inconsistent).
        """
        if len(sketch) != self.t:
            raise ParameterError(
                f"sketch has {len(sketch)} syndromes, codec expects {self.t}"
            )
        if all(s == 0 for s in sketch):
            return []
        field = self.field
        full = expand_syndromes(list(sketch), field)
        locator, length = berlekamp_massey(full, field)
        if length > self.t or len(locator) - 1 != length:
            raise DecodeFailure(
                f"locator degree {len(locator) - 1} != BM length {length} "
                f"or exceeds capacity {self.t}"
            )
        roots = self._find_roots(locator, candidates, seed)
        if 0 in roots:
            raise DecodeFailure("locator has 0 as a root")
        # BM's locator is prod (1 - e_i x): its roots are the inverses.
        elements = sorted(field.inv(r) for r in roots)
        if len(elements) != length:
            raise DecodeFailure(
                f"found {len(elements)} roots for a degree-{length} locator"
            )
        if verify and syndromes_of(elements, self.t, field) != list(sketch):
            raise DecodeFailure("recovered elements do not reproduce the sketch")
        return elements

    def _find_roots(
        self, locator: list[int], candidates: np.ndarray | None, seed: int
    ) -> list[int]:
        if isinstance(self.field, TableField):
            return chien_roots(locator, self.field)
        if candidates is not None:
            # roots are inverses of sketched elements; invert the candidates
            inv_candidates = np.fromiter(
                (self.field.inv(int(c)) for c in candidates if c != 0),
                dtype=np.int64,
                count=-1,
            )
            return candidate_roots(locator, inv_candidates, self.field)
        return trace_roots(locator, self.field, seed=seed)

    # -- serialization -----------------------------------------------------
    @property
    def sketch_bits(self) -> int:
        """Wire size of one sketch: ``t * m`` bits (§2.5)."""
        return self.t * self.field.m

    def serialize(self, sketch: Sequence[int]) -> bytes:
        """Bit-pack a sketch into ``ceil(t*m / 8)`` bytes."""
        writer = BitWriter()
        for s in sketch:
            writer.write(s, self.field.m)
        return writer.getvalue()

    def deserialize(self, data: bytes) -> list[int]:
        """Inverse of :meth:`serialize`."""
        reader = BitReader(data)
        return [reader.read(self.field.m) for _ in range(self.t)]
