"""Batched BCH sketch encode/decode across all groups of a PBS round.

The per-group decode pipeline (syndromes → Berlekamp–Massey → Chien
search → verification) is the dominant hot path of every PBS round: one
small decode per group, hundreds of groups per round.  Running it group
by group costs a Python-level loop per group *inside* each stage; this
module instead runs every stage across **all groups at once** on 2-D
numpy arrays:

* :meth:`BatchBCHDecoder.sketch_many` — stack the per-group element
  arrays into one zero-padded ``(g, L)`` matrix and compute all ``g * t``
  power-sum syndromes with ``t`` vectorized field multiplies (0 is
  XOR-neutral and absorbs under multiplication, so the padding is free).
* :meth:`BatchBCHDecoder.bm_many` — Berlekamp–Massey in lockstep: all
  groups share the iteration counter while the data-dependent branches
  (zero discrepancy, length change) become boolean masks.  The per-group
  state (locator row, shadow row, length, gap, last discrepancy) lives in
  matrices, so one BM step is a handful of ``(g, w)`` numpy ops.
* root search — either a batched Chien search via
  :meth:`~repro.gf.table_field.TableField.eval_poly_all_batch` (table
  fields: PBS's m = 6..11 parity bitmaps), or a batched Horner
  evaluation over a caller-supplied candidate array per group (large
  fields: partitioned PinSketch over GF(2^32)).
* verification — re-sketch all recovered element lists with
  :meth:`sketch_many` and compare matrices.

The engine is bit-for-bit equivalent to the scalar
:class:`~repro.bch.codec.BCHCodec` path — including which groups raise
:class:`~repro.errors.DecodeFailure` — which the property tests in
``tests/test_bch_batch.py`` assert on randomized inputs.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.errors import ParameterError
from repro.gf.base import GF2mField
from repro.gf.table_field import TableField


def stack_groups(groups: Sequence[np.ndarray]) -> np.ndarray:
    """Zero-pad variable-length element arrays into a ``(g, L)`` matrix.

    Zero is not a field element of the sketch universe, is the XOR
    identity, and stays zero under field multiplication, so padded slots
    contribute nothing to any power sum.
    """
    g = len(groups)
    arrays = [np.asarray(v, dtype=np.int64) for v in groups]
    width = max((len(v) for v in arrays), default=0)
    out = np.zeros((g, max(width, 1)), dtype=np.int64)
    for i, v in enumerate(arrays):
        if len(v):
            out[i, : len(v)] = v
    return out


class BatchBCHDecoder:
    """Vectorized multi-group counterpart of :class:`~repro.bch.codec.BCHCodec`.

    >>> from repro.gf import field_for
    >>> eng = BatchBCHDecoder(field_for(7), t=4)
    >>> sk = eng.sketch_many([[3, 17, 44], [], [5, 99]])
    >>> eng.decode_many(sk)
    [[3, 17, 44], [], [5, 99]]
    """

    def __init__(self, field: GF2mField, t: int) -> None:
        if t < 1:
            raise ParameterError(f"capacity t must be >= 1, got {t}")
        if not hasattr(field, "mul_vec"):
            raise ParameterError(
                f"{type(field).__name__} has no mul_vec; batch decoding "
                "needs a vectorized field backend"
            )
        self.field = field
        self.t = t

    # -- encoding ----------------------------------------------------------
    def sketch_many(self, groups: Sequence[np.ndarray]) -> np.ndarray:
        """``(g, t)`` syndrome matrix, one row per group of field elements."""
        return self._sketch_matrix(stack_groups(groups))

    def _sketch_matrix(self, values: np.ndarray) -> np.ndarray:
        """Power-sum syndromes of a zero-padded ``(g, L)`` element matrix."""
        field = self.field
        t = self.t
        out = np.zeros((values.shape[0], t), dtype=np.int64)
        if values.size == 0 or not values.any():
            return out
        v_sq = field.mul_vec(values, values)
        powers = values
        for k in range(t):
            out[:, k] = np.bitwise_xor.reduce(powers, axis=1)
            if k + 1 < t:
                powers = field.mul_vec(powers, v_sq)
        return out

    def expand_many(self, odd: np.ndarray) -> np.ndarray:
        """``(g, 2t)`` full syndrome matrices from the odd halves.

        The even columns follow from Frobenius on power sums
        (``s_2k = s_k^2``), exactly like the scalar
        :func:`~repro.bch.syndromes.expand_syndromes`.
        """
        field = self.field
        g, t = odd.shape
        full = np.zeros((g, 2 * t), dtype=np.int64)
        full[:, 0::2] = odd
        for k in range(1, t + 1):
            half = full[:, k - 1]
            full[:, 2 * k - 1] = field.mul_vec(half, half)
        return full

    # -- Berlekamp–Massey --------------------------------------------------
    def bm_many(self, full: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Lockstep Berlekamp–Massey over ``(g, 2t)`` syndrome matrices.

        Returns ``(locators, lengths)``: a ``(g, 2t + 1)`` matrix of
        ascending-degree locator coefficients (column 0 is always 1) and
        the per-group LFSR lengths.  Matches the scalar
        :func:`~repro.bch.berlekamp_massey.berlekamp_massey` step for
        step; the branches act through masks.
        """
        field = self.field
        g, n_syn = full.shape
        width = n_syn + 1
        loc = np.zeros((g, width), dtype=np.int64)
        loc[:, 0] = 1
        prev = loc.copy()  # B(x) per group
        length = np.zeros(g, dtype=np.int64)
        gap = np.ones(g, dtype=np.int64)
        prev_disc = np.ones(g, dtype=np.int64)
        cols = np.arange(width, dtype=np.int64)
        rows = np.arange(g, dtype=np.int64)[:, None]
        max_len = 0  # running max of `length`, bounds the discrepancy sum
        for i in range(n_syn):
            # discrepancy d = s_i + sum_{j=1..L} C_j * s_{i-j}
            disc = full[:, i].copy()
            for j in range(1, min(i, max_len, width - 1) + 1):
                term = field.mul_vec(loc[:, j], full[:, i - j])
                disc ^= np.where(j <= length, term, 0)
            active = disc != 0
            if not active.any():
                gap += 1
                continue
            # coef = disc / prev_disc (prev_disc is never 0 by construction)
            coef = field.mul_vec(disc, field.inv_vec(prev_disc))
            # adjust = coef * x^gap * prev, via a per-row variable shift
            shifted = cols[None, :] - gap[:, None]
            prev_shifted = np.where(
                shifted >= 0, prev[rows, np.maximum(shifted, 0)], 0
            )
            adjust = field.mul_vec(coef[:, None], prev_shifted)
            candidate = loc ^ adjust
            change = active & (2 * length <= i)
            keep_mask = change[:, None]
            prev = np.where(keep_mask, loc, prev)
            prev_disc = np.where(change, disc, prev_disc)
            length = np.where(change, i + 1 - length, length)
            gap = np.where(change, 1, gap + 1)
            loc = np.where(active[:, None], candidate, loc)
            if change.any():
                max_len = int(length.max())
        return loc, length

    @staticmethod
    def degrees(loc: np.ndarray) -> np.ndarray:
        """Per-row polynomial degree (column 0 is always nonzero)."""
        width = loc.shape[1]
        return width - 1 - np.argmax(loc[:, ::-1] != 0, axis=1)

    # -- root search -------------------------------------------------------
    @staticmethod
    def _pack_hits(
        g: int, hit_rows: np.ndarray, hit_elems: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Pack flat (row, element) hits into a zero-padded ``(g, w)`` matrix.

        ``hit_rows`` must be non-decreasing; each output row holds that
        group's recovered elements sorted ascending, then zero padding.
        """
        counts = np.bincount(hit_rows, minlength=g)
        width = int(counts.max()) if len(hit_rows) else 0
        mat = np.zeros((g, max(width, 1)), dtype=np.int64)
        if len(hit_rows):
            # sort within each row by element value (rows already grouped)
            order = np.lexsort((hit_elems, hit_rows))
            sorted_elems = hit_elems[order]
            starts = np.zeros(g + 1, dtype=np.int64)
            np.cumsum(counts, out=starts[1:])
            offsets = np.arange(len(hit_rows)) - starts[hit_rows]
            mat[hit_rows, offsets] = sorted_elems
        return mat, counts

    def _chien_elements(
        self, loc: np.ndarray, max_deg: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched Chien search (table fields): recovered elements per group.

        Returns ``(elements, counts)``: a zero-padded ``(g, w)`` matrix of
        the *inverses* of the locator roots (BM's locator is
        ``prod (1 - e_i x)``), each row sorted ascending, plus per-group
        root counts.
        """
        field = self.field
        order = field.order
        vals = field.eval_poly_all_batch(loc[:, : max_deg + 1])
        hit_rows, hit_cols = np.nonzero(vals == 0)
        # root alpha^i  ->  element alpha^(-i)
        elems = field.exp_table[(order - hit_cols) % order]
        return self._pack_hits(loc.shape[0], hit_rows, elems)

    def _candidate_elements(
        self, loc: np.ndarray, max_deg: int, candidates: Sequence[np.ndarray]
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched candidate root search (any vectorized field).

        ``candidates[i]`` must contain every sketched element of group i
        (e.g. Alice's elements under the paper's B ⊂ A workload).  An
        element c is recovered iff ``locator(c^-1) == 0``, evaluated for
        all groups' candidates in one flat Horner pass.
        """
        field = self.field
        g = loc.shape[0]
        sizes = np.fromiter((len(c) for c in candidates), dtype=np.int64, count=g)
        if sizes.sum() == 0:
            return np.zeros((g, 1), dtype=np.int64), np.zeros(g, dtype=np.int64)
        flat = np.concatenate(
            [np.asarray(c, dtype=np.int64) for c in candidates]
        )
        gid = np.repeat(np.arange(g, dtype=np.int64), sizes)
        nonzero = flat != 0
        flat, gid = flat[nonzero], gid[nonzero]
        inv_flat = field.inv_vec(flat)
        acc = np.zeros_like(inv_flat)
        for j in range(max_deg, -1, -1):
            acc = field.mul_vec(acc, inv_flat) ^ loc[gid, j]
        root_mask = acc == 0
        hit_gid = gid[root_mask]
        hit_elems = flat[root_mask]
        # drop duplicate (group, element) pairs, mirroring the scalar
        # np.unique (callers pass unique candidate sets, but stay safe)
        order = np.lexsort((hit_elems, hit_gid))
        hit_gid, hit_elems = hit_gid[order], hit_elems[order]
        if len(hit_gid):
            fresh = np.ones(len(hit_gid), dtype=bool)
            fresh[1:] = (hit_gid[1:] != hit_gid[:-1]) | (
                hit_elems[1:] != hit_elems[:-1]
            )
            hit_gid, hit_elems = hit_gid[fresh], hit_elems[fresh]
        return self._pack_hits(g, hit_gid, hit_elems)

    # -- decoding ----------------------------------------------------------
    def decode_many(
        self,
        sketches: np.ndarray,
        candidates: Sequence[np.ndarray] | None = None,
        verify: bool = True,
    ) -> list[list[int] | None]:
        """Decode a ``(g, t)`` sketch matrix; ``None`` marks a group whose
        scalar decode would raise :class:`~repro.errors.DecodeFailure`.

        Root-search precedence matches the scalar
        :meth:`~repro.bch.codec.BCHCodec.decode`: table fields always use
        the exhaustive Chien search (``candidates`` is ignored there, as
        in the scalar path); other fields require per-group
        ``candidates`` arrays for the batched Horner evaluation.
        """
        sk = np.asarray(sketches, dtype=np.int64)
        if sk.ndim != 2 or sk.shape[1] != self.t:
            raise ParameterError(
                f"sketch matrix shape {sk.shape} does not match capacity {self.t}"
            )
        if candidates is None and not isinstance(self.field, TableField):
            raise ParameterError(
                "batch decode over a non-table field needs per-group candidates"
            )
        g = sk.shape[0]
        if g == 0:
            return []
        full = self.expand_many(sk)
        loc, length = self.bm_many(full)
        deg = self.degrees(loc)
        failed = (length > self.t) | (deg != length)
        # Replace failed rows' locators with the constant 1 (no roots):
        # their garbage polynomials could otherwise have many roots and
        # widen the packed result matrix for every group.
        if failed.any():
            loc = np.where(failed[:, None], 0, loc)
            loc[:, 0] = 1
            deg = np.where(failed, 0, deg)
        max_deg = int(min(deg.max(), self.t)) if len(deg) else 0
        if isinstance(self.field, TableField):
            elements, counts = self._chien_elements(loc, max_deg)
        else:
            if len(candidates) != g:
                raise ParameterError(
                    f"{len(candidates)} candidate arrays for {g} groups"
                )
            elements, counts = self._candidate_elements(loc, max_deg, candidates)
        failed |= counts != deg
        if verify:
            # Re-sketching the already-failed rows' (possibly garbage)
            # elements is harmless: `failed` only ever accumulates.
            failed |= (self._sketch_matrix(elements) != sk).any(axis=1)
        return [
            None if failed[i] else elements[i, : counts[i]].tolist()
            for i in range(g)
        ]
