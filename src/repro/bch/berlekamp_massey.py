"""Berlekamp–Massey over GF(2^m).

Finds the shortest linear-feedback shift register — equivalently the
error-locator polynomial ``C(x) = prod (1 - e_i x)`` — generating a syndrome
sequence.  For a syndrome sequence of length 2t produced by at most t
errors, the output locator has degree exactly the number of errors.

This is the O(d^2) finite-field step the paper's complexity statements refer
to: PinSketch runs it once with d = |A xor B| (hence O(d^2) total), PBS runs
it once per group with d <= t = O(1) (hence O(d) total, §1.3.2).
"""

from __future__ import annotations

from repro.gf.base import GF2mField


def berlekamp_massey(syndromes: list[int], field: GF2mField) -> tuple[list[int], int]:
    """Return ``(locator, L)`` for the given full syndrome sequence.

    ``locator`` is in ascending-degree order with ``locator[0] == 1``;
    ``L`` is the LFSR length (the claimed number of errors).  The caller is
    responsible for sanity checks (``degree == L``, ``L <= t``, root count).
    """
    locator = [1]
    prev = [1]  # B(x): copy of locator before the last length change
    length = 0
    gap = 1  # number of iterations since the last length change
    prev_disc = 1  # discrepancy at the last length change

    for i, s_i in enumerate(syndromes):
        # discrepancy d = s_i + sum_{j=1..L} C_j * s_{i-j}
        disc = s_i
        for j in range(1, length + 1):
            if j < len(locator) and locator[j] and i - j >= 0:
                disc ^= field.mul(locator[j], syndromes[i - j])
        if disc == 0:
            gap += 1
            continue
        coef = field.div(disc, prev_disc)
        # candidate = locator - coef * x^gap * prev
        adjust = [0] * gap + [field.mul(coef, c) for c in prev]
        if len(adjust) > len(locator):
            candidate = list(adjust)
            for k, c in enumerate(locator):
                candidate[k] ^= c
        else:
            candidate = list(locator)
            for k, c in enumerate(adjust):
                candidate[k] ^= c
        if 2 * length <= i:
            prev = locator
            prev_disc = disc
            length = i + 1 - length
            gap = 1
            locator = candidate
        else:
            locator = candidate
            gap += 1

    # normalize: drop trailing zeros (degree may be < L on bad input)
    while len(locator) > 1 and locator[-1] == 0:
        locator.pop()
    return locator, length
