"""BCH syndrome sketches and decoding.

PBS and PinSketch both "sketch" a set of nonzero field elements as the
vector of odd power sums ``s_k = sum v^k`` (k = 1, 3, ..., 2t-1) over
GF(2^m) — exactly the syndromes of a binary BCH code of designed distance
2t+1 evaluated on the characteristic vector of the set (§2.5, [13], [36]).
Two sketches XOR to the sketch of the symmetric difference, and decoding a
sketch of at most t elements recovers those elements:

1. reconstruct the even syndromes via ``s_{2k} = s_k^2`` (Frobenius),
2. Berlekamp–Massey for the error-locator polynomial,
3. root finding (vectorized Chien search over table fields; the Berlekamp
   trace algorithm, or candidate evaluation, over GF(2^32)).
"""

from repro.bch.berlekamp_massey import berlekamp_massey
from repro.bch.codec import BCHCodec
from repro.bch.roots import chien_roots, trace_roots
from repro.bch.syndromes import expand_syndromes, syndromes_of

__all__ = [
    "BCHCodec",
    "berlekamp_massey",
    "chien_roots",
    "trace_roots",
    "syndromes_of",
    "expand_syndromes",
]
