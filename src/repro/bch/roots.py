"""Root finding for error-locator polynomials.

Three strategies, matching the field sizes at play:

* :func:`chien_roots` — evaluate at every nonzero element (vectorized via
  the table field's log/antilog arrays).  O(deg * 2^m) table lookups; ideal
  for PBS's small fields (m = 6..11).
* :func:`trace_roots` — the Berlekamp trace algorithm: restrict to roots in
  the field via ``gcd(f, x^(2^m) - x)``, then recursively split with
  ``gcd(f, Tr(beta x))`` for random beta.  Works for any field, including
  GF(2^32), with cost polynomial in the degree only.
* :func:`candidate_roots` — evaluate at a caller-supplied candidate array
  (vectorized Horner).  Used by PinSketch when the host set contains the
  symmetric difference (e.g. the paper's B ⊂ A evaluation workload), where
  it is much faster than the trace algorithm.
"""

from __future__ import annotations

import numpy as np

from repro.gf import polynomial as P
from repro.gf.base import GF2mField
from repro.gf.table_field import TableField
from repro.utils.seeds import spawn_rng


def chien_roots(locator: list[int], field: TableField) -> list[int]:
    """All nonzero roots of ``locator`` by exhaustive vectorized evaluation."""
    coeffs = P.trim(list(locator))
    if not coeffs:
        return []
    vals = field.eval_poly_all(coeffs)
    hits = np.nonzero(vals == 0)[0]
    return [int(field.exp_table[i]) for i in hits]


def candidate_roots(
    locator: list[int], candidates: np.ndarray, field: GF2mField
) -> list[int]:
    """Roots of ``locator`` among ``candidates`` (vectorized Horner)."""
    coeffs = P.trim(list(locator))
    if not coeffs:
        return []
    xs = np.asarray(candidates, dtype=np.int64)
    acc = np.zeros_like(xs)
    for c in reversed(coeffs):
        acc = field.mul_vec(acc, xs)
        if c:
            acc ^= np.int64(c)
    roots = xs[acc == 0]
    return [int(r) for r in np.unique(roots)]


def trace_roots(locator: list[int], field: GF2mField, seed: int = 0) -> list[int]:
    """All roots of ``locator`` lying in the field, via Berlekamp traces.

    Returns the distinct roots only.  If ``locator`` has irreducible factors
    of degree > 1 they are silently dropped (the caller detects this as a
    root-count mismatch and declares a decoding failure).
    """
    f = P.monic(list(locator), field)
    if P.degree(f) <= 0:
        return []
    # Keep only the part of f that splits into distinct linear factors
    # over the field: gcd(f, x^(2^m) - x).
    xq = P.pow_x_mod(field.m, f, field)
    linear_part = P.gcd(f, P.add(xq, [0, 1]), field)
    roots: list[int] = []
    rng = spawn_rng(seed, "trace-roots")
    _split(linear_part, field, rng, roots)
    return sorted(roots)


def _split(
    f: list[int], field: GF2mField, rng: np.random.Generator, out: list[int]
) -> None:
    deg = P.degree(f)
    if deg <= 0:
        return
    if deg == 1:
        # monic x + c has root c (characteristic 2)
        out.append(f[0])
        return
    # Random trace splits: each beta separates the roots into those with
    # Tr(beta * root) = 0 (collected by the gcd) and the rest; two distinct
    # roots are separated by at least half of all beta, so the expected
    # number of attempts is O(1).
    while True:
        beta = int(rng.integers(1, field.order + 1))
        tr = P.trace_poly_mod(beta, f, field)
        g = P.gcd(f, tr, field)
        dg = P.degree(g)
        if 0 < dg < deg:
            _split(g, field, rng, out)
            _split(P.divmod_poly(f, g, field)[0], field, rng, out)
            return
