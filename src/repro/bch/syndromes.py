"""Syndrome (odd power sum) computation.

``syndromes_of(values, t, field)`` returns ``[s_1, s_3, ..., s_{2t-1}]``
with ``s_k = XOR-sum of v^k``.  The XOR (field addition) structure is what
gives the sketch its homomorphism: ``sketch(A) xor sketch(B) =
sketch(A xor-diff B)``, since elements common to both sides cancel.

Fields that expose ``mul_vec`` (the table and tower backends) get a
vectorized path: one elementwise squaring up front, then one vector multiply
per syndrome, i.e. ``t + 1`` numpy passes regardless of set size.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.gf.base import GF2mField


def syndromes_of(values: Iterable[int], t: int, field: GF2mField) -> list[int]:
    """Odd power-sum syndromes ``[s_1, s_3, ..., s_{2t-1}]`` of ``values``.

    Values must be nonzero field elements (0 has no discrete log and is
    excluded from the universe by the paper's convention, §2.1).
    """
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
    if arr.size == 0:
        return [0] * t
    if hasattr(field, "mul_vec"):
        return _syndromes_vec(arr.astype(np.int64), t, field)
    return _syndromes_scalar(arr.tolist(), t, field)


def _syndromes_vec(arr: np.ndarray, t: int, field: GF2mField) -> list[int]:
    v_sq = field.mul_vec(arr, arr)
    powers = arr
    out: list[int] = []
    for _ in range(t):
        out.append(int(np.bitwise_xor.reduce(powers)))
        powers = field.mul_vec(powers, v_sq)
    return out


def _syndromes_scalar(values: list[int], t: int, field: GF2mField) -> list[int]:
    out = [0] * t
    for v in values:
        v_sq = field.mul(v, v)
        power = v
        for k in range(t):
            out[k] ^= power
            power = field.mul(power, v_sq)
    return out


def expand_syndromes(odd: list[int], field: GF2mField) -> list[int]:
    """Full syndrome sequence ``s_1 .. s_{2t}`` from the odd half.

    Valid whenever the sketched set has at most t elements: binary BCH
    syndromes satisfy ``s_{2k} = s_k^2`` (Frobenius on power sums), so the
    even syndromes are redundant and never transmitted — that redundancy is
    why a capacity-t sketch is only ``t*m`` bits (§2.5).
    """
    t = len(odd)
    full = [0] * (2 * t)
    for k in range(1, 2 * t + 1):
        if k % 2 == 1:
            full[k - 1] = odd[(k - 1) // 2]
        else:
            half = full[k // 2 - 1]
            full[k - 1] = field.mul(half, half)
    return full
