"""The reconciliation service: many concurrent PBS sessions over sockets.

Layers (bottom up):

* :mod:`repro.service.wire` — length-prefixed framing for the protocol
  messages, with payload-vs-framing byte accounting
  (:class:`FramedChannel`);
* :mod:`repro.service.store` — named set registry with
  snapshot-on-reconcile / apply-diff-on-completion semantics;
* :mod:`repro.service.scheduler` — the cross-session BCH decode
  coalescer that feeds :meth:`BCHCodec.decode_many` batches spanning
  sessions;
* :mod:`repro.service.metrics` — per-session and aggregate counters;
* :mod:`repro.service.server` / :mod:`repro.service.client` — the
  asyncio server (one BobSession per connection) and client (one
  AliceSession), also reachable as ``repro serve`` / ``repro sync``.
"""

from repro.service.client import ClientConnection, sync_once, sync_with_server
from repro.service.metrics import ServiceMetrics, SessionMetrics
from repro.service.scheduler import CoalescerStats, DecodeCoalescer
from repro.service.server import ReconciliationServer
from repro.service.store import SetStore, Snapshot, UnknownSetError
from repro.service.wire import (
    FramedChannel,
    FramedStream,
    FrameType,
    Retry,
    ServerBusy,
    retry_delay,
)

__all__ = [
    "ClientConnection",
    "CoalescerStats",
    "DecodeCoalescer",
    "FramedChannel",
    "FramedStream",
    "FrameType",
    "ReconciliationServer",
    "Retry",
    "ServerBusy",
    "ServiceMetrics",
    "SessionMetrics",
    "SetStore",
    "Snapshot",
    "UnknownSetError",
    "retry_delay",
    "sync_once",
    "sync_with_server",
]
