"""The server-side set store: many named logical sets.

Each reconciliation session runs against an immutable *snapshot* of one
named set — PBS requires Bob's set to hold still for the whole multi-round
exchange, but the live set keeps moving as other sessions complete.  On
completion the session's additions are applied to the *live* set, so
concurrent sessions against the same name merge: two clients that both
snapshotted ``B`` leave the store at ``B ∪ (A1 \\ B) ∪ (A2 \\ B)``.

The store is designed for a single-threaded asyncio server: methods are
plain synchronous functions (no awaits inside), which on one event loop is
already atomic.  A per-set monotonically increasing ``version`` lets
clients detect that a second sync pass is needed for full convergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError


class UnknownSetError(ReproError, KeyError):
    """A session referenced a set name the store does not hold."""


@dataclass
class _NamedSet:
    values: set[int] = field(default_factory=set)
    version: int = 0          #: bumped on every mutation
    reconciles: int = 0       #: completed sessions against this set


@dataclass
class Snapshot:
    """One session's frozen view of a named set."""

    name: str
    version: int
    values: frozenset[int]

    def __len__(self) -> int:
        return len(self.values)


class SetStore:
    """Registry of named element sets with snapshot/apply semantics.

    ``persistence`` injects durability: when set (to a
    :class:`repro.cluster.storage.StorageBackend`), every mutating call
    records itself durably *before* the in-memory state changes — if the
    durable write raises, the live set is untouched.  Callers that have
    already persisted a mutation themselves (the cluster's
    thread-offloaded journal appends, recovery replay) pass
    ``persisted=True`` to keep the hook quiet; recovery instead replays
    into a store whose hook is not wired yet.  This hook is the single
    home of the durable-write ordering that ``router.py`` and
    ``proc.py`` used to duplicate around the store.
    """

    def __init__(self, persistence=None) -> None:
        self._sets: dict[str, _NamedSet] = {}
        #: optional write-through durability hook (StorageBackend-like:
        #: ``record_create`` / ``record_diff``)
        self.persistence = persistence

    # -- registry -------------------------------------------------------------
    def names(self) -> list[str]:
        return sorted(self._sets)

    def __contains__(self, name: str) -> bool:
        return name in self._sets

    def create(self, name: str, values=(), version: int = 0,
               persisted: bool = False) -> None:
        """Create (or replace) a named set from an iterable of elements.

        ``version`` seeds the mutation counter — journal recovery uses it
        to restore a set at the exact version it had when snapshotted.
        """
        values = {int(v) for v in values}
        if self.persistence is not None and not persisted:
            self.persistence.record_create(name, values, version=version)
        self._sets[name] = _NamedSet(values=values, version=version)

    def items(self) -> list[tuple[str, frozenset[int], int]]:
        """``(name, values, version)`` for every set (snapshot compaction)."""
        return [
            (name, frozenset(entry.values), entry.version)
            for name, entry in sorted(self._sets.items())
        ]

    def get(self, name: str) -> set[int]:
        """The live set (a copy — the store's own copy is private)."""
        return set(self._require(name).values)

    def size(self, name: str) -> int:
        return len(self._require(name).values)

    def version(self, name: str) -> int:
        return self._require(name).version

    # -- session lifecycle -----------------------------------------------------
    def snapshot(self, name: str, create_missing: bool = False) -> Snapshot:
        """Freeze one set for a reconciliation session."""
        if name not in self:
            if not create_missing:
                raise UnknownSetError(f"no such set: {name!r}")
            self.create(name)
        entry = self._require(name)
        return Snapshot(
            name=name, version=entry.version, values=frozenset(entry.values)
        )

    def apply_diff(self, name: str, add=(), remove=(),
                   persisted: bool = False, trace=None) -> int:
        """Fold a completed session's difference into the live set.

        Returns how many elements actually changed (an element both added
        by this session and already added by a concurrent one counts 0).
        The persistence hook fires before the first in-memory change and
        only for non-empty diffs (converged re-sync passes log nothing).
        ``trace`` is accepted (and ignored) so the server can thread a
        span context uniformly; the cluster store's override parents its
        storage-commit span on it.
        """
        entry = self._require(name)
        add = self._as_ints(add)
        remove = self._as_ints(remove)
        if (
            (add or remove)
            and self.persistence is not None
            and not persisted
        ):
            self.persistence.record_diff(name, add=add, remove=remove)
        added = set(add) - entry.values
        entry.values |= added
        removed = set(remove) & entry.values
        entry.values -= removed
        changed = len(added) + len(removed)
        if changed:
            entry.version += 1
        entry.reconciles += 1
        return changed

    @staticmethod
    def _as_ints(values) -> list[int]:
        """Plain-int elements via numpy (``.tolist()`` unboxes at C speed;
        large diff pushes arrive as uint64 arrays on the hot apply path)."""
        if not isinstance(values, np.ndarray):
            values = np.asarray(list(values), dtype=np.uint64)
        return values.astype(np.uint64, copy=False).tolist()

    # -- introspection ---------------------------------------------------------
    def stats(self) -> dict:
        """JSON-able per-set summary for the metrics endpoint."""
        return {
            name: {
                "size": len(entry.values),
                "version": entry.version,
                "reconciles": entry.reconciles,
            }
            for name, entry in sorted(self._sets.items())
        }

    def _require(self, name: str) -> _NamedSet:
        try:
            return self._sets[name]
        except KeyError:
            raise UnknownSetError(f"no such set: {name!r}") from None
