"""Cross-session decode coalescing.

PR 1's :class:`~repro.bch.batch.BatchBCHDecoder` gets its ~8x speedup from
amortizing Berlekamp–Massey and the Chien search across *many* groups per
call — but one small session brings only a handful of groups per round
(and below 4 groups :meth:`BCHCodec.decode_many` falls back to the scalar
loop outright).  Under concurrency the server can do better: decode work
from sessions that arrive within a small window is concatenated into one
``decode_many`` call over the *union* of their groups, which reaches batch
scale even when every individual session is tiny.

Submissions are grouped by codec shape ``(field, m, t)`` — any two PBS
sessions designed for the same difference scale share a shape, and rows
from different codecs of the same shape are interchangeable because the
sketch format depends only on the field and capacity.

The coalescer runs wherever the decoding happens: in the server process
(inline shard executor — one coalescer spanning every shard's sessions)
or inside each shard worker subprocess (``repro serve --workers proc`` —
one coalescer per worker, batching that shard's concurrent sessions; see
:mod:`repro.cluster.proc`).
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

from repro.bch.codec import BCHCodec
from repro.obs.logs import get_logger, slow_op_threshold_s
from repro.obs.metrics import DECODE_BATCH, REGISTRY
from repro.obs.trace import tracer

log = get_logger("decode")

#: Default coalescing window: long enough to catch peers of the same round
#: burst, short enough to be invisible next to a WAN round-trip.
DEFAULT_WINDOW_S = 0.002


@dataclass
class _Submission:
    codec: BCHCodec
    deltas: list[list[int]]
    future: asyncio.Future
    trace: object = None      #: submitting pass's TraceContext, if any


@dataclass
class CoalescerStats:
    """Aggregate counters, exposed through the service metrics snapshot."""

    submissions: int = 0        #: decode() calls
    batches: int = 0            #: decode_many calls actually issued
    coalesced_batches: int = 0  #: batches that merged >= 2 sessions
    groups: int = 0             #: total sketch rows decoded
    max_sessions_per_batch: int = 0
    decode_s: float = 0.0       #: engine seconds inside decode_many

    def to_dict(self) -> dict:
        return {
            "submissions": self.submissions,
            "batches": self.batches,
            "coalesced_batches": self.coalesced_batches,
            "groups": self.groups,
            "max_sessions_per_batch": self.max_sessions_per_batch,
            "decode_s": self.decode_s,
            "mean_sessions_per_batch": (
                self.submissions / self.batches if self.batches else 0.0
            ),
        }


class DecodeCoalescer:
    """Collects decode work across sessions and batches it per window.

    The first submission of a codec shape opens a window; every further
    submission of that shape before the window closes joins the batch.
    When the window fires, all collected rows go through *one*
    ``decode_many`` call and the results are scattered back.  A window
    that caught a single session degenerates to exactly the per-session
    call (the fallback path, also used when ``enabled=False`` for
    apples-to-apples benchmarking).
    """

    def __init__(
        self,
        window_s: float = DEFAULT_WINDOW_S,
        enabled: bool = True,
        batch: bool = True,
    ) -> None:
        self.window_s = window_s
        self.enabled = enabled and window_s > 0
        #: forwarded to decode_many (False forces the scalar engine)
        self.batch = batch
        self.stats = CoalescerStats()
        self._pending: dict[tuple, list[_Submission]] = {}
        # flush tasks need a strong reference until they run (asyncio only
        # keeps weak ones)
        self._flushers: set[asyncio.Task] = set()

    @staticmethod
    def _shape(codec: BCHCodec) -> tuple:
        return (type(codec.field).__name__, codec.field.m, codec.t)

    async def decode(
        self, codec: BCHCodec, deltas: list[list[int]], trace=None
    ) -> tuple[list[list[int] | None], float]:
        """Decode one session's sketch deltas, possibly in a shared batch.

        Returns ``(decoded, seconds)`` where ``decoded`` aligns with
        ``deltas`` (``None`` rows failed) and ``seconds`` is this
        session's proportional share of the engine time of whatever batch
        served it — suitable for ``BobSession.finish_reply``.  ``trace``
        (the submitting pass's span context, if any) parents the
        decode-batch span; a merged batch is parented on its *first*
        submission's trace, with the session count in the span args.
        """
        self.stats.submissions += 1
        if not deltas:
            return [], 0.0
        if not self.enabled:
            return self._direct(codec, deltas, trace)
        key = self._shape(codec)
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        bucket = self._pending.setdefault(key, [])
        bucket.append(_Submission(codec, deltas, future, trace))
        if len(bucket) == 1:
            task = asyncio.create_task(self._flush_after_window(key))
            self._flushers.add(task)
            task.add_done_callback(self._flushers.discard)
        return await future

    def _direct(
        self, codec: BCHCodec, deltas: list[list[int]], trace=None
    ) -> tuple[list[list[int] | None], float]:
        ts = time.time()
        start = time.perf_counter()
        decoded = codec.decode_many(deltas, batch=self.batch)
        elapsed = time.perf_counter() - start
        self.stats.batches += 1
        self.stats.groups += len(deltas)
        self.stats.max_sessions_per_batch = max(
            self.stats.max_sessions_per_batch, 1
        )
        self.stats.decode_s += elapsed
        self._observe(ts, elapsed, groups=len(deltas), sessions=1,
                      trace=trace)
        return decoded, elapsed

    def _observe(
        self, ts: float, elapsed: float, groups: int, sessions: int,
        trace=None,
    ) -> None:
        """One batch's telemetry: histogram, span, slow-op WARNING."""
        REGISTRY.histogram(DECODE_BATCH).record(elapsed)
        trc = tracer()
        if trc.enabled:
            trc.emit(
                "decode.batch", trc.child(trace) or trc.mint(), trace,
                ts, elapsed, groups=groups, sessions=sessions,
            )
        if elapsed >= slow_op_threshold_s():
            log.warning(
                "slow decode batch",
                extra={
                    "elapsed_ms": round(elapsed * 1e3, 3),
                    "groups": groups,
                    "sessions": sessions,
                    "trace": trace.hex() if trace is not None else "",
                },
            )

    async def _flush_after_window(self, key: tuple) -> None:
        await asyncio.sleep(self.window_s)
        subs = self._pending.pop(key, [])
        if not subs:
            return
        combined: list[list[int]] = []
        for sub in subs:
            combined.extend(sub.deltas)
        try:
            ts = time.time()
            start = time.perf_counter()
            decoded = subs[0].codec.decode_many(combined, batch=self.batch)
            elapsed = time.perf_counter() - start
        except Exception as exc:  # scatter the failure to every waiter
            for sub in subs:
                if not sub.future.done():
                    sub.future.set_exception(exc)
            return
        self.stats.batches += 1
        self.stats.groups += len(combined)
        self.stats.max_sessions_per_batch = max(
            self.stats.max_sessions_per_batch, len(subs)
        )
        if len(subs) >= 2:
            self.stats.coalesced_batches += 1
        self.stats.decode_s += elapsed
        self._observe(ts, elapsed, groups=len(combined),
                      sessions=len(subs), trace=subs[0].trace)
        offset = 0
        for sub in subs:
            share = elapsed * len(sub.deltas) / len(combined)
            chunk = decoded[offset : offset + len(sub.deltas)]
            offset += len(sub.deltas)
            if not sub.future.done():
                sub.future.set_result((chunk, share))
