"""Length-prefixed framing for the reconciliation service.

The in-process :class:`~repro.transport.channel.Channel` moves *payload*
bytes — exactly what the paper counts as "data transmitted".  To run the
same messages over a real byte stream the service wraps each payload in a
frame::

    | length (4 bytes, big-endian) | type (1 byte) | payload ... |

where ``length`` covers the type byte plus the payload.  Framing is
transport overhead the paper does not charge, so :class:`FramedChannel`
(a :class:`Channel` subclass) keeps the paper's payload accounting intact
and tallies header bytes separately in :attr:`FramedChannel.framing_bytes`.

Control messages that exist only in the service (session hello, parameter
announcement, union push, final ack) are small struct-packed dataclasses
defined here; the per-round :class:`~repro.core.messages.SketchMessage` /
:class:`~repro.core.messages.ReplyMessage` payloads reuse the bit-packed
wire format of :mod:`repro.core.messages` unchanged.
"""

from __future__ import annotations

import asyncio
import enum
import random
import struct
from dataclasses import dataclass

import numpy as np

from repro.core.params import PBSParams
from repro.errors import ReproError, SerializationError
from repro.transport.channel import Channel, Direction

#: Protocol version — bumped on any incompatible frame-format change.
#: v2: RETRY frame (admission control), set-version fields on
#: WELCOME/PARAMS/RESULT, and multi-pass sessions (a client may send a
#: fresh ESTIMATE after RESULT to re-sync on the same connection).
#: v3: optional trace-context trailer (trace id + span id) on HELLO for
#: cross-process span trees — purely additive, so v2 peers still
#: interoperate (see :data:`MIN_WIRE_VERSION`).
WIRE_VERSION = 3

#: Oldest peer version this build still serves.  v3 only *appends* an
#: optional trailer to HELLO, so v2 sessions run unchanged (they simply
#: carry no trace context); anything older predates the RETRY frame and
#: the multi-pass state machine and cannot be spoken safely.
MIN_WIRE_VERSION = 2

#: Bytes added to every payload by the frame header (length + type).
FRAME_HEADER_BYTES = 5

#: Upper bound on one frame's body; a peer announcing more is protocol abuse.
MAX_FRAME_BYTES = 1 << 26


class FrameType(enum.IntEnum):
    """Discriminator byte of one frame."""

    HELLO = 1        #: client -> server: session opening (set name, seed, ...)
    WELCOME = 2      #: server -> client: hello accepted
    ESTIMATE = 3     #: client -> server: Tug-of-War sketch (§6.2 handshake)
    PARAMS = 4       #: server -> client: d_hat + the negotiated PBSParams
    SKETCH = 5       #: client -> server: one round's SketchMessage
    REPLY = 6        #: server -> client: one round's ReplyMessage
    PUSH = 7         #: client -> server: A \\ B elements (bidirectional sync)
    RESULT = 8       #: server -> client: final ack (applied count, store size)
    RETRY = 9        #: server -> client: shed at admission; back off, retry
    ERROR = 15       #: either direction: fatal error, then close


#: Channel label per frame type — "estimator" keeps the handshake excludable
#: from communication figures exactly as the paper's accounting does (§6.2).
FRAME_LABELS: dict[FrameType, str] = {
    FrameType.HELLO: "control",
    FrameType.WELCOME: "control",
    FrameType.ESTIMATE: "estimator",
    FrameType.PARAMS: "estimator",
    FrameType.SKETCH: "sketch",
    FrameType.REPLY: "reply",
    FrameType.PUSH: "union-push",
    FrameType.RESULT: "control",
    FrameType.RETRY: "control",
    FrameType.ERROR: "control",
}

_HASH_FAMILIES = ("fourwise", "fast")


def _unpack_from(fmt: str, data: bytes, offset: int = 0) -> tuple:
    """struct.unpack_from that reports malformed payloads as protocol errors
    (a raw ``struct.error`` from peer-controlled bytes would escape the
    server's error handling and crash the connection task)."""
    try:
        return struct.unpack_from(fmt, data, offset)
    except struct.error as exc:
        raise SerializationError(f"malformed control payload: {exc}") from exc


def encode_frame(
    ftype: FrameType, payload: bytes, max_bytes: int = MAX_FRAME_BYTES
) -> bytes:
    """One wire frame: big-endian length, type byte, payload.

    ``max_bytes`` is the abuse cap for this frame's body — the client
    protocol default, or the larger internal-RPC bound
    (:data:`repro.cluster.proc.RPC_MAX_FRAME_BYTES`) for same-host
    worker traffic such as a recovered shard's state dump.
    """
    body_len = 1 + len(payload)
    if body_len > max_bytes:
        raise SerializationError(f"frame body of {body_len} bytes exceeds cap")
    return struct.pack("!IB", body_len, int(ftype)) + payload


def decode_frames(buffer: bytes) -> list[tuple[FrameType, bytes]]:
    """Split a byte string of back-to-back frames (offline/testing helper)."""
    out: list[tuple[FrameType, bytes]] = []
    view = memoryview(buffer)
    while len(view):
        if len(view) < FRAME_HEADER_BYTES:
            raise SerializationError("truncated frame header")
        (body_len,) = struct.unpack_from("!I", view)
        if body_len < 1 or body_len > MAX_FRAME_BYTES:
            raise SerializationError(f"bad frame length {body_len}")
        if len(view) < 4 + body_len:
            raise SerializationError("truncated frame body")
        out.append(
            (FrameType(view[4]), bytes(view[5 : 4 + body_len]))
        )
        view = view[4 + body_len :]
    return out


async def read_frame(
    reader: asyncio.StreamReader,
    frame_enum: type = None,
    max_bytes: int = MAX_FRAME_BYTES,
) -> tuple[FrameType, bytes]:
    """Read exactly one frame from a stream.

    Raises :class:`asyncio.IncompleteReadError` on EOF mid-frame and
    :class:`SerializationError` on a malformed header.

    ``frame_enum`` selects which discriminator enum the type byte is
    decoded against — :class:`FrameType` (the client protocol) by
    default.  The subprocess shard executor
    (:mod:`repro.cluster.proc`) reuses the identical framing for its
    internal RPC with its own type enum and a larger ``max_bytes``.
    """
    frame_enum = frame_enum if frame_enum is not None else FrameType
    header = await reader.readexactly(4)
    (body_len,) = struct.unpack("!I", header)
    if body_len < 1 or body_len > max_bytes:
        raise SerializationError(f"bad frame length {body_len}")
    body = await reader.readexactly(body_len)
    try:
        ftype = frame_enum(body[0])
    except ValueError as exc:
        raise SerializationError(f"unknown frame type {body[0]}") from exc
    return ftype, body[1:]


# -- control messages ----------------------------------------------------------

@dataclass
class Hello:
    """Client session opening: which set, and the shared randomness.

    |A| is deliberately *not* here: every reconciliation pass declares
    its own size in its ESTIMATE payload (it may drift between passes of
    a ``--repeat`` connection), so HELLO carries only per-connection
    facts.
    """

    set_name: str
    seed: int                 #: session seed both sides derive salts from
    n_sketches: int = 128     #: Tug-of-War sketch count l
    family: str = "fast"      #: ToW hash family ("fourwise" | "fast")
    log_u: int = 32
    bidirectional: bool = True
    version: int = WIRE_VERSION
    #: v3 trace context (trace id, span id), or ``(0, 0)`` when the
    #: client is not tracing.  Serialized as a trailer *after* the set
    #: name so a v2 frame is byte-identical to what a v2 build emits.
    trace_id: int = 0
    span_id: int = 0

    def serialize(self) -> bytes:
        if not 0 <= self.seed < (1 << 64):
            raise SerializationError(f"seed {self.seed} not a u64")
        if self.family not in _HASH_FAMILIES:
            raise SerializationError(f"unknown hash family {self.family!r}")
        name = self.set_name.encode("utf-8")
        if len(name) > 0xFFFF:
            raise SerializationError("set name too long")
        payload = (
            struct.pack(
                "!BQHBB?",
                self.version,
                self.seed,
                self.n_sketches,
                _HASH_FAMILIES.index(self.family),
                self.log_u,
                self.bidirectional,
            )
            + struct.pack("!H", len(name))
            + name
        )
        if self.version >= 3:
            payload += struct.pack("!QQ", self.trace_id, self.span_id)
        return payload

    @classmethod
    def deserialize(cls, data: bytes) -> "Hello":
        fixed = struct.calcsize("!BQHBB?")
        version, seed, n_sketches, family_ix, log_u, bidi = (
            _unpack_from("!BQHBB?", data)
        )
        if not MIN_WIRE_VERSION <= version <= WIRE_VERSION:
            raise SerializationError(
                f"peer speaks wire version {version}, this build serves "
                f"{MIN_WIRE_VERSION}..{WIRE_VERSION}"
            )
        if family_ix >= len(_HASH_FAMILIES):
            raise SerializationError(f"unknown hash family index {family_ix}")
        (name_len,) = _unpack_from("!H", data, fixed)
        raw_name = data[fixed + 2 : fixed + 2 + name_len]
        if len(raw_name) != name_len:
            raise SerializationError("truncated set name")
        try:
            name = raw_name.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SerializationError(f"set name not UTF-8: {exc}") from exc
        trace_id = span_id = 0
        if version >= 3:
            trace_id, span_id = _unpack_from(
                "!QQ", data, fixed + 2 + name_len
            )
        return cls(
            set_name=name,
            seed=seed,
            n_sketches=n_sketches,
            family=_HASH_FAMILIES[family_ix],
            log_u=log_u,
            bidirectional=bidi,
            version=version,
            trace_id=trace_id,
            span_id=span_id,
        )


@dataclass
class Welcome:
    """Server's hello ack: the snapshot the session reconciles against."""

    set_size: int         #: |B| at snapshot time
    created: bool         #: True when the named set did not exist before
    set_version: int = 0  #: store version of the snapshot (race detection)
    version: int = WIRE_VERSION

    def serialize(self) -> bytes:
        return struct.pack(
            "!BI?Q", self.version, self.set_size, self.created,
            self.set_version,
        )

    @classmethod
    def deserialize(cls, data: bytes) -> "Welcome":
        version, set_size, created, set_version = _unpack_from("!BI?Q", data)
        return cls(set_size=set_size, created=created,
                   set_version=set_version, version=version)


@dataclass
class ParamsAnnounce:
    """Server -> client: the estimate and the resulting parameter set.

    Announcing (n, t, g, ...) explicitly — rather than having the client
    re-run the optimizer on d_hat — makes the server authoritative and
    keeps a version-skewed client from deriving mismatched parameters.

    On multi-pass connections (``repro sync --repeat``) the server takes
    a *fresh* snapshot per pass, so PARAMS also carries the snapshot's
    size and store version — the per-pass equivalent of WELCOME.
    """

    d_hat: float
    n: int
    t: int
    g: int
    delta: int
    r: int
    p0: float
    log_u: int = 32
    set_size: int = 0     #: |B| of this pass's snapshot
    set_version: int = 0  #: store version of this pass's snapshot

    _FMT = "!dIIIHHdBIQ"

    def serialize(self) -> bytes:
        return struct.pack(
            self._FMT, self.d_hat, self.n, self.t, self.g,
            self.delta, self.r, self.p0, self.log_u,
            self.set_size, self.set_version,
        )

    @classmethod
    def deserialize(cls, data: bytes) -> "ParamsAnnounce":
        (d_hat, n, t, g, delta, r, p0, log_u, set_size, set_version) = (
            _unpack_from(cls._FMT, data)
        )
        return cls(d_hat=d_hat, n=n, t=t, g=g, delta=delta, r=r, p0=p0,
                   log_u=log_u, set_size=set_size, set_version=set_version)

    @classmethod
    def from_params(
        cls,
        params: PBSParams,
        d_hat: float,
        set_size: int = 0,
        set_version: int = 0,
    ) -> "ParamsAnnounce":
        return cls(
            d_hat=d_hat, n=params.n, t=params.t, g=params.g,
            delta=params.delta, r=params.r, p0=params.p0, log_u=params.log_u,
            set_size=set_size, set_version=set_version,
        )

    def to_params(self) -> PBSParams:
        return PBSParams(
            n=self.n, t=self.t, g=self.g, delta=self.delta,
            r=self.r, p0=self.p0, log_u=self.log_u,
        )


@dataclass
class Push:
    """Client -> server: the elements of A \\ B, completing the union."""

    success: bool             #: did the client's checksums all verify?
    elements: np.ndarray      #: uint64 elements the server is missing

    def serialize(self) -> bytes:
        # big-endian on the wire, like every other field in the format
        arr = np.ascontiguousarray(self.elements, dtype=">u8")
        return struct.pack("!?I", self.success, len(arr)) + arr.tobytes()

    @classmethod
    def deserialize(cls, data: bytes) -> "Push":
        success, count = _unpack_from("!?I", data)
        if len(data) < 5 + 8 * count:
            raise SerializationError(
                f"push announces {count} elements, payload has "
                f"{(len(data) - 5) // 8}"
            )
        elements = np.frombuffer(data, dtype=">u8", count=count, offset=5)
        return cls(
            success=success, elements=elements.astype(np.uint64)
        )


@dataclass
class Result:
    """Server -> client: final ack after the push was applied.

    ``store_version`` is the set's mutation counter after this session's
    diff landed; comparing it against the snapshot version announced in
    WELCOME/PARAMS tells the client whether concurrent sessions raced it
    (version advanced by more than its own apply) and a second pass is
    needed for full convergence.
    """

    success: bool
    applied: int          #: elements newly added to the server's set
    store_size: int       #: live set size after applying
    store_version: int = 0  #: set version after this session's apply

    def serialize(self) -> bytes:
        return struct.pack(
            "!?IIQ", self.success, self.applied, self.store_size,
            self.store_version,
        )

    @classmethod
    def deserialize(cls, data: bytes) -> "Result":
        success, applied, store_size, store_version = _unpack_from(
            "!?IIQ", data
        )
        return cls(success=success, applied=applied, store_size=store_size,
                   store_version=store_version)


@dataclass
class Retry:
    """Server -> client: admission control shed this session; back off.

    Sent instead of WELCOME when the target shard is at its session or
    decode-queue cap, then the connection closes.  ``retry_after_s`` is
    the server's suggested minimum delay; clients add jitter on top
    (:func:`repro.cluster.admission.retry_delay`).
    """

    retry_after_s: float
    message: str = ""

    def serialize(self) -> bytes:
        return struct.pack("!d", self.retry_after_s) + self.message.encode(
            "utf-8"
        )

    @classmethod
    def deserialize(cls, data: bytes) -> "Retry":
        (retry_after_s,) = _unpack_from("!d", data)
        return cls(
            retry_after_s=retry_after_s,
            message=data[8:].decode("utf-8", errors="replace"),
        )


class ServerBusy(ReproError):
    """Raised client-side when the server sheds the session with RETRY."""

    def __init__(self, retry_after_s: float, message: str = "") -> None:
        super().__init__(
            message or f"server busy, retry after {retry_after_s:.3f}s"
        )
        self.retry_after_s = retry_after_s


#: Ceiling for client backoff growth (seconds).
MAX_BACKOFF_S = 2.0


def retry_delay(base_s: float, attempt: int, rng=None) -> float:
    """Jittered exponential backoff for honoring a RETRY frame.

    ``base_s`` is the server's suggested delay (or a client default),
    doubled per attempt and scattered uniformly in [0.5x, 1.5x] so a
    burst of shed clients does not return as the same thundering herd
    that was just shed.
    """
    # repro: ignore[unseeded-rng] -- production backoff jitter is
    # deliberately nondeterministic; deterministic callers (tests, the
    # loadgen driver) inject their own seeded rng
    rng = rng if rng is not None else random
    delay = min(MAX_BACKOFF_S, max(0.001, base_s) * (2 ** attempt))
    return delay * (0.5 + rng.random())


async def backoff_or_raise(
    busy: ServerBusy, attempt: int, retries: int, rng=None
) -> None:
    """The one RETRY-honoring policy: sleep :func:`retry_delay` seeded by
    the server's hint, or re-raise ``busy`` once the budget is spent.

    Every shed-and-retry loop (one-shot client, CLI repeat loop, bench
    fleets) routes through here so the backoff policy cannot silently
    diverge between them.
    """
    if attempt >= retries:
        raise busy
    await asyncio.sleep(retry_delay(busy.retry_after_s, attempt, rng))


@dataclass
class Error:
    """A fatal error; the sender closes the connection after this frame."""

    message: str

    def serialize(self) -> bytes:
        return self.message.encode("utf-8")

    @classmethod
    def deserialize(cls, data: bytes) -> "Error":
        return cls(message=data.decode("utf-8", errors="replace"))


#: Control-message class per frame type (SKETCH/REPLY payloads are the
#: bit-packed core messages and are parameterized by (t, m, log_u)).
CONTROL_MESSAGES: dict[FrameType, type] = {
    FrameType.HELLO: Hello,
    FrameType.WELCOME: Welcome,
    FrameType.PARAMS: ParamsAnnounce,
    FrameType.PUSH: Push,
    FrameType.RESULT: Result,
    FrameType.RETRY: Retry,
    FrameType.ERROR: Error,
}


# -- accounting ---------------------------------------------------------------

@dataclass
class FramedChannel(Channel):
    """A :class:`Channel` that also tallies frame-header overhead.

    ``send`` (payload accounting) is inherited unchanged, so every
    consumer of the paper's byte accounting — benchmarks, results,
    ``bytes_by_label`` — works on service runs too; the service's extra
    header bytes accumulate in :attr:`framing_bytes` and never pollute
    the payload figures.
    """

    framing_bytes: int = 0
    frames: int = 0

    def record_frame(
        self,
        direction: Direction,
        payload: bytes,
        round_no: int = 0,
        label: str = "",
    ) -> None:
        """Account one frame: payload via :meth:`send`, header separately."""
        self.send(direction, payload, round_no=round_no, label=label)
        self.framing_bytes += FRAME_HEADER_BYTES
        self.frames += 1

    @property
    def wire_bytes(self) -> int:
        """Everything that actually crossed the socket."""
        return self.total_bytes + self.framing_bytes


class FramedStream:
    """One peer's framed view of an asyncio stream, with accounting.

    ``role`` is ``"alice"`` (client) or ``"bob"`` (server) and fixes which
    :class:`Direction` outgoing frames are recorded under.
    """

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        channel: FramedChannel | None = None,
        role: str = "alice",
    ) -> None:
        if role not in ("alice", "bob"):
            raise SerializationError(f"role must be alice|bob, got {role!r}")
        self.reader = reader
        self.writer = writer
        self.channel = channel if channel is not None else FramedChannel()
        self._out = (
            Direction.ALICE_TO_BOB if role == "alice" else Direction.BOB_TO_ALICE
        )
        self._in = (
            Direction.BOB_TO_ALICE if role == "alice" else Direction.ALICE_TO_BOB
        )

    async def send(
        self, ftype: FrameType, payload: bytes, round_no: int = 0
    ) -> None:
        self.channel.record_frame(
            self._out, payload, round_no=round_no, label=FRAME_LABELS[ftype]
        )
        self.writer.write(encode_frame(ftype, payload))
        await self.writer.drain()

    async def recv(
        self, expect: FrameType | None = None, round_no: int = 0
    ) -> tuple[FrameType, bytes]:
        ftype, payload = await read_frame(self.reader)
        self.channel.record_frame(
            self._in, payload, round_no=round_no, label=FRAME_LABELS[ftype]
        )
        if ftype is FrameType.ERROR and expect is not FrameType.ERROR:
            raise SerializationError(
                f"peer error: {Error.deserialize(payload).message}"
            )
        if expect is not None and ftype is not expect:
            raise SerializationError(
                f"expected {expect.name} frame, got {ftype.name}"
            )
        return ftype, payload

    async def close(self) -> None:
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError, RuntimeError):
            # peer already gone, or the event loop itself is tearing down
            # (idle multi-pass connections live until EOF, so their tasks
            # can be reaped at loop shutdown)
            pass
