"""The asyncio reconciliation server.

One :class:`ReconciliationServer` multiplexes many concurrent PBS sessions:
each accepted connection gets its own :class:`~repro.core.sessions.BobSession`
against a snapshot of the requested named set, while all sessions share the
:class:`~repro.service.scheduler.DecodeCoalescer` so BCH decode work arriving
close together is batched into single cross-session
:meth:`~repro.bch.codec.BCHCodec.decode_many` calls.

Per connection the server speaks the frame protocol of
:mod:`repro.service.wire`::

    client                                server
    HELLO(set, seed, ...)     ->
                              <-          WELCOME(|B|)
    ESTIMATE(ToW sketch)      ->
                              <-          PARAMS(d_hat, n, t, g, ...)
    SKETCH(round 1)           ->
                              <-          REPLY(round 1)
    ...                                   ...
    PUSH(A \\ B)              ->          (store.apply_diff)
                              <-          RESULT(applied, |B'|)
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.core.messages import SketchMessage
from repro.core.params import DEFAULT_DELTA, PBSParams
from repro.core.sessions import BobSession
from repro.errors import ReproError, SerializationError
from repro.estimators.tow import DEFAULT_GAMMA, ToWEstimator
from repro.service.metrics import ServiceMetrics, SessionMetrics
from repro.service.scheduler import DecodeCoalescer
from repro.service.store import SetStore, Snapshot
from repro.service.wire import (
    Error,
    FramedStream,
    FrameType,
    Hello,
    ParamsAnnounce,
    Push,
    Result,
    Welcome,
    _unpack_from,
)
from repro.utils.seeds import derive_seed

#: Hard cap on rounds per session — a runaway client cannot pin a session.
MAX_ROUNDS = 64

#: Hard cap on the client-requested Tug-of-War sketch count: the server
#: runs O(n_sketches * |B|) hashing per handshake, so this must not be an
#: unbounded client-controlled knob (the paper's l is 128).
MAX_ESTIMATOR_SKETCHES = 1024


class ReconciliationServer:
    """Serve reconciliation sessions against a shared :class:`SetStore`.

    >>> # inside a coroutine:
    >>> # async with ReconciliationServer(store) as server:
    >>> #     result = await sync_with_server("127.0.0.1", server.port, my_set)
    """

    def __init__(
        self,
        store: SetStore | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        coalescer: DecodeCoalescer | None = None,
        gamma: float = DEFAULT_GAMMA,
        delta: int = DEFAULT_DELTA,
        r: int = 3,
        p0: float = 0.99,
        batch: bool = True,
        create_missing: bool = True,
    ) -> None:
        self.store = store if store is not None else SetStore()
        self.host = host
        self.port = port
        self.coalescer = (
            coalescer if coalescer is not None else DecodeCoalescer()
        )
        self.metrics = ServiceMetrics(self.coalescer.stats)
        self.gamma = gamma
        self.delta = delta
        self.r = r
        self.p0 = p0
        self.batch = batch
        self.create_missing = create_missing
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle -------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting; resolves :attr:`port` when it was 0."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "ReconciliationServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- per-connection protocol ----------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        session = self.metrics.open_session(
            peer=f"{peername[0]}:{peername[1]}" if peername else ""
        )
        stream = FramedStream(reader, writer, session.channel, role="bob")
        try:
            await self._run_session(stream, session)
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            ReproError,
        ) as exc:
            session.failed = True
            session.error = f"{type(exc).__name__}: {exc}"
            try:
                await stream.send(
                    FrameType.ERROR, Error(str(exc)).serialize()
                )
            except (ConnectionError, OSError):
                pass
        finally:
            self.metrics.close_session(session)
            await stream.close()

    async def _run_session(
        self, stream: FramedStream, session: SessionMetrics
    ) -> None:
        # 1. HELLO / WELCOME: pick the set, freeze a snapshot.
        try:
            _, payload = await stream.recv(expect=FrameType.HELLO)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial and session.channel.frames == 0:
                session.probe = True   # connect-then-close: a port probe
                return
            raise
        hello = Hello.deserialize(payload)
        session.set_name = hello.set_name
        existed = hello.set_name in self.store
        snapshot: Snapshot = self.store.snapshot(
            hello.set_name, create_missing=self.create_missing
        )
        await stream.send(
            FrameType.WELCOME,
            Welcome(set_size=len(snapshot), created=not existed).serialize(),
        )

        # 2. ESTIMATE / PARAMS: the §6.2 Tug-of-War handshake, server side.
        _, payload = await stream.recv(expect=FrameType.ESTIMATE)
        params, d_hat = self._negotiate_params(hello, snapshot, payload)
        session.d_hat = d_hat
        await stream.send(
            FrameType.PARAMS,
            ParamsAnnounce.from_params(params, d_hat).serialize(),
        )

        # 3. Reconciliation rounds, decode routed through the coalescer.
        bob = BobSession(
            snapshot.values,
            params,
            derive_seed(hello.seed, "session"),
            batch=self.batch,
        )
        sketches_served = 0
        try:
            while True:
                ftype, payload = await stream.recv(
                    round_no=session.rounds + 1
                )
                if ftype is FrameType.SKETCH:
                    # count frames served, not the client-announced round
                    # number — a client replaying round 1 forever must
                    # still trip the cap
                    sketches_served += 1
                    if sketches_served > MAX_ROUNDS:
                        raise SerializationError(
                            f"session exceeded {MAX_ROUNDS} rounds"
                        )
                    message = SketchMessage.deserialize(
                        payload, params.t, params.m
                    )
                    work = bob.begin_reply(message)
                    decoded, decode_share = await self.coalescer.decode(
                        params.codec, work.deltas
                    )
                    reply = bob.finish_reply(work, decoded, decode_share)
                    session.rounds = message.round_no
                    await stream.send(
                        FrameType.REPLY,
                        reply.serialize(params.t, params.m, params.log_u),
                        round_no=message.round_no,
                    )
                elif ftype is FrameType.PUSH:
                    push = Push.deserialize(payload)
                    session.success = push.success
                    applied = 0
                    if hello.bidirectional and push.success:
                        elements = np.asarray(push.elements, dtype=np.uint64)
                        bad = (elements < 1) | (
                            elements >= np.uint64(1 << params.log_u)
                        )
                        if bad.any():
                            # applying these would poison the set for every
                            # future session (_as_element_array rejects them)
                            raise SerializationError(
                                f"push contains {int(bad.sum())} elements "
                                f"outside [1, 2^{params.log_u})"
                            )
                        applied = self.store.apply_diff(
                            hello.set_name, add=elements
                        )
                    session.applied = applied
                    await stream.send(
                        FrameType.RESULT,
                        Result(
                            success=push.success,
                            applied=applied,
                            store_size=self.store.size(hello.set_name),
                        ).serialize(),
                        round_no=session.rounds + 1,
                    )
                    break
                else:
                    raise SerializationError(
                        f"unexpected {ftype.name} frame mid-session"
                    )
        finally:
            session.encode_s = bob.encode_s
            session.decode_s = bob.decode_s

    def _negotiate_params(
        self, hello: Hello, snapshot: Snapshot, estimate_payload: bytes
    ) -> tuple[PBSParams, float]:
        """Estimate d from the client's ToW sketch, optimize (n, t, g)."""
        if not 1 <= hello.n_sketches <= MAX_ESTIMATOR_SKETCHES:
            raise SerializationError(
                f"n_sketches={hello.n_sketches} outside "
                f"[1, {MAX_ESTIMATOR_SKETCHES}]"
            )
        estimator = ToWEstimator(
            n_sketches=hello.n_sketches,
            seed=derive_seed(hello.seed, "estimator"),
            family=hello.family,
        )
        (size_a,) = _unpack_from("<I", estimate_payload)
        if size_a != hello.set_size:
            raise SerializationError(
                f"estimate sized for |A|={size_a}, hello said {hello.set_size}"
            )
        sketch_a = estimator.deserialize(estimate_payload[4:], size_a)
        arr_b = np.fromiter(snapshot.values, dtype=np.uint64)
        sketch_b = estimator.sketch(arr_b)
        d_hat = estimator.estimate(sketch_a, sketch_b)
        design_d = ToWEstimator.conservative(max(1, round(d_hat)), self.gamma)
        params = PBSParams.from_d(
            design_d,
            delta=self.delta,
            r=self.r,
            p0=self.p0,
            log_u=hello.log_u,
        )
        return params, d_hat
