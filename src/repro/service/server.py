"""The asyncio reconciliation server.

One :class:`ReconciliationServer` multiplexes many concurrent PBS sessions:
each accepted connection gets its own :class:`~repro.core.sessions.BobSession`
against a snapshot of the requested named set, while all sessions share the
:class:`~repro.service.scheduler.DecodeCoalescer` so BCH decode work arriving
close together is batched into single cross-session
:meth:`~repro.bch.codec.BCHCodec.decode_many` calls.

Per connection the server speaks the frame protocol of
:mod:`repro.service.wire`::

    client                                server
    HELLO(set, seed, ...)     ->
                              <-          WELCOME(|B|)   [or RETRY: shed]
    ESTIMATE(ToW sketch)      ->
                              <-          PARAMS(d_hat, n, t, g, ...)
    SKETCH(round 1)           ->
                              <-          REPLY(round 1)
    ...                                   ...
    PUSH(A \\ B)              ->          (store.apply_diff)
                              <-          RESULT(applied, |B'|, version)
    [ESTIMATE ...]            ->          (next pass: fresh snapshot)

After RESULT the client may either close (single sync) or send a fresh
ESTIMATE to reconcile again on the same connection — ``repro sync
--repeat`` uses this to re-sync periodically without paying a new
handshake, reusing the per-connection Tug-of-War estimator on both ends.

The store may be a plain :class:`SetStore` or a sharded, journaled
:class:`~repro.cluster.router.ClusterStore` (whose mutating methods are
coroutines — the server awaits them, so a RESULT frame implies the diff
is journaled).  With an
:class:`~repro.cluster.admission.AdmissionController` attached, sessions
beyond a shard's cap are shed at HELLO time with a RETRY frame instead
of being accepted into an unbounded backlog.
"""

from __future__ import annotations

import asyncio
import inspect

import numpy as np

from repro.core.messages import SketchMessage
from repro.core.params import DEFAULT_DELTA, PBSParams
from repro.core.sessions import BobSession
from repro.errors import ReproError, SerializationError
from repro.estimators.tow import DEFAULT_GAMMA, ToWEstimator
from repro.obs.logs import get_logger
from repro.obs.trace import TraceContext, tracer
from repro.service.metrics import ServiceMetrics, SessionMetrics
from repro.service.scheduler import DecodeCoalescer
from repro.service.store import SetStore, Snapshot
from repro.service.wire import (
    Error,
    FramedStream,
    FrameType,
    Hello,
    ParamsAnnounce,
    Push,
    Result,
    Retry,
    Welcome,
    _unpack_from,
)
from repro.utils.seeds import derive_seed

log = get_logger("server")

#: Hard cap on rounds per reconciliation pass — a runaway client cannot
#: pin a session.
MAX_ROUNDS = 64

#: Hard cap on reconciliation passes per connection (``sync --repeat``).
MAX_PASSES = 1 << 16

#: Hard cap on the client-requested Tug-of-War sketch count: the server
#: runs O(n_sketches * |B|) hashing per handshake, so this must not be an
#: unbounded client-controlled knob (the paper's l is 128).
MAX_ESTIMATOR_SKETCHES = 1024


class ReconciliationServer:
    """Serve reconciliation sessions against a shared :class:`SetStore`.

    >>> # inside a coroutine:
    >>> # async with ReconciliationServer(store) as server:
    >>> #     result = await sync_with_server("127.0.0.1", server.port, my_set)
    """

    def __init__(
        self,
        store: SetStore | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
        coalescer: DecodeCoalescer | None = None,
        gamma: float = DEFAULT_GAMMA,
        delta: int = DEFAULT_DELTA,
        r: int = 3,
        p0: float = 0.99,
        batch: bool = True,
        create_missing: bool = True,
        admission=None,
    ) -> None:
        #: a SetStore, or any object with the same surface whose
        #: ``snapshot``/``apply_diff``/``create`` may be coroutines
        #: (ClusterStore) — the server awaits whatever they return
        self.store = store if store is not None else SetStore()
        #: optional :class:`~repro.cluster.admission.AdmissionController`
        self.admission = admission
        self.host = host
        self.port = port
        self.coalescer = (
            coalescer if coalescer is not None else DecodeCoalescer()
        )
        self.metrics = ServiceMetrics(self.coalescer.stats)
        self.gamma = gamma
        self.delta = delta
        self.r = r
        self.p0 = p0
        self.batch = batch
        self.create_missing = create_missing
        self._server: asyncio.AbstractServer | None = None

    # -- lifecycle -------------------------------------------------------------
    async def start(self) -> None:
        """Bind and start accepting; resolves :attr:`port` when it was 0."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def __aenter__(self) -> "ReconciliationServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    async def resize_store(self, shards: int) -> dict:
        """Live-resize a cluster store behind this server.

        Delegates to :meth:`~repro.cluster.router.ClusterStore.resize`
        (drain, journaled move plan, ring swap) and hands it the
        admission controller so per-shard caps re-shape atomically under
        the same drain.  Sessions in flight keep working — their shard
        ids only label metrics and admission slots, both of which
        tolerate ids from the old topology.  Recorded in the metrics
        snapshot (``resizes``).
        """
        resize = getattr(self.store, "resize", None)
        if resize is None:
            raise ReproError(
                "store does not support resize() — serve with --shards/"
                "--data-dir to get a ClusterStore"
            )
        summary = await resize(shards, admission=self.admission)
        self.metrics.record_resize(summary)
        return summary

    # -- per-connection protocol ----------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        peername = writer.get_extra_info("peername")
        session = self.metrics.open_session(
            peer=f"{peername[0]}:{peername[1]}" if peername else ""
        )
        stream = FramedStream(reader, writer, session.channel, role="bob")
        try:
            await self._run_session(stream, session)
        except (
            asyncio.IncompleteReadError,
            ConnectionError,
            ReproError,
        ) as exc:
            session.failed = True
            session.error = f"{type(exc).__name__}: {exc}"
            try:
                await stream.send(
                    FrameType.ERROR, Error(str(exc)).serialize()
                )
            except (ConnectionError, OSError):
                pass
        finally:
            self.metrics.close_session(session)
            await stream.close()

    # -- store access (SetStore methods are plain, ClusterStore's await) -------
    @staticmethod
    async def _maybe_await(value):
        return await value if inspect.isawaitable(value) else value

    def _shard_of(self, name: str) -> int:
        shard_for = getattr(self.store, "shard_for", None)
        return shard_for(name) if shard_for is not None else 0

    def _shard_ready(self, shard: int) -> bool:
        """False while the shard's worker process is dead/restarting
        (subprocess executor); new sessions are shed with RETRY instead
        of being accepted against a worker that cannot answer."""
        available = getattr(self.store, "shard_available", None)
        return available is None or available(shard)

    def _unavailable_retry_s(self) -> float:
        return float(
            getattr(self.store, "unavailable_retry_after_s", 0.25)
        )

    async def _send_retry(
        self, stream: FramedStream, shard: int, retry_after: float,
        reason: str = "at capacity",
    ) -> None:
        await stream.send(
            FrameType.RETRY,
            Retry(
                retry_after_s=retry_after,
                message=f"shard {shard} {reason}",
            ).serialize(),
        )

    async def _decode(self, shard: int, codec, deltas, trace=None):
        """Decode one round's deltas — in-process (coalesced across all
        sessions) by default, or on the owning shard's worker process
        when the store runs the subprocess executor (each worker then
        coalesces its own shard's sessions).  Admission decode-queue
        caps apply identically in both paths.  ``trace`` (the pass's
        :class:`TraceContext`, if any) parents the decode-batch span —
        locally for the coalescer, across the RPC for a worker."""
        remote = getattr(self.store, "decode_remote", None)
        decode = (
            (lambda: remote(shard, codec, deltas, trace=trace))
            if remote is not None
            else (lambda: self.coalescer.decode(codec, deltas, trace=trace))
        )
        if self.admission is None:
            return await decode()
        async with self.admission.decode_slot(shard):
            return await decode()

    async def _run_session(
        self, stream: FramedStream, session: SessionMetrics
    ) -> None:
        # 1. HELLO: pick the set, admit (or shed), freeze a snapshot.
        try:
            _, payload = await stream.recv(expect=FrameType.HELLO)
        except asyncio.IncompleteReadError as exc:
            if not exc.partial and session.channel.frames == 0:
                session.probe = True   # connect-then-close: a port probe
                return
            raise
        hello = Hello.deserialize(payload)
        session.set_name = hello.set_name
        if not 1 <= hello.n_sketches <= MAX_ESTIMATOR_SKETCHES:
            raise SerializationError(
                f"n_sketches={hello.n_sketches} outside "
                f"[1, {MAX_ESTIMATOR_SKETCHES}]"
            )
        shard = self._shard_of(hello.set_name)
        session.shard = shard
        # join the client's trace when the HELLO carried one (wire v3);
        # a v2 peer's session still gets a server-rooted span tree
        session.trace = (
            TraceContext(hello.trace_id, hello.span_id)
            if hello.trace_id
            else None
        )
        with tracer().span(
            "server.session", session.trace,
            set=hello.set_name, shard=shard,
        ) as session_ctx:
            await self._session_body(
                stream, session, hello, shard, session_ctx
            )

    async def _session_body(
        self,
        stream: FramedStream,
        session: SessionMetrics,
        hello: Hello,
        shard: int,
        session_ctx,
    ) -> None:
        if not self._shard_ready(shard):
            # the shard's worker process is down (crash + restart in
            # progress): shed before consuming an admission slot
            session.shed = True
            await self._send_retry(
                stream, shard, self._unavailable_retry_s(),
                reason="worker restarting",
            )
            return
        if self.admission is not None:
            retry_after = self.admission.try_admit(shard)
            if retry_after is not None:
                session.shed = True
                await self._send_retry(stream, shard, retry_after)
                return
        # the slot is released while a multi-pass connection idles between
        # passes (see _admitted_session), so track whether we hold it —
        # [held, incarnation]: the incarnation token pairs the eventual
        # release with this admission even if resizes reshape the shard
        # ids in between
        holding = [
            self.admission is not None,
            self.admission.incarnation(shard) if self.admission else 0,
        ]
        try:
            await self._admitted_session(stream, session, hello, shard,
                                         holding, session_ctx)
        finally:
            if holding[0] and self.admission is not None:
                self.admission.release(shard, holding[1])

    async def _admitted_session(
        self,
        stream: FramedStream,
        session: SessionMetrics,
        hello: Hello,
        shard: int,
        holding: list,
        session_ctx=None,
    ) -> None:
        existed = hello.set_name in self.store
        snapshot: Snapshot = await self._maybe_await(
            self.store.snapshot(
                hello.set_name, create_missing=self.create_missing
            )
        )
        await stream.send(
            FrameType.WELCOME,
            Welcome(
                set_size=len(snapshot),
                created=not existed,
                set_version=snapshot.version,
            ).serialize(),
        )
        # One estimator per connection: its hash salts derive from the
        # HELLO seed, so repeat passes reuse it on both ends (§6.2).
        estimator = ToWEstimator(
            n_sketches=hello.n_sketches,
            seed=derive_seed(hello.seed, "estimator"),
            family=hello.family,
        )
        # Bob-side ToW sketch cache across passes: hashing is O(l * |B|),
        # which an idle periodic re-sync must not pay when the snapshot
        # did not move.  Keyed on (version, size): version alone could
        # collide if the set were replaced mid-connection via create().
        sketch_b_cache: tuple[tuple[int, int], object] | None = None

        # 2. Reconciliation passes: ESTIMATE/PARAMS, rounds, PUSH/RESULT —
        # repeated for as long as the client opens a new pass.
        for pass_no in range(1, MAX_PASSES + 1):
            if pass_no > 1:
                # an idle connection must not pin a capped shard: give the
                # admission slot back while waiting for the next pass and
                # re-admit (or shed with RETRY) when one actually opens
                if self.admission is not None and holding[0]:
                    self.admission.release(shard, holding[1])
                    holding[0] = False
                try:
                    _, payload = await stream.recv(expect=FrameType.ESTIMATE)
                except asyncio.IncompleteReadError as exc:
                    if not exc.partial:
                        return   # clean end-of-connection between passes
                    raise
                if not self._shard_ready(shard):
                    await self._send_retry(
                        stream, shard, self._unavailable_retry_s(),
                        reason="worker restarting",
                    )
                    return
                if self.admission is not None:
                    retry_after = self.admission.try_admit(shard)
                    if retry_after is not None:
                        # not session.shed: passes already completed on
                        # this connection keep counting as completed work
                        # (admission stats still record the shed event)
                        await self._send_retry(stream, shard, retry_after)
                        return
                    holding[0] = True
                    holding[1] = self.admission.incarnation(shard)
                snapshot = await self._maybe_await(
                    self.store.snapshot(
                        hello.set_name, create_missing=self.create_missing
                    )
                )
            else:
                _, payload = await stream.recv(expect=FrameType.ESTIMATE)
            trc = tracer()
            with trc.span(
                "server.pass", session_ctx, pass_no=pass_no
            ) as pass_ctx:
                cache_key = (snapshot.version, len(snapshot))
                with trc.span("server.estimate", pass_ctx):
                    if (sketch_b_cache is not None
                            and sketch_b_cache[0] == cache_key):
                        sketch_b = sketch_b_cache[1]
                    else:
                        sketch_b = estimator.sketch(
                            np.fromiter(snapshot.values, dtype=np.uint64)
                        )
                        sketch_b_cache = (cache_key, sketch_b)
                    params, d_hat = self._negotiate_params(
                        estimator, hello, sketch_b, payload
                    )
                session.d_hat = d_hat
                await stream.send(
                    FrameType.PARAMS,
                    ParamsAnnounce.from_params(
                        params,
                        d_hat,
                        set_size=len(snapshot),
                        set_version=snapshot.version,
                    ).serialize(),
                )
                await self._run_pass(stream, session, hello, shard,
                                     snapshot, params, pass_no, pass_ctx)
            # counted only once the pass's RESULT is on the wire, so
            # syncs_total means "reconciliations finished"
            session.syncs = pass_no

    async def _run_pass(
        self,
        stream: FramedStream,
        session: SessionMetrics,
        hello: Hello,
        shard: int,
        snapshot: Snapshot,
        params: PBSParams,
        pass_no: int,
        pass_ctx=None,
    ) -> None:
        """One reconciliation: sketch/reply rounds, then the union push."""
        bob = BobSession(
            snapshot.values,
            params,
            derive_seed(hello.seed, "session", pass_no),
            batch=self.batch,
        )
        # session.rounds accumulates over passes; clients restart their
        # round numbering every pass
        rounds_before = session.rounds
        sketches_served = 0
        try:
            while True:
                ftype, payload = await stream.recv(
                    round_no=session.rounds + 1
                )
                if ftype is FrameType.SKETCH:
                    # count frames served, not the client-announced round
                    # number — a client replaying round 1 forever must
                    # still trip the cap
                    sketches_served += 1
                    if sketches_served > MAX_ROUNDS:
                        raise SerializationError(
                            f"session exceeded {MAX_ROUNDS} rounds"
                        )
                    message = SketchMessage.deserialize(
                        payload, params.t, params.m
                    )
                    work = bob.begin_reply(message)
                    decoded, decode_share = await self._decode(
                        shard, params.codec, work.deltas, trace=pass_ctx
                    )
                    reply = bob.finish_reply(work, decoded, decode_share)
                    session.rounds = rounds_before + message.round_no
                    await stream.send(
                        FrameType.REPLY,
                        reply.serialize(params.t, params.m, params.log_u),
                        round_no=message.round_no,
                    )
                elif ftype is FrameType.PUSH:
                    push = Push.deserialize(payload)
                    session.success = push.success
                    applied = 0
                    if hello.bidirectional and push.success:
                        elements = np.asarray(push.elements, dtype=np.uint64)
                        bad = (elements < 1) | (
                            elements >= np.uint64(1 << params.log_u)
                        )
                        if bad.any():
                            # applying these would poison the set for every
                            # future session (_as_element_array rejects them)
                            raise SerializationError(
                                f"push contains {int(bad.sum())} elements "
                                f"outside [1, 2^{params.log_u})"
                            )
                        applied = await self._maybe_await(
                            self.store.apply_diff(
                                hello.set_name, add=elements,
                                trace=pass_ctx,
                            )
                        )
                    session.applied += applied
                    session.store_version = self.store.version(hello.set_name)
                    await stream.send(
                        FrameType.RESULT,
                        Result(
                            success=push.success,
                            applied=applied,
                            store_size=self.store.size(hello.set_name),
                            store_version=session.store_version,
                        ).serialize(),
                        round_no=session.rounds + 1,
                    )
                    return
                else:
                    raise SerializationError(
                        f"unexpected {ftype.name} frame mid-session"
                    )
        finally:
            session.encode_s += bob.encode_s
            session.decode_s += bob.decode_s

    def _negotiate_params(
        self,
        estimator: ToWEstimator,
        hello: Hello,
        sketch_b,
        estimate_payload: bytes,
    ) -> tuple[PBSParams, float]:
        """Estimate d from the client's ToW sketch, optimize (n, t, g)."""
        (size_a,) = _unpack_from("<I", estimate_payload)
        # |A| may legitimately drift from hello.set_size on repeat passes;
        # the self-declared size in the ESTIMATE payload is authoritative.
        sketch_a = estimator.deserialize(estimate_payload[4:], size_a)
        d_hat = estimator.estimate(sketch_a, sketch_b)
        design_d = ToWEstimator.conservative(max(1, round(d_hat)), self.gamma)
        params = PBSParams.from_d(
            design_d,
            delta=self.delta,
            r=self.r,
            p0=self.p0,
            log_u=hello.log_u,
        )
        return params, d_hat
