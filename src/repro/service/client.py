"""The reconciliation client: drive AliceSessions over a socket.

:class:`ClientConnection` is the long-lived primitive: one connection,
one HELLO handshake, one Tug-of-War estimator — and as many
reconciliation *passes* as the caller wants (``repro sync --repeat``
drives it periodically; each pass sends a fresh ESTIMATE and runs a full
sketch/reply/push exchange against a fresh server-side snapshot).

:func:`sync_with_server` is the one-shot wrapper (many of them can run
concurrently against one server — that is the whole point of the
service) and honors the server's admission control: when the session is
shed with a RETRY frame it backs off with jitter and tries again, up to
``retries`` times, before letting :class:`ServerBusy` escape.
:func:`sync_once` is the blocking convenience wrapper.

Each pass returns a
:class:`~repro.transport.runner.ReconciliationResult` carrying the
client-side view: ``encode_s``/``decode_s`` are Alice's (the server
aggregates Bob's in its own metrics), the channel is a fresh
:class:`~repro.service.wire.FramedChannel` per pass so payload
accounting matches the in-process protocol while framing overhead is
reported separately.  ``extra`` carries the server-side convergence
signals: ``snapshot_version`` (the store version the pass reconciled
against) and ``store_version`` (after its push landed) — equal versions
across a quiet re-sync mean the set has converged.
"""

from __future__ import annotations

import asyncio
import struct
import time

import numpy as np

from repro.core.messages import ReplyMessage
from repro.core.sessions import AliceSession, _as_element_array
from repro.errors import SerializationError
from repro.estimators.tow import ToWEstimator
from repro.obs.metrics import PASS_DURATION, REGISTRY
from repro.obs.trace import TraceContext, tracer
from repro.service.wire import (
    FramedChannel,
    FramedStream,
    FrameType,
    Hello,
    ParamsAnnounce,
    Push,
    Result,
    Retry,
    ServerBusy,
    Welcome,
    backoff_or_raise,
)
from repro.transport.runner import ReconciliationResult
from repro.utils.seeds import derive_seed

#: Safety cap for "run as many rounds as needed" mode, as in the in-process
#: driver (Appendix J.1).
_UNLIMITED_ROUNDS = 64

_SEED_MASK = (1 << 64) - 1


class ClientConnection:
    """One persistent connection supporting repeated reconciliations.

    Lifecycle: :meth:`connect` (HELLO/WELCOME; raises
    :class:`ServerBusy` if shed with RETRY), then any number of
    :meth:`sync` passes (each a full ESTIMATE/PARAMS + rounds + PUSH/
    RESULT exchange against a fresh server snapshot; later passes may
    also raise :class:`ServerBusy`, after which the server has closed
    the connection), then :meth:`close`.  Usable as an async context
    manager.  :attr:`welcome` holds the handshake ack, :attr:`passes`
    the number of syncs issued.

    >>> # inside a coroutine:
    >>> # async with ClientConnection(host, port, set_name="inv") as conn:
    >>> #     first = await conn.sync(my_values)
    >>> #     ...
    >>> #     again = await conn.sync(my_values | first.difference)
    """

    def __init__(
        self,
        host: str,
        port: int,
        set_name: str = "default",
        seed: int = 0,
        n_sketches: int = 128,
        family: str = "fast",
        log_u: int = 32,
        bidirectional: bool = True,
        batch: bool = True,
        connect_timeout: float | None = None,
    ) -> None:
        self.host = host
        self.port = port
        self.set_name = set_name
        self.seed = seed & _SEED_MASK
        self.n_sketches = n_sketches
        self.family = family
        self.log_u = log_u
        self.bidirectional = bidirectional
        self.batch = batch
        #: dial + HELLO/WELCOME deadline in seconds (None = no deadline);
        #: open-loop drivers set this so a stalled server surfaces as a
        #: counted TimeoutError instead of a silently parked session
        self.connect_timeout = connect_timeout
        self.welcome: Welcome | None = None
        self.passes = 0
        self._stream: FramedStream | None = None
        self._estimator: ToWEstimator | None = None
        #: root trace context for this connection (None unless this
        #: process has tracing configured); its ids ride the HELLO
        self.trace: TraceContext | None = None
        self._session_ts = 0.0       # wall clock at connect (span ts)
        self._session_start = 0.0    # perf_counter at connect (span dur)

    # -- lifecycle -------------------------------------------------------------
    async def connect(self) -> Welcome:
        """Open the connection and run HELLO/WELCOME.

        Raises :class:`ServerBusy` (with the server's suggested delay)
        when admission control sheds the session with a RETRY frame.
        """
        # mint the session's trace identity before dialing: the ids ride
        # the HELLO (wire v3) so server and worker spans join this trace
        self.trace = tracer().mint()
        self._session_ts = time.time()
        self._session_start = time.perf_counter()
        if self.connect_timeout is not None:
            reader, writer = await asyncio.wait_for(
                asyncio.open_connection(self.host, self.port),
                timeout=self.connect_timeout,
            )
        else:
            reader, writer = await asyncio.open_connection(
                self.host, self.port
            )
        stream = FramedStream(reader, writer, FramedChannel(), role="alice")
        try:
            await stream.send(
                FrameType.HELLO,
                Hello(
                    set_name=self.set_name,
                    seed=self.seed,
                    n_sketches=self.n_sketches,
                    family=self.family,
                    log_u=self.log_u,
                    bidirectional=self.bidirectional,
                    trace_id=self.trace.trace_id if self.trace else 0,
                    span_id=self.trace.span_id if self.trace else 0,
                ).serialize(),
            )
            ftype, payload = await stream.recv()
            if ftype is FrameType.RETRY:
                retry = Retry.deserialize(payload)
                raise ServerBusy(retry.retry_after_s, retry.message)
            if ftype is not FrameType.WELCOME:
                raise SerializationError(
                    f"expected WELCOME frame, got {ftype.name}"
                )
            self.welcome = Welcome.deserialize(payload)
        except BaseException:
            await stream.close()
            raise
        self._stream = stream
        # one estimator per connection, reused across passes — the server
        # derives the identical salts from the HELLO seed
        self._estimator = ToWEstimator(
            n_sketches=self.n_sketches,
            seed=derive_seed(self.seed, "estimator"),
            family=self.family,
        )
        return self.welcome

    async def close(self) -> None:
        if self._stream is not None:
            await self._stream.close()
            self._stream = None
            if self.trace is not None:
                tracer().emit(
                    "client.session", self.trace, None,
                    self._session_ts,
                    time.perf_counter() - self._session_start,
                    set=self.set_name, passes=self.passes,
                )

    async def __aenter__(self) -> "ClientConnection":
        await self.connect()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()

    # -- one reconciliation pass -----------------------------------------------
    async def sync(
        self, values, max_rounds: int | None = None
    ) -> ReconciliationResult:
        """Reconcile ``values`` against the server's set: one full pass."""
        if self._stream is None or self._estimator is None:
            raise SerializationError("connect() before sync()")
        stream = self._stream
        self.passes += 1
        pass_no = self.passes
        pass_ts = time.time()
        pass_start = time.perf_counter()
        # fresh per-pass accounting (the paper's byte counters are per
        # reconciliation, not per connection)
        stream.channel = FramedChannel()
        arr = _as_element_array(values, self.log_u)

        # 1. ESTIMATE / PARAMS (§6.2 handshake, client side).  On passes
        # after the first the server re-admits the connection, so RETRY
        # can arrive here too (the server closes after sending it).
        sketch_a = self._estimator.sketch(arr)
        await stream.send(
            FrameType.ESTIMATE,
            struct.pack("<I", len(arr))
            + self._estimator.serialize(sketch_a, len(arr)),
        )
        ftype, payload = await stream.recv()
        if ftype is FrameType.RETRY:
            retry = Retry.deserialize(payload)
            await self.close()
            raise ServerBusy(retry.retry_after_s, retry.message)
        if ftype is not FrameType.PARAMS:
            raise SerializationError(
                f"expected PARAMS frame, got {ftype.name}"
            )
        announce = ParamsAnnounce.deserialize(payload)
        params = announce.to_params()

        # 2. Rounds
        alice = AliceSession(
            arr,
            params,
            derive_seed(self.seed, "session", pass_no),
            batch=self.batch,
        )
        budget = max_rounds if max_rounds is not None else params.r
        if budget < 1:
            budget = _UNLIMITED_ROUNDS
        rounds_used = 0
        for round_no in range(1, budget + 1):
            if alice.done:
                break
            message = alice.build_sketch_message(round_no)
            await stream.send(
                FrameType.SKETCH,
                message.serialize(params.t, params.m),
                round_no=round_no,
            )
            _, payload = await stream.recv(
                expect=FrameType.REPLY, round_no=round_no
            )
            reply = ReplyMessage.deserialize(
                payload, params.t, params.m, params.log_u
            )
            alice.handle_reply(reply, round_no)
            rounds_used = round_no

        # 3. Union push + final ack.  One-way syncs still send an (empty)
        # PUSH so the server sees a clean pass end, not an EOF.
        difference = alice.difference()
        extra: dict = {
            "params": params,
            "d_hat": announce.d_hat,
            "set_name": self.set_name,
            "pass_no": pass_no,
            "server_set_size": announce.set_size,
            "snapshot_version": announce.set_version,
        }
        if self.bidirectional:
            a_only = np.intersect1d(
                np.fromiter((int(v) for v in difference), dtype=np.uint64),
                arr,
            )
        else:
            a_only = np.empty(0, dtype=np.uint64)
        await stream.send(
            FrameType.PUSH,
            Push(success=alice.done, elements=a_only).serialize(),
            round_no=rounds_used + 1,
        )
        _, payload = await stream.recv(
            expect=FrameType.RESULT, round_no=rounds_used + 1
        )
        ack = Result.deserialize(payload)
        extra["store_version"] = ack.store_version
        if self.bidirectional:
            extra["applied"] = ack.applied
            extra["server_set_size_after"] = ack.store_size

        # client-observed pass latency: ESTIMATE sent to RESULT received
        elapsed = time.perf_counter() - pass_start
        REGISTRY.histogram(PASS_DURATION).record(elapsed)
        if self.trace is not None:
            trc = tracer()
            trc.emit(
                "client.pass", trc.child(self.trace), self.trace,
                pass_ts, elapsed,
                pass_no=pass_no, rounds=rounds_used,
            )

        return ReconciliationResult(
            success=alice.done,
            difference=difference,
            rounds=rounds_used,
            channel=stream.channel,
            encode_s=alice.encode_s,
            decode_s=alice.decode_s,
            extra=extra,
        )


async def sync_with_server(
    host: str,
    port: int,
    values,
    set_name: str = "default",
    seed: int = 0,
    max_rounds: int | None = None,
    n_sketches: int = 128,
    family: str = "fast",
    log_u: int = 32,
    bidirectional: bool = True,
    batch: bool = True,
    retries: int = 0,
    retry_base_s: float = 0.05,
) -> ReconciliationResult:
    """Reconcile ``values`` against the server's ``set_name`` set, once.

    The client learns ``A xor B`` (its result difference); with
    ``bidirectional=True`` (the default) it also pushes ``A \\ B`` so the
    server's set grows to the union.  ``A ∪ difference`` is then the full
    union on the client side.

    When the server sheds the session (admission control, RETRY frame),
    up to ``retries`` reconnect attempts are made after a jittered
    backoff seeded by the server's suggested delay; the final
    :class:`ServerBusy` escapes if the server stays saturated.
    """
    attempt = 0
    while True:
        conn = ClientConnection(
            host,
            port,
            set_name=set_name,
            seed=seed,
            n_sketches=n_sketches,
            family=family,
            log_u=log_u,
            bidirectional=bidirectional,
            batch=batch,
        )
        try:
            await conn.connect()
        except ServerBusy as busy:
            if not busy.retry_after_s:
                busy.retry_after_s = retry_base_s
            await backoff_or_raise(busy, attempt, retries)
            attempt += 1
            continue
        try:
            return await conn.sync(values, max_rounds=max_rounds)
        finally:
            await conn.close()


def sync_once(host: str, port: int, values, **kwargs) -> ReconciliationResult:
    """Blocking wrapper around :func:`sync_with_server` (used by the CLI)."""
    return asyncio.run(sync_with_server(host, port, values, **kwargs))
