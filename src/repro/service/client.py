"""The reconciliation client: drive one AliceSession over a socket.

:func:`sync_with_server` is the async primitive (many of them can run
concurrently against one server — that is the whole point of the service);
:func:`sync_once` is the blocking convenience wrapper the CLI uses.

The returned :class:`~repro.transport.runner.ReconciliationResult` carries
the client-side view: ``encode_s``/``decode_s`` are Alice's (the server
aggregates Bob's in its own metrics), the channel is a
:class:`~repro.service.wire.FramedChannel` so payload accounting matches
the in-process protocol while framing overhead is reported separately.
"""

from __future__ import annotations

import asyncio
import struct

import numpy as np

from repro.core.messages import ReplyMessage
from repro.core.sessions import AliceSession, _as_element_array
from repro.estimators.tow import ToWEstimator
from repro.service.wire import (
    FramedChannel,
    FramedStream,
    FrameType,
    Hello,
    ParamsAnnounce,
    Push,
    Result,
    Welcome,
)
from repro.transport.runner import ReconciliationResult
from repro.utils.seeds import derive_seed

#: Safety cap for "run as many rounds as needed" mode, as in the in-process
#: driver (Appendix J.1).
_UNLIMITED_ROUNDS = 64

_SEED_MASK = (1 << 64) - 1


async def sync_with_server(
    host: str,
    port: int,
    values,
    set_name: str = "default",
    seed: int = 0,
    max_rounds: int | None = None,
    n_sketches: int = 128,
    family: str = "fast",
    log_u: int = 32,
    bidirectional: bool = True,
    batch: bool = True,
) -> ReconciliationResult:
    """Reconcile ``values`` against the server's ``set_name`` set.

    The client learns ``A xor B`` (its result difference); with
    ``bidirectional=True`` (the default) it also pushes ``A \\ B`` so the
    server's set grows to the union.  ``A ∪ difference`` is then the full
    union on the client side.
    """
    seed = seed & _SEED_MASK
    arr = _as_element_array(values, log_u)
    reader, writer = await asyncio.open_connection(host, port)
    stream = FramedStream(reader, writer, FramedChannel(), role="alice")
    try:
        # 1. HELLO / WELCOME
        await stream.send(
            FrameType.HELLO,
            Hello(
                set_name=set_name,
                seed=seed,
                set_size=len(arr),
                n_sketches=n_sketches,
                family=family,
                log_u=log_u,
                bidirectional=bidirectional,
            ).serialize(),
        )
        _, payload = await stream.recv(expect=FrameType.WELCOME)
        welcome = Welcome.deserialize(payload)

        # 2. ESTIMATE / PARAMS (§6.2 handshake, client side)
        estimator = ToWEstimator(
            n_sketches=n_sketches,
            seed=derive_seed(seed, "estimator"),
            family=family,
        )
        sketch_a = estimator.sketch(arr)
        await stream.send(
            FrameType.ESTIMATE,
            struct.pack("<I", len(arr))
            + estimator.serialize(sketch_a, len(arr)),
        )
        _, payload = await stream.recv(expect=FrameType.PARAMS)
        announce = ParamsAnnounce.deserialize(payload)
        params = announce.to_params()

        # 3. Rounds
        alice = AliceSession(
            arr, params, derive_seed(seed, "session"), batch=batch
        )
        budget = max_rounds if max_rounds is not None else params.r
        if budget < 1:
            budget = _UNLIMITED_ROUNDS
        rounds_used = 0
        for round_no in range(1, budget + 1):
            if alice.done:
                break
            message = alice.build_sketch_message(round_no)
            await stream.send(
                FrameType.SKETCH,
                message.serialize(params.t, params.m),
                round_no=round_no,
            )
            _, payload = await stream.recv(
                expect=FrameType.REPLY, round_no=round_no
            )
            reply = ReplyMessage.deserialize(
                payload, params.t, params.m, params.log_u
            )
            alice.handle_reply(reply, round_no)
            rounds_used = round_no

        # 4. Union push + final ack.  One-way syncs still send an (empty)
        # PUSH so the server sees a clean session end, not an EOF.
        difference = alice.difference()
        extra: dict = {
            "params": params,
            "d_hat": announce.d_hat,
            "set_name": set_name,
            "server_set_size": welcome.set_size,
        }
        if bidirectional:
            a_only = np.intersect1d(
                np.fromiter((int(v) for v in difference), dtype=np.uint64),
                arr,
            )
        else:
            a_only = np.empty(0, dtype=np.uint64)
        await stream.send(
            FrameType.PUSH,
            Push(success=alice.done, elements=a_only).serialize(),
            round_no=rounds_used + 1,
        )
        _, payload = await stream.recv(
            expect=FrameType.RESULT, round_no=rounds_used + 1
        )
        ack = Result.deserialize(payload)
        if bidirectional:
            extra["applied"] = ack.applied
            extra["server_set_size_after"] = ack.store_size

        return ReconciliationResult(
            success=alice.done,
            difference=difference,
            rounds=rounds_used,
            channel=stream.channel,
            encode_s=alice.encode_s,
            decode_s=alice.decode_s,
            extra=extra,
        )
    finally:
        await stream.close()


def sync_once(host: str, port: int, values, **kwargs) -> ReconciliationResult:
    """Blocking wrapper around :func:`sync_with_server` (used by the CLI)."""
    return asyncio.run(sync_with_server(host, port, values, **kwargs))
