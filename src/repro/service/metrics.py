"""Per-session and aggregate service counters.

The server keeps one :class:`SessionMetrics` per connection and folds
completed sessions into :class:`ServiceMetrics`.  ``snapshot()`` is a
plain-JSON dict (the ``repro serve --metrics-every`` heartbeat and the
throughput benchmark both consume it); per-session detail reuses the same
field names as :meth:`ReconciliationResult.to_dict` so downstream tooling
can treat service sessions and in-process runs uniformly.

Cluster-level state (shard load, journal health, and — under the
subprocess executor — per-worker pid/liveness/restart counts) rides in
via the ``cluster_stats`` argument of :meth:`ServiceMetrics.snapshot`,
sourced from :meth:`ClusterStore.cluster_stats`; see
``docs/operations.md`` ("Reading metrics") for the field-by-field guide.
"""

from __future__ import annotations

import json
import time
from collections import deque
from dataclasses import dataclass, field

from repro.obs.metrics import REGISTRY, SESSION_DURATION
from repro.obs.trace import TraceContext
from repro.service.scheduler import CoalescerStats
from repro.service.wire import FramedChannel

#: Completed-session details kept for the snapshot (aggregates are exact
#: regardless; this only bounds the per-session tail).
SESSION_HISTORY = 64

#: Version of the :meth:`ServiceMetrics.snapshot` document.  Consumers
#: (the ``/varz`` endpoint, bench harnesses, dashboards) key on this to
#: detect shape changes; bump it whenever a top-level key is added,
#: removed or renamed, and update the pinning regression test.
#: v3: optional ``timeseries`` (windowed metrics ring) and ``slo``
#: (objective burn state) blocks.
#: v4: the ``cluster`` block grows a ``replication`` summary (and
#: per-shard ``replication`` entries) when ``--replicas`` is on.
SNAPSHOT_SCHEMA = 4


def merged_histograms(cluster_stats: dict | None = None) -> dict:
    """Every latency histogram visible to this server, merged by name.

    The parent's own :data:`~repro.obs.metrics.REGISTRY` plus, in proc
    mode, the cumulative registry dumps each shard worker shipped on
    its last acknowledgement (the ``obs`` block of ``per_shard``
    cluster stats — latest-wins per worker, so merging the most recent
    dump from each is exact).  Shared by :meth:`ServiceMetrics.snapshot`
    and the ``/metrics`` Prometheus endpoint.
    """
    dumps = []
    if cluster_stats:
        for entry in cluster_stats.get("per_shard", ()):
            obs = entry.get("obs")
            if obs:
                dumps.append(obs)
    return REGISTRY.merged_with(dumps)


@dataclass
class SessionMetrics:
    """One connection's life, from accept to close."""

    session_id: int
    set_name: str = ""
    peer: str = ""
    #: wall-clock timestamp (for humans reading the snapshot) — never
    #: used for durations, which an NTP step would corrupt
    started_unix: float = field(default_factory=time.time)
    #: monotonic start mark; all interval math happens on this clock
    started_mono: float = field(default_factory=time.monotonic)
    #: trace context joined from the HELLO (wire v3), if any
    trace: TraceContext | None = None
    rounds: int = 0
    d_hat: float = 0.0
    success: bool = False
    failed: bool = False          #: connection died before a clean finish
    probe: bool = False           #: closed before HELLO (health check)
    shed: bool = False            #: rejected at admission with RETRY
    error: str = ""
    shard: int = -1               #: shard routed to (-1: died before HELLO
                                  #: routing — not any shard's fault)
    syncs: int = 0                #: reconciliation passes on this connection
    applied: int = 0              #: elements folded into the store
    store_version: int = 0        #: set version after the last apply
    encode_s: float = 0.0
    decode_s: float = 0.0
    channel: FramedChannel = field(default_factory=FramedChannel, repr=False)

    @property
    def duration_s(self) -> float:
        """Seconds since accept, on the monotonic clock (NTP-step safe)."""
        return time.monotonic() - self.started_mono

    def to_dict(self) -> dict:
        return {
            "session_id": self.session_id,
            "set": self.set_name,
            "peer": self.peer,
            "success": self.success,
            "failed": self.failed,
            "shed": self.shed,
            "error": self.error,
            "shard": self.shard,
            "syncs": self.syncs,
            "rounds": self.rounds,
            "d_hat": self.d_hat,
            "applied": self.applied,
            "store_version": self.store_version,
            "total_bytes": self.channel.total_bytes,
            "framing_bytes": self.channel.framing_bytes,
            "bytes_by_label": self.channel.bytes_by_label(),
            "encode_s": self.encode_s,
            "decode_s": self.decode_s,
            "trace": self.trace.hex() if self.trace is not None else "",
            "duration_s": self.duration_s,
        }


class ServiceMetrics:
    """Aggregate counters across every session the server has seen."""

    def __init__(self, coalescer_stats: CoalescerStats | None = None) -> None:
        self.started_unix = time.time()
        self.started_mono = time.monotonic()
        self.sessions_started = 0
        self.sessions_completed = 0
        self.sessions_failed = 0
        self.sessions_shed = 0
        self.active_sessions = 0
        self.syncs_total = 0
        self.by_shard: dict[int, dict] = {}
        self.rounds_total = 0
        self.payload_bytes = 0
        self.framing_bytes = 0
        self.encode_s = 0.0
        self.decode_s = 0.0
        self.applied_total = 0
        self.sets_moved = 0
        self.resizes: list[dict] = []
        self._coalescer_stats = coalescer_stats
        self._recent: deque[dict] = deque(maxlen=SESSION_HISTORY)
        self._next_id = 0

    # -- topology events -------------------------------------------------------
    def record_resize(self, summary: dict) -> None:
        """Fold one :meth:`ReconciliationServer.resize_store` outcome in.

        ``summary`` is the :meth:`ClusterStore.resize` return value.  The
        per-event history is kept (resizes are rare operator actions) but
        bounded: the embedded rebalance detail's per-set ``moved`` name
        map can be huge and would be re-serialized into every metrics
        heartbeat, so only its scalar fields are retained.
        """
        summary = dict(summary)
        detail = summary.get("rebalance")
        if isinstance(detail, dict):
            summary["rebalance"] = {
                key: value
                for key, value in detail.items()
                if key != "moved"
            }
        self.resizes.append(summary)
        self.sets_moved += int(summary.get("moved", 0) or 0)

    # -- session lifecycle -----------------------------------------------------
    def open_session(self, peer: str = "") -> SessionMetrics:
        self._next_id += 1
        self.sessions_started += 1
        self.active_sessions += 1
        return SessionMetrics(session_id=self._next_id, peer=peer)

    def close_session(self, session: SessionMetrics) -> None:
        self.active_sessions -= 1
        if session.probe:
            # a connect-then-close before HELLO (port probe / health
            # check) is not a session outcome; drop it from the counts
            self.sessions_started -= 1
            return
        shard = (
            self.by_shard.setdefault(
                session.shard,
                {"completed": 0, "failed": 0, "shed": 0, "syncs": 0},
            )
            # protocol failures before HELLO routing (bad version,
            # garbage frame) reached no shard and must not smear any
            # shard's counters
            if session.shard >= 0
            else None
        )
        if session.shed:
            # admission rejected the session before any work: it is an
            # overload outcome, not a success or a failure
            self.sessions_shed += 1
            if shard is not None:
                shard["shed"] += 1
            return
        if session.failed:
            self.sessions_failed += 1
            if shard is not None:
                shard["failed"] += 1
        else:
            self.sessions_completed += 1
            if shard is not None:
                shard["completed"] += 1
        self.syncs_total += session.syncs
        if shard is not None:
            shard["syncs"] += session.syncs
        self.rounds_total += session.rounds
        self.payload_bytes += session.channel.total_bytes
        self.framing_bytes += session.channel.framing_bytes
        self.encode_s += session.encode_s
        self.decode_s += session.decode_s
        self.applied_total += session.applied
        # shed sessions are admission rejections measured in microseconds
        # — letting them into the duration histogram would drown the p50
        REGISTRY.histogram(SESSION_DURATION).record(session.duration_s)
        self._recent.append(session.to_dict())

    # -- reporting -------------------------------------------------------------
    @property
    def success_rate(self) -> float:
        finished = self.sessions_completed + self.sessions_failed
        if not finished:
            return 1.0
        ok = sum(1 for s in self._recent if s["success"])
        # _recent is bounded; fall back to completed/finished beyond it
        if finished <= len(self._recent):
            return ok / finished
        return self.sessions_completed / finished

    def snapshot(
        self,
        store_stats: dict | None = None,
        admission_stats: dict | None = None,
        cluster_stats: dict | None = None,
        window_stats: dict | None = None,
        slo_stats: dict | None = None,
    ) -> dict:
        out = {
            "schema": SNAPSHOT_SCHEMA,
            "uptime_s": time.monotonic() - self.started_mono,
            "started_unix": self.started_unix,
            "sessions": {
                "started": self.sessions_started,
                "completed": self.sessions_completed,
                "failed": self.sessions_failed,
                "shed": self.sessions_shed,
                "active": self.active_sessions,
                "success_rate": self.success_rate,
            },
            "syncs_total": self.syncs_total,
            "by_shard": {
                str(shard): counters
                for shard, counters in sorted(self.by_shard.items())
            },
            "rounds_total": self.rounds_total,
            "payload_bytes": self.payload_bytes,
            "framing_bytes": self.framing_bytes,
            "encode_s": self.encode_s,
            "decode_s": self.decode_s,
            "applied_total": self.applied_total,
            "latency": {
                name: hist.summary()
                for name, hist in sorted(
                    merged_histograms(cluster_stats).items()
                )
            },
            "recent_sessions": list(self._recent),
        }
        if self.resizes:
            out["resizes"] = list(self.resizes)
            out["sets_moved"] = self.sets_moved
        if self._coalescer_stats is not None:
            out["coalescer"] = self._coalescer_stats.to_dict()
        if store_stats is not None:
            out["sets"] = store_stats
        if admission_stats is not None:
            out["admission"] = admission_stats
        if cluster_stats is not None:
            out["cluster"] = cluster_stats
        if window_stats is not None:
            out["timeseries"] = window_stats
        if slo_stats is not None:
            out["slo"] = slo_stats
        return out

    def to_json(
        self,
        store_stats: dict | None = None,
        admission_stats: dict | None = None,
        cluster_stats: dict | None = None,
        window_stats: dict | None = None,
        slo_stats: dict | None = None,
        indent: int = 2,
    ) -> str:
        return json.dumps(
            self.snapshot(
                store_stats,
                admission_stats,
                cluster_stats,
                window_stats,
                slo_stats,
            ),
            indent=indent,
        )
