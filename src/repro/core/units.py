"""Reconciliation units: group pairs and their split descendants.

PBS-for-large-d reconciles g *group pairs* independently (§3); a group pair
whose BCH decoding fails is hash-split into three *sub-group-pairs* (§3.2),
recursively if necessary.  We call any such pair a **unit**.

A unit is identified by its group index and the sequence of split branches
taken to reach it.  Each split level contributes a *membership constraint*
``(salt, branch)``; together with the group constraint these define the
unit's sub-universe, which Procedure 3's fake-element check tests
recovered candidates against (the element must hash into the unit, not
just into the right bin).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hashing.families import SaltedHash

#: Over-capacity groups split into this many sub-group-pairs (§3.2 argues
#: three-way beats two-way: re-failure probability 9.5e-10 vs 1.2e-3 in the
#: paper's d=1000 example).
SPLIT_WAYS = 3


@dataclass
class UnitId:
    """Identity of a unit: group index plus split path."""

    group: int
    path: tuple[int, ...] = ()

    def child(self, branch: int) -> "UnitId":
        return UnitId(self.group, self.path + (branch,))

    def label(self) -> str:
        if not self.path:
            return f"g{self.group}"
        return f"g{self.group}/" + "/".join(str(b) for b in self.path)

    def __hash__(self) -> int:  # dataclass with tuple field: make it hashable
        return hash((self.group, self.path))

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, UnitId)
            and self.group == other.group
            and self.path == other.path
        )


@dataclass
class MembershipConstraint:
    """One hash constraint defining a unit's sub-universe."""

    salt: int
    buckets: int
    branch: int

    def accepts(self, value: int) -> bool:
        return SaltedHash(self.salt).bucket(value, self.buckets) == self.branch

    def accepts_vec(self, values: np.ndarray) -> np.ndarray:
        return SaltedHash(self.salt).bucket_vec(values, self.buckets) == self.branch


@dataclass
class UnitCore:
    """State common to Alice's and Bob's view of a unit."""

    uid: UnitId
    constraints: list[MembershipConstraint] = field(default_factory=list)
    fresh: bool = True  #: True until the unit's first Bob reply is consumed

    def member_ok(self, value: int) -> bool:
        """Procedure-3 sub-universe check against this unit (all levels)."""
        return all(c.accepts(value) for c in self.constraints)
