"""The end-to-end PBS protocol driver.

Runs Alice's and Bob's sessions over a byte-accounting channel:

* optional §6.2 estimation handshake — Alice ships ``l`` Tug-of-War
  sketches (labelled ``"estimator"`` on the channel so benchmarks can
  exclude the fixed 336-byte cost, as the paper does), Bob answers with
  ``d_hat``, and both sides derive the same
  :class:`~repro.core.params.PBSParams` from ``ceil(1.38 * d_hat)``;
* ``max_rounds`` exchanges of sketch / reply messages;
* optional bidirectional completion: Alice, knowing ``A xor B``, pushes
  ``B \\ A``'s complement — i.e. the elements of ``A \\ B`` — to Bob so
  that both hosts hold ``A ∪ B`` (§1.1).

The returned :class:`~repro.transport.runner.ReconciliationResult`
aggregates success, the learned difference, bytes, rounds and the paper's
two computational metrics (encoding and decoding time).
"""

from __future__ import annotations

import struct

import numpy as np

from repro.core.params import PBSParams
from repro.core.sessions import AliceSession, BobSession, _as_element_array
from repro.estimators.tow import DEFAULT_GAMMA, ToWEstimator
from repro.transport.channel import Channel, Direction
from repro.transport.runner import ReconciliationResult
from repro.utils.seeds import derive_seed

#: Safety cap for "run as many rounds as needed" mode (Appendix J.1).
_UNLIMITED_ROUNDS = 64


class PBSProtocol:
    """Configurable PBS runner.

    >>> proto = PBSProtocol(seed=1)
    >>> result = proto.run({1, 2, 3, 4}, {3, 4, 5}, true_d=3)
    >>> (result.success, sorted(result.difference))
    (True, [1, 2, 5])
    """

    def __init__(
        self,
        params: PBSParams | None = None,
        seed: int = 0,
        delta: int = 5,
        r: int = 3,
        p0: float = 0.99,
        log_u: int = 32,
        gamma: float = DEFAULT_GAMMA,
        split_model: str = "three-way",
        max_rounds: int | None = None,
        estimator_sketches: int = 128,
        estimator_family: str = "fourwise",
        bidirectional: bool = False,
        split_ways: int = 3,
        membership_check: bool = True,
        batch: bool = True,
    ) -> None:
        self.params = params
        self.seed = seed
        self.delta = delta
        self.r = r
        self.p0 = p0
        self.log_u = log_u
        self.gamma = gamma
        self.split_model = split_model
        self.max_rounds = max_rounds
        self.estimator_sketches = estimator_sketches
        self.estimator_family = estimator_family
        self.bidirectional = bidirectional
        self.split_ways = split_ways
        self.membership_check = membership_check
        #: route encode/decode through the batched multi-group BCH engine
        #: (the scalar per-group path stays available for cross-checking)
        self.batch = batch

    # -- parameter acquisition ------------------------------------------------
    def _estimate_d(self, set_a, set_b, channel: Channel) -> int:
        """The §6.2 handshake; returns the conservative design d."""
        estimator = ToWEstimator(
            n_sketches=self.estimator_sketches,
            seed=derive_seed(self.seed, "estimator"),
            family=self.estimator_family,
        )
        arr_a = _as_element_array(set_a, self.log_u)
        arr_b = _as_element_array(set_b, self.log_u)
        sketch_a = estimator.sketch(arr_a)
        payload = struct.pack("<I", len(arr_a)) + estimator.serialize(
            sketch_a, len(arr_a)
        )
        channel.send(Direction.ALICE_TO_BOB, payload, round_no=0, label="estimator")
        # Bob's side: deserialize, sketch B, estimate, reply with d_hat.
        (size_a,) = struct.unpack_from("<I", payload)
        received = estimator.deserialize(payload[4:], size_a)
        sketch_b = estimator.sketch(arr_b)
        d_hat = estimator.estimate(received, sketch_b)
        channel.send(
            Direction.BOB_TO_ALICE,
            struct.pack("<d", d_hat),
            round_no=0,
            label="estimator",
        )
        return max(1, round(d_hat))

    def _resolve_params(
        self, set_a, set_b, channel: Channel, true_d: int | None,
        estimated_d: int | None,
    ) -> PBSParams:
        if self.params is not None:
            return self.params
        if true_d is not None and estimated_d is None:
            # d known exactly (the §2-§5 setting): no inflation.
            design_d = max(1, true_d)
        else:
            if estimated_d is None:
                estimated_d = self._estimate_d(set_a, set_b, channel)
            # §6.2: conservatively design for ceil(gamma * d_hat).
            design_d = ToWEstimator.conservative(estimated_d, self.gamma)
        return PBSParams.from_d(
            design_d,
            delta=self.delta,
            r=self.r,
            p0=self.p0,
            log_u=self.log_u,
            split_model=self.split_model,
        )

    # -- main entry point ---------------------------------------------------------
    def run(
        self,
        set_a,
        set_b,
        channel: Channel | None = None,
        true_d: int | None = None,
        estimated_d: int | None = None,
    ) -> ReconciliationResult:
        """Reconcile: Alice (holding ``set_a``) learns ``A xor B``.

        ``true_d`` skips the estimation handshake with the exact
        cardinality (the §2–§5 "d known" setting); ``estimated_d`` injects
        an externally computed conservative estimate (used by the
        evaluation harness to share one ToW run across protocols).
        """
        channel = channel if channel is not None else Channel()
        params = self._resolve_params(set_a, set_b, channel, true_d, estimated_d)
        session_seed = derive_seed(self.seed, "session")
        alice = AliceSession(
            set_a,
            params,
            session_seed,
            split_ways=self.split_ways,
            membership_check=self.membership_check,
            batch=self.batch,
        )
        bob = BobSession(
            set_b, params, session_seed, split_ways=self.split_ways,
            batch=self.batch,
        )

        budget = self.max_rounds if self.max_rounds is not None else self.r
        if budget < 1:
            budget = _UNLIMITED_ROUNDS
        rounds_used = 0
        for round_no in range(1, budget + 1):
            if alice.done:
                break
            message = alice.build_sketch_message(round_no)
            wire = message.serialize(params.t, params.m)
            channel.send(
                Direction.ALICE_TO_BOB, wire, round_no=round_no, label="sketch"
            )
            reply = bob.handle_sketch_message(
                type(message).deserialize(wire, params.t, params.m)
            )
            reply_wire = reply.serialize(params.t, params.m, params.log_u)
            channel.send(
                Direction.BOB_TO_ALICE, reply_wire, round_no=round_no, label="reply"
            )
            alice.handle_reply(
                type(reply).deserialize(reply_wire, params.t, params.m, params.log_u),
                round_no,
            )
            rounds_used = round_no

        difference = alice.difference()
        if self.bidirectional and alice.done:
            # Alice pushes A \ B so Bob can also form the union (§1.1).
            arr_a = _as_element_array(set_a, params.log_u)
            a_only = np.intersect1d(
                np.fromiter((int(v) for v in difference), dtype=np.uint64),
                arr_a,
            )
            channel.send(
                Direction.ALICE_TO_BOB,
                a_only.astype(np.uint64).tobytes(),
                round_no=rounds_used + 1,
                label="union-push",
            )

        return ReconciliationResult(
            success=alice.done,
            difference=difference,
            rounds=rounds_used,
            channel=channel,
            encode_s=alice.encode_s + bob.encode_s,
            decode_s=alice.decode_s + bob.decode_s,
            extra={
                "params": params,
                "resolved_by_round": dict(alice.resolved_by_round),
                "recovered_by_round": dict(alice.recovered_by_round),
            },
        )


def reconcile_pbs(
    set_a,
    set_b,
    seed: int = 0,
    true_d: int | None = None,
    estimated_d: int | None = None,
    **kwargs,
) -> ReconciliationResult:
    """One-call convenience wrapper around :class:`PBSProtocol`.

    >>> r = reconcile_pbs({1, 2, 9}, {1, 2, 7}, seed=3, true_d=2)
    >>> sorted(r.difference)
    [7, 9]
    """
    protocol = PBSProtocol(seed=seed, **kwargs)
    return protocol.run(set_a, set_b, true_d=true_d, estimated_d=estimated_d)
