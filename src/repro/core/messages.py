"""Wire format of the per-round PBS messages.

Each round is one exchange:

* **Alice → Bob** (:class:`SketchMessage`): for rounds >= 2, a continuation
  bit per previously-OK unit (Bob cannot know which checksums failed on
  Alice's side — this is the minimal control information that the paper's
  description leaves implicit); then one BCH codeword (``t * m`` bits) per
  pending unit, in the shared canonical order.
* **Bob → Alice** (:class:`ReplyMessage`): per pending unit, a 1-bit
  decode-failed flag; on success the decoded difference-bit positions
  (``m`` bits each) and Bob's per-bin XOR sums (``log|U|`` bits each), and
  — only the first time a unit is answered — the unit checksum ``c(B_u)``
  (``log|U|`` bits).  This matches Formula (1)'s first-round accounting:
  ``t log n + delta_i log n + delta_i log|U| + log|U|`` per group pair.

Unit identities never travel on the wire: both sides evolve the same
ordered pending list (failed units are deterministically replaced by their
three split children; OK units continue iff Alice's continuation bit says
so).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import SerializationError
from repro.utils.bitio import BitReader, BitWriter

_ROUND_BITS = 16
_COUNT_BITS = 32


@dataclass
class SketchMessage:
    """Alice's codewords for every pending unit (plus continuation mask)."""

    round_no: int
    continue_mask: list[bool]  #: one bit per previously-OK unit (empty in round 1)
    sketches: list[list[int]]  #: t syndromes of m bits each, canonical order

    def serialize(self, t: int, m: int) -> bytes:
        writer = BitWriter()
        writer.write(self.round_no, _ROUND_BITS)
        writer.write(len(self.continue_mask), _COUNT_BITS)
        for bit in self.continue_mask:
            writer.write(int(bit), 1)
        writer.write(len(self.sketches), _COUNT_BITS)
        for sketch in self.sketches:
            if len(sketch) != t:
                raise SerializationError(
                    f"sketch has {len(sketch)} syndromes, expected {t}"
                )
            for syndrome in sketch:
                writer.write(syndrome, m)
        return writer.getvalue()

    @classmethod
    def deserialize(cls, data: bytes, t: int, m: int) -> "SketchMessage":
        reader = BitReader(data)
        round_no = reader.read(_ROUND_BITS)
        mask = [bool(reader.read(1)) for _ in range(reader.read(_COUNT_BITS))]
        n_units = reader.read(_COUNT_BITS)
        sketches = [
            [reader.read(m) for _ in range(t)] for _ in range(n_units)
        ]
        return cls(round_no=round_no, continue_mask=mask, sketches=sketches)


@dataclass
class UnitReply:
    """Bob's per-unit reply."""

    decode_failed: bool
    positions: list[int]      #: decoded difference-bit positions (1..n)
    xor_sums: list[int]       #: Bob's bin XOR sums, aligned with positions
    checksum: int | None      #: c(B_u), present only on the first reply


@dataclass
class ReplyMessage:
    """Bob's replies for every pending unit, canonical order."""

    round_no: int
    replies: list[UnitReply]

    def serialize(self, t: int, m: int, log_u: int) -> bytes:
        count_bits = max(1, t.bit_length())
        writer = BitWriter()
        writer.write(self.round_no, _ROUND_BITS)
        writer.write(len(self.replies), _COUNT_BITS)
        for reply in self.replies:
            writer.write(int(reply.checksum is not None), 1)
            if reply.checksum is not None:
                writer.write(reply.checksum, log_u)
            writer.write(int(reply.decode_failed), 1)
            if reply.decode_failed:
                continue
            if len(reply.positions) > t:
                raise SerializationError(
                    f"{len(reply.positions)} positions exceed capacity {t}"
                )
            writer.write(len(reply.positions), count_bits)
            for pos, xor_sum in zip(reply.positions, reply.xor_sums):
                writer.write(pos, m)
                writer.write(xor_sum, log_u)
        return writer.getvalue()

    @classmethod
    def deserialize(cls, data: bytes, t: int, m: int, log_u: int) -> "ReplyMessage":
        count_bits = max(1, t.bit_length())
        reader = BitReader(data)
        round_no = reader.read(_ROUND_BITS)
        n_units = reader.read(_COUNT_BITS)
        replies: list[UnitReply] = []
        for _ in range(n_units):
            checksum = reader.read(log_u) if reader.read(1) else None
            failed = bool(reader.read(1))
            positions: list[int] = []
            xor_sums: list[int] = []
            if not failed:
                count = reader.read(count_bits)
                for _ in range(count):
                    positions.append(reader.read(m))
                    xor_sums.append(reader.read(log_u))
            replies.append(
                UnitReply(
                    decode_failed=failed,
                    positions=positions,
                    xor_sums=xor_sums,
                    checksum=checksum,
                )
            )
        return cls(round_no=round_no, replies=replies)
