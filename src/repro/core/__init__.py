"""The Parity Bitmap Sketch protocol — the paper's primary contribution.

Layering (bottom-up):

* :mod:`repro.core.checksum` / :mod:`repro.core.partition` — the set
  checksum ``c(S)`` (§2.2.3) and vectorized hash-partitioning into groups,
  bins and split branches (§2.2.1, §3, §3.2).
* :mod:`repro.core.units` — reconciliation *units*: a group pair or one of
  its (recursively) split sub-group-pairs, with the membership constraints
  that Procedure 3's sub-universe check enforces.
* :mod:`repro.core.messages` — the wire format (bit-packed) of the two
  messages exchanged per round.
* :mod:`repro.core.sessions` — Alice's and Bob's per-host state machines
  (PBS-for-small-d per unit, §2; multi-group multi-round orchestration and
  three-way splits, §3).
* :mod:`repro.core.protocol` — the driver that runs the two sessions over
  a byte-accounting channel, including the ToW estimation handshake (§6.2).
* :mod:`repro.core.params` — parameter selection (optimal (n, t) via the
  analytical framework, §5.1).
"""

from repro.core.params import PBSParams
from repro.core.protocol import PBSProtocol, reconcile_pbs

__all__ = ["PBSParams", "PBSProtocol", "reconcile_pbs"]
