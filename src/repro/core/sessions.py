"""Alice's and Bob's PBS state machines.

One *round* (§2.4, §3.3) is a single exchange:

1. Alice partitions each pending unit's working set into n bins with a
   fresh per-round hash, builds the parity bitmap, and sends its BCH
   sketch (:class:`~repro.core.messages.SketchMessage`).
2. Bob does the same over his (static) set, XORs the sketches, BCH-decodes the
   difference positions, and replies with positions + his bin XOR sums
   (+ the unit checksum on first contact); on a decoding failure he flags
   the unit, which both sides then split three ways (§3.2).
3. Alice recovers candidate elements (Procedure 1 per position), applies
   Procedure 3's sub-universe check plus the unit-membership constraints,
   folds survivors into her working set, and verifies the §2.2.3 checksum.
   Verified units retire; the rest continue into the next round.

Alice's working set evolves as ``A -> A xor D_hat_1 -> ...`` (§2.4); the
final per-unit difference is ``original xor working`` once the checksum
certifies ``working == B_u``, so fake elements that sneaked in are
automatically corrected by later rounds.

Both sides keep their pending-unit lists in lockstep: failed units are
deterministically replaced by their three split children; surviving OK
units continue iff Alice's continuation bit says the checksum still
mismatches.  No unit identities travel on the wire.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.core.checksum import set_checksum
from repro.core.messages import ReplyMessage, SketchMessage, UnitReply
from repro.core.params import PBSParams
from repro.core.partition import (
    bin_indices,
    bin_tables,
    group_indices,
    parity_positions,
    split_by_hash,
)
from repro.core.units import SPLIT_WAYS, MembershipConstraint, UnitId
from repro.errors import ParameterError, SerializationError
from repro.hashing.families import SaltedHash
from repro.utils.seeds import derive_seed


def _as_element_array(values, log_u: int) -> np.ndarray:
    """Validate and convert an element iterable to a uint64 array."""
    arr = np.fromiter((int(v) for v in values), dtype=np.uint64)
    if len(arr) == 0:
        return arr
    if int(arr.min()) < 1 or int(arr.max()) >= (1 << log_u):
        raise ParameterError(
            f"elements must be in [1, 2^{log_u}) — the all-zero element is "
            "excluded from the universe (§2.1)"
        )
    return np.unique(arr)


def _partition_by_group(arr: np.ndarray, salt: int, g: int) -> list[np.ndarray]:
    """Split a set into its g group arrays with one vectorized pass."""
    if len(arr) == 0:
        return [arr.copy() for _ in range(g)]
    gidx = group_indices(arr, salt, g)
    order = np.argsort(gidx, kind="stable")
    sorted_arr = arr[order]
    sorted_gidx = gidx[order]
    bounds = np.searchsorted(sorted_gidx, np.arange(g + 1))
    return [sorted_arr[bounds[i] : bounds[i + 1]] for i in range(g)]


@dataclass
class _AliceUnit:
    uid: UnitId
    constraints: list[MembershipConstraint]
    original: np.ndarray
    working: np.ndarray
    b_checksum: int | None = None
    # per-round scratch (bin XOR table for candidate recovery)
    xors: np.ndarray | None = field(default=None, repr=False)


@dataclass
class _BobUnit:
    uid: UnitId
    constraints: list[MembershipConstraint]
    values: np.ndarray
    fresh: bool = True
    last_failed: bool = False
    split_salt: int = 0


@dataclass
class BobRoundWork:
    """Bob's encode output for one round, awaiting the BCH decode.

    Produced by :meth:`BobSession.begin_reply`; the (possibly externally
    batched) decode of :attr:`deltas` is handed back to
    :meth:`BobSession.finish_reply`.  Splitting the round this way lets a
    server coalesce decode work from many concurrent sessions into one
    cross-session ``decode_many`` call.
    """

    round_no: int
    deltas: list[list[int]]          #: per-unit XOR of Alice's and Bob's sketches
    xors_b: list[np.ndarray] = field(repr=False, default_factory=list)


class AliceSession:
    """Alice's side: holds A, learns A xor B.

    ``split_ways`` and ``membership_check`` exist for the ablation studies
    (§3.2's three-way-vs-two-way argument and Procedure 3's fake-element
    defense); production use keeps the defaults.
    """

    def __init__(
        self,
        values,
        params: PBSParams,
        seed: int,
        split_ways: int = SPLIT_WAYS,
        membership_check: bool = True,
        batch: bool = True,
    ) -> None:
        self.params = params
        self.seed = seed
        self.split_ways = split_ways
        self.membership_check = membership_check
        self.batch = batch
        self.encode_s = 0.0
        self.decode_s = 0.0
        #: elements of verified units per round (checksum-certified)
        self.resolved_by_round: dict[int, int] = {}
        #: candidate elements recovered per round — the empirical
        #: counterpart of the §5.3 "good balls" piecewise analysis
        self.recovered_by_round: dict[int, int] = {}
        arr = _as_element_array(values, params.log_u)
        group_salt = derive_seed(seed, "group")
        groups = _partition_by_group(arr, group_salt, params.g)
        self.pending: list[_AliceUnit] = [
            _AliceUnit(
                uid=UnitId(i),
                constraints=[MembershipConstraint(group_salt, params.g, i)],
                original=groups[i],
                working=groups[i],
            )
            for i in range(params.g)
        ]
        self._resolved_diffs: list[np.ndarray] = []
        self._next_mask: list[bool] = []
        self._round_salt: int = 0

    # -- round driver --------------------------------------------------------
    @property
    def done(self) -> bool:
        return not self.pending

    def build_sketch_message(self, round_no: int) -> SketchMessage:
        """Step 1: per-unit parity bitmaps and their BCH sketches.

        The sketches of all pending units are computed in one batched
        pass over a stacked position matrix (the scalar per-unit loop is
        kept behind ``batch=False`` for cross-checking).
        """
        start = time.perf_counter()
        params = self.params
        self._round_salt = derive_seed(self.seed, "bin", round_no)
        positions: list[np.ndarray] = []
        for unit in self.pending:
            idx = bin_indices(unit.working, self._round_salt, params.n)
            parity, xors = bin_tables(unit.working, idx, params.n)
            unit.xors = xors
            positions.append(parity_positions(parity))
        sketches = params.codec.sketch_many(positions, batch=self.batch)
        message = SketchMessage(
            round_no=round_no,
            continue_mask=self._next_mask,
            sketches=sketches,
        )
        self._next_mask = []
        self.encode_s += time.perf_counter() - start
        return message

    def handle_reply(self, reply: ReplyMessage, round_no: int) -> None:
        """Step 3: recover, verify, retire/split/continue units."""
        start = time.perf_counter()
        params = self.params
        if len(reply.replies) != len(self.pending):
            raise SerializationError(
                f"reply covers {len(reply.replies)} units, "
                f"{len(self.pending)} pending"
            )
        bin_hash = SaltedHash(self._round_salt)
        recovered = self._recover_batch(reply, bin_hash) if self.batch else None
        next_pending: list[_AliceUnit] = []
        mask: list[bool] = []
        for i, (unit, unit_reply) in enumerate(zip(self.pending, reply.replies)):
            if unit_reply.decode_failed:
                next_pending.extend(self._split(unit, round_no))
                continue
            if unit_reply.checksum is not None and unit.b_checksum is None:
                unit.b_checksum = unit_reply.checksum
            if unit.b_checksum is None:
                raise SerializationError(
                    f"no checksum ever received for unit {unit.uid.label()}"
                )
            if recovered is not None:
                candidates = recovered[i]
            else:
                candidates = self._recover(unit, unit_reply, bin_hash)
            if candidates:
                self.recovered_by_round[round_no] = (
                    self.recovered_by_round.get(round_no, 0) + len(candidates)
                )
                unit.working = np.setxor1d(
                    unit.working, np.array(sorted(candidates), dtype=np.uint64)
                )
            if set_checksum(unit.working, params.log_u) == unit.b_checksum:
                diff = np.setxor1d(unit.original, unit.working)
                self._resolved_diffs.append(diff)
                self.resolved_by_round[round_no] = (
                    self.resolved_by_round.get(round_no, 0) + len(diff)
                )
                mask.append(False)
            else:
                next_pending.append(unit)
                mask.append(True)
            unit.xors = None
        self.pending = next_pending
        self._next_mask = mask
        self.decode_s += time.perf_counter() - start

    # -- internals -------------------------------------------------------------
    def _recover(
        self, unit: _AliceUnit, unit_reply: UnitReply, bin_hash: SaltedHash
    ) -> set[int]:
        """Procedure 1 per position + Procedure 3 checks (§2.2.2, §2.3)."""
        params = self.params
        assert unit.xors is not None
        candidates: set[int] = set()
        for pos, bob_xor in zip(unit_reply.positions, unit_reply.xor_sums):
            if not 1 <= pos <= params.n:
                continue
            s = int(unit.xors[pos - 1]) ^ bob_xor
            if s == 0 or s >= (1 << params.log_u):
                continue  # exceptions; cannot be a real element
            if self.membership_check:
                if bin_hash.bucket(s, params.n) != pos - 1:
                    continue  # fake distinct element caught by Procedure 3
                if not all(c.accepts(s) for c in unit.constraints):
                    continue  # not in this unit's sub-universe
            candidates.add(s)
        return candidates

    def _recover_batch(
        self, reply: ReplyMessage, bin_hash: SaltedHash
    ) -> list[set[int]]:
        """Vectorized :meth:`_recover` across every unit of the round.

        Procedure 1 and Procedure 3's checks are data-parallel over the
        flattened (unit, position) pairs: one hash pass for the bin check
        and one per constraint level instead of a Python call per
        candidate.  Produces exactly the candidate sets of the scalar
        path.
        """
        params = self.params
        out: list[set[int]] = [set() for _ in reply.replies]
        uidx_parts: list[np.ndarray] = []
        pos_parts: list[np.ndarray] = []
        s_parts: list[np.ndarray] = []
        for i, (unit, unit_reply) in enumerate(zip(self.pending, reply.replies)):
            if unit_reply.decode_failed or not unit_reply.positions:
                continue
            pos = np.asarray(unit_reply.positions, dtype=np.int64)
            in_range = (pos >= 1) & (pos <= params.n)
            pos = pos[in_range]
            if not len(pos):
                continue
            xor_sums = np.asarray(unit_reply.xor_sums, dtype=np.uint64)[in_range]
            assert unit.xors is not None
            s_parts.append(unit.xors[pos - 1] ^ xor_sums)
            pos_parts.append(pos)
            uidx_parts.append(np.full(len(pos), i, dtype=np.int64))
        if not s_parts:
            return out
        uidx = np.concatenate(uidx_parts)
        pos = np.concatenate(pos_parts)
        s = np.concatenate(s_parts)
        keep = s != 0
        if params.log_u < 64:
            keep &= s < np.uint64(1 << params.log_u)
        if self.membership_check:
            # Procedure 3: the candidate must hash back into its bin ...
            keep &= bin_hash.bucket_vec(s, params.n) == pos - 1
            # ... and into its unit's sub-universe.  Level 0 is the group
            # partition, which shares (salt, g) across all units by
            # construction; only the expected branch varies.
            level0 = self.pending[0].constraints[0]
            branch = np.array(
                [u.constraints[0].branch for u in self.pending], dtype=np.int64
            )
            level0_bucket = SaltedHash(level0.salt).bucket_vec(s, level0.buckets)
            keep &= level0_bucket == branch[uidx]
            # Deeper levels exist only on split descendants; check those
            # units' candidate slices constraint by constraint.
            for i, unit in enumerate(self.pending):
                if len(unit.constraints) <= 1:
                    continue
                at_unit = uidx == i
                if not at_unit.any():
                    continue
                vals = s[at_unit]
                ok = np.ones(len(vals), dtype=bool)
                for constraint in unit.constraints[1:]:
                    ok &= constraint.accepts_vec(vals)
                keep[at_unit] &= ok
        for i, value in zip(uidx[keep], s[keep]):
            out[int(i)].add(int(value))
        return out

    def _split(self, unit: _AliceUnit, round_no: int) -> list[_AliceUnit]:
        """Three-way split after a BCH decoding failure (§3.2)."""
        ways = self.split_ways
        salt = derive_seed(self.seed, "split", unit.uid.group, unit.uid.path, round_no)
        working_parts = split_by_hash(unit.working, salt, ways)
        original_parts = split_by_hash(unit.original, salt, ways)
        children = []
        for b in range(ways):
            children.append(
                _AliceUnit(
                    uid=unit.uid.child(b),
                    constraints=unit.constraints
                    + [MembershipConstraint(salt, ways, b)],
                    original=original_parts[b],
                    working=working_parts[b],
                )
            )
        return children

    # -- results -----------------------------------------------------------------
    def difference(self) -> frozenset[int]:
        """Alice's current view of A xor B (exact iff :attr:`done`)."""
        parts = list(self._resolved_diffs)
        parts.extend(
            np.setxor1d(u.original, u.working) for u in self.pending
        )
        if not parts:
            return frozenset()
        return frozenset(int(v) for v in np.concatenate(parts))


class BobSession:
    """Bob's side: holds B, answers sketches."""

    def __init__(
        self,
        values,
        params: PBSParams,
        seed: int,
        split_ways: int = SPLIT_WAYS,
        batch: bool = True,
    ) -> None:
        self.params = params
        self.seed = seed
        self.split_ways = split_ways
        self.batch = batch
        self.encode_s = 0.0
        self.decode_s = 0.0
        arr = _as_element_array(values, params.log_u)
        group_salt = derive_seed(seed, "group")
        groups = _partition_by_group(arr, group_salt, params.g)
        self.pending: list[_BobUnit] = [
            _BobUnit(
                uid=UnitId(i),
                constraints=[MembershipConstraint(group_salt, params.g, i)],
                values=groups[i],
            )
            for i in range(params.g)
        ]

    def handle_sketch_message(self, message: SketchMessage) -> ReplyMessage:
        """Step 2: advance the pending list, decode every sketch.

        All pending units are sketched and BCH-decoded in one batched
        pass (stacked syndrome matrices); ``batch=False`` keeps the
        scalar per-unit loop as the cross-checking reference.
        """
        work = self.begin_reply(message)
        decode_start = time.perf_counter()
        decoded = self.params.codec.decode_many(work.deltas, batch=self.batch)
        self.decode_s += time.perf_counter() - decode_start
        return self.finish_reply(work, decoded)

    def begin_reply(self, message: SketchMessage) -> BobRoundWork:
        """Encode phase of one round: everything up to the BCH decode.

        Advances the pending list, sketches Bob's side, and XORs against
        Alice's sketches.  The returned :class:`BobRoundWork` carries the
        per-unit sketch deltas; decode them (``params.codec.decode_many``
        or a cross-session batch) and hand the result to
        :meth:`finish_reply`.
        """
        params = self.params
        self._advance_pending(message)
        if len(message.sketches) != len(self.pending):
            raise SerializationError(
                f"sketch message covers {len(message.sketches)} units, "
                f"{len(self.pending)} pending"
            )
        round_salt = derive_seed(self.seed, "bin", message.round_no)

        encode_start = time.perf_counter()
        positions_b: list[np.ndarray] = []
        xors_b: list[np.ndarray] = []
        for unit in self.pending:
            idx = bin_indices(unit.values, round_salt, params.n)
            parity, xors = bin_tables(unit.values, idx, params.n)
            positions_b.append(parity_positions(parity))
            xors_b.append(xors)
        sketches_b = params.codec.sketch_many(positions_b, batch=self.batch)
        self.encode_s += time.perf_counter() - encode_start

        decode_start = time.perf_counter()
        deltas = [
            params.codec.sketch_xor(alice_sketch, sketch_b)
            for alice_sketch, sketch_b in zip(message.sketches, sketches_b)
        ]
        self.decode_s += time.perf_counter() - decode_start
        return BobRoundWork(
            round_no=message.round_no, deltas=deltas, xors_b=xors_b
        )

    def finish_reply(
        self,
        work: BobRoundWork,
        decoded: list[list[int] | None],
        decode_seconds: float = 0.0,
    ) -> ReplyMessage:
        """Build the round's reply from externally decoded deltas.

        ``decoded`` must align with ``work.deltas`` (``None`` marks a
        decode failure, triggering the unit's three-way split next round);
        ``decode_seconds`` attributes this session's share of a coalesced
        decode batch to :attr:`decode_s`.
        """
        params = self.params
        self.decode_s += decode_seconds
        start = time.perf_counter()
        replies: list[UnitReply] = []
        for unit, xors, positions in zip(self.pending, work.xors_b, decoded):
            checksum = (
                set_checksum(unit.values, params.log_u) if unit.fresh else None
            )
            if positions is None:
                unit.last_failed = True
                unit.split_salt = derive_seed(
                    self.seed, "split", unit.uid.group, unit.uid.path,
                    work.round_no,
                )
                replies.append(
                    UnitReply(
                        decode_failed=True, positions=[], xor_sums=[],
                        checksum=None,
                    )
                )
            else:
                unit.fresh = False
                replies.append(
                    UnitReply(
                        decode_failed=False,
                        positions=positions,
                        xor_sums=[int(xors[p - 1]) for p in positions],
                        checksum=checksum,
                    )
                )
        self.decode_s += time.perf_counter() - start
        return ReplyMessage(round_no=work.round_no, replies=replies)

    def _advance_pending(self, message: SketchMessage) -> None:
        """Mirror Alice's pending-list evolution (splits + continuation mask)."""
        if message.round_no == 1:
            return
        mask = iter(message.continue_mask)
        next_pending: list[_BobUnit] = []
        for unit in self.pending:
            if unit.last_failed:
                next_pending.extend(self._split(unit))
                continue
            try:
                keep = next(mask)
            except StopIteration:
                raise SerializationError(
                    "continuation mask shorter than pending list"
                ) from None
            if keep:
                next_pending.append(unit)
        self.pending = next_pending

    def _split(self, unit: _BobUnit) -> list[_BobUnit]:
        ways = self.split_ways
        parts = split_by_hash(unit.values, unit.split_salt, ways)
        return [
            _BobUnit(
                uid=unit.uid.child(b),
                constraints=unit.constraints
                + [MembershipConstraint(unit.split_salt, ways, b)],
                values=parts[b],
            )
            for b in range(ways)
        ]
