"""PBS parameterization.

Bundles the knobs of §3 (delta, g), §3.1 (n, t), §3.3 (r, p0) and the
universe size, and constructs them from a known or estimated difference
cardinality via the analytical optimizer (§5.1) — exactly the flow of
§6.2: estimate ``d_hat``, inflate by ``gamma = 1.38``, optimize (n, t).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import cached_property

from repro.analysis.optimizer import groups_for, optimize_params
from repro.bch.codec import BCHCodec
from repro.errors import ParameterError
from repro.estimators.tow import DEFAULT_GAMMA
from repro.gf import field_for

#: The paper fixes delta = 5 as the communication/computation sweet spot
#: (§3, Appendix J.2 studies the knob).
DEFAULT_DELTA = 5


@dataclass(frozen=True)
class PBSParams:
    """Frozen parameter set for one PBS execution."""

    n: int               #: parity-bitmap length per group, 2^m - 1
    t: int               #: BCH error-correction capacity per group
    g: int               #: number of groups
    delta: int = DEFAULT_DELTA  #: design average differences per group
    r: int = 3           #: target number of rounds (design point)
    p0: float = 0.99     #: target success probability
    log_u: int = 32      #: signature length log|U|
    split_model: str = "three-way"  #: analysis model used for tuning

    def __post_init__(self) -> None:
        m = (self.n + 1).bit_length() - 1
        if self.n != (1 << m) - 1 or m < 2:
            raise ParameterError(f"n={self.n} is not 2^m - 1 with m >= 2")
        if self.t < 1 or self.t > self.n:
            raise ParameterError(f"capacity t={self.t} out of range for n={self.n}")
        if self.g < 1:
            raise ParameterError(f"g={self.g} must be >= 1")
        if self.log_u < 8 or self.log_u > 64:
            raise ParameterError(f"log_u={self.log_u} unsupported")

    @property
    def m(self) -> int:
        """Bits per bitmap position / codeword symbol."""
        return (self.n + 1).bit_length() - 1

    @cached_property
    def codec(self) -> BCHCodec:
        """The BCH sketch codec for one group's parity bitmap."""
        return BCHCodec(field_for(self.m), self.t)

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_d(
        cls,
        d: int,
        delta: int = DEFAULT_DELTA,
        r: int = 3,
        p0: float = 0.99,
        log_u: int = 32,
        split_model: str = "three-way",
    ) -> "PBSParams":
        """Optimal parameters for a known difference cardinality (§5.1)."""
        d = max(1, d)
        best = optimize_params(d, delta=delta, r=r, p0=p0, split_model=split_model)
        return cls(
            n=best.n,
            t=best.t,
            g=groups_for(d, delta),
            delta=delta,
            r=r,
            p0=p0,
            log_u=log_u,
            split_model=split_model,
        )

    @classmethod
    def from_estimate(
        cls,
        d_hat: float,
        gamma: float = DEFAULT_GAMMA,
        **kwargs,
    ) -> "PBSParams":
        """§6.2 flow: design for the conservative ``ceil(gamma * d_hat)``."""
        return cls.from_d(max(1, math.ceil(gamma * d_hat)), **kwargs)
