"""Vectorized hash-partitioning and parity-bitmap construction.

Three consistent partitions appear in PBS:

* *groups* (§3): ``h'`` splits each set into g groups, fixed for the whole
  reconciliation;
* *bins* (§2.2.1): a per-round hash ``h_k`` splits a unit's elements into
  the n subsets whose cardinality parities form the parity bitmap;
* *split branches* (§3.2): a three-way hash splits a group that suffered a
  BCH decoding failure.

All paths operate on numpy ``uint64`` arrays; the per-bin XOR sums that
Procedure 1 needs are accumulated with ``np.bitwise_xor.at``.
"""

from __future__ import annotations

import numpy as np

from repro.hashing.families import SaltedHash


def group_indices(values: np.ndarray, salt: int, g: int) -> np.ndarray:
    """Group index in [0, g) for every element."""
    return SaltedHash(salt).bucket_vec(values, g)


def bin_indices(values: np.ndarray, salt: int, n: int) -> np.ndarray:
    """Bin index in [0, n) for every element (per-round hash)."""
    return SaltedHash(salt).bucket_vec(values, n)


def split_indices(values: np.ndarray, salt: int, ways: int = 3) -> np.ndarray:
    """Split-branch index in [0, ways) for every element (§3.2)."""
    return SaltedHash(salt).bucket_vec(values, ways)


def bin_tables(
    values: np.ndarray, idx: np.ndarray, n: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-bin parity bitmap and XOR sums for one unit.

    Returns ``(parity, xors)`` with ``parity[i] = |bin i| mod 2`` (uint8)
    and ``xors[i]`` the XOR of the elements in bin i (uint64).
    """
    counts = np.bincount(idx, minlength=n)
    parity = (counts & 1).astype(np.uint8)
    xors = np.zeros(n, dtype=np.uint64)
    if len(values):
        np.bitwise_xor.at(xors, idx, values.astype(np.uint64))
    return parity, xors


def parity_positions(parity: np.ndarray) -> np.ndarray:
    """Field-element encodings (1-based bin positions) of the set bits.

    Bin i (0-based) maps to the nonzero field element i + 1 of GF(2^m),
    so a parity bitmap of length n = 2^m - 1 injects into the field.
    """
    return np.nonzero(parity)[0].astype(np.int64) + 1


def split_by_hash(values: np.ndarray, salt: int, ways: int = 3) -> list[np.ndarray]:
    """Partition an element array into ``ways`` branches by hash value."""
    branch = split_indices(values, salt, ways)
    return [values[branch == b] for b in range(ways)]
