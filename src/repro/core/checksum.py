"""The set checksum ``c(S)`` of §2.2.3.

``c(S)`` is the sum of all elements, viewed as integers, modulo ``|U|``.
The paper picks this function because (a) '+' is a very different operation
from the XOR used in recovery, making false verifications nearly
uncorrelated with reconciliation errors, and (b) it is incrementally
computable.  Its length is ``log|U|`` bits — the same as one element.
"""

from __future__ import annotations

import numpy as np


def set_checksum(values: np.ndarray, log_u: int = 32) -> int:
    """``(sum of elements) mod 2^log_u`` over an array of elements.

    The accumulation wraps modulo 2^64, which is harmless because
    ``2^log_u`` divides ``2^64`` for every supported signature length.
    """
    if len(values) == 0:
        return 0
    total = int(np.asarray(values, dtype=np.uint64).sum(dtype=np.uint64))
    return total & ((1 << log_u) - 1)


def checksum_update(
    checksum: int, toggled: np.ndarray, sign: int, log_u: int = 32
) -> int:
    """Incrementally add (+1) or remove (-1) elements from a checksum."""
    mask = (1 << log_u) - 1
    delta = (
        int(np.asarray(toggled, dtype=np.uint64).sum(dtype=np.uint64))
        if len(toggled)
        else 0
    )
    if sign >= 0:
        return (checksum + delta) & mask
    return (checksum - delta) & mask
