"""MSet-XOR-Hash — incremental multiset hashing (§2.2.3, [10]).

The plain-sum checksum admits a ~2^-log|U| false-verification rate, which
§2.2.3 deems acceptable for most applications.  For mission-critical uses
without a built-in Merkle tree, the paper suggests checking
``H(A xor D_hat) == H(B)`` with a one-way *multiset* hash such as
MSet-XOR-Hash [Clarke et al., ASIACRYPT 2003]:

    H(S) = XOR over s in S of F(s)

with F a wide one-way function (here: 256 bits built from four seeded
xxHash64 passes).  The XOR structure makes H incrementally updatable —
adding or removing an element is one F evaluation — and the 256-bit width
drives collision probability to ~2^-256 at a constant communication cost.

This module is the optional stronger verifier; the protocol's default
remains the paper's log|U|-bit sum checksum.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.hashing.families import SaltedHash
from repro.utils.seeds import derive_seed

#: output width in 64-bit words (256 bits total)
_WORDS = 4


class MSetXorHash:
    """Incremental 256-bit multiset hash.

    >>> h = MSetXorHash(seed=1)
    >>> a = h.hash_set([1, 2, 3])
    >>> b = h.update(h.update(h.hash_set([1, 2]), 3, +1), 0, 0)  # no-op add
    >>> a == h.update(h.hash_set([1, 2]), 3, +1)
    True
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._lanes = [
            SaltedHash(derive_seed(seed, "mset-lane", i)) for i in range(_WORDS)
        ]

    def _element_words(self, value: int) -> tuple[int, ...]:
        return tuple(lane(value) for lane in self._lanes)

    def hash_set(self, values: Iterable[int]) -> tuple[int, ...]:
        """Hash a whole (multi)set."""
        arr = np.fromiter((int(v) for v in values), dtype=np.uint64)
        if len(arr) == 0:
            return (0,) * _WORDS
        return tuple(
            int(np.bitwise_xor.reduce(lane.hash_vec(arr))) for lane in self._lanes
        )

    def update(
        self, digest: tuple[int, ...], value: int, sign: int
    ) -> tuple[int, ...]:
        """Add (sign=+1) or remove (sign=-1) one element; XOR self-inverse,
        so the two operations coincide.  ``sign=0`` is a no-op."""
        if sign == 0:
            return digest
        words = self._element_words(value)
        return tuple(d ^ w for d, w in zip(digest, words))

    @staticmethod
    def digest_bytes() -> int:
        """Wire size of a digest."""
        return 8 * _WORDS
