"""Four-wise independent hash family over GF(p), p = 2^61 - 1.

The Tug-of-War estimator's unbiasedness and variance proofs (paper §6.1,
Appendix A, Fact 1) require a *four-wise independent* ±1 family.  The
classical construction is a uniformly random degree-3 polynomial over a
prime field, mapped to ±1 by one output bit [Wegman & Carter].

We use the Mersenne prime p = 2^61 - 1, which admits fast modular reduction
(``2^61 ≡ 1``), and evaluate the polynomial with numpy using 32-bit limb
decomposition so that no intermediate exceeds 64 bits.  A scalar pure-int
reference (:func:`mulmod_p61`) backs the hypothesis cross-validation tests.
"""

from __future__ import annotations

import numpy as np

from repro.utils.seeds import spawn_rng

P61 = (1 << 61) - 1
_MASK29 = (1 << 29) - 1
_MASK61 = (1 << 61) - 1


def mulmod_p61(a: int, b: int) -> int:
    """``(a * b) mod (2^61 - 1)`` — scalar reference implementation."""
    return (a * b) % P61


def _fold61(x: np.ndarray) -> np.ndarray:
    """Fold a (< 2^64) value mod 2^61-1 using 2^61 ≡ 1."""
    x = (x >> np.uint64(61)) + (x & np.uint64(_MASK61))
    x = (x >> np.uint64(61)) + (x & np.uint64(_MASK61))
    return np.where(x >= np.uint64(P61), x - np.uint64(P61), x)


def mulmod_p61_vec(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Vectorized ``(a * b) mod (2^61 - 1)`` for ``uint64`` arrays ``< p``.

    Decomposes ``a = aH * 2^32 + aL`` and ``b = bH * 2^32 + bL`` with
    ``aH, bH < 2^29``; every partial product then fits in 64 bits:

    * ``aH*bH < 2^58``   — contributes ``aH*bH * 2^64 ≡ aH*bH * 8 (mod p)``
    * ``aH*bL + aL*bH < 2^62`` — contributes ``mid * 2^32``
    * ``aL*bL < 2^64``   — folded directly.
    """
    a = np.asarray(a, dtype=np.uint64)
    b = np.asarray(b, dtype=np.uint64)
    a_hi = a >> np.uint64(32)
    a_lo = a & np.uint64(0xFFFFFFFF)
    b_hi = b >> np.uint64(32)
    b_lo = b & np.uint64(0xFFFFFFFF)

    top = _fold61(a_hi * b_hi) << np.uint64(3)  # * 2^64 ≡ * 8, < 2^64
    mid = a_hi * b_lo + a_lo * b_hi  # < 2^62, no overflow
    # mid * 2^32 = (mid >> 29) * 2^61 + (mid & MASK29) * 2^32
    #            ≡ (mid >> 29)        + (mid & MASK29) << 32   (mod p)
    mid_red = (mid >> np.uint64(29)) + ((mid & np.uint64(_MASK29)) << np.uint64(32))
    lo = a_lo * b_lo  # < 2^64, wraps are impossible

    total = _fold61(top) + _fold61(mid_red)  # each < p, sum < 2^62
    total = _fold61(total + _fold61(lo))
    return total


class FourWiseHash:
    """A four-wise independent hash ``U -> {0, .., p-1}`` and its ±1 view.

    ``h(x) = ((c3*x + c2)*x + c1)*x + c0 mod p`` with uniformly random
    coefficients; :meth:`signs` maps to ±1 via the low output bit.

    >>> f = FourWiseHash(seed=3)
    >>> int(f.signs(np.array([1, 2, 3], dtype=np.uint64)).sum()) in (-3, -1, 1, 3)
    True
    """

    __slots__ = ("c0", "c1", "c2", "c3")

    def __init__(self, seed: int) -> None:
        rng = spawn_rng(seed, "fourwise")
        c = rng.integers(0, P61, size=4, dtype=np.uint64)
        self.c0, self.c1, self.c2, self.c3 = (int(v) for v in c)

    def __call__(self, x: int) -> int:
        """Scalar evaluation (reference path)."""
        x %= P61
        acc = self.c3
        for c in (self.c2, self.c1, self.c0):
            acc = (acc * x + c) % P61
        return acc

    def hash_vec(self, xs: np.ndarray) -> np.ndarray:
        """Vectorized evaluation over a ``uint64`` array (values ``< p``)."""
        xs = np.asarray(xs, dtype=np.uint64)
        acc = np.full(xs.shape, self.c3, dtype=np.uint64)
        for c in (self.c2, self.c1, self.c0):
            acc = mulmod_p61_vec(acc, xs)
            acc = _fold61(acc + np.uint64(c))
        return acc

    def signs(self, xs: np.ndarray) -> np.ndarray:
        """±1 values (``int64``) for an array of keys."""
        bits = self.hash_vec(xs) & np.uint64(1)
        return np.where(bits == 1, np.int64(1), np.int64(-1))
