"""Pure-Python port of xxHash (32- and 64-bit variants).

The reference PBS implementation uses the xxHash C library [Collet] for all
hashing.  This is a from-scratch port of the algorithm operating on
``bytes``; it is used where a single high-quality seedable hash of an
arbitrary byte string is needed (and as a specification reference for the
fast vectorized family in :mod:`repro.hashing.families`).

The implementation follows the published algorithm: stripe accumulation,
merge, length injection, tail processing, and the final avalanche.
"""

from __future__ import annotations

import struct

_MASK32 = 0xFFFFFFFF
_MASK64 = 0xFFFFFFFFFFFFFFFF

_P32_1 = 2654435761
_P32_2 = 2246822519
_P32_3 = 3266489917
_P32_4 = 668265263
_P32_5 = 374761393

_P64_1 = 11400714785074694791
_P64_2 = 14029467366897019727
_P64_3 = 1609587929392839161
_P64_4 = 9650029242287828579
_P64_5 = 2870177450012600261


def _rotl32(x: int, r: int) -> int:
    return ((x << r) | (x >> (32 - r))) & _MASK32


def _rotl64(x: int, r: int) -> int:
    return ((x << r) | (x >> (64 - r))) & _MASK64


def _round32(acc: int, lane: int) -> int:
    acc = (acc + lane * _P32_2) & _MASK32
    return (_rotl32(acc, 13) * _P32_1) & _MASK32


def _round64(acc: int, lane: int) -> int:
    acc = (acc + lane * _P64_2) & _MASK64
    return (_rotl64(acc, 31) * _P64_1) & _MASK64


def _merge64(acc: int, val: int) -> int:
    acc ^= _round64(0, val)
    return (acc * _P64_1 + _P64_4) & _MASK64


def xxh32(data: bytes, seed: int = 0) -> int:
    """xxHash32 of ``data`` with ``seed``; returns a 32-bit integer."""
    seed &= _MASK32
    n = len(data)
    pos = 0
    if n >= 16:
        v1 = (seed + _P32_1 + _P32_2) & _MASK32
        v2 = (seed + _P32_2) & _MASK32
        v3 = seed
        v4 = (seed - _P32_1) & _MASK32
        limit = n - 16
        while pos <= limit:
            l1, l2, l3, l4 = struct.unpack_from("<IIII", data, pos)
            v1 = _round32(v1, l1)
            v2 = _round32(v2, l2)
            v3 = _round32(v3, l3)
            v4 = _round32(v4, l4)
            pos += 16
        h = (
            _rotl32(v1, 1) + _rotl32(v2, 7) + _rotl32(v3, 12) + _rotl32(v4, 18)
        ) & _MASK32
    else:
        h = (seed + _P32_5) & _MASK32
    h = (h + n) & _MASK32
    while pos + 4 <= n:
        (lane,) = struct.unpack_from("<I", data, pos)
        h = (h + lane * _P32_3) & _MASK32
        h = (_rotl32(h, 17) * _P32_4) & _MASK32
        pos += 4
    while pos < n:
        h = (h + data[pos] * _P32_5) & _MASK32
        h = (_rotl32(h, 11) * _P32_1) & _MASK32
        pos += 1
    h ^= h >> 15
    h = (h * _P32_2) & _MASK32
    h ^= h >> 13
    h = (h * _P32_3) & _MASK32
    h ^= h >> 16
    return h


def xxh64(data: bytes, seed: int = 0) -> int:
    """xxHash64 of ``data`` with ``seed``; returns a 64-bit integer."""
    seed &= _MASK64
    n = len(data)
    pos = 0
    if n >= 32:
        v1 = (seed + _P64_1 + _P64_2) & _MASK64
        v2 = (seed + _P64_2) & _MASK64
        v3 = seed
        v4 = (seed - _P64_1) & _MASK64
        limit = n - 32
        while pos <= limit:
            l1, l2, l3, l4 = struct.unpack_from("<QQQQ", data, pos)
            v1 = _round64(v1, l1)
            v2 = _round64(v2, l2)
            v3 = _round64(v3, l3)
            v4 = _round64(v4, l4)
            pos += 32
        h = (
            _rotl64(v1, 1) + _rotl64(v2, 7) + _rotl64(v3, 12) + _rotl64(v4, 18)
        ) & _MASK64
        h = _merge64(h, v1)
        h = _merge64(h, v2)
        h = _merge64(h, v3)
        h = _merge64(h, v4)
    else:
        h = (seed + _P64_5) & _MASK64
    h = (h + n) & _MASK64
    while pos + 8 <= n:
        (lane,) = struct.unpack_from("<Q", data, pos)
        h ^= _round64(0, lane)
        h = (_rotl64(h, 27) * _P64_1 + _P64_4) & _MASK64
        pos += 8
    if pos + 4 <= n:
        (lane,) = struct.unpack_from("<I", data, pos)
        h ^= (lane * _P64_1) & _MASK64
        h = (_rotl64(h, 23) * _P64_2 + _P64_3) & _MASK64
        pos += 4
    while pos < n:
        h ^= (data[pos] * _P64_5) & _MASK64
        h = (_rotl64(h, 11) * _P64_1) & _MASK64
        pos += 1
    h ^= h >> 33
    h = (h * _P64_2) & _MASK64
    h ^= h >> 29
    h = (h * _P64_3) & _MASK64
    h ^= h >> 32
    return h
