"""Salted uniform hash family with a vectorized bulk path.

PBS needs many mutually independent hash functions: one per reconciliation
round per group (§2.4), one for grouping (§3), several per IBF / Bloom
filter.  :class:`SaltedHash` models one member of the family; distinct salts
give (empirically) independent functions.

The mixer is splitmix64's finalizer, a well-studied 64-bit permutation with
full avalanche; salting XORs the key with the salt *and* adds a second salt
derivative so that related salts do not produce related functions.  The bulk
path operates on numpy ``uint64`` arrays and is the workhorse behind
partitioning millions of elements per experiment.
"""

from __future__ import annotations

import numpy as np

from repro.utils.seeds import derive_seed

_MASK64 = (1 << 64) - 1
_C1 = 0xBF58476D1CE4E5B9
_C2 = 0x94D049BB133111EB
_GOLDEN = 0x9E3779B97F4A7C15


def mix64(x: int) -> int:
    """splitmix64 finalizer of a 64-bit integer (scalar reference)."""
    x = (x + _GOLDEN) & _MASK64
    x ^= x >> 30
    x = (x * _C1) & _MASK64
    x ^= x >> 27
    x = (x * _C2) & _MASK64
    x ^= x >> 31
    return x


def mix64_vec(x: np.ndarray) -> np.ndarray:
    """Vectorized :func:`mix64` over a ``uint64`` array."""
    x = x.astype(np.uint64, copy=True)
    x += np.uint64(_GOLDEN)
    x ^= x >> np.uint64(30)
    x *= np.uint64(_C1)
    x ^= x >> np.uint64(27)
    x *= np.uint64(_C2)
    x ^= x >> np.uint64(31)
    return x


class SaltedHash:
    """One member of the salted hash family.

    >>> h1, h2 = SaltedHash(1), SaltedHash(2)
    >>> h1(42) != h2(42)
    True
    """

    __slots__ = ("salt", "_salt2")

    def __init__(self, salt: int) -> None:
        self.salt = salt & _MASK64
        # A second, derived salt is mixed in multiplicatively so that
        # functions with adjacent salts are unrelated.
        self._salt2 = derive_seed(self.salt, "salted-hash-2") | 1

    def __call__(self, x: int) -> int:
        """64-bit hash of integer key ``x``."""
        return mix64((x ^ self.salt) * self._salt2 & _MASK64)

    def hash_vec(self, xs: np.ndarray) -> np.ndarray:
        """Vectorized 64-bit hashes of a ``uint64`` array of keys."""
        xs = np.asarray(xs, dtype=np.uint64)
        return mix64_vec((xs ^ np.uint64(self.salt)) * np.uint64(self._salt2))

    def bucket(self, x: int, n_buckets: int) -> int:
        """Hash ``x`` into ``[0, n_buckets)``."""
        return self(x) % n_buckets

    def bucket_vec(self, xs: np.ndarray, n_buckets: int) -> np.ndarray:
        """Vectorized :meth:`bucket`; returns ``int64`` bucket indices."""
        return (self.hash_vec(xs) % np.uint64(n_buckets)).astype(np.int64)

    def bit(self, x: int) -> int:
        """A single unbiased hash bit of ``x`` (the low bit)."""
        return self(x) & 1


def bucket_of(x: int, salt: int, n_buckets: int) -> int:
    """Convenience: one-off bucketing without constructing a family member."""
    return SaltedHash(salt).bucket(x, n_buckets)
