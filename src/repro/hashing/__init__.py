"""Hash functions and hash families.

The paper builds every randomized component on seedable uniform hashing (it
uses the xxHash library [11]).  We provide:

* :mod:`repro.hashing.xxhash` — a faithful pure-Python port of xxHash32 /
  xxHash64 for one-off hashing;
* :mod:`repro.hashing.families` — a splitmix64-based salted family with a
  numpy-vectorized bulk path, used for all partitioning (bins, groups,
  IBF cells, Bloom filters);
* :mod:`repro.hashing.fourwise` — a four-wise independent family (degree-3
  polynomials over GF(2^61 - 1)) required by the Tug-of-War estimator (§6).
"""

from repro.hashing.families import SaltedHash, bucket_of, mix64, mix64_vec
from repro.hashing.fourwise import FourWiseHash, mulmod_p61, mulmod_p61_vec
from repro.hashing.xxhash import xxh32, xxh64

__all__ = [
    "SaltedHash",
    "bucket_of",
    "mix64",
    "mix64_vec",
    "FourWiseHash",
    "mulmod_p61",
    "mulmod_p61_vec",
    "xxh32",
    "xxh64",
]
