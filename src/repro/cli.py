"""Command-line interface: reconcile signature files, serve, or sync.

Each input file lists one element per line — either decimal or 0x-hex
32-bit signatures (the format ``sha1sum | cut`` pipelines produce after
truncation).  Five modes:

    python -m repro alice.txt bob.txt            # in-process reconcile
    python -m repro serve --set inv=bob.txt      # reconciliation server
    python -m repro sync alice.txt --set inv     # client against a server
    python -m repro rebalance --data-dir d --shards 4   # resize a data dir
    python -m repro loadgen --rate 50 --duration 30     # open-loop load test

The in-process mode reports the symmetric difference and the wire/round
cost PBS would have paid, and can compare schemes (``--scheme ddigest``).
``serve``/``sync`` run the same protocol over real sockets, many sessions
at a time (see :mod:`repro.service`).  ``rebalance`` migrates a stopped
cluster data directory to a new shard count without losing a set
(see :mod:`repro.cluster.rebalance`).  ``loadgen`` offers Poisson
traffic at a fixed rate against a running server and reports
client-side latency, shed rate, and SLO grades
(see :mod:`repro.loadgen`).
"""

from __future__ import annotations

import argparse
import asyncio
import sys
from pathlib import Path

from repro.baselines import (
    DifferenceDigestProtocol,
    GrapheneProtocol,
    PinSketchProtocol,
    PinSketchWPProtocol,
)
from repro.core.protocol import PBSProtocol

SCHEMES = {
    "pbs": PBSProtocol,
    "ddigest": DifferenceDigestProtocol,
    "graphene": GrapheneProtocol,
    "pinsketch": PinSketchProtocol,
    "pinsketch-wp": PinSketchWPProtocol,
}

DEFAULT_PORT = 7171


def load_signatures(path: Path) -> set[int]:
    """Parse one signature per line (decimal or 0x-hex); '#' comments ok.

    Rejects malformed lines, values outside the nonzero 32-bit universe,
    and duplicates — each with the offending line number, so a bad export
    pipeline is caught at the door instead of silently skewing d.
    """
    seen: dict[int, int] = {}
    for line_no, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            value = int(line, 16 if line.lower().startswith("0x") else 10)
        except ValueError:
            raise SystemExit(
                f"{path}:{line_no}: not a signature: {line!r}"
            ) from None
        if not 1 <= value < (1 << 32):
            raise SystemExit(
                f"{path}:{line_no}: {value} outside the nonzero 32-bit "
                f"universe (signatures must satisfy 1 <= v < 2^32)"
            )
        if value in seen:
            raise SystemExit(
                f"{path}:{line_no}: duplicate signature {line!r} "
                f"(first seen on line {seen[value]})"
            )
        seen[value] = line_no
    return set(seen)


# -- parsers ------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PBS set reconciliation (Gong et al., VLDB 2020)",
    )
    parser.add_argument("file_a", nargs="?", type=Path, help="Alice's signatures")
    parser.add_argument("file_b", nargs="?", type=Path, help="Bob's signatures")
    parser.add_argument(
        "--scheme", choices=sorted(SCHEMES), default="pbs",
        help="reconciliation scheme (default: pbs)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--rounds", type=int, default=3,
        help="round budget (0 = unlimited; default 3)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only the difference"
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print a machine-readable result instead of difference lines",
    )
    parser.add_argument(
        "--selftest", action="store_true",
        help="run a built-in instance instead of reading files",
    )
    return parser


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the reconciliation server (see repro.service)",
    )
    parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (default 127.0.0.1)"
    )
    parser.add_argument(
        "--port", type=int, default=DEFAULT_PORT,
        help=f"bind port, 0 = ephemeral (default {DEFAULT_PORT})",
    )
    parser.add_argument(
        "--set", dest="sets", action="append", default=[], metavar="NAME=FILE",
        help="preload (or replace) a named set from a signature file "
             "(repeatable; recovered sets not named here are kept)",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="shard workers behind the consistent-hash router (default 1; "
             "must be explicit with --rebalance)",
    )
    parser.add_argument(
        "--workers", choices=("inline", "proc"), default="inline",
        help="shard executor: 'inline' runs shard workers as asyncio "
             "tasks on one core (default); 'proc' runs one subprocess "
             "per shard so BCH decode CPU scales across cores",
    )
    parser.add_argument(
        "--data-dir", type=Path, default=None, metavar="DIR",
        help="persist apply-diffs under DIR and recover named sets from "
             "it on startup (one subdirectory per shard)",
    )
    parser.add_argument(
        "--storage", choices=("journal", "sqlite"), default=None,
        help="per-shard storage backend (requires --data-dir): 'journal' "
             "keeps every set in RAM behind an append-only journal "
             "(default); 'sqlite' keeps sets in one WAL-mode SQLite file "
             "per shard and materializes them lazily, for stores bigger "
             "than RAM.  A directory committed to the other backend "
             "refuses to start — convert it with 'repro rebalance "
             "--storage' (or --rebalance here)",
    )
    parser.add_argument(
        "--replicas", type=int, default=0, metavar="R",
        help="keep R follower replicas per shard, fed by logical-op log "
             "shipping from the primary (requires --data-dir; default 0 "
             "= no replication).  A primary that stays down past its "
             "respawn budget fails over to its most-advanced follower",
    )
    parser.add_argument(
        "--replication", choices=("async", "quorum"), default="async",
        help="durability mode with --replicas: 'async' acks a mutation "
             "once the primary's own commit is durable (default); "
             "'quorum' holds the ack until a majority of the R+1 "
             "replicas hold it durably",
    )
    parser.add_argument(
        "--promote-after", type=int, default=2, metavar="N",
        help="with --replicas, fail a shard over to a follower after N "
             "consecutive failed respawns of its primary worker "
             "(default 2)",
    )
    parser.add_argument(
        "--max-sessions", type=int, default=0, metavar="N",
        help="cap concurrent sessions per shard; excess is shed with a "
             "RETRY frame (default 0 = unlimited)",
    )
    parser.add_argument(
        "--max-decode-queue", type=int, default=0, metavar="N",
        help="cap queued decode submissions per shard (backpressure; "
             "default 0 = unlimited)",
    )
    parser.add_argument(
        "--fsync", action="store_true",
        help="fsync every journal append (durable against power loss, "
             "not just process crash)",
    )
    parser.add_argument(
        "--rebalance", action="store_true",
        help="before serving, migrate --data-dir to --shards shards if "
             "its committed layout differs (default: refuse to start on "
             "a topology mismatch)",
    )
    parser.add_argument(
        "--window-ms", type=float, default=2.0,
        help="decode-coalescing window in milliseconds (default 2.0)",
    )
    parser.add_argument(
        "--no-coalesce", action="store_true",
        help="decode each session separately (benchmarking baseline)",
    )
    parser.add_argument(
        "--no-create", action="store_true",
        help="reject syncs against set names that were not preloaded",
    )
    parser.add_argument(
        "--metrics-every", type=float, default=0.0, metavar="SECONDS",
        help="periodically print a JSON metrics snapshot to stderr",
    )
    parser.add_argument(
        "--admin-port", type=int, default=None, metavar="PORT",
        help="also serve an admin HTTP endpoint on PORT (0 = ephemeral): "
             "/metrics (Prometheus), /healthz (liveness; non-200 while "
             "any shard worker is down), /varz (JSON snapshot), "
             "/timeseries (ring of recent metric windows)",
    )
    parser.add_argument(
        "--admin-host", default="127.0.0.1", metavar="HOST",
        help="bind address for the admin endpoint (default 127.0.0.1; "
             "the admin surface is unauthenticated, so a non-loopback "
             "HOST exposes /varz and /timeseries to that network)",
    )
    parser.add_argument(
        "--window-s", type=float, default=5.0, metavar="SECONDS",
        help="windowed-metrics interval: every SECONDS one delta window "
             "(per-second rates, delta latency quantiles) is closed into "
             "the /timeseries ring (default 5.0)",
    )
    parser.add_argument(
        "--slo-p99-ms", type=float, default=None, metavar="MS",
        help="grade each closed window against a session-duration p99 "
             "objective of MS milliseconds; burn state rides /metrics, "
             "/varz, and /timeseries",
    )
    parser.add_argument(
        "--slo-shed-rate", type=float, default=None, metavar="FRACTION",
        help="grade each closed window against a shed-rate objective "
             "(sheds over session outcomes; e.g. 0.01)",
    )
    parser.add_argument(
        "--trace-dir", type=Path, default=None, metavar="DIR",
        help="write per-process span JSONL files under DIR (server and, "
             "with --workers proc, each shard worker); merge with "
             "'python -m repro.obs.trace DIR' for chrome://tracing",
    )
    parser.add_argument(
        "--trace-max-mb", type=float, default=None, metavar="MB",
        help="rotate each per-process trace file once it passes MB "
             "megabytes (one-deep, so at most ~2xMB of the newest spans "
             "per process; default unbounded)",
    )
    parser.add_argument(
        "--log-level", default="info",
        choices=("debug", "info", "warning", "error"),
        help="log verbosity for the 'repro' component loggers "
             "(default info)",
    )
    parser.add_argument(
        "--log-json", action="store_true",
        help="emit log lines as JSON objects instead of human text",
    )
    parser.add_argument(
        "--slow-op-ms", type=float, default=None, metavar="MS",
        help="WARN on storage commits / decode batches slower than MS "
             "milliseconds (default 100)",
    )
    return parser


def build_rebalance_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro rebalance",
        description="Migrate a cluster data directory to a new shard "
                    "count and/or storage backend (offline; stop the "
                    "server first). Replays every shard through its "
                    "committed backend, stages moved sets into their new "
                    "shard directories through the target backend, and "
                    "commits with an atomic manifest epoch bump — a "
                    "crash at any point leaves the old layout "
                    "recoverable and a rerun is idempotent.",
    )
    parser.add_argument(
        "--data-dir", type=Path, required=True, metavar="DIR",
        help="the cluster data directory to migrate",
    )
    parser.add_argument(
        "--shards", type=int, required=True, metavar="N",
        help="target shard count",
    )
    parser.add_argument(
        "--storage", choices=("journal", "sqlite"), default=None,
        help="also convert the shard files to this storage backend "
             "(default: keep the directory's committed backend)",
    )
    parser.add_argument(
        "--vnodes", type=int, default=None, metavar="V",
        help="virtual nodes per shard in the target layout (default: "
             "128, matching what 'repro serve' runs — a layout committed "
             "with custom vnodes is migrated back to a servable one)",
    )
    parser.add_argument(
        "--no-fsync", action="store_true",
        help="skip fsyncs while staging (faster; a machine crash during "
             "the rebalance may then require rerunning it)",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print the full machine-readable move plan and outcome",
    )
    return parser


def build_sync_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sync",
        description="Sync a signature file against a reconciliation server",
    )
    parser.add_argument("file", type=Path, help="local signatures")
    parser.add_argument(
        "--set", dest="set_name", default="default",
        help="server-side set name (default: default)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--rounds", type=int, default=0,
        help="round budget (0 = server design target; default 0)",
    )
    parser.add_argument(
        "--one-way", action="store_true",
        help="only learn the difference; do not push A \\ B to the server",
    )
    parser.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="sync N times over one connection (re-reading FILE each "
             "pass; default 1)",
    )
    parser.add_argument(
        "--interval", type=float, default=0.0, metavar="SECONDS",
        help="sleep between repeated syncs (default 0)",
    )
    parser.add_argument(
        "--retries", type=int, default=3, metavar="N",
        help="reconnect attempts (jittered backoff) when the server "
             "sheds the session with RETRY (default 3)",
    )
    parser.add_argument(
        "--write", action="store_true",
        help="rewrite FILE with the union after a successful sync",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only the difference"
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print a machine-readable result instead of difference lines",
    )
    parser.add_argument(
        "--trace-dir", type=Path, default=None, metavar="DIR",
        help="write this client's span JSONL under DIR; point it at the "
             "server's --trace-dir to see one session across processes",
    )
    parser.add_argument(
        "--trace-max-mb", type=float, default=None, metavar="MB",
        help="rotate the span file once it passes MB megabytes "
             "(one-deep; default unbounded)",
    )
    return parser


def build_loadgen_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro loadgen",
        description="Open-loop load generator: offer Poisson traffic at "
                    "a target rate against a running 'repro serve', with "
                    "Zipf set popularity and per-session mutation churn. "
                    "Latency is charged from each session's intended "
                    "start (no coordinated omission); the run emits a "
                    "versioned JSON report with latency quantiles, shed "
                    "rate, convergence, a per-window timeseries, and SLO "
                    "grades.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT)
    parser.add_argument(
        "--rate", type=float, default=20.0, metavar="PER_S",
        help="offered session arrival rate, Poisson (default 20/s)",
    )
    parser.add_argument(
        "--duration", type=float, default=10.0, metavar="SECONDS",
        help="scheduling horizon; in-flight sessions then drain "
             "(default 10)",
    )
    parser.add_argument(
        "--sets", type=int, default=16, metavar="N",
        help="set population size (default 16)",
    )
    parser.add_argument(
        "--zipf-s", type=float, default=1.1, metavar="S",
        help="set-popularity skew exponent; 0 = uniform (default 1.1)",
    )
    parser.add_argument(
        "--diff", default="fixed:8", metavar="SPEC",
        help="mutations per session: fixed:N, uniform:LO:HI, or "
             "geometric:MEAN (default fixed:8)",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="random seed (fixes schedule, popularity, and churn)",
    )
    parser.add_argument(
        "--max-in-flight", type=int, default=64, metavar="N",
        help="driver-side concurrent-session cap; waiting for a slot "
             "charges the session's latency (default 64)",
    )
    parser.add_argument(
        "--connect-timeout", type=float, default=5.0, metavar="SECONDS",
        help="per-session dial + handshake deadline (default 5)",
    )
    parser.add_argument(
        "--window-s", type=float, default=2.0, metavar="SECONDS",
        help="progress/SLO window interval (default 2)",
    )
    parser.add_argument(
        "--slo-p99-ms", type=float, default=None, metavar="MS",
        help="per-window session-latency p99 objective; any breached "
             "window flips the exit code to 1",
    )
    parser.add_argument(
        "--slo-shed-rate", type=float, default=None, metavar="FRACTION",
        help="per-window shed-rate objective (e.g. 0.01)",
    )
    parser.add_argument(
        "--drain-s", type=float, default=30.0, metavar="SECONDS",
        help="wait for stragglers after the horizon before abandoning "
             "them (default 30)",
    )
    parser.add_argument(
        "--set-prefix", default="lg",
        help="server-side set name prefix (default lg)",
    )
    parser.add_argument(
        "--output", type=Path, default=None, metavar="FILE",
        help="write the JSON report to FILE (default: stdout)",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress the per-window progress lines on stderr",
    )
    return parser


# -- subcommands --------------------------------------------------------------

def _trace_max_bytes(max_mb: float | None) -> int | None:
    """``--trace-max-mb`` to bytes for :func:`configure_tracing`."""
    return int(max_mb * 1024 * 1024) if max_mb else None


def build_check_parser() -> argparse.ArgumentParser:
    from repro.devtools.check import build_parser as build

    return build()


def cmd_check(argv: list[str]) -> int:
    """Static-analysis gate: ``repro check`` = ``python -m
    repro.devtools.check`` (exit 0 clean, 1 new findings, 2 tool
    error)."""
    from repro.devtools.check import main as check_main

    return check_main(argv)


def cmd_rebalance(argv: list[str]) -> int:
    import json as _json

    from repro.cluster import DEFAULT_VNODES, rebalance
    from repro.errors import ReproError

    args = build_rebalance_parser().parse_args(argv)
    if args.shards < 1:
        print(f"error: --shards must be >= 1, got {args.shards}",
              file=sys.stderr)
        return 2
    if args.vnodes is not None and args.vnodes < 1:
        print(f"error: --vnodes must be >= 1, got {args.vnodes}",
              file=sys.stderr)
        return 2
    try:
        # default to the layout `repro serve` will actually request —
        # defaulting to the *committed* vnodes would make the mismatch
        # error's suggested remediation a no-op loop for a directory
        # committed with custom vnodes
        vnodes = args.vnodes if args.vnodes is not None else DEFAULT_VNODES
        result = rebalance(
            args.data_dir, args.shards, vnodes=vnodes,
            fsync=not args.no_fsync, storage=args.storage,
        )
    except (ReproError, OSError) as exc:
        print(f"error: cannot rebalance: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(_json.dumps(result.to_dict(), indent=2))
    else:
        print(f"# {result.summary()}", file=sys.stderr)
    return 0


def cmd_serve(argv: list[str]) -> int:
    from repro.cluster import (
        AdmissionController,
        ClusterConfig,
        open_cluster,
        rebalance,
    )
    from repro.errors import ReproError
    from repro.obs.admin import AdminServer
    from repro.obs.logs import (
        configure_logging,
        get_logger,
        set_slow_op_threshold,
    )
    from repro.obs.metrics import SloTracker, WindowedMetrics
    from repro.obs.trace import configure_tracing
    from repro.service import DecodeCoalescer, ReconciliationServer, SetStore
    from repro.service.metrics import merged_histograms

    args = build_serve_parser().parse_args(argv)
    configure_logging(args.log_level, args.log_json)
    log = get_logger("serve")
    if args.slow_op_ms is not None:
        set_slow_op_threshold(args.slow_op_ms / 1000.0)
    if args.window_s <= 0:
        print(f"error: --window-s must be > 0, got {args.window_s}",
              file=sys.stderr)
        return 2
    if args.trace_dir is not None:
        configure_tracing(
            args.trace_dir, role="server",
            max_bytes=_trace_max_bytes(args.trace_max_mb),
        )
    if args.rebalance and args.shards is None:
        # the default of 1 must never drive a migration: forgetting
        # --shards would silently rewrite a sharded cluster down to one
        # shard — the exact forgotten-flag mistake the manifest's
        # fail-fast default exists to catch
        print("error: --rebalance requires an explicit --shards",
              file=sys.stderr)
        return 2
    shards = args.shards if args.shards is not None else 1
    if shards < 1:
        print(f"error: --shards must be >= 1, got {shards}",
              file=sys.stderr)
        return 2
    if args.max_sessions < 0 or args.max_decode_queue < 0:
        # -1 is not "unlimited" (0 is): a negative session cap would shed
        # every connection forever, a negative decode cap crashes asyncio
        print("error: --max-sessions/--max-decode-queue must be >= 0 "
              "(0 = unlimited)", file=sys.stderr)
        return 2
    if args.fsync and args.data_dir is None:
        # accepting it silently would promise durability while journaling
        # nothing at all
        print("error: --fsync requires --data-dir", file=sys.stderr)
        return 2
    if args.storage is not None and args.data_dir is None:
        # same trap: naming a backend while persisting nothing
        print("error: --storage requires --data-dir", file=sys.stderr)
        return 2
    storage = args.storage if args.storage is not None else "journal"
    if args.replicas < 0:
        print(f"error: --replicas must be >= 0, got {args.replicas}",
              file=sys.stderr)
        return 2
    if args.replicas and args.data_dir is None:
        # a follower IS a directory; without one there is nothing to
        # replicate into
        print("error: --replicas requires --data-dir", file=sys.stderr)
        return 2
    if args.replication != "async" and not args.replicas:
        # a quorum of one (the primary alone) would silently promise
        # replicated durability while providing none
        print("error: --replication quorum requires --replicas >= 1",
              file=sys.stderr)
        return 2
    if args.promote_after < 1:
        print(f"error: --promote-after must be >= 1, got "
              f"{args.promote_after}", file=sys.stderr)
        return 2
    if args.rebalance:
        if args.data_dir is None:
            print("error: --rebalance requires --data-dir", file=sys.stderr)
            return 2
        # opt-in migration before binding: a mismatched layout becomes a
        # journaled move instead of the default fail-fast refusal.  A
        # directory that does not exist yet has nothing to migrate —
        # startup initializes it below, so an always-pass---rebalance
        # deploy script works on first boot too.
        if args.data_dir.exists():
            try:
                result = rebalance(args.data_dir, shards,
                                   storage=args.storage)
            except (ReproError, OSError) as exc:
                print(f"error: cannot rebalance: {exc}", file=sys.stderr)
                return 2
            if result.changed:
                log.info(result.summary())
    preload: list[tuple[str, set[int]]] = []
    for spec in args.sets:
        name, sep, file_spec = spec.partition("=")
        if not sep or not name:
            print(f"error: --set wants NAME=FILE, got {spec!r}", file=sys.stderr)
            return 2
        preload.append((name, load_signatures(Path(file_spec))))

    # A cluster store (sharded, journaled, and/or multi-process) when
    # asked for one; the plain in-memory SetStore keeps the PR-2
    # single-tenant behavior.
    cluster = (
        shards > 1 or args.data_dir is not None or args.workers == "proc"
    )
    store = (
        open_cluster(
            args.data_dir,
            ClusterConfig(
                shards=shards,
                storage=storage,
                fsync=args.fsync,
                executor="subprocess" if args.workers == "proc" else "inline",
                replicas=args.replicas,
                replication=args.replication,
                promote_after=args.promote_after,
                worker_window_s=args.window_ms / 1000.0,
                worker_coalesce=not args.no_coalesce,
            ),
        )
        if cluster
        else SetStore()
    )
    admission = (
        AdmissionController(
            shards=shards,
            max_sessions=args.max_sessions,
            max_decode_queue=args.max_decode_queue,
        )
        if args.max_sessions or args.max_decode_queue
        else None
    )
    server = ReconciliationServer(
        store,
        host=args.host,
        port=args.port,
        coalescer=DecodeCoalescer(
            window_s=args.window_ms / 1000.0, enabled=not args.no_coalesce
        ),
        create_missing=not args.no_create,
        admission=admission,
    )

    # Windowed deltas + SLO grading over the server's own cumulative
    # counters: an asyncio ticker closes one window per --window-s into
    # the ring /timeseries serves; each closed window is graded when an
    # objective was set, and both ride the /varz snapshot.
    windowed = WindowedMetrics(interval_s=args.window_s)
    slo = SloTracker(p99_ms=args.slo_p99_ms, shed_rate=args.slo_shed_rate)

    def _window_tick() -> None:
        m = server.metrics
        window = windowed.tick(
            {
                "started": m.sessions_started,
                "sessions": m.sessions_completed,
                "failed": m.sessions_failed,
                "sheds": m.sessions_shed,
                "syncs": m.syncs_total,
            },
            merged_histograms(store.cluster_stats() if cluster else None),
        )
        if window is not None and slo.enabled:
            slo.grade(window)

    def _stats_args() -> tuple:
        return (
            store.stats(),
            admission.stats() if admission is not None else None,
            store.cluster_stats() if cluster else None,
            windowed.timeseries(),
            slo.state() if slo.enabled else None,
        )

    def _health() -> tuple[bool, dict]:
        """Liveness for /healthz: every shard must be able to take new
        sessions, and — under quorum replication — able to reach a
        write quorum (a shard that would time out every mutation is not
        healthy even though its worker is up).  Storage tail errors are
        *reported* (they describe what recovery truncated) but do not
        fail health — a shard that healed from a torn journal tail is
        serving correctly."""
        detail: dict = {
            "status": "ok",
            "active_sessions": server.metrics.active_sessions,
        }
        if not cluster:
            return True, detail
        ok = True
        shard_list = []
        for entry in store.cluster_stats()["per_shard"]:
            shard_id = entry.get("shard", -1)
            available = store.shard_available(shard_id)
            item = {
                "shard": shard_id,
                "available": available,
                "tail_error": entry.get("tail_error", ""),
            }
            repl = entry.get("replication")
            if repl is not None:
                item["quorum_ok"] = repl["quorum_ok"]
                available = available and repl["quorum_ok"]
            shard_list.append(item)
            ok = ok and available
        detail["shards"] = shard_list
        if not ok:
            detail["status"] = "degraded"
        return ok, detail

    serving = {"up": False}   # did the server actually come up?

    async def _serve() -> None:
        import signal as _signal
        from contextlib import suppress

        loop = asyncio.get_running_loop()
        # Graceful shutdown on SIGINT *and* SIGTERM (systemd stop, docker
        # stop, CI cleanup): stop accepting, drain the shard workers,
        # reap worker subprocesses, close the journals — never leave
        # orphaned children or un-flushed WAL tails behind.
        stop = asyncio.Event()
        handled: list = []
        for sig in (_signal.SIGINT, _signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
                handled.append(sig)
            except (NotImplementedError, RuntimeError):
                pass   # non-Unix event loop: KeyboardInterrupt still works
        if cluster:
            await store.start()
        heartbeat_task = None
        window_task = None
        admin = None
        # everything after store.start() runs under its try so a failed
        # bind or preload still drains the shard workers and closes the
        # journals instead of abandoning them to loop teardown
        try:
            for name, values in preload:
                result = store.create(name, values)
                if cluster:
                    await result
            await server.start()
            print(
                f"# serving on {server.host}:{server.port} "
                f"shards={shards} "
                f"workers={args.workers} "
                f"data_dir={args.data_dir or '-'} "
                f"storage={storage if args.data_dir else '-'} "
                f"sets={store.names() or '[]'}",
                file=sys.stderr,
                flush=True,
            )
            serving["up"] = True
            _window_tick()   # baseline; windows close from here on
            if args.admin_port is not None:
                admin = AdminServer(
                    varz=lambda: server.metrics.snapshot(*_stats_args()),
                    health=_health,
                    histograms=lambda: merged_histograms(
                        store.cluster_stats() if cluster else None
                    ),
                    timeseries=windowed.timeseries,
                    host=args.admin_host,
                    port=args.admin_port,
                )
                await admin.start()

            async def window_ticker() -> None:
                while True:
                    await asyncio.sleep(args.window_s)
                    _window_tick()

            # strong reference, like the heartbeat: the loop keeps
            # only weak ones
            window_task = asyncio.ensure_future(window_ticker())
            if args.metrics_every > 0:

                async def heartbeat() -> None:
                    while True:
                        await asyncio.sleep(args.metrics_every)
                        print(
                            server.metrics.to_json(*_stats_args(),
                                                   indent=None),
                            file=sys.stderr,
                            flush=True,
                        )

                # hold a strong reference: the loop keeps only weak ones
                heartbeat_task = asyncio.ensure_future(heartbeat())
            serve_task = asyncio.create_task(server.serve_forever())
            stop_task = asyncio.create_task(stop.wait())
            done, _ = await asyncio.wait(
                {serve_task, stop_task},
                return_when=asyncio.FIRST_COMPLETED,
            )
            if serve_task in done:
                stop_task.cancel()
                with suppress(asyncio.CancelledError):
                    await stop_task
                await serve_task   # propagate bind/accept errors
            else:
                log.info("shutdown signal received; draining")
                serve_task.cancel()
                with suppress(asyncio.CancelledError):
                    await serve_task
                await server.close()
        finally:
            if admin is not None:
                await admin.close()
            if heartbeat_task is not None:
                heartbeat_task.cancel()
            if window_task is not None:
                window_task.cancel()
            if cluster:
                await store.close()
            for sig in handled:
                loop.remove_signal_handler(sig)

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    except (ReproError, OSError) as exc:
        # startup failure (corrupt data dir, busy port, bad preload):
        # the usage-error convention, not a traceback + empty metrics
        print(f"error: cannot serve: {exc}", file=sys.stderr)
        return 2
    finally:
        if serving["up"]:
            print(server.metrics.to_json(*_stats_args()), file=sys.stderr)
    return 0


def cmd_sync(argv: list[str]) -> int:
    from repro.errors import ReproError
    from repro.service import ClientConnection, ServerBusy
    from repro.service.wire import backoff_or_raise

    args = build_sync_parser().parse_args(argv)
    if args.trace_dir is not None:
        from repro.obs.trace import configure_tracing

        configure_tracing(
            args.trace_dir, role="client",
            max_bytes=_trace_max_bytes(args.trace_max_mb),
        )
    if args.repeat < 1:
        print(f"error: --repeat must be >= 1, got {args.repeat}",
              file=sys.stderr)
        return 2
    # fail fast on a bad file before dialing; pass 1 reuses this load
    first_values = load_signatures(args.file)
    max_rounds = args.rounds if args.rounds > 0 else None

    def _connection() -> ClientConnection:
        return ClientConnection(
            args.host,
            args.port,
            set_name=args.set_name,
            seed=args.seed,
            bidirectional=not args.one_way,
        )

    async def _sync() -> bool:
        # admission control sheds with RETRY; honor it with jittered
        # backoff seeded by the server's own suggested delay.  The retry
        # budget is shared across the whole run: the server may also shed
        # a later pass of a --repeat connection (it re-admits per pass).
        attempts = 0

        async def connect_with_backoff() -> ClientConnection:
            nonlocal attempts
            while True:
                conn = _connection()
                try:
                    await conn.connect()
                    return conn
                except ServerBusy as busy:
                    await backoff_or_raise(busy, attempts, args.retries)
                    attempts += 1

        conn = await connect_with_backoff()
        all_ok = True
        try:
            pass_no = 1
            while pass_no <= args.repeat:
                # pass 1 reuses the fail-fast load; later passes re-read
                # because --write updates the file and external writers
                # may have appended signatures in the meantime
                values = (
                    first_values if pass_no == 1
                    else load_signatures(args.file)
                )
                try:
                    result = await conn.sync(values, max_rounds=max_rounds)
                except ServerBusy as busy:
                    # shed between passes; the server closed us — back
                    # off, reconnect, and redo this pass
                    await backoff_or_raise(busy, attempts, args.retries)
                    attempts += 1
                    conn = await connect_with_backoff()
                    continue
                all_ok = all_ok and result.success
                if args.write and result.success:
                    union = sorted(values | result.difference)
                    # repro: ignore[blocking-call-in-async] -- one-shot
                    # CLI: this coroutine is the only work on the loop,
                    # so the inline file write stalls nobody
                    args.file.write_text("".join(f"{v}\n" for v in union))
                _print_result(
                    result, scheme="service", json_out=args.json,
                    quiet=args.quiet,
                    compact=args.repeat > 1,
                )
                if pass_no < args.repeat and args.interval > 0:
                    await asyncio.sleep(args.interval)
                pass_no += 1
        finally:
            await conn.close()
        return all_ok

    try:
        ok = asyncio.run(_sync())
    except (ConnectionError, OSError, ReproError, asyncio.IncompleteReadError) as exc:
        print(f"error: cannot sync with {args.host}:{args.port}: {exc}",
              file=sys.stderr)
        return 2
    return 0 if ok else 1


def cmd_loadgen(argv: list[str]) -> int:
    import json as _json

    from repro.loadgen import (
        DiffSizes,
        LoadGenerator,
        LoadgenConfig,
        validate_report,
    )

    args = build_loadgen_parser().parse_args(argv)
    checks = (
        (args.rate > 0, "--rate must be > 0"),
        (args.duration > 0, "--duration must be > 0"),
        (args.sets >= 1, "--sets must be >= 1"),
        (args.zipf_s >= 0, "--zipf-s must be >= 0"),
        (args.max_in_flight >= 1, "--max-in-flight must be >= 1"),
        (args.window_s > 0, "--window-s must be > 0"),
        (args.drain_s >= 0, "--drain-s must be >= 0"),
    )
    for ok, message in checks:
        if not ok:
            print(f"error: {message}", file=sys.stderr)
            return 2
    try:
        DiffSizes(args.diff)   # die on a typo now, not mid-run
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    config = LoadgenConfig(
        host=args.host,
        port=args.port,
        rate=args.rate,
        duration_s=args.duration,
        sets=args.sets,
        zipf_s=args.zipf_s,
        diff=args.diff,
        seed=args.seed,
        max_in_flight=args.max_in_flight,
        set_prefix=args.set_prefix,
        connect_timeout=args.connect_timeout,
        window_s=args.window_s,
        slo_p99_ms=args.slo_p99_ms,
        slo_shed_rate=args.slo_shed_rate,
        drain_s=args.drain_s,
    )
    progress = (
        None if args.quiet
        else lambda line: print(line, file=sys.stderr, flush=True)
    )
    generator = LoadGenerator(config, progress=progress)
    try:
        report = asyncio.run(generator.run())
    except KeyboardInterrupt:
        print("error: interrupted before the report", file=sys.stderr)
        return 2
    # a malformed report is a driver bug; self-check every run so the
    # validator cannot drift from what the driver actually emits
    validate_report(report)
    payload = _json.dumps(report, indent=2)
    if args.output is not None:
        args.output.write_text(payload + "\n")
    else:
        print(payload)
    totals, rates, slo = report["totals"], report["rates"], report["slo"]
    print(
        f"# loadgen offered={rates['offered_per_s']:g}/s "
        f"achieved={rates['achieved_per_s']:.1f}/s "
        f"ok={totals['sessions']} shed={totals['sheds']} "
        f"failed={totals['failed']} abandoned={totals['abandoned']}"
        + (
            f" slo_breached={slo['windows_breached']}"
            f"/{slo['windows_graded']}"
            if slo is not None else ""
        ),
        file=sys.stderr,
    )
    if totals["scheduled"] and not totals["sessions"]:
        return 1   # nothing at all succeeded: the server was unreachable
    if slo is not None and slo["windows_breached"]:
        return 1
    return 0


def _print_result(
    result, scheme: str, json_out: bool, quiet: bool, compact: bool = False
) -> None:
    if json_out:
        # one JSON document per line under --repeat so consumers can
        # stream passes; the single-sync output stays pretty-printed
        print(result.to_json(indent=None if compact else 2))
        return
    for value in sorted(result.difference):
        print(value)
    if not quiet:
        print(
            f"# scheme={scheme} success={result.success} "
            f"rounds={result.rounds} bytes={result.total_bytes} "
            f"d={len(result.difference)}",
            file=sys.stderr,
        )


# -- entry point --------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv and argv[0] == "serve":
        return cmd_serve(argv[1:])
    if argv and argv[0] == "sync":
        return cmd_sync(argv[1:])
    if argv and argv[0] == "rebalance":
        return cmd_rebalance(argv[1:])
    if argv and argv[0] == "loadgen":
        return cmd_loadgen(argv[1:])
    if argv and argv[0] == "check":
        return cmd_check(argv[1:])

    args = build_parser().parse_args(argv)
    if args.selftest:
        from repro.workloads import SetPairGenerator

        pair = SetPairGenerator(seed=args.seed).generate(size_a=10_000, d=100)
        set_a, set_b = set(pair.a), set(pair.b)
    else:
        if not (args.file_a and args.file_b):
            print("error: need two signature files (or --selftest)", file=sys.stderr)
            return 2
        set_a = load_signatures(args.file_a)
        set_b = load_signatures(args.file_b)

    if args.scheme == "pbs":
        proto = PBSProtocol(
            seed=args.seed, max_rounds=args.rounds, estimator_family="fast"
        )
        result = proto.run(set_a, set_b)
    else:
        proto = SCHEMES[args.scheme](seed=args.seed)
        result = proto.run(set_a, set_b, estimated_d=max(1, len(set_a ^ set_b)))

    _print_result(result, scheme=args.scheme, json_out=args.json,
                  quiet=args.quiet)
    return 0 if result.success else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
