"""Command-line interface: reconcile two signature files.

Each input file lists one element per line — either decimal or 0x-hex
32-bit signatures (the format ``sha1sum | cut`` pipelines produce after
truncation).  The tool reports the symmetric difference and the
wire/round cost PBS would have paid, and can compare schemes:

    python -m repro alice.txt bob.txt
    python -m repro alice.txt bob.txt --scheme ddigest --seed 7
    python -m repro --selftest
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.baselines import (
    DifferenceDigestProtocol,
    GrapheneProtocol,
    PinSketchProtocol,
    PinSketchWPProtocol,
)
from repro.core.protocol import PBSProtocol

SCHEMES = {
    "pbs": PBSProtocol,
    "ddigest": DifferenceDigestProtocol,
    "graphene": GrapheneProtocol,
    "pinsketch": PinSketchProtocol,
    "pinsketch-wp": PinSketchWPProtocol,
}


def load_signatures(path: Path) -> set[int]:
    """Parse one signature per line (decimal or 0x-hex); '#' comments ok."""
    out: set[int] = set()
    for line_no, raw in enumerate(path.read_text().splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            value = int(line, 16 if line.lower().startswith("0x") else 10)
        except ValueError:
            raise SystemExit(f"{path}:{line_no}: not a signature: {line!r}")
        if not 1 <= value < (1 << 32):
            raise SystemExit(
                f"{path}:{line_no}: {value} outside the nonzero 32-bit universe"
            )
        out.add(value)
    return out


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PBS set reconciliation (Gong et al., VLDB 2020)",
    )
    parser.add_argument("file_a", nargs="?", type=Path, help="Alice's signatures")
    parser.add_argument("file_b", nargs="?", type=Path, help="Bob's signatures")
    parser.add_argument(
        "--scheme", choices=sorted(SCHEMES), default="pbs",
        help="reconciliation scheme (default: pbs)",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--rounds", type=int, default=3,
        help="round budget (0 = unlimited; default 3)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="print only the difference"
    )
    parser.add_argument(
        "--selftest", action="store_true",
        help="run a built-in instance instead of reading files",
    )
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.selftest:
        from repro.workloads import SetPairGenerator

        pair = SetPairGenerator(seed=args.seed).generate(size_a=10_000, d=100)
        set_a, set_b = set(pair.a), set(pair.b)
    else:
        if not (args.file_a and args.file_b):
            print("error: need two signature files (or --selftest)", file=sys.stderr)
            return 2
        set_a = load_signatures(args.file_a)
        set_b = load_signatures(args.file_b)

    if args.scheme == "pbs":
        proto = PBSProtocol(
            seed=args.seed, max_rounds=args.rounds, estimator_family="fast"
        )
        result = proto.run(set_a, set_b)
    else:
        proto = SCHEMES[args.scheme](seed=args.seed)
        result = proto.run(set_a, set_b, estimated_d=max(1, len(set_a ^ set_b)))

    for value in sorted(result.difference):
        print(value)
    if not args.quiet:
        print(
            f"# scheme={args.scheme} success={result.success} "
            f"rounds={result.rounds} bytes={result.total_bytes} "
            f"d={len(result.difference)}",
            file=sys.stderr,
        )
    return 0 if result.success else 1


if __name__ == "__main__":  # pragma: no cover - exercised via __main__.py
    raise SystemExit(main())
