"""Experiment drivers: one module per figure/table of the paper's §8.

The benchmark files under ``benchmarks/`` are thin pytest-benchmark
wrappers around these drivers; running a driver directly (e.g.
``python -m repro.evaluation.fig1``) prints the same table.

All drivers honor the ``REPRO_SCALE`` environment variable (default 1.0):
values below 1 shrink set sizes / d grids / trial counts proportionally
for quick runs, values above 1 push toward the paper's full scale.
"""

from repro.evaluation.harness import (
    ExperimentTable,
    instances,
    scale_factor,
    scaled,
    shared_estimates,
)

__all__ = [
    "ExperimentTable",
    "instances",
    "scale_factor",
    "scaled",
    "shared_estimates",
]
