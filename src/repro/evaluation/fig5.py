"""Figure 5 / Appendix J.3: PBS vs PinSketch/WP with 256-bit signatures.

Like the paper — whose implementations supported at most 64-bit
signatures — this experiment accounts the communication *analytically*
for ``log|U| = 256`` using the same per-group formulas the 32-bit
experiments validated.  PBS's advantage widens: its positions and sketch
symbols still cost ``log n`` bits while PinSketch/WP's cost ``log|U|``.
"""

from __future__ import annotations

from repro.analysis.overhead import pbs_vs_pinsketch_wp_curves
from repro.evaluation.harness import ExperimentTable

DEFAULT_D_VALUES = (10, 100, 1000, 10_000, 100_000)


def run(
    d_values: tuple[int, ...] = DEFAULT_D_VALUES,
    log_u: int = 256,
    seed: int = 0,
) -> ExperimentTable:
    del seed  # analytic; kept for driver interface symmetry
    table = ExperimentTable(
        name=f"Fig. 5 — PBS vs PinSketch/WP, log|U| = {log_u} (analytic)",
        columns=["d", "n", "t", "pbs_kb", "pinsketch_wp_kb", "ratio", "pbs/min"],
    )
    curves = pbs_vs_pinsketch_wp_curves(list(d_values), log_u=log_u)
    for d in d_values:
        row = curves[d]
        table.add_row(
            d=d,
            n=row["n"],
            t=row["t"],
            pbs_kb=row["pbs_kb"],
            pinsketch_wp_kb=row["pinsketch_wp_kb"],
            ratio=row["pinsketch_wp_kb"] / row["pbs_kb"],
            **{"pbs/min": row["pbs_kb"] / row["minimum_kb"]},
        )
    table.note(
        "First-round analytic accounting (Formula (1) vs t*log|U| + log|U| "
        "per group).  The paper's claim: the PinSketch/WP-to-PBS ratio grows "
        "with log|U| (compare the 32-bit Fig. 3)."
    )
    return table


if __name__ == "__main__":
    table = run()
    table.print()
    table.save("fig5_256bit_signatures")
