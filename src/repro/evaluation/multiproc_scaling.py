"""Multi-process decode scaling: subprocess vs inline shard executors.

The PR-3/PR-4 cluster runs every shard worker on one event loop, so the
batched BCH decode engine — however wide its batches — executes on one
core.  The subprocess executor (:mod:`repro.cluster.proc`) moves each
shard's decode work into its own child process; this driver measures
what that buys on a decode-bound workload: sessions with a substantial
difference (d high enough that sketch decode dominates the round trip),
many of them concurrent, against the same 4-shard layout run first
inline and then with 1/2/4 worker processes.

The honest caveats, encoded in the table itself: the ``cores`` column
records what the host actually offers — on a single-core machine the
proc executor *cannot* win (it pays RPC serialization for no parallel
decode), and the acceptance assertion (>1.5x at 4 workers) is gated on
``cores >= 4`` in the benchmark.  Sessions are driven without journals
and without admission caps so the measurement isolates decode CPU rather
than WAL commits or queueing (``bench_cluster_scaling`` covers those).
"""

from __future__ import annotations

import asyncio

from repro.cluster.proc import fork_safe_cpu_count
from repro.cluster.config import ClusterConfig, open_cluster
from repro.evaluation.harness import ExperimentTable, scaled
from repro.service.client import sync_with_server
from repro.service.scheduler import DecodeCoalescer
from repro.service.server import ReconciliationServer
from repro.workloads.generator import SetPairGenerator

COLUMNS = [
    "executor", "workers", "cores", "sessions", "ok", "wall_s",
    "sessions_per_s", "speedup_vs_inline", "decode_groups",
    "groups_per_s", "engine_decode_s",
]

#: Decode coalescing window (server-side inline; worker-local in proc
#: mode) — the PR-2 service default.
WINDOW_S = 0.002

#: (executor, shard/worker count) sweep.  The inline row is the
#: baseline: 4 shards on one event loop — exactly what ``repro serve
#: --shards 4`` ran before this PR.
LEVELS = (
    ("inline", 4),
    ("subprocess", 1),
    ("subprocess", 2),
    ("subprocess", 4),
)


async def _client(port: int, jobs, seed: int):
    results = []
    for k, (name, pair) in enumerate(jobs):
        results.append(
            await sync_with_server(
                "127.0.0.1", port, pair.a, set_name=name,
                seed=seed * 1000 + k, n_sketches=16,
            )
        )
    return results


async def _run_fleet(executor: str, shards: int, fleets, seed0: int):
    """One in-memory cluster at one executor level; returns (wall, ok,
    decoded-group count, engine decode seconds).  Worker spawn and set
    preload happen before the clock starts — the sweep measures steady
    decode throughput, not process startup."""
    store = open_cluster(config=ClusterConfig(
        shards=shards, executor=executor, worker_window_s=WINDOW_S
    ))
    await store.start()
    coalescer = DecodeCoalescer(window_s=WINDOW_S)
    try:
        async with ReconciliationServer(store, coalescer=coalescer) as server:
            expected = {}
            for jobs in fleets:
                for name, pair in jobs:
                    await store.create(name, pair.b)
                    expected[name] = pair.difference
            loop = asyncio.get_running_loop()
            start = loop.time()
            per_client = await asyncio.gather(
                *[
                    _client(server.port, jobs, seed0 + i)
                    for i, jobs in enumerate(fleets)
                ]
            )
            wall = loop.time() - start
            ok = 0
            for jobs, results in zip(fleets, per_client):
                for (name, _), result in zip(jobs, results):
                    ok += bool(result.success)
                    if result.success and (
                        result.difference != expected[name]
                    ):
                        raise AssertionError(
                            f"session on {name} converged wrong"
                        )
        if executor == "subprocess":
            shard_stats = store.cluster_stats()["per_shard"]
            groups = sum(
                s.get("coalescer", {}).get("groups", 0) for s in shard_stats
            )
            decode_s = sum(
                s.get("coalescer", {}).get("decode_s", 0.0)
                for s in shard_stats
            )
        else:
            groups = coalescer.stats.groups
            decode_s = coalescer.stats.decode_s
        return wall, ok, groups, decode_s
    finally:
        await store.close()


def run(
    levels=LEVELS,
    clients: int | None = None,
    syncs_per_client: int = 2,
    d: int = 64,
    size_a: int | None = None,
    repeats: int | None = None,
) -> ExperimentTable:
    """Sweep executor levels over identical closed-loop client fleets.

    Sessions are decode-heavy (d = 64 by default: ~13 BCH groups per
    round, several rounds per session) so aggregate decode throughput —
    not the coalescing window or admission queueing — is the quantity
    under test.  Every repeat runs all levels back to back (paired
    design) and the speedup column is each level's session rate over the
    inline baseline's.
    """
    size_a = size_a if size_a is not None else scaled(1200, minimum=300)
    clients = clients if clients is not None else scaled(8, minimum=4)
    repeats = repeats if repeats is not None else scaled(3, minimum=1)
    cores = fork_safe_cpu_count()
    table = ExperimentTable(
        name="Multi-process decode scaling: inline vs subprocess executors",
        columns=COLUMNS,
    )
    gen = SetPairGenerator(universe_bits=32, seed=0xAC)
    # warm-up: field tables and codec caches in the parent (children
    # build their own on first decode, inside the measured window for
    # every level equally)
    asyncio.run(
        _run_fleet(
            "inline", 1,
            [[("warm", gen.generate(size_a=200, d=8, seed=77))]],
            seed0=7700,
        )
    )
    totals = {
        level: {"wall": 0.0, "ok": 0, "sessions": 0, "groups": 0,
                "decode_s": 0.0}
        for level in levels
    }
    for rep in range(repeats):
        fleets = [
            [
                (
                    f"c{i}-j{j}",
                    gen.generate(
                        size_a=size_a, d=d, seed=(rep * 100 + i) * 8 + j
                    ),
                )
                for j in range(syncs_per_client)
            ]
            for i in range(clients)
        ]
        for executor, workers in levels:
            wall, ok, groups, decode_s = asyncio.run(
                _run_fleet(executor, workers, fleets, seed0=rep * 1000 + 1)
            )
            t = totals[(executor, workers)]
            t["wall"] += wall
            t["ok"] += ok
            t["groups"] += groups
            t["decode_s"] += decode_s
            t["sessions"] += clients * syncs_per_client
    inline_rate = None
    for executor, workers in levels:
        t = totals[(executor, workers)]
        rate = t["sessions"] / t["wall"] if t["wall"] else 0.0
        if inline_rate is None:
            inline_rate = rate
        table.add_row(
            executor="proc" if executor == "subprocess" else executor,
            workers=workers,
            cores=cores,
            sessions=t["sessions"],
            ok=t["ok"],
            wall_s=t["wall"],
            sessions_per_s=rate,
            speedup_vs_inline=rate / inline_rate if inline_rate else 1.0,
            decode_groups=t["groups"],
            groups_per_s=t["groups"] / t["wall"] if t["wall"] else 0.0,
            engine_decode_s=t["decode_s"],
        )
    table.note(
        f"|A|={size_a}, d={d} per session, {clients} closed-loop clients x "
        f"{syncs_per_client} sessions each, {repeats} paired repeats, "
        f"decode window {WINDOW_S * 1000:.0f} ms, no journals/admission "
        "(pure decode-path comparison; bench_cluster_scaling covers WAL "
        "and admission).  The inline row is the pre-PR baseline: 4 shard "
        "workers sharing one event loop and one core.  Subprocess rows "
        "run each shard's SetStore, journal, and BCH decode in its own "
        f"child process; this host offers {cores} core(s), and decode "
        "CPU can only multiply up to that"
        + (
            " — on this single-core host the proc rows measure pure RPC "
            "overhead, not the multi-core win."
            if cores < 2
            else "."
        )
    )
    return table


if __name__ == "__main__":  # pragma: no cover - manual entry point
    run().print()
