"""§6 / Appendices A-B: estimator accuracy vs wire cost.

Compares the Tug-of-War estimator (128 sketches, 336 B at |S| = 10^6)
against the Strata and min-wise estimators on relative error and wire
bytes, and verifies the §6.2 calibration: Pr[d <= 1.38 * d_hat] >= 99%.
"""

from __future__ import annotations

import numpy as np

from repro.estimators import MinWiseEstimator, StrataEstimator, ToWEstimator
from repro.evaluation.harness import ExperimentTable, instances, scaled
from repro.utils.seeds import derive_seed


def run(
    d_values: tuple[int, ...] = (10, 100, 1000),
    size_a: int = 20_000,
    trials: int = 20,
    seed: int = 7,
) -> ExperimentTable:
    trials = scaled(trials, minimum=5)
    table = ExperimentTable(
        name="§6/App. B — estimator comparison",
        columns=[
            "d", "estimator", "wire_bytes", "mean_rel_err", "coverage_1.38",
        ],
    )
    for d in d_values:
        pairs = instances(size_a, d, trials, seed=seed)
        arrays = [
            (
                np.fromiter(p.a, dtype=np.uint64),
                np.fromiter(p.b, dtype=np.uint64),
            )
            for p in pairs
        ]

        # Tug-of-War (fast family for throughput; §6 uses 128 sketches)
        errs, covered = [], 0
        wire = ToWEstimator(n_sketches=128, seed=0).sketch_bytes(size_a)
        for i, (a, b) in enumerate(arrays):
            est = ToWEstimator(
                n_sketches=128, seed=derive_seed(seed, "tow", i), family="fast"
            )
            d_hat = est.estimate(est.sketch(a), est.sketch(b))
            errs.append(abs(d_hat - d) / d)
            covered += d <= 1.38 * d_hat
        table.add_row(
            d=d, estimator="tow-128", wire_bytes=wire,
            mean_rel_err=float(np.mean(errs)),
            **{"coverage_1.38": covered / trials},
        )

        # Strata
        errs, covered = [], 0
        strata_wire = StrataEstimator(seed=0).wire_bytes()
        for i, (a, b) in enumerate(arrays):
            est = StrataEstimator(seed=derive_seed(seed, "strata", i))
            d_hat = est.estimate(est.build(a), est.build(b))
            errs.append(abs(d_hat - d) / d)
            covered += d <= 1.38 * d_hat
        table.add_row(
            d=d, estimator="strata-32x80", wire_bytes=strata_wire,
            mean_rel_err=float(np.mean(errs)),
            **{"coverage_1.38": covered / trials},
        )

        # Min-wise
        errs, covered = [], 0
        mw_wire = MinWiseEstimator(n_hashes=128, seed=0).signature_bytes()
        for i, (a, b) in enumerate(arrays):
            est = MinWiseEstimator(n_hashes=128, seed=derive_seed(seed, "mw", i))
            d_hat = est.estimate(
                est.signature(a), est.signature(b), len(a), len(b)
            )
            errs.append(abs(d_hat - d) / d)
            covered += d <= 1.38 * d_hat
        table.add_row(
            d=d, estimator="minwise-128", wire_bytes=mw_wire,
            mean_rel_err=float(np.mean(errs)),
            **{"coverage_1.38": covered / trials},
        )
    table.note(
        f"|A| = {size_a}, {trials} trials/point.  Appendix B's claim: ToW is "
        "the most space-efficient at comparable accuracy (Strata carries "
        "whole IBFs per stratum; min-wise degrades when d << |A|)."
    )
    return table


if __name__ == "__main__":
    table = run()
    table.print()
    table.save("estimators_comparison")
