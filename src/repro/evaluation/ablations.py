"""Ablations of PBS design choices that DESIGN.md calls out.

1. **Three-way vs two-way split** (§3.2): with a deliberately
   under-provisioned capacity, groups overflow and split; the paper
   argues three-way splits make re-failure negligible while two-way
   splits re-fail measurably.  Metric: rounds to converge, success
   within 3 rounds.
2. **Procedure-3 sub-universe check** (§2.3): disabling it lets fake
   distinct elements (type-II exceptions / aliased decodes) into the
   working set; the checksum still catches them, at the cost of extra
   rounds.  Metric: success within 3 rounds, mean rounds.
3. **Estimator inflation gamma** (§6.2): designing for d_hat instead of
   1.38 * d_hat under-provisions g and t roughly half the time.
"""

from __future__ import annotations

import numpy as np

from repro.core.protocol import PBSProtocol
from repro.evaluation.harness import ExperimentTable, instances, scaled
from repro.estimators.tow import ToWEstimator
from repro.utils.seeds import derive_seed


def _run_batch(pairs, proto_factory, run_kwargs_list):
    results = []
    for i, pair in enumerate(pairs):
        proto = proto_factory(i)
        results.append(proto.run(pair.a, pair.b, **run_kwargs_list[i]))
    return results


def run(
    d: int = 500,
    size_a: int = 10_000,
    trials: int = 15,
    seed: int = 8,
) -> ExperimentTable:
    trials = scaled(trials, minimum=5)
    pairs = instances(size_a, d, trials, seed=seed)
    table = ExperimentTable(
        name=f"Ablations (d={d}, |A|={size_a})",
        columns=["ablation", "variant", "success_r3", "mean_rounds", "kb"],
    )

    def add(ablation: str, variant: str, results, pairs):
        ok = [
            r.success and r.difference == p.difference
            for r, p in zip(results, pairs)
        ]
        table.add_row(
            ablation=ablation,
            variant=variant,
            success_r3=float(np.mean([
                o and r.rounds <= 3 for o, r in zip(ok, results)
            ])),
            mean_rounds=float(np.mean([r.rounds for r in results])),
            kb=float(np.mean([r.total_bytes for r in results])) / 1000.0,
        )

    # 1. split arity under deliberate under-provisioning (estimate d/3).
    under = max(1, d // 3)
    for ways in (2, 3):
        results = _run_batch(
            pairs,
            lambda i, w=ways: PBSProtocol(seed=seed + i, split_ways=w, max_rounds=8),
            [{"estimated_d": under}] * trials,
        )
        add("split-arity (under-provisioned)", f"{ways}-way", results, pairs)

    # 2. Procedure-3 membership check on/off, stressed with a small bitmap.
    for check in (True, False):
        results = _run_batch(
            pairs,
            lambda i, c=check: PBSProtocol(
                seed=seed + i, membership_check=c, max_rounds=8
            ),
            [{"estimated_d": d}] * trials,
        )
        add("procedure-3 check", "on" if check else "off", results, pairs)

    # 3. gamma = 1.38 vs gamma = 1.0 with a *real* noisy estimate.
    est = ToWEstimator(n_sketches=128, seed=derive_seed(seed, "abl-tow"),
                       family="fast")
    raw_estimates = []
    for pair in pairs:
        a = np.fromiter(pair.a, dtype=np.uint64)
        b = np.fromiter(pair.b, dtype=np.uint64)
        raw_estimates.append(est.estimate(est.sketch(a), est.sketch(b)))
    for gamma in (1.0, 1.38):
        results = _run_batch(
            pairs,
            lambda i, gm=gamma: PBSProtocol(seed=seed + i, gamma=gm, max_rounds=3),
            [{"estimated_d": max(1, round(dh))} for dh in raw_estimates],
        )
        add("estimator inflation", f"gamma={gamma}", results, pairs)

    table.note(
        f"{trials} trials per variant.  Expect: 3-way splits converge in "
        "fewer rounds than 2-way under overload; disabling the sub-universe "
        "check costs extra rounds but never correctness; gamma=1.0 lowers "
        "the within-3-rounds success rate."
    )
    return table


if __name__ == "__main__":
    table = run()
    table.print()
    table.save("ablations")
