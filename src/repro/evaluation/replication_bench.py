"""Replication ack-latency cost: async vs quorum at R ∈ {0, 1, 2}.

``--replication quorum`` buys "no acked mutation lost while a majority
of replica volumes survives" by holding every acknowledgement until
⌈(R+1)/2⌉ replicas hold the mutation durably — one extra
apply + durable-cursor round per follower on the ack path.  This driver
prices that guarantee: for each (R, mode) point it runs a real
replicated ``ClusterStore`` (inline executor, journal backend) in a
temporary data dir, drives N sequential apply-diffs, and records each
mutation's ack latency into the PR-7 :class:`LatencyHistogram` — so the
p50/p99 columns come from the same instrument ``/varz`` serves in
production.  ``async`` rows measure the log-shipping overhead alone
(ship is synchronous with the primary's apply; the ack never waits),
``quorum`` rows add the follower round-trip.

Every point also verifies its followers converged (zero lag after a
final barrier) before the row counts — a latency number for a
replication mode that silently fell behind would be fiction.
"""

from __future__ import annotations

import asyncio
import time
from tempfile import TemporaryDirectory

from repro.cluster import ClusterConfig, open_cluster
from repro.obs.histogram import LatencyHistogram
from repro.evaluation.harness import ExperimentTable, scaled

COLUMNS = [
    "replicas", "mode", "ops", "converged", "wall_s", "ops_per_s",
    "p50_ms", "p99_ms",
]

#: (replicas, mode) points — R = 0 is the unreplicated baseline; each
#: replicated R is priced in both durability modes.
POINTS = [
    (0, "async"),
    (1, "async"), (1, "quorum"),
    (2, "async"), (2, "quorum"),
]


async def _drive(replicas: int, mode: str, ops: int, batch: int) -> dict:
    with TemporaryDirectory() as data_dir:
        store = open_cluster(
            data_dir,
            ClusterConfig(
                shards=1, storage="journal",
                replicas=replicas, replication=mode,
            ),
        )
        await store.start()
        try:
            await store.create("bench", range(64))
            hist = LatencyHistogram()
            value = 1 << 20
            start = time.perf_counter()
            for _ in range(ops):
                t0 = time.perf_counter()
                await store.apply_diff(
                    "bench", add=range(value, value + batch)
                )
                hist.record(time.perf_counter() - t0)
                value += batch
            wall = time.perf_counter() - start
            # convergence barrier: every follower caught up, or the row
            # is invalid (async mode may legitimately trail in-flight)
            converged = True
            if replicas:
                deadline = time.monotonic() + 30.0
                def caught_up() -> bool:
                    st = store.cluster_stats()["per_shard"][0]["replication"]
                    return all(
                        f["alive"] and f["lag"] == 0
                        for f in st["followers"]
                    )
                while not caught_up():
                    if time.monotonic() > deadline:
                        converged = False
                        break
                    await asyncio.sleep(0.01)
        finally:
            await store.close()
    return {
        "converged": converged,
        "wall_s": round(wall, 4),
        "ops_per_s": round(ops / wall, 1),
        "p50_ms": round(hist.percentile(0.50) * 1e3, 3),
        "p99_ms": round(hist.percentile(0.99) * 1e3, 3),
    }


def run(ops: int | None = None, batch: int = 8) -> ExperimentTable:
    ops = ops if ops is not None else scaled(300, minimum=30)
    table = ExperimentTable(
        name="replication: ack latency, async vs quorum",
        columns=COLUMNS,
    )
    for replicas, mode in POINTS:
        row = asyncio.run(_drive(replicas, mode, ops, batch))
        table.add_row(replicas=replicas, mode=mode, ops=ops, **row)
    table.note(
        "quorum acks wait for ⌈(R+1)/2⌉ durable replicas (primary "
        "included); async acks on the primary's commit alone."
    )
    table.note(
        "inline executor, journal backend, fsync off — the delta "
        "isolates the replication ack path, not disk sync cost."
    )
    return table
