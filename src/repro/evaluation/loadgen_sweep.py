"""Open-loop rate sweep: offered load vs delivered service quality.

The cluster-scaling benchmark asks "how much can the service do";
this sweep asks the operator's question: "what happens to *clients* as
offered load approaches and passes capacity".  One admission-capped
single-shard server takes Poisson traffic from ``repro loadgen``'s
driver at increasing rates.  Because the loop is open, the offered
rate does not bend when the server struggles — instead the measured
client-side p99 grows (queueing charged from intended start times) and
the RETRY shed rate climbs (the driver counts sheds, it does not retry
them).  The table is the capacity curve those two columns trace out;
each underlying loadgen report is validated against the report schema
before its row is admitted.
"""

from __future__ import annotations

import asyncio

from repro.cluster.admission import AdmissionController
from repro.evaluation.harness import ExperimentTable, scaled
from repro.loadgen.driver import CONVERGENCE, LoadgenConfig, LoadGenerator
from repro.loadgen.report import validate_report
from repro.obs.metrics import SESSION_DURATION
from repro.service.server import ReconciliationServer
from repro.service.store import SetStore

COLUMNS = [
    "rate", "duration_s", "scheduled", "ok", "shed", "failed",
    "achieved_per_s", "shed_rate", "p50_ms", "p99_ms", "p999_ms",
    "converge_p99_ms", "slo_breached", "windows",
]

#: Concurrent sessions the single shard admits: deliberately tight so
#: the sweep's upper rates actually cross capacity and shed.
MAX_SESSIONS = 4

#: Session-latency objective each window is graded against (ms).
SLO_P99_MS = 250.0


async def _run_one(rate: float, duration_s: float, sets: int,
                   seed: int) -> dict:
    """One open-loop run against a fresh admission-capped server."""
    store = SetStore()
    admission = AdmissionController(
        shards=1, max_sessions=MAX_SESSIONS, retry_after_s=0.02
    )
    async with ReconciliationServer(store, admission=admission) as server:
        config = LoadgenConfig(
            host="127.0.0.1",
            port=server.port,
            rate=rate,
            duration_s=duration_s,
            sets=sets,
            diff="geometric:8",
            seed=seed,
            window_s=max(0.5, duration_s / 6.0),
            slo_p99_ms=SLO_P99_MS,
            drain_s=60.0,
        )
        report = await LoadGenerator(config).run()
    validate_report(report)
    return report


def run(
    rates=(20.0, 60.0, 120.0),
    duration_s: float | None = None,
    sets: int | None = None,
) -> ExperimentTable:
    """Sweep offered rate over identical seeded workloads.

    Rates are fixed (they *are* the x-axis); ``REPRO_SCALE`` scales the
    horizon and the set population, so a smoke run shortens the
    measurement without changing which loads are offered.
    """
    duration_s = (
        duration_s if duration_s is not None
        else float(scaled(6, minimum=2))
    )
    sets = sets if sets is not None else scaled(24, minimum=8)
    table = ExperimentTable(
        name="Open-loop rate sweep: client-side latency and shed rate "
             f"vs offered load (1 shard, {MAX_SESSIONS} admitted "
             "sessions)",
        columns=COLUMNS,
    )
    # warm-up: field/codec caches, so the first rate level does not pay
    # one-time table construction
    asyncio.run(_run_one(10.0, 1.0, sets=4, seed=0x77))
    for index, rate in enumerate(rates):
        report = asyncio.run(
            _run_one(rate, duration_s, sets, seed=0xA0 + index)
        )
        totals, latency = report["totals"], report["latency"]
        session = latency.get(SESSION_DURATION, {})
        converge = latency.get(CONVERGENCE, {})
        table.add_row(
            rate=rate,
            duration_s=duration_s,
            scheduled=totals["scheduled"],
            ok=totals["sessions"],
            shed=totals["sheds"],
            failed=totals["failed"],
            achieved_per_s=round(report["rates"]["achieved_per_s"], 1),
            shed_rate=round(report["rates"]["shed_rate"], 3),
            p50_ms=round(session.get("p50_s", 0.0) * 1e3, 1),
            p99_ms=round(session.get("p99_s", 0.0) * 1e3, 1),
            p999_ms=round(session.get("p999_s", 0.0) * 1e3, 1),
            converge_p99_ms=round(converge.get("p99_s", 0.0) * 1e3, 1),
            slo_breached=report["slo"]["windows_breached"],
            windows=len(report["timeseries"]["windows"]),
        )
    return table
