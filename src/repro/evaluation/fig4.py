"""Figure 4 / Appendix J.2: PBS under varying delta (d fixed).

delta — the average number of differences per group — is the knob
trading communication against computation: larger delta means fewer
groups and less per-group overhead (communication falls) but a larger
per-group BCH capacity t (encode/decode times rise).
"""

from __future__ import annotations

from repro.core.protocol import PBSProtocol
from repro.evaluation.harness import (
    ExperimentTable,
    aggregate_runs,
    instances,
    scaled,
)

DEFAULT_DELTAS = (3, 6, 9, 12, 15, 18, 21, 24, 27, 30)
DEFAULT_D = 3000
DEFAULT_SIZE_A = 20_000
DEFAULT_TRIALS = 8


def run(
    deltas: tuple[int, ...] = DEFAULT_DELTAS,
    d: int = DEFAULT_D,
    size_a: int = DEFAULT_SIZE_A,
    trials: int = DEFAULT_TRIALS,
    seed: int = 4,
) -> ExperimentTable:
    trials = scaled(trials, minimum=3)
    table = ExperimentTable(
        name=f"Fig. 4 — PBS delta sweep (d = {d}, p0 = 0.99, r = 3)",
        columns=["delta", "n", "t", "success", "kb", "encode_s", "decode_s"],
    )
    pairs = instances(size_a, d, trials, seed=seed)
    for delta in deltas:
        results = []
        params_used = None
        for i, pair in enumerate(pairs):
            proto = PBSProtocol(seed=seed + i, delta=delta, p0=0.99, r=3)
            r = proto.run(pair.a, pair.b, true_d=d)
            if r.success and r.difference != pair.difference:
                r.success = False
            params_used = r.extra["params"]
            results.append(r)
        agg = aggregate_runs(results)
        table.add_row(
            delta=delta,
            n=params_used.n,
            t=params_used.t,
            success=agg["success"],
            kb=agg["kb"],
            encode_s=agg["encode_s"],
            decode_s=agg["decode_s"],
        )
    table.note(
        f"|A| = {size_a}, {trials} trials/point, d known exactly.  Expect kb "
        "to fall and encode/decode times to rise as delta grows (App. J.2)."
    )
    return table


if __name__ == "__main__":
    table = run()
    table.print()
    table.save("fig4_delta_sweep")
