"""§5.2: optimal per-group overhead as the target round count r varies.

Paper reference (d = 1000, p0 = 0.99): 591 / 402 / 318 / 288 bits per
group pair for r = 1 / 2 / 3 / 4 — a sharp drop to r = 3, then a small
one, making r = 3 the sweet spot.  We print both over-capacity models;
the shape (and the r = 1 value, where the models coincide because a
split cannot finish in one round) reproduces.
"""

from __future__ import annotations

from repro.analysis.optimizer import sweep_round_targets
from repro.evaluation.harness import ExperimentTable

PAPER_BITS = {1: 591, 2: 402, 3: 318, 4: 288}


def run(d: int = 1000, delta: int = 5, p0: float = 0.99) -> ExperimentTable:
    table = ExperimentTable(
        name=f"§5.2 — round-target sweep (d={d}, p0={p0})",
        columns=[
            "r", "model", "n", "t", "bound", "bits_per_group", "paper_bits",
        ],
    )
    for model in ("three-way", "none"):
        sweep = sweep_round_targets(d, delta=delta, p0=p0, split_model=model)
        for r, params in sorted(sweep.items()):
            table.add_row(
                r=r,
                model=model,
                n=params.n,
                t=params.t,
                bound=params.bound,
                bits_per_group=params.first_round_bits_per_group(32),
                paper_bits=PAPER_BITS.get(r, float("nan")),
            )
    table.note(
        "bits_per_group = (t + delta) * log2(n+1) + delta*32 + 32 (Formula (1))."
    )
    return table


if __name__ == "__main__":
    table = run()
    table.print()
    table.save("sec52_round_target_sweep")
