"""Figure 2: PBS vs Graphene at target success rate 239/240 (§8.2).

The workload is Graphene's best case (B ⊂ A, Alice learns A \\ B).  The
paper's qualitative findings: PBS transmits 1.2-7.4x less until d gets
within an order of magnitude of |A|, where Graphene's BF+IBLT regime
kicks in (the Fig. 2b slope change) and eventually undercuts PBS; PBS
encodes faster throughout; Graphene decodes somewhat faster.
"""

from __future__ import annotations

from repro.baselines.graphene import GrapheneProtocol
from repro.core.protocol import PBSProtocol
from repro.evaluation.harness import (
    ExperimentTable,
    aggregate_runs,
    instances,
    scaled,
    shared_estimates,
)

DEFAULT_D_VALUES = (10, 100, 1000, 3000, 10_000)
DEFAULT_SIZE_A = 20_000
DEFAULT_TRIALS = 10
TARGET_P0 = 239.0 / 240.0


def run(
    d_values: tuple[int, ...] = DEFAULT_D_VALUES,
    size_a: int = DEFAULT_SIZE_A,
    trials: int = DEFAULT_TRIALS,
    seed: int = 2,
) -> ExperimentTable:
    trials = scaled(trials, minimum=3)
    table = ExperimentTable(
        name="Fig. 2 — PBS vs Graphene (p0 = 239/240, B ⊂ A best case)",
        columns=[
            "d", "algorithm", "success", "kb", "kb/min", "encode_s", "decode_s",
        ],
    )
    for d in d_values:
        if d > size_a:
            continue
        pairs = instances(size_a, d, trials, seed=seed)
        estimates = shared_estimates(pairs, seed=seed)
        minimum_kb = d * 32 / 8 / 1000.0
        schemes = {
            "pbs": lambda s: PBSProtocol(seed=s, p0=TARGET_P0, r=3),
            "graphene": lambda s: GrapheneProtocol(seed=s),
        }
        for name, factory in schemes.items():
            results = [
                factory(seed + i).run(p.a, p.b, estimated_d=e)
                for i, (p, e) in enumerate(zip(pairs, estimates))
            ]
            for r, p in zip(results, pairs):
                if r.success and r.difference != p.difference:
                    r.success = False
            agg = aggregate_runs(results)
            table.add_row(
                d=d,
                algorithm=name,
                success=agg["success"],
                kb=agg["kb"],
                **{"kb/min": agg["kb"] / minimum_kb},
                encode_s=agg["encode_s"],
                decode_s=agg["decode_s"],
            )
    table.note(
        f"|A| = {size_a}, {trials} trials/point.  Expect Graphene's kb/min to "
        "*fall* as d approaches |A| (BF regime) and eventually undercut PBS."
    )
    return table


if __name__ == "__main__":
    table = run()
    table.print()
    table.save("fig2_pbs_vs_graphene")
