"""Table 2 / Appendix J.1: empirical PMF of the number of rounds.

PBS runs with an *unlimited* round budget; we record how many rounds it
takes to fully reconcile, per d.  Paper reference (|A| = 10^6): means
1.20 / 1.81 / 2.04 / 2.09 / 2.18 for d = 10 / 100 / 1000 / 10^4 / 10^5,
with the mass concentrated on rounds 1-3.
"""

from __future__ import annotations

import numpy as np

from repro.core.protocol import PBSProtocol
from repro.evaluation.harness import (
    ExperimentTable,
    instances,
    scaled,
    shared_estimates,
)

DEFAULT_D_VALUES = (10, 100, 1000)
DEFAULT_SIZE_A = 20_000
DEFAULT_TRIALS = 40
PAPER_MEANS = {10: 1.20, 100: 1.81, 1000: 2.04, 10_000: 2.09, 100_000: 2.18}


def run(
    d_values: tuple[int, ...] = DEFAULT_D_VALUES,
    size_a: int = DEFAULT_SIZE_A,
    trials: int = DEFAULT_TRIALS,
    seed: int = 5,
) -> ExperimentTable:
    trials = scaled(trials, minimum=5)
    table = ExperimentTable(
        name="Table 2 — empirical PMF of rounds to full reconciliation",
        columns=["d", "r=1", "r=2", "r=3", "r>=4", "mean", "paper_mean"],
    )
    for d in d_values:
        if d > size_a:
            continue
        pairs = instances(size_a, d, trials, seed=seed)
        estimates = shared_estimates(pairs, seed=seed)
        rounds = []
        for i, (pair, est) in enumerate(zip(pairs, estimates)):
            proto = PBSProtocol(seed=seed + i, max_rounds=0)  # unlimited
            result = proto.run(pair.a, pair.b, estimated_d=est)
            assert result.success and result.difference == pair.difference
            rounds.append(result.rounds)
        rounds_arr = np.array(rounds)
        table.add_row(
            d=d,
            **{
                "r=1": float((rounds_arr == 1).mean()),
                "r=2": float((rounds_arr == 2).mean()),
                "r=3": float((rounds_arr == 3).mean()),
                "r>=4": float((rounds_arr >= 4).mean()),
            },
            mean=float(rounds_arr.mean()),
            paper_mean=PAPER_MEANS.get(d, float("nan")),
        )
    table.note(
        f"|A| = {size_a}, {trials} trials/point, unlimited rounds, estimated d."
    )
    return table


if __name__ == "__main__":
    table = run()
    table.print()
    table.save("table2_rounds_pmf")
