"""§5.3: piecewise reconciliability — analytic vs simulated.

Analytic: expected fraction of the d differences reconciled in rounds
1..4 from the Markov chain (paper, for d=1000, (n,t)=(127,13):
0.962 / 0.0380 / 3.61e-4 / 2.86e-6).  Simulated: the protocol's
per-round resolved-element counts, using the same fixed parameters.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.piecewise import expected_round_proportions
from repro.core.params import PBSParams
from repro.core.protocol import PBSProtocol
from repro.evaluation.harness import ExperimentTable, instances, scaled

PAPER_PROPORTIONS = (0.962, 0.0380, 3.61e-4, 2.86e-6)


def run(
    d: int = 1000,
    n: int = 127,
    t: int = 13,
    size_a: int = 20_000,
    trials: int = 10,
    seed: int = 6,
) -> ExperimentTable:
    trials = scaled(trials, minimum=3)
    g = max(1, round(d / 5))
    analytic = expected_round_proportions(d, g, n, t, rounds=4)

    params = PBSParams(n=n, t=t, g=g)
    pairs = instances(size_a, d, trials, seed=seed)
    measured = np.zeros(5)
    for i, pair in enumerate(pairs):
        proto = PBSProtocol(params=params, seed=seed + i, max_rounds=0)
        result = proto.run(pair.a, pair.b)
        assert result.success
        for round_no, count in result.extra["recovered_by_round"].items():
            measured[min(round_no, 5) - 1] += count
    measured /= trials * d

    table = ExperimentTable(
        name=f"§5.3 — per-round reconciled fraction (d={d}, n={n}, t={t})",
        columns=["round", "analytic", "simulated", "paper"],
    )
    for k in range(4):
        table.add_row(
            round=k + 1,
            analytic=analytic[k],
            simulated=float(measured[k]),
            paper=PAPER_PROPORTIONS[k],
        )
    table.note(
        f"|A| = {size_a}, {trials} trials; 'simulated' counts candidate "
        "elements recovered in that round (the Markov model's good balls). "
        "Tail rounds need far more trials than the default to resolve "
        "(events at the 1e-4 level)."
    )
    return table


if __name__ == "__main__":
    table = run()
    table.print()
    table.save("sec53_piecewise")
