"""Table 1 / Appendix H: the success-probability lower-bound grid.

d = 1000, delta = 5 (g = 200), r = 3; grid over n in {63..2047} and
t in {8..17}.  We print the bound under both over-capacity models next to
the paper's published values (transcribed from Appendix H).  Neither
model reproduces the paper's absolute numbers exactly — the stated
truncation convention provably cannot (its Binomial-tail cap sits far
below several published cells), and the split-aware model is mildly more
optimistic; EXPERIMENTS.md discusses the discrepancy.  The *feasible
region* and the qualitative monotonicity match in all three.
"""

from __future__ import annotations

from repro.analysis.optimizer import lower_bound_grid, optimize_params
from repro.evaluation.harness import ExperimentTable

N_VALUES = (63, 127, 255, 511, 1023, 2047)
T_VALUES = tuple(range(8, 18))

#: Paper Table 1, percentages; ">99.9" entries stored as 0.9995.
PAPER_TABLE1: dict[tuple[int, int], float] = {
    (63, 8): 0.0, (127, 8): 0.255, (255, 8): 0.327, (511, 8): 0.343,
    (1023, 8): 0.349, (2047, 8): 0.350,
    (63, 9): 0.521, (127, 9): 0.780, (255, 9): 0.842, (511, 9): 0.857,
    (1023, 9): 0.861, (2047, 9): 0.862,
    (63, 10): 0.751, (127, 10): 0.927, (255, 10): 0.965, (511, 10): 0.974,
    (1023, 10): 0.976, (2047, 10): 0.977,
    (63, 11): 0.859, (127, 11): 0.969, (255, 11): 0.991, (511, 11): 0.995,
    (1023, 11): 0.996, (2047, 11): 0.996,
    (63, 12): 0.913, (127, 12): 0.985, (255, 12): 0.997, (511, 12): 0.999,
    (1023, 12): 0.9995, (2047, 12): 0.9995,
    (63, 13): 0.939, (127, 13): 0.991, (255, 13): 0.998, (511, 13): 0.9995,
    (1023, 13): 0.9995, (2047, 13): 0.9995,
    (63, 14): 0.951, (127, 14): 0.994, (255, 14): 0.9995, (511, 14): 0.9995,
    (1023, 14): 0.9995, (2047, 14): 0.9995,
    (63, 15): 0.956, (127, 15): 0.995, (255, 15): 0.9995, (511, 15): 0.9995,
    (1023, 15): 0.9995, (2047, 15): 0.9995,
    (63, 16): 0.957, (127, 16): 0.996, (255, 16): 0.9995, (511, 16): 0.9995,
    (1023, 16): 0.9995, (2047, 16): 0.9995,
    (63, 17): 0.958, (127, 17): 0.996, (255, 17): 0.9995, (511, 17): 0.9995,
    (1023, 17): 0.9995, (2047, 17): 0.9995,
}


def run(d: int = 1000, delta: int = 5, r: int = 3, p0: float = 0.99) -> ExperimentTable:
    split_grid = lower_bound_grid(
        d, delta=delta, r=r, n_candidates=N_VALUES, t_candidates=T_VALUES,
        split_model="three-way",
    )
    none_grid = lower_bound_grid(
        d, delta=delta, r=r, n_candidates=N_VALUES, t_candidates=T_VALUES,
        split_model="none",
    )
    table = ExperimentTable(
        name=f"Table 1 — Pr[R <= {r}] lower bounds (d={d}, delta={delta})",
        columns=["n", "t", "split_model", "truncation_model", "paper"],
    )
    for t in T_VALUES:
        for n in N_VALUES:
            table.add_row(
                n=n,
                t=t,
                split_model=max(0.0, split_grid[(n, t)]),
                truncation_model=max(0.0, none_grid[(n, t)]),
                paper=PAPER_TABLE1.get((n, t), float("nan")),
            )
    split_best = optimize_params(d, delta=delta, r=r, p0=p0, split_model="three-way")
    none_best = optimize_params(d, delta=delta, r=r, p0=p0, split_model="none")
    table.note(
        f"Optimum (split model): (n, t) = ({split_best.n}, {split_best.t}), "
        f"objective {split_best.objective_bits} bits; "
        f"optimum (truncation model): ({none_best.n}, {none_best.t}), "
        f"objective {none_best.objective_bits} bits; "
        "paper's published optimum: (127, 13), objective 126 bits."
    )
    return table


if __name__ == "__main__":
    table = run()
    table.print()
    table.save("table1_lower_bounds")
