"""Service throughput: cross-session decode coalescing vs per-session decode.

The scenario PR 1's batch engine could not reach on its own: many *small*
concurrent sessions, each bringing only a couple of BCH groups per round —
individually below the batch engine's profitability threshold, so a
per-session server decodes them on the scalar path.  The
:class:`~repro.service.scheduler.DecodeCoalescer` merges the groups of
sessions arriving within one window into a single
:meth:`~repro.bch.codec.BCHCodec.decode_many` call, which reaches batch
scale exactly when concurrency is high — the regime the ROADMAP's
"millions of users" north star cares about.

Both modes run the identical client fleet over real localhost sockets
against a live :class:`~repro.service.server.ReconciliationServer`; the
compared metric is the server-side decode *engine* time (seconds inside
``decode_many``), which excludes the coalescing window's idle wait by
construction.
"""

from __future__ import annotations

import asyncio

from repro.evaluation.harness import ExperimentTable, scaled
from repro.obs.histogram import LatencyHistogram
from repro.service.scheduler import DecodeCoalescer
from repro.service.server import ReconciliationServer
from repro.service.store import SetStore
from repro.service.client import sync_with_server
from repro.workloads.generator import SetPairGenerator

COLUMNS = [
    "concurrency", "mode", "sessions", "ok", "wall_s", "decode_s",
    "batches", "mean_sessions_per_batch", "sessions_per_s",
    "p50_ms", "p99_ms", "decode_speedup",
]

#: Wide enough to catch one round burst from a whole localhost fleet.
WINDOW_S = 0.005


async def _timed_sync(hist: LatencyHistogram, coro):
    """Await one session, recording its wall time into ``hist``."""
    loop = asyncio.get_running_loop()
    start = loop.time()
    result = await coro
    hist.record(loop.time() - start)
    return result


async def _run_fleet(
    pairs, coalesce: bool, seed: int, hist: LatencyHistogram
) -> tuple[float, dict, int]:
    """One server + len(pairs) concurrent clients; returns (wall, stats, ok)."""
    store = SetStore()
    for i, pair in enumerate(pairs):
        store.create(f"s{i}", pair.b)
    coalescer = DecodeCoalescer(window_s=WINDOW_S, enabled=coalesce)
    async with ReconciliationServer(store, coalescer=coalescer) as server:
        loop = asyncio.get_running_loop()
        start = loop.time()
        results = await asyncio.gather(
            *[
                _timed_sync(hist, sync_with_server(
                    "127.0.0.1", server.port, pair.a, set_name=f"s{i}",
                    seed=seed * 1000 + i, n_sketches=32,
                ))
                for i, pair in enumerate(pairs)
            ]
        )
        wall = loop.time() - start
        ok = sum(1 for r in results if r.success)
        for i, result in enumerate(results):
            if result.success and result.difference != pairs[i].difference:
                raise AssertionError(
                    f"session {i} converged to a wrong difference"
                )
        return wall, coalescer.stats.to_dict(), ok


def run(
    levels=(1, 2, 4, 8, 16),
    d: int = 10,
    size_a: int | None = None,
    repeats: int | None = None,
) -> ExperimentTable:
    """Sweep concurrency x {per-session, coalesced} over identical fleets.

    ``d`` is deliberately small: each session then holds ~3 BCH groups,
    which is *below* the batch engine's per-call threshold — the decode
    speedup in the coalesced rows is therefore purely the cross-session
    batching effect.
    """
    size_a = size_a if size_a is not None else scaled(1500, minimum=200)
    repeats = repeats if repeats is not None else scaled(3, minimum=2)
    table = ExperimentTable(
        name="Service throughput: coalesced vs per-session decode",
        columns=COLUMNS,
    )
    gen = SetPairGenerator(universe_bits=32, seed=0x5ED)
    # warm-up: populate field/codec caches so the first measured level
    # does not pay one-time table construction
    asyncio.run(
        _run_fleet(
            [gen.generate(size_a=200, d=d, seed=999)], True, seed=999,
            hist=LatencyHistogram(),
        )
    )
    for level in levels:
        fleets = [
            [
                gen.generate(size_a=size_a, d=d, seed=rep * 100 + i)
                for i in range(level)
            ]
            for rep in range(repeats)
        ]
        per_mode: dict[str, dict] = {}
        for mode, coalesce in (("per-session", False), ("coalesced", True)):
            wall = decode_s = 0.0
            batches = sessions = ok = submissions = 0
            hist = LatencyHistogram()
            for rep, pairs in enumerate(fleets):
                w, stats, n_ok = asyncio.run(
                    _run_fleet(pairs, coalesce, seed=rep + 1, hist=hist)
                )
                wall += w
                decode_s += stats["decode_s"]
                batches += stats["batches"]
                submissions += stats["submissions"]
                sessions += len(pairs)
                ok += n_ok
            per_mode[mode] = {
                "wall_s": wall,
                "decode_s": decode_s,
                "batches": batches,
                "submissions": submissions,
                "sessions": sessions,
                "ok": ok,
                "hist": hist,
            }
        for mode in ("per-session", "coalesced"):
            m = per_mode[mode]
            table.add_row(
                concurrency=level,
                mode=mode,
                sessions=m["sessions"],
                ok=m["ok"],
                wall_s=m["wall_s"],
                decode_s=m["decode_s"],
                batches=m["batches"],
                mean_sessions_per_batch=(
                    m["submissions"] / m["batches"] if m["batches"] else 0.0
                ),
                sessions_per_s=(
                    m["sessions"] / m["wall_s"] if m["wall_s"] else 0.0
                ),
                p50_ms=m["hist"].percentile(0.50) * 1000.0,
                p99_ms=m["hist"].percentile(0.99) * 1000.0,
                decode_speedup=(
                    per_mode["per-session"]["decode_s"] / m["decode_s"]
                    if mode == "coalesced" and m["decode_s"]
                    else 1.0
                ),
            )
    table.note(
        f"|A|={size_a}, d={d} per session (~3 BCH groups each), "
        f"{repeats} fleet repeats, coalescing window {WINDOW_S * 1000:.0f} ms; "
        "decode_s is server engine time inside decode_many (window wait "
        "excluded).  Per-session mode decodes each session's groups alone "
        "(scalar path below the batch threshold); coalesced mode batches "
        "groups across sessions and rides the PR-1 batch engine.  "
        "p50/p99 are client-observed per-session wall times from a "
        "log-linear latency histogram (repro.obs) over all repeats — the "
        "latency cost of waiting out the coalescing window shows up here."
    )
    return table
