"""Cluster scaling: reconciliation throughput vs shard count.

The PR-2 concurrent-session workload (many small sessions, ~3 BCH groups
each, cross-session decode coalescing at a 5 ms window) offered to the
same server at 1, 2 and 4 shards — every shard journaled (``fsync``) and
fronted by the same *per-shard* admission cap, exactly as a production
deployment would run it.  Delivered throughput is completed sessions per
wall-clock second, shed-and-retried sessions included: the fleet drives
``sync_with_server(..., retries=...)``, so clients that get RETRY frames
back off with jitter and come back, and their queueing time counts
against the configuration that shed them.

What scales here (and what honestly cannot): each shard worker bounds its
own concurrent sessions and serializes its own journal, so adding shards
multiplies admitted concurrency and overlaps WAL commits — with small
sessions dominated by coalescing-window latency and admission queueing,
throughput grows well past the single-shard ceiling.  Raw per-session
CPU does *not* multiply on a single-core host (shard workers share one
event loop); on multi-core deployments the same sharded layout is what
lets the CPU story scale too.
"""

from __future__ import annotations

import asyncio
import random
import shutil
import tempfile
from pathlib import Path

from repro.cluster.admission import AdmissionController
from repro.cluster.config import ClusterConfig, open_cluster
from repro.evaluation.harness import ExperimentTable, scaled
from repro.obs.histogram import LatencyHistogram
from repro.service.client import sync_with_server
from repro.service.scheduler import DecodeCoalescer
from repro.service.server import ReconciliationServer
from repro.service.wire import ServerBusy, backoff_or_raise
from repro.workloads.generator import SetPairGenerator

COLUMNS = [
    "shards", "clients", "sessions", "ok", "shed", "wall_s",
    "sessions_per_s", "speedup", "p50_ms", "p99_ms", "decode_s",
    "journal_records", "journal_bytes",
]

#: The PR-2 service-throughput coalescing window.
WINDOW_S = 0.005

#: Concurrent sessions each shard admits; the overload knob under test.
MAX_SESSIONS_PER_SHARD = 2

#: Retry attempts after which the benchmark clients stop growing their
#: backoff (2^4 x the server hint).  Unbounded exponential growth makes a
#: fixed-fleet drain measure backoff luck instead of shard capacity: one
#: unlucky client can park for seconds while slots sit idle.  Jitter is
#: seeded per client for run-to-run comparability.
MAX_BACKOFF_DOUBLINGS = 4


async def _client(port: int, jobs, seed: int, hist: LatencyHistogram):
    """One closed-loop client: its sessions back to back, RETRY honored.

    Closed-loop issue (each client starts its next session only when the
    previous one finished) keeps every configuration uniformly loaded
    for the whole run — an open burst would instead measure the retry
    luck of its last few stragglers.

    Each session's wall time — shed/backoff/retry included, so queueing
    under the admission cap counts against the configuration that caused
    it — lands in ``hist``.
    """
    rng = random.Random(seed)
    loop = asyncio.get_running_loop()
    results = []
    for k, (name, pair) in enumerate(jobs):
        attempt = 0
        start = loop.time()
        while True:
            try:
                results.append(await sync_with_server(
                    "127.0.0.1", port, pair.a, set_name=name,
                    seed=seed * 1000 + k, n_sketches=32, retries=0,
                ))
                hist.record(loop.time() - start)
                break
            except ServerBusy as busy:
                # capped attempt index = bounded growth; retries always
                # one past it, so the fleet never gives a session up
                await backoff_or_raise(
                    busy, min(attempt, MAX_BACKOFF_DOUBLINGS),
                    MAX_BACKOFF_DOUBLINGS + 1, rng,
                )
                attempt += 1
    return results


async def _run_fleet(
    shards: int, fleets, seed0: int, hist: LatencyHistogram
) -> tuple[float, int, int, float, int, int]:
    """One journaled cluster + one closed-loop client per fleet entry.

    ``fleets`` is a list of per-client job lists ``[(name, pair), ...]``;
    every (name, pair) is a distinct named set, so each session does the
    identical d-sized reconciliation no matter when it runs.
    """
    data_dir = Path(tempfile.mkdtemp(prefix="repro-cluster-bench-"))
    try:
        store = open_cluster(
            data_dir, ClusterConfig(shards=shards, fsync=True)
        )
        await store.start()
        admission = AdmissionController(
            shards=shards,
            max_sessions=MAX_SESSIONS_PER_SHARD,
            retry_after_s=0.02,
        )
        coalescer = DecodeCoalescer(window_s=WINDOW_S)
        try:
            async with ReconciliationServer(
                store, coalescer=coalescer, admission=admission
            ) as server:
                expected = {}
                for jobs in fleets:
                    for name, pair in jobs:
                        await store.create(name, pair.b)
                        expected[name] = pair.difference
                loop = asyncio.get_running_loop()
                start = loop.time()
                per_client = await asyncio.gather(
                    *[
                        _client(server.port, jobs, seed0 + i, hist)
                        for i, jobs in enumerate(fleets)
                    ]
                )
                wall = loop.time() - start
                ok = 0
                for jobs, results in zip(fleets, per_client):
                    for (name, _), result in zip(jobs, results):
                        ok += bool(result.success)
                        if result.success and (
                            result.difference != expected[name]
                        ):
                            raise AssertionError(
                                f"session on {name} converged to a wrong "
                                "difference"
                            )
            journal = store.cluster_stats()["per_shard"]
            return (
                wall,
                ok,
                admission.total_shed,
                coalescer.stats.decode_s,
                sum(s["records_appended"] for s in journal),
                sum(s["journal_bytes"] for s in journal),
            )
        finally:
            await store.close()
    finally:
        # repro: ignore[blocking-call-in-async] -- benchmark teardown:
        # the store is closed and no sessions run on this loop anymore
        shutil.rmtree(data_dir, ignore_errors=True)


def run(
    shard_levels=(1, 2, 4),
    clients: int | None = None,
    syncs_per_client: int = 3,
    d: int = 10,
    size_a: int | None = None,
    repeats: int | None = None,
) -> ExperimentTable:
    """Sweep shard count over identical closed-loop client fleets.

    The workload is the PR-2 service-throughput shape — many small
    concurrent sessions (d = 10, 32 ToW sketches, ~3 BCH groups per
    round) — so per-session latency is dominated by the coalescing
    window and admission queueing rather than decode CPU: the regime
    where shard count is the capacity knob.  Each client issues
    ``syncs_per_client`` sessions back to back (distinct sets, identical
    work), keeping offered load constant for the whole measurement; |A|
    defaults a bit below the PR-2 sweep's 1500 so the capped single-shard
    baseline — not the host's single-core decode/hash ceiling — is what
    the sweep measures.
    """
    size_a = size_a if size_a is not None else scaled(800, minimum=200)
    clients = clients if clients is not None else scaled(12, minimum=4)
    repeats = repeats if repeats is not None else scaled(4, minimum=2)
    table = ExperimentTable(
        name="Cluster scaling: delivered session throughput vs shards",
        columns=COLUMNS,
    )
    gen = SetPairGenerator(universe_bits=32, seed=0xC1)
    # warm-up: field/codec caches, so shard level 1 does not pay one-time
    # table construction
    asyncio.run(
        _run_fleet(
            1,
            [[("warm", gen.generate(size_a=200, d=d, seed=990))]],
            seed0=9900,
            hist=LatencyHistogram(),
        )
    )
    totals = {
        shards: {"wall": 0.0, "decode_s": 0.0, "ok": 0, "shed": 0,
                 "sessions": 0, "records": 0, "journal_bytes": 0,
                 "hist": LatencyHistogram()}
        for shards in shard_levels
    }
    # paired design: every repeat runs ALL shard levels back to back, so
    # ambient machine drift (frequency scaling, co-tenants) lands on each
    # level equally instead of on whichever level a slump coincides with
    for rep in range(repeats):
        fleets = [
            [
                (
                    f"c{i}-j{j}",
                    gen.generate(
                        size_a=size_a, d=d, seed=(rep * 100 + i) * 8 + j
                    ),
                )
                for j in range(syncs_per_client)
            ]
            for i in range(clients)
        ]
        for shards in shard_levels:
            w, n_ok, n_shed, dec, recs, jbytes = asyncio.run(
                _run_fleet(
                    shards, fleets, seed0=rep * 1000 + 1,
                    hist=totals[shards]["hist"],
                )
            )
            t = totals[shards]
            t["wall"] += w
            t["ok"] += n_ok
            t["shed"] += n_shed
            t["decode_s"] += dec
            t["records"] += recs
            t["journal_bytes"] += jbytes
            t["sessions"] += clients * syncs_per_client
    base_rate = None
    for shards in shard_levels:
        t = totals[shards]
        rate = t["sessions"] / t["wall"] if t["wall"] else 0.0
        if base_rate is None:
            base_rate = rate
        table.add_row(
            shards=shards,
            clients=clients,
            sessions=t["sessions"],
            ok=t["ok"],
            shed=t["shed"],
            wall_s=t["wall"],
            sessions_per_s=rate,
            speedup=rate / base_rate if base_rate else 1.0,
            p50_ms=t["hist"].percentile(0.50) * 1000.0,
            p99_ms=t["hist"].percentile(0.99) * 1000.0,
            decode_s=t["decode_s"],
            journal_records=t["records"],
            journal_bytes=t["journal_bytes"],
        )
    table.note(
        f"|A|={size_a}, d={d} per session, {clients} closed-loop clients x "
        f"{syncs_per_client} sessions each, {repeats} fleet repeats; "
        f"per-shard admission cap {MAX_SESSIONS_PER_SHARD} sessions, "
        f"decode window {WINDOW_S * 1000:.0f} ms, journals fsync'd.  "
        "Throughput counts completed sessions over total wall time "
        "including RETRY backoff; p50/p99 are per-session wall times "
        "from a log-linear latency histogram (repro.obs), shed-and-retry "
        "waits included; 'shed' is admission rejections, each "
        "later retried to success (client jitter is seeded and backoff "
        f"growth capped at 2^{MAX_BACKOFF_DOUBLINGS}x the server hint, "
        "so the run measures shard capacity rather than backoff luck).  "
        "Sharding multiplies admitted concurrency and overlaps per-shard "
        "WAL commits; per-session decode/hash CPU is shared on a "
        "single-core host (see module docstring)."
    )
    return table


if __name__ == "__main__":  # pragma: no cover
    run().print()
