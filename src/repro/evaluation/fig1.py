"""Figure 1: PBS vs PinSketch vs Difference Digest (§8.1).

Four panels over a d sweep at target success rate 0.99: success rate,
data transmitted (KB), encoding time, decoding time.  All three schemes
share the same per-instance conservative ToW estimate (336 B, excluded
from the communication figures), exactly as in the paper.

PinSketch's decoding is Θ(d^2) finite-field operations; like the paper
(which stopped at d = 3*10^4 on C++), we cap its d on the pure-Python
substrate via ``REPRO_PINSKETCH_MAX_D`` (default 300).
"""

from __future__ import annotations

import os

from repro.baselines.ddigest import DifferenceDigestProtocol
from repro.baselines.pinsketch import PinSketchProtocol
from repro.core.protocol import PBSProtocol
from repro.evaluation.harness import (
    ExperimentTable,
    aggregate_runs,
    instances,
    scaled,
    shared_estimates,
)

DEFAULT_D_VALUES = (10, 30, 100, 300, 1000, 3000)
DEFAULT_SIZE_A = 20_000
DEFAULT_TRIALS = 10


def pinsketch_max_d() -> int:
    try:
        return int(os.environ.get("REPRO_PINSKETCH_MAX_D", "300"))
    except ValueError:
        return 300


def run(
    d_values: tuple[int, ...] = DEFAULT_D_VALUES,
    size_a: int = DEFAULT_SIZE_A,
    trials: int = DEFAULT_TRIALS,
    seed: int = 1,
) -> ExperimentTable:
    trials = scaled(trials, minimum=3)
    table = ExperimentTable(
        name="Fig. 1 — PBS vs PinSketch vs D.Digest (p0 = 0.99)",
        columns=[
            "d", "algorithm", "success", "kb", "kb/min", "encode_s", "decode_s",
        ],
    )
    cap = pinsketch_max_d()
    for d in d_values:
        if d > size_a:
            continue
        pairs = instances(size_a, d, trials, seed=seed)
        estimates = shared_estimates(pairs, seed=seed)
        minimum_kb = d * 32 / 8 / 1000.0

        schemes = {
            "pbs": lambda s: PBSProtocol(seed=s, p0=0.99, r=3),
            "d.digest": lambda s: DifferenceDigestProtocol(seed=s),
        }
        if d <= cap:
            schemes["pinsketch"] = lambda s: PinSketchProtocol(seed=s)
        for name, factory in schemes.items():
            results = [
                factory(seed + i).run(p.a, p.b, estimated_d=e)
                for i, (p, e) in enumerate(zip(pairs, estimates))
            ]
            # Success also requires a *correct* difference.
            for r, p in zip(results, pairs):
                if r.success and r.difference != p.difference:
                    r.success = False
            agg = aggregate_runs(results)
            table.add_row(
                d=d,
                algorithm=name,
                success=agg["success"],
                kb=agg["kb"],
                **{"kb/min": agg["kb"] / minimum_kb},
                encode_s=agg["encode_s"],
                decode_s=agg["decode_s"],
            )
    table.note(
        f"|A| = {size_a}, {trials} trials/point; PinSketch capped at d <= {cap} "
        "(O(d^2) decode on a pure-Python substrate). kb/min = multiple of the "
        "d*log|U| minimum; paper shapes: D.Digest ~6x, PBS ~2-3x, PinSketch 1.38x."
    )
    return table


if __name__ == "__main__":
    table = run()
    table.print()
    table.save("fig1_pbs_vs_pinsketch_ddigest")
