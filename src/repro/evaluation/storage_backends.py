"""Storage backend comparison: journal files vs the SQLite store.

The journal backend replays every byte into RAM at open, so a shard's
memory is proportional to everything it has ever been asked to hold; the
SQLite backend (:mod:`repro.cluster.sqlite`) keeps the durable truth on
disk and materializes sets lazily, so memory is proportional to the
*working set*.  This driver measures both claims with real processes:

* **populate** — a fresh child process writes N sets of M elements plus
  a round of apply-diffs through one shard backend, reporting write
  throughput and its own peak RSS (``ru_maxrss``);
* **serve** — a second child process opens the populated shard (the
  recovery path), reads a small working set of sets bit-for-bit, and
  reports recovery time and peak RSS.

Each phase runs in its own child so ``ru_maxrss`` — a process-lifetime
high-water mark — measures exactly one backend in exactly one phase.
The headline column is the serve phase's ``rss_delta_mb`` against
``materialized_mb_est`` (what holding every element in Python sets
costs): the journal's delta tracks the estimate, SQLite's tracks the
working set — that gap is the bigger-than-RAM headroom
``repro serve --storage sqlite`` buys.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path
from tempfile import TemporaryDirectory

from repro.cluster.storage import BACKEND_NAMES
from repro.evaluation.harness import ExperimentTable, scaled

COLUMNS = [
    "backend", "phase", "sets", "elements", "ok", "wall_s",
    "elems_per_s", "recover_s", "disk_mb", "rss_peak_mb", "rss_delta_mb",
    "materialized_mb_est",
]

#: Sets the serve phase actually reads — the "working set".
TOUCH_SETS = 8

#: Rough per-element cost of a materialized Python ``set`` of 64-bit
#: ints (object header + set slot, amortized), used only for the
#: ``materialized_mb_est`` yardstick column.
BYTES_PER_ELEMENT_EST = 90


def _values(index: int, size: int) -> range:
    # disjoint, deterministic, no RNG cost in the measured window
    return range(index << 32, (index << 32) + size)


def _child_main(argv) -> None:
    """One measured phase in an isolated process; JSON on stdout."""
    import resource
    import time

    from repro.cluster.storage import open_backend

    backend_name, directory, phase, n_sets, set_size = (
        argv[0], argv[1], argv[2], int(argv[3]), int(argv[4]),
    )
    rss0 = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss  # KiB on Linux
    out = {"ok": True, "recover_s": 0.0}
    start = time.perf_counter()
    if phase == "populate":
        backend = open_backend(backend_name, directory)
        store = backend.open_store()
        for i in range(n_sets):
            store.create(f"set-{i:05d}", _values(i, set_size))
        for i in range(TOUCH_SETS):          # a round of real apply-diffs
            store.apply_diff(
                f"set-{i:05d}",
                add=_values(n_sets + i, 16),
                remove=list(_values(i, 8)),
            )
        if not backend.compact_from_entries:
            backend.compact()                # checkpoint the WAL
        backend.close()
    elif phase == "serve":
        t0 = time.perf_counter()
        backend = open_backend(backend_name, directory)
        store = backend.open_store()         # journal: full replay here
        out["recover_s"] = time.perf_counter() - t0
        for i in range(TOUCH_SETS):          # the working set, verified
            expected = (
                set(_values(i, set_size)) - set(_values(i, 8))
            ) | set(_values(n_sets + i, 16))
            if store.get(f"set-{i:05d}") != expected:
                out["ok"] = False
        if len(store.names()) != n_sets:
            out["ok"] = False
        backend.close()
    else:
        raise SystemExit(f"unknown phase {phase!r}")
    out["wall_s"] = time.perf_counter() - start
    rss1 = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    out["rss_peak_kib"] = rss1
    out["rss_delta_kib"] = max(0, rss1 - rss0)
    print(json.dumps(out))


def _run_child(backend: str, directory: str, phase: str, n_sets: int,
               set_size: int) -> dict:
    import repro

    env = dict(os.environ)
    src = str(Path(repro.__file__).resolve().parents[1])
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [
            sys.executable, "-m", "repro.evaluation.storage_backends",
            "--child", backend, directory, phase, str(n_sets),
            str(set_size),
        ],
        env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(proc.stdout.splitlines()[-1])


def _disk_bytes(directory: Path) -> int:
    return sum(p.stat().st_size for p in directory.rglob("*") if p.is_file())


def run(n_sets: int | None = None, set_size: int | None = None,
        backends=BACKEND_NAMES) -> ExperimentTable:
    """Populate-then-serve both backends at identical scale.

    Defaults put the full materialization well past the serve child's
    baseline RSS (~150 sets x 4000 elements ~= 50 MB estimated) so the
    journal/SQLite residency gap is unambiguous; ``REPRO_SCALE`` moves
    both phases together.
    """
    n_sets = n_sets if n_sets is not None else scaled(150, minimum=24)
    set_size = set_size if set_size is not None else scaled(4000, minimum=500)
    elements = n_sets * set_size
    est_mb = elements * BYTES_PER_ELEMENT_EST / 1e6
    table = ExperimentTable(
        name="Shard storage backends: write throughput and RAM residency",
        columns=COLUMNS,
    )
    for backend in backends:
        with TemporaryDirectory(prefix=f"bench-storage-{backend}-") as tmp:
            for phase in ("populate", "serve"):
                result = _run_child(backend, tmp, phase, n_sets, set_size)
                table.add_row(
                    backend=backend,
                    phase=phase,
                    sets=n_sets,
                    elements=elements,
                    ok=result["ok"],
                    wall_s=result["wall_s"],
                    elems_per_s=(
                        elements / result["wall_s"] if result["wall_s"]
                        else 0.0
                    ),
                    recover_s=result["recover_s"],
                    disk_mb=_disk_bytes(Path(tmp)) / 1e6,
                    rss_peak_mb=result["rss_peak_kib"] / 1024,
                    rss_delta_mb=result["rss_delta_kib"] / 1024,
                    materialized_mb_est=est_mb,
                )
    table.note(
        f"{n_sets} sets x {set_size} elements (~{est_mb:.0f} MB if fully "
        f"materialized), one fresh child process per (backend, phase) so "
        f"ru_maxrss isolates each measurement; the serve phase recovers "
        f"the shard and reads {TOUCH_SETS} sets bit-for-bit.  The journal "
        "backend replays everything into RAM at open (rss_delta tracks "
        "materialized_mb_est); the SQLite backend faults in only the "
        "working set, so the same data dir serves from a small, flat "
        "footprint — stores larger than RAM stay servable with "
        "`repro serve --storage sqlite`."
    )
    return table


if __name__ == "__main__":  # pragma: no cover - manual / child entry point
    if len(sys.argv) > 1 and sys.argv[1] == "--child":
        _child_main(sys.argv[2:])
    else:
        run().print()
