"""Shared experiment machinery: scaling, instance generation, result tables.

The paper's setup (§8): ``|A| = 10^6``, d from 10 to 10^5, 1000 instances
per point, C++ on an i7-9800X.  A pure-Python substrate is ~two orders of
magnitude slower, so the default scale targets the same *shapes* at
``|A| = 2*10^4`` and tens of trials; ``REPRO_SCALE`` moves along that
axis without touching the harness code.
"""

from __future__ import annotations

import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.estimators.tow import ToWEstimator
from repro.utils.seeds import derive_seed
from repro.workloads.generator import SetPair, SetPairGenerator

#: Where benches drop their rendered tables.
RESULTS_DIR = Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def scale_factor() -> float:
    """The global experiment scale from ``REPRO_SCALE`` (default 1.0)."""
    try:
        return max(0.01, float(os.environ.get("REPRO_SCALE", "1.0")))
    except ValueError:
        return 1.0


def scaled(base: int, minimum: int = 1) -> int:
    """Scale a count by :func:`scale_factor`, with a floor."""
    return max(minimum, int(round(base * scale_factor())))


def instances(
    size_a: int, d: int, trials: int, seed: int = 0
) -> list[SetPair]:
    """``trials`` independent paper-style instances (B ⊂ A)."""
    gen = SetPairGenerator(universe_bits=32, seed=derive_seed(seed, "inst", size_a, d))
    return [gen.generate(size_a=size_a, d=d, seed=i) for i in range(trials)]


def shared_estimates(pairs: list[SetPair], seed: int = 0) -> list[int]:
    """One *raw* ToW estimate d_hat per instance, shared across protocols
    exactly as the paper shares the same 336-byte estimator among PBS,
    PinSketch and D.Digest (§6.2, §8.1.1).  Each protocol applies its own
    inflation policy (PBS and PinSketch: 1.38x; D.Digest: 2x cells)."""
    out = []
    est = ToWEstimator(n_sketches=128, seed=derive_seed(seed, "shared-tow"),
                       family="fast")
    for pair in pairs:
        a = np.fromiter(pair.a, dtype=np.uint64)
        b = np.fromiter(pair.b, dtype=np.uint64)
        d_hat = est.estimate(est.sketch(a), est.sketch(b))
        out.append(max(1, round(d_hat)))
    return out


@dataclass
class ExperimentTable:
    """A printable/saveable result table for one experiment."""

    name: str
    columns: list[str]
    rows: list[dict] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values) -> None:
        self.rows.append(values)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def _fmt(self, value) -> str:
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1000 or abs(value) < 0.001:
                return f"{value:.3g}"
            return f"{value:.4g}"
        return str(value)

    def to_markdown(self) -> str:
        lines = [f"### {self.name}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "---|" * len(self.columns))
        for row in self.rows:
            lines.append(
                "| "
                + " | ".join(self._fmt(row.get(c, "")) for c in self.columns)
                + " |"
            )
        for note in self.notes:
            lines.append("")
            lines.append(f"*{note}*")
        return "\n".join(lines)

    def print(self) -> None:
        print()
        print(self.to_markdown())
        print()

    def save(self, stem: str | None = None) -> Path:
        """Write markdown + JSON artifacts under ``benchmarks/results``."""
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        stem = stem or self.name.lower().replace(" ", "_").replace("/", "-")
        (RESULTS_DIR / f"{stem}.md").write_text(self.to_markdown() + "\n")
        payload = {
            "name": self.name,
            "columns": self.columns,
            "rows": self.rows,
            "notes": self.notes,
            "generated_unix": time.time(),
            "scale": scale_factor(),
        }
        path = RESULTS_DIR / f"{stem}.json"
        path.write_text(json.dumps(payload, indent=2, default=str))
        return path


def batch_mode_rows(
    make_protocol,
    pairs: list[SetPair],
    true_d: int | None = None,
    estimates: list[int] | None = None,
) -> list[dict]:
    """Scalar-vs-batch comparison rows for one protocol on one workload.

    ``make_protocol(batch)`` must return a protocol object with a
    ``run(a, b, true_d=..., estimated_d=...)`` method (PBS, PinSketch and
    PinSketch/WP all qualify).  Both modes see the identical instances;
    the returned rows carry the aggregate metrics per mode plus the
    decode/encode speedup on the batch row — the measured counterpart of
    the batch-engine claim (identical outputs are asserted, so the
    comparison cannot silently diverge).
    """
    aggregates: dict[str, dict] = {}
    differences: dict[str, list] = {}
    for mode, batch in (("scalar", False), ("batch", True)):
        results = []
        for i, pair in enumerate(pairs):
            estimated = estimates[i] if estimates is not None else None
            results.append(
                make_protocol(batch).run(
                    pair.a, pair.b, true_d=true_d, estimated_d=estimated
                )
            )
        aggregates[mode] = aggregate_runs(results)
        differences[mode] = [r.difference for r in results]
    if differences["scalar"] != differences["batch"]:
        raise AssertionError(
            "scalar and batch decode paths disagree on the recovered "
            "difference — the batch engine is broken"
        )
    rows = []
    for mode in ("scalar", "batch"):
        row = {"mode": mode, **aggregates[mode]}
        if mode == "batch":
            row["decode_speedup"] = aggregates["scalar"]["decode_s"] / max(
                aggregates["batch"]["decode_s"], 1e-12
            )
            row["encode_speedup"] = aggregates["scalar"]["encode_s"] / max(
                aggregates["batch"]["encode_s"], 1e-12
            )
        rows.append(row)
    return rows


def aggregate_runs(results: list) -> dict:
    """Mean metrics over a list of ReconciliationResults.

    Estimator bytes are excluded from the communication figure, matching
    the paper's accounting (§6.2).
    """
    n = max(1, len(results))
    success = sum(1 for r in results if r.success) / n
    data_bytes = []
    for r in results:
        excluded = r.channel.bytes_by_label().get("estimator", 0)
        data_bytes.append(r.channel.total_bytes - excluded)
    return {
        "success": success,
        "kb": float(np.mean(data_bytes)) / 1000.0,
        "encode_s": float(np.mean([r.encode_s for r in results])),
        "decode_s": float(np.mean([r.decode_s for r in results])),
        "rounds": float(np.mean([r.rounds for r in results])),
    }
