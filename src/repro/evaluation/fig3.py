"""Figure 3: PBS vs PinSketch-with-partition (§8.3), p0 = 0.99.

Both schemes use the *same* (delta, t) per d; the only difference is the
symbol width — PBS pays ``log n`` bits per sketch symbol and decoded
position, PinSketch/WP pays ``log|U|``.  The paper's claim: PBS wins on
communication at equal (better) computation.
"""

from __future__ import annotations

from repro.baselines.pinsketch_wp import PinSketchWPProtocol
from repro.core.protocol import PBSProtocol
from repro.evaluation.harness import (
    ExperimentTable,
    aggregate_runs,
    instances,
    scaled,
    shared_estimates,
)

DEFAULT_D_VALUES = (10, 100, 1000, 3000)
DEFAULT_SIZE_A = 20_000
DEFAULT_TRIALS = 10


def run(
    d_values: tuple[int, ...] = DEFAULT_D_VALUES,
    size_a: int = DEFAULT_SIZE_A,
    trials: int = DEFAULT_TRIALS,
    seed: int = 3,
) -> ExperimentTable:
    trials = scaled(trials, minimum=3)
    table = ExperimentTable(
        name="Fig. 3 — PBS vs PinSketch/WP (p0 = 0.99)",
        columns=[
            "d", "algorithm", "success", "kb", "kb/min", "encode_s", "decode_s",
        ],
    )
    for d in d_values:
        if d > size_a:
            continue
        pairs = instances(size_a, d, trials, seed=seed)
        estimates = shared_estimates(pairs, seed=seed)
        minimum_kb = d * 32 / 8 / 1000.0
        schemes = {
            "pbs": lambda s: PBSProtocol(seed=s, p0=0.99, r=3),
            "pinsketch/wp": lambda s: PinSketchWPProtocol(seed=s, p0=0.99, r=3),
        }
        for name, factory in schemes.items():
            results = [
                factory(seed + i).run(p.a, p.b, estimated_d=e)
                for i, (p, e) in enumerate(zip(pairs, estimates))
            ]
            for r, p in zip(results, pairs):
                if r.success and r.difference != p.difference:
                    r.success = False
            agg = aggregate_runs(results)
            table.add_row(
                d=d,
                algorithm=name,
                success=agg["success"],
                kb=agg["kb"],
                **{"kb/min": agg["kb"] / minimum_kb},
                encode_s=agg["encode_s"],
                decode_s=agg["decode_s"],
            )
    table.note(
        f"|A| = {size_a}, {trials} trials/point.  PinSketch/WP pays "
        "(t - delta) * log|U| per group for the capacity safety margin vs "
        "PBS's (t - delta) * log n (§8.3)."
    )
    return table


if __name__ == "__main__":
    table = run()
    table.print()
    table.save("fig3_pbs_vs_pinsketch_wp")
