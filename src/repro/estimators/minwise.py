"""Min-wise set-difference estimator (Appendix B).

Min-wise hashing [Broder et al.] estimates the Jaccard similarity
``J = |A ∩ B| / |A ∪ B|`` as the fraction of k independent min-hashes that
agree.  The difference cardinality follows from the identity

    d = |A xor B| = (1 - J) * |A ∪ B|,   |A ∪ B| = (|A| + |B|) / (1 + J).

The paper compares against this estimator (and Strata) in Appendix B and
finds ToW more space-efficient at equal accuracy; the estimator benchmark
reproduces that comparison.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.hashing.families import SaltedHash
from repro.utils.seeds import derive_seed


class MinWiseEstimator:
    """k-permutation min-wise estimator.

    >>> import numpy as np
    >>> est = MinWiseEstimator(n_hashes=256, seed=3)
    >>> a = np.arange(1, 2001, dtype=np.uint64)
    >>> sig_a = est.signature(a)
    >>> est.estimate(sig_a, sig_a, size_a=2000, size_b=2000)
    0.0
    """

    def __init__(self, n_hashes: int = 128, seed: int = 0) -> None:
        if n_hashes < 1:
            raise ParameterError(f"need at least one hash, got {n_hashes}")
        self.n_hashes = n_hashes
        self._hashes = [
            SaltedHash(derive_seed(seed, "minwise", i)) for i in range(n_hashes)
        ]

    def signature(self, values: np.ndarray) -> np.ndarray:
        """Vector of per-hash minima (uint64), the min-wise signature."""
        values = np.asarray(values, dtype=np.uint64)
        out = np.empty(self.n_hashes, dtype=np.uint64)
        if len(values) == 0:
            out[:] = np.iinfo(np.uint64).max
            return out
        for i, h in enumerate(self._hashes):
            out[i] = h.hash_vec(values).min()
        return out

    def estimate(
        self,
        signature_a: np.ndarray,
        signature_b: np.ndarray,
        size_a: int,
        size_b: int,
    ) -> float:
        """``d_hat`` from two signatures and the (known) set sizes."""
        matches = float((signature_a == signature_b).mean())
        union = (size_a + size_b) / (1.0 + matches)
        return (1.0 - matches) * union

    def signature_bytes(self) -> int:
        """Wire size: 64 bits per min-hash."""
        return self.n_hashes * 8
