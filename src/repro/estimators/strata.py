"""Strata estimator (Appendix B; Eppstein et al. [15]).

Elements are assigned to strata by the number of trailing zero bits of a
uniform hash: stratum i receives a ~2^-(i+1) fraction of each set.  Each
stratum is summarized by a fixed-size invertible Bloom filter; the decoder
walks from the most selective stratum downward, accumulating recovered
difference elements, and extrapolates ``d_hat = 2^(i+1) * count`` at the
first stratum i that fails to decode.

Compared with Tug-of-War, Strata needs an order of magnitude more space at
equal accuracy (each stratum carries a whole IBF) — the Appendix-B claim
the estimator benchmark reproduces.
"""

from __future__ import annotations

import numpy as np

from repro.errors import DecodeFailure, ParameterError
from repro.hashing.families import SaltedHash
from repro.utils.seeds import derive_seed


class StrataEstimator:
    """Strata-of-IBFs difference estimator.

    >>> import numpy as np
    >>> est = StrataEstimator(seed=2)
    >>> a = np.arange(1, 5001, dtype=np.uint64)
    >>> b = np.arange(1, 4901, dtype=np.uint64)   # d = 100
    >>> s_a, s_b = est.build(a), est.build(b)
    >>> 10 <= est.estimate(s_a, s_b) <= 1000
    True
    """

    def __init__(
        self,
        n_strata: int = 32,
        cells_per_stratum: int = 80,
        n_hashes: int = 4,
        seed: int = 0,
        log_u: int = 32,
    ) -> None:
        if n_strata < 1:
            raise ParameterError("need at least one stratum")
        self.n_strata = n_strata
        self.cells_per_stratum = cells_per_stratum
        self.n_hashes = n_hashes
        self.seed = seed
        self.log_u = log_u
        self._level_hash = SaltedHash(derive_seed(seed, "strata-level"))

    def _levels(self, values: np.ndarray) -> np.ndarray:
        """Stratum of each element: trailing zeros of a uniform hash.

        Vectorized via the lowest-set-bit trick: ``h & -h`` isolates the
        lowest set bit, whose log2 (exact in float64 for powers of two) is
        the trailing-zero count.
        """
        hashed = self._level_hash.hash_vec(values)
        lowest = hashed & (~hashed + np.uint64(1))  # h & -h in uint64
        # all-zero hashes (probability 2^-64) land in the deepest stratum
        safe = np.where(lowest == 0, np.uint64(1) << np.uint64(63), lowest)
        levels = np.log2(safe.astype(np.float64)).astype(np.int64)
        return np.minimum(levels, self.n_strata - 1)

    def build(self, values: np.ndarray) -> list:
        """Per-stratum IBFs of a set."""
        from repro.baselines.ibf import IBF

        values = np.asarray(values, dtype=np.uint64)
        levels = self._levels(values) if len(values) else np.empty(0, dtype=np.int64)
        strata = []
        for i in range(self.n_strata):
            ibf = IBF(
                self.cells_per_stratum,
                self.n_hashes,
                seed=derive_seed(self.seed, "stratum", i),
                log_u=self.log_u,
            )
            ibf.insert_many(values[levels == i])
            strata.append(ibf)
        return strata

    def estimate(self, strata_a: list, strata_b: list) -> float:
        """``d_hat`` from two stratum vectors."""
        count = 0
        for i in range(self.n_strata - 1, -1, -1):
            diff = strata_a[i].subtract(strata_b[i])
            try:
                a_only, b_only = diff.decode()
            except DecodeFailure:
                return float(2 ** (i + 1)) * count
            count += len(a_only) + len(b_only)
        return float(count)

    def wire_bytes(self) -> int:
        """Total size of one party's strata message."""
        from repro.baselines.ibf import IBF

        cell_bytes = IBF.cell_bits(self.log_u) // 8
        return self.n_strata * self.cells_per_stratum * cell_bytes
