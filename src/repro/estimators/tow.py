"""The Tug-of-War set-difference estimator (§6, Appendix A).

One sketch of a set S under a ±1 four-wise independent hash f is
``Y_f(S) = sum_{s in S} f(s)``; the paper proves
``(Y_f(A) - Y_f(B))^2`` is an unbiased estimator of ``d = |A xor B|``
with variance ``2d^2 - 2d``.  Averaging ``l`` independent sketches divides
the variance by ``l``; PBS uses ``l = 128`` (336 bytes for 10^6-element
sets) and then conservatively takes ``1.38 * d_hat`` as the design d,
which covers the true d with probability >= 99% (§6.2).

Two hash families are offered: ``"fourwise"`` (degree-3 polynomials over
GF(2^61 - 1); matches the paper's independence requirement exactly) and
``"fast"`` (salted splitmix64 mixing; ~10x faster and empirically
indistinguishable — used by the large benchmark sweeps).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import ParameterError
from repro.hashing.families import SaltedHash
from repro.hashing.fourwise import FourWiseHash
from repro.utils.bitio import BitReader, BitWriter
from repro.utils.seeds import derive_seed

#: The paper's recommended (l, gamma): 128 sketches, 1.38 inflation for a
#: >= 99% one-sided coverage of the true d.
DEFAULT_SKETCHES = 128
DEFAULT_GAMMA = 1.38


class ToWEstimator:
    """Tug-of-War estimator with ``l`` independent ±1 sketches.

    >>> import numpy as np
    >>> est = ToWEstimator(seed=1)
    >>> a = np.arange(1, 1001, dtype=np.uint64)
    >>> b = np.arange(1, 951, dtype=np.uint64)   # d = 50
    >>> ya, yb = est.sketch(a), est.sketch(b)
    >>> 10 < est.estimate(ya, yb) < 150
    True
    """

    def __init__(
        self,
        n_sketches: int = DEFAULT_SKETCHES,
        seed: int = 0,
        family: str = "fourwise",
    ) -> None:
        if n_sketches < 1:
            raise ParameterError(f"need at least one sketch, got {n_sketches}")
        if family not in ("fourwise", "fast"):
            raise ParameterError(f"unknown hash family {family!r}")
        self.n_sketches = n_sketches
        self.seed = seed
        self.family = family
        if family == "fourwise":
            self._hashes = [
                FourWiseHash(derive_seed(seed, "tow", i)) for i in range(n_sketches)
            ]
        else:
            self._hashes = [
                SaltedHash(derive_seed(seed, "tow-fast", i))
                for i in range(n_sketches)
            ]

    # -- sketching -----------------------------------------------------------
    def sketch(self, values: np.ndarray) -> np.ndarray:
        """The ``l`` sketch values ``Y_1(S) .. Y_l(S)`` (int64 array)."""
        values = np.asarray(values, dtype=np.uint64)
        out = np.empty(self.n_sketches, dtype=np.int64)
        if len(values) == 0:
            out[:] = 0
            return out
        for i, h in enumerate(self._hashes):
            if self.family == "fourwise":
                signs = h.signs(values)
            else:
                bits = h.hash_vec(values) & np.uint64(1)
                signs = np.where(bits == 1, np.int64(1), np.int64(-1))
            out[i] = int(signs.sum())
        return out

    # -- estimation ----------------------------------------------------------
    def estimate(self, sketch_a: np.ndarray, sketch_b: np.ndarray) -> float:
        """``d_hat``: mean of squared sketch differences."""
        diff = np.asarray(sketch_a, dtype=np.int64) - np.asarray(
            sketch_b, dtype=np.int64
        )
        return float((diff.astype(np.float64) ** 2).mean())

    @staticmethod
    def conservative(d_hat: float, gamma: float = DEFAULT_GAMMA) -> int:
        """The design value ``ceil(gamma * d_hat)``, at least 1 (§6.2)."""
        return max(1, math.ceil(gamma * d_hat))

    # -- wire format -----------------------------------------------------------
    @staticmethod
    def value_bits(set_size: int) -> int:
        """Bits per sketch value: ``ceil(log2(2|S| + 1))`` (§6.1)."""
        return max(1, math.ceil(math.log2(2 * set_size + 1)))

    def sketch_bytes(self, set_size: int) -> int:
        """Total wire size of one sketch vector."""
        return (self.n_sketches * self.value_bits(set_size) + 7) // 8

    def serialize(self, sketch: np.ndarray, set_size: int) -> bytes:
        """Pack sketch values (offset by |S| to make them nonnegative)."""
        width = self.value_bits(set_size)
        writer = BitWriter()
        for y in sketch:
            writer.write(int(y) + set_size, width)
        return writer.getvalue()

    def deserialize(self, data: bytes, set_size: int) -> np.ndarray:
        """Inverse of :meth:`serialize`."""
        width = self.value_bits(set_size)
        reader = BitReader(data)
        return np.array(
            [reader.read(width) - set_size for _ in range(self.n_sketches)],
            dtype=np.int64,
        )
