"""Set-difference cardinality estimators (§6, Appendices A and B)."""

from repro.estimators.minwise import MinWiseEstimator
from repro.estimators.strata import StrataEstimator
from repro.estimators.tow import ToWEstimator

__all__ = ["ToWEstimator", "StrataEstimator", "MinWiseEstimator"]
