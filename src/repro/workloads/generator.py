"""Set-pair workloads following the paper's experiment setup (§8).

The paper's procedure: draw ``|A|`` elements of a 32-bit universe uniformly
without replacement, then sample ``|A| - d`` of them to form B, so that
``B ⊂ A`` and ``|A xor B| = d`` exactly.  The all-zero element is excluded
from the universe (§2.1).  A general two-sided mode (elements private to
each side) is also provided for tests and the file-sync example.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ParameterError
from repro.utils.seeds import spawn_rng


@dataclass(frozen=True)
class SetPair:
    """One reconciliation instance."""

    a: frozenset[int]
    b: frozenset[int]

    @property
    def difference(self) -> frozenset[int]:
        """The ground-truth symmetric difference A xor B."""
        return self.a ^ self.b

    @property
    def d(self) -> int:
        """|A xor B|."""
        return len(self.a ^ self.b)


class SetPairGenerator:
    """Reproducible generator of reconciliation instances.

    >>> gen = SetPairGenerator(universe_bits=32, seed=7)
    >>> pair = gen.generate(size_a=1000, d=10)
    >>> (len(pair.a), pair.d, pair.b < pair.a)
    (1000, 10, True)
    """

    def __init__(self, universe_bits: int = 32, seed: int = 0) -> None:
        if universe_bits < 8 or universe_bits > 64:
            raise ParameterError(
                f"universe_bits must be in [8, 64], got {universe_bits}"
            )
        self.universe_bits = universe_bits
        self.seed = seed
        self._counter = 0

    def _sample_universe(self, count: int, rng: np.random.Generator) -> np.ndarray:
        """``count`` distinct nonzero universe elements."""
        hi = 1 << self.universe_bits
        if count > hi // 2:
            raise ParameterError(
                f"cannot sample {count} elements from 2^{self.universe_bits}"
            )
        out = np.empty(0, dtype=np.uint64)
        while len(out) < count:
            need = count - len(out)
            batch = rng.integers(1, hi, size=int(need * 1.1) + 16, dtype=np.uint64)
            out = np.unique(np.concatenate([out, batch]))
        rng.shuffle(out)
        return out[:count]

    def generate(self, size_a: int, d: int, seed: int | None = None) -> SetPair:
        """Paper workload: ``B ⊂ A`` with ``|A| = size_a``, ``|A xor B| = d``."""
        if d > size_a:
            raise ParameterError(f"d={d} cannot exceed |A|={size_a} when B ⊂ A")
        if seed is None:
            seed = self._counter
            self._counter += 1
        rng = spawn_rng(self.seed, "pair", seed)
        a = self._sample_universe(size_a, rng)
        keep = rng.permutation(size_a)[: size_a - d]
        b = a[keep]
        return SetPair(a=frozenset(int(v) for v in a), b=frozenset(int(v) for v in b))

    def generate_two_sided(
        self,
        common: int,
        only_a: int,
        only_b: int,
        seed: int | None = None,
    ) -> SetPair:
        """General workload with elements private to both sides.

        ``d = only_a + only_b``; exercises the protocols on differences
        that are *not* subsets of Alice's set.
        """
        if seed is None:
            seed = self._counter
            self._counter += 1
        rng = spawn_rng(self.seed, "two-sided", seed)
        total = common + only_a + only_b
        pool = self._sample_universe(total, rng)
        shared = pool[:common]
        priv_a = pool[common : common + only_a]
        priv_b = pool[common + only_a :]
        a = frozenset(int(v) for v in np.concatenate([shared, priv_a]))
        b = frozenset(int(v) for v in np.concatenate([shared, priv_b]))
        return SetPair(a=a, b=b)
