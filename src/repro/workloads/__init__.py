"""Workload generation for set-reconciliation experiments."""

from repro.workloads.generator import SetPair, SetPairGenerator

__all__ = ["SetPair", "SetPairGenerator"]
