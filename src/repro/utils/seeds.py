"""Deterministic seed derivation.

Every randomized component in this package (hash salts, workload generation,
round-specific partitioning hashes) derives its seed from a parent seed plus
a structured label via :func:`derive_seed`.  This gives the paper's "fresh,
mutually independent hash function per round" behaviour (§2.4) while keeping
whole experiments bit-for-bit reproducible from a single integer.
"""

from __future__ import annotations

import hashlib

import numpy as np

_MASK64 = (1 << 64) - 1


def derive_seed(parent: int, *labels: object) -> int:
    """Derive a 64-bit child seed from ``parent`` and a label path.

    The derivation is a SHA-256 of the parent and the ``repr`` of each label,
    so distinct label paths yield independent-looking seeds and the function
    is stable across processes and Python versions (no ``hash()``
    randomization).

    >>> derive_seed(1, "round", 2) != derive_seed(1, "round", 3)
    True
    """
    h = hashlib.sha256()
    h.update(int(parent).to_bytes(16, "little", signed=False))
    for label in labels:
        h.update(repr(label).encode())
        h.update(b"\x00")
    return int.from_bytes(h.digest()[:8], "little") & _MASK64


def spawn_rng(parent: int, *labels: object) -> np.random.Generator:
    """A numpy :class:`~numpy.random.Generator` seeded via :func:`derive_seed`."""
    return np.random.default_rng(derive_seed(parent, *labels))
