"""Small shared utilities: bit-level I/O and seed derivation."""

from repro.utils.bitio import BitReader, BitWriter
from repro.utils.seeds import derive_seed, spawn_rng

__all__ = ["BitReader", "BitWriter", "derive_seed", "spawn_rng"]
