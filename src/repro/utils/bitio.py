"""Bit-level serialization.

Protocol messages in this package are serialized to *tightly packed* bit
streams: a BCH codeword made of ``t`` syndromes over GF(2^m) occupies exactly
``t * m`` bits on the wire, matching the paper's communication accounting
(e.g. Formula (1): ``t log n + delta log n + delta log|U| + log|U|`` bits per
group pair).  :class:`BitWriter` and :class:`BitReader` implement that
packing on top of plain ``bytes``.

Bits are written most-significant-first within the stream, which makes the
encoding independent of host endianness and easy to eyeball in tests.
"""

from __future__ import annotations

from repro.errors import SerializationError


class BitWriter:
    """Accumulates values of arbitrary bit widths into a byte string.

    >>> w = BitWriter()
    >>> w.write(0b101, 3)
    >>> w.write(0xFF, 8)
    >>> w.bit_length
    11
    >>> r = BitReader(w.getvalue())
    >>> (r.read(3), r.read(8))
    (5, 255)
    """

    def __init__(self) -> None:
        self._chunks: list[int] = []  # (value) pairs flattened below
        self._widths: list[int] = []
        self._bits = 0

    @property
    def bit_length(self) -> int:
        """Number of bits written so far."""
        return self._bits

    @property
    def byte_length(self) -> int:
        """Number of bytes :meth:`getvalue` will return (ceil of bits/8)."""
        return (self._bits + 7) // 8

    def write(self, value: int, width: int) -> None:
        """Append ``value`` as a ``width``-bit big-endian field."""
        if width < 0:
            raise SerializationError(f"negative width {width}")
        if value < 0 or (width < value.bit_length()):
            raise SerializationError(
                f"value {value} does not fit in {width} bits"
            )
        self._chunks.append(value)
        self._widths.append(width)
        self._bits += width

    def write_uint(self, value: int, width: int) -> None:
        """Alias of :meth:`write`, for symmetry with :class:`BitReader`."""
        self.write(value, width)

    def getvalue(self) -> bytes:
        """Return the packed bytes, zero-padded to a byte boundary."""
        acc = 0
        for value, width in zip(self._chunks, self._widths):
            acc = (acc << width) | value
        pad = (-self._bits) % 8
        acc <<= pad
        return acc.to_bytes((self._bits + pad) // 8, "big")


class BitReader:
    """Reads back fields produced by :class:`BitWriter`.

    Raises :class:`~repro.errors.SerializationError` on over-read.
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._total_bits = 8 * len(data)
        self._pos = 0
        self._acc = int.from_bytes(data, "big") if data else 0

    @property
    def bits_remaining(self) -> int:
        return self._total_bits - self._pos

    def read(self, width: int) -> int:
        """Read the next ``width`` bits as an unsigned integer."""
        if width < 0:
            raise SerializationError(f"negative width {width}")
        if self._pos + width > self._total_bits:
            raise SerializationError(
                f"over-read: want {width} bits, {self.bits_remaining} left"
            )
        shift = self._total_bits - self._pos - width
        value = (self._acc >> shift) & ((1 << width) - 1)
        self._pos += width
        return value
