"""Exception hierarchy for the PBS reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ParameterError(ReproError, ValueError):
    """A parameter is outside its valid domain (e.g. ``n`` not ``2^m - 1``)."""


class DecodeFailure(ReproError):
    """A sketch could not be decoded.

    For BCH sketches this corresponds to the paper's third exception type
    (§3.2): the number of "bit errors" exceeds the error-correction
    capacity ``t``.  For IBFs it means the peeling process stalled.
    Protocols catch this and fall back (PBS splits the group three-way;
    D.Digest reports failure).
    """


class ReconciliationFailure(ReproError):
    """A reconciliation protocol exhausted its round budget without the
    checksum verification succeeding."""


class SerializationError(ReproError):
    """A message could not be encoded to, or decoded from, bytes."""
