"""GF(2^m) via log/antilog tables (m <= 16).

Construction walks the powers of the generator alpha = x (the class of x in
GF(2)[x]/(p)), recording ``exp[i] = alpha^i`` and ``log[alpha^i] = i``.  The
walk doubles as a primitivity check: if the supplied polynomial were not
primitive the orbit of alpha would repeat before covering all 2^m - 1
nonzero elements, which we detect and reject.

The tables are numpy arrays, which enables the vectorized bulk operations
(:meth:`TableField.mul_vec`, :meth:`TableField.eval_poly_all`) that make
syndrome computation and Chien search fast enough for pure Python.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.gf.base import GF2mField, PRIMITIVE_POLYS


class TableField(GF2mField):
    """Table-based GF(2^m) for m <= 16.

    >>> f = TableField(8)
    >>> f.mul(f.inv(7), 7)
    1
    """

    def __init__(self, m: int, poly: int | None = None) -> None:
        super().__init__(m)
        if m > 16:
            raise ParameterError(
                f"TableField supports m <= 16 (2^{m} table would be huge); "
                "use TowerField32 or CarrylessField"
            )
        if poly is None:
            try:
                poly = PRIMITIVE_POLYS[m]
            except KeyError:
                raise ParameterError(f"no stock primitive polynomial for m={m}")
        self.poly = poly

        order = self.order
        exp = np.zeros(2 * order, dtype=np.int64)
        log = np.full(order + 1, -1, dtype=np.int64)
        x = 1
        for i in range(order):
            if log[x] != -1:
                raise ParameterError(
                    f"polynomial {poly:#x} is not primitive for m={m}: "
                    f"alpha has order {i}"
                )
            exp[i] = x
            log[x] = i
            x <<= 1
            if x >> m:
                x ^= poly
        if x != 1:
            raise ParameterError(f"polynomial {poly:#x} is not primitive for m={m}")
        # Double the exp table so mul can skip the `mod order` on index sums.
        exp[order : 2 * order] = exp[:order]
        #: antilog table, exp_table[i] = alpha^i, length 2*(2^m - 1)
        self.exp_table = exp
        #: log table, log_table[a] = discrete log of a (log_table[0] = -1)
        self.log_table = log

    # -- scalar ops --------------------------------------------------------
    def mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return int(self.exp_table[self.log_table[a] + self.log_table[b]])

    def inv(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("inverse of 0 in GF(2^m)")
        if a == 1:
            return 1
        return int(self.exp_table[self.order - self.log_table[a]])

    def pow(self, a: int, k: int) -> int:
        if a == 0:
            return 1 if k == 0 else 0
        idx = (int(self.log_table[a]) * k) % self.order
        return int(self.exp_table[idx])

    def alpha_pow(self, i: int) -> int:
        """``alpha^i`` for any integer i (alpha = the generator, element 2)."""
        return int(self.exp_table[i % self.order])

    # -- vectorized ops ----------------------------------------------------
    def mul_vec(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise product of two arrays of field elements."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        out = self.exp_table[self.log_table[a] + self.log_table[b]]
        zero = (a == 0) | (b == 0)
        if zero.any():
            out = np.where(zero, 0, out)
        return out

    def pow_vec(self, a: np.ndarray, k: int) -> np.ndarray:
        """Elementwise ``a ** k`` for an array of field elements."""
        a = np.asarray(a, dtype=np.int64)
        logs = self.log_table[a]
        out = self.exp_table[(logs * k) % self.order]
        zero = a == 0
        if zero.any():
            out = np.where(zero, 1 if k == 0 else 0, out)
        return out

    def power_sum(self, values: np.ndarray, k: int) -> int:
        """XOR-sum of ``v ** k`` over all (nonzero) values — one syndrome."""
        if len(values) == 0:
            return 0
        return int(np.bitwise_xor.reduce(self.pow_vec(values, k)))

    def eval_poly_all(self, coeffs: list[int]) -> np.ndarray:
        """Evaluate a polynomial at *every* nonzero field element at once.

        Returns an array ``vals`` of length ``order`` with
        ``vals[i] = poly(alpha^i)``.  This is the vectorized Chien search
        primitive: the roots are the ``alpha^i`` with ``vals[i] == 0``.
        """
        order = self.order
        idx = np.arange(order, dtype=np.int64)
        acc = np.zeros(order, dtype=np.int64)
        for j, c in enumerate(coeffs):
            if c == 0:
                continue
            log_c = int(self.log_table[c])
            acc ^= self.exp_table[(log_c + j * idx) % order]
        return acc
