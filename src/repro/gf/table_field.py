"""GF(2^m) via log/antilog tables (m <= 16).

Construction walks the powers of the generator alpha = x (the class of x in
GF(2)[x]/(p)), recording ``exp[i] = alpha^i`` and ``log[alpha^i] = i``.  The
walk doubles as a primitivity check: if the supplied polynomial were not
primitive the orbit of alpha would repeat before covering all 2^m - 1
nonzero elements, which we detect and reject.

The tables are numpy arrays, which enables the vectorized bulk operations
(:meth:`TableField.mul_vec`, :meth:`TableField.eval_poly_all`) that make
syndrome computation and Chien search fast enough for pure Python.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ParameterError
from repro.gf.base import GF2mField, PRIMITIVE_POLYS


class TableField(GF2mField):
    """Table-based GF(2^m) for m <= 16.

    >>> f = TableField(8)
    >>> f.mul(f.inv(7), 7)
    1
    """

    def __init__(self, m: int, poly: int | None = None) -> None:
        super().__init__(m)
        if m > 16:
            raise ParameterError(
                f"TableField supports m <= 16 (2^{m} table would be huge); "
                "use TowerField32 or CarrylessField"
            )
        if poly is None:
            try:
                poly = PRIMITIVE_POLYS[m]
            except KeyError:
                raise ParameterError(
                    f"no stock primitive polynomial for m={m}"
                ) from None
        self.poly = poly

        order = self.order
        exp = np.zeros(2 * order, dtype=np.int64)
        log = np.full(order + 1, -1, dtype=np.int64)
        x = 1
        for i in range(order):
            if log[x] != -1:
                raise ParameterError(
                    f"polynomial {poly:#x} is not primitive for m={m}: "
                    f"alpha has order {i}"
                )
            exp[i] = x
            log[x] = i
            x <<= 1
            if x >> m:
                x ^= poly
        if x != 1:
            raise ParameterError(f"polynomial {poly:#x} is not primitive for m={m}")
        # Double the exp table so mul can skip the `mod order` on index sums.
        exp[order : 2 * order] = exp[:order]
        #: antilog table, exp_table[i] = alpha^i, length 2*(2^m - 1)
        self.exp_table = exp
        #: log table, log_table[a] = discrete log of a (log_table[0] = -1)
        self.log_table = log
        self._exp32: np.ndarray | None = None

    @property
    def exp_table32(self) -> np.ndarray:
        """int32 view of the antilog table for bandwidth-bound bulk loops."""
        if self._exp32 is None:
            self._exp32 = self.exp_table.astype(np.int32)
        return self._exp32

    # -- scalar ops --------------------------------------------------------
    def mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return int(self.exp_table[self.log_table[a] + self.log_table[b]])

    def inv(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("inverse of 0 in GF(2^m)")
        if a == 1:
            return 1
        return int(self.exp_table[self.order - self.log_table[a]])

    def pow(self, a: int, k: int) -> int:
        if a == 0:
            return 1 if k == 0 else 0
        idx = (int(self.log_table[a]) * k) % self.order
        return int(self.exp_table[idx])

    def alpha_pow(self, i: int) -> int:
        """``alpha^i`` for any integer i (alpha = the generator, element 2)."""
        return int(self.exp_table[i % self.order])

    # -- vectorized ops ----------------------------------------------------
    def mul_vec(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise product of two arrays of field elements."""
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        out = self.exp_table[self.log_table[a] + self.log_table[b]]
        zero = (a == 0) | (b == 0)
        if zero.any():
            out = np.where(zero, 0, out)
        return out

    def pow_vec(self, a: np.ndarray, k: int) -> np.ndarray:
        """Elementwise ``a ** k`` for an array of field elements."""
        a = np.asarray(a, dtype=np.int64)
        logs = self.log_table[a]
        # Reduce k first: for m = 16 the raw product log * k overflows int64
        # once k reaches ~2^47 (logs go up to 2^16 - 2).
        k_red = int(k) % self.order
        out = self.exp_table[(logs * k_red) % self.order]
        zero = a == 0
        if zero.any():
            out = np.where(zero, 1 if k == 0 else 0, out)
        return out

    def inv_vec(self, a: np.ndarray) -> np.ndarray:
        """Elementwise multiplicative inverse of nonzero field elements."""
        a = np.asarray(a, dtype=np.int64)
        logs = self.log_table[a]
        if (logs < 0).any():
            raise ZeroDivisionError("inverse of 0 in GF(2^m)")
        # order - log is in [1, order]; the doubled exp table covers it
        # (exp[order] == exp[0] == 1, the a == 1 case).
        return self.exp_table[self.order - logs]

    def power_sum(self, values: np.ndarray, k: int) -> int:
        """XOR-sum of ``v ** k`` over all (nonzero) values — one syndrome."""
        if len(values) == 0:
            return 0
        return int(np.bitwise_xor.reduce(self.pow_vec(values, k)))

    def eval_poly_all(self, coeffs: list[int]) -> np.ndarray:
        """Evaluate a polynomial at *every* nonzero field element at once.

        Returns an array ``vals`` of length ``order`` with
        ``vals[i] = poly(alpha^i)``.  This is the vectorized Chien search
        primitive: the roots are the ``alpha^i`` with ``vals[i] == 0``.
        """
        order = self.order
        idx = np.arange(order, dtype=np.int64)
        acc = np.zeros(order, dtype=np.int64)
        for j, c in enumerate(coeffs):
            if c == 0:
                continue
            log_c = int(self.log_table[c])
            acc ^= self.exp_table[(log_c + j * idx) % order]
        return acc

    def eval_poly_all_batch(self, coeffs: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`eval_poly_all` over a matrix of polynomials.

        ``coeffs`` has shape ``(g, k)`` — one ascending-degree coefficient
        row per polynomial.  Returns ``vals`` of shape ``(g, order)`` with
        ``vals[r, i] = poly_r(alpha^i)``: the batched Chien-search
        primitive, one numpy pass per coefficient column instead of one
        Python-level loop per polynomial.
        """
        coeffs = np.asarray(coeffs, dtype=np.int64)
        if coeffs.ndim != 2:
            raise ParameterError("eval_poly_all_batch expects a (g, k) matrix")
        order = self.order
        exp32 = self.exp_table32
        g, k = coeffs.shape
        # -1 marks zero coefficients; int32 is safe for every m <= 16
        # (largest index below is 2*order - 2 < 2^17).
        log_c = self.log_table[coeffs].astype(np.int32)
        # Sort rows by descending degree so that column j only touches the
        # leading slice of rows whose degree reaches j — the total work is
        # then sum(deg_r + 1) instead of g * max_deg table gathers.
        nz = coeffs != 0
        deg = np.where(nz.any(axis=1), k - 1 - np.argmax(nz[:, ::-1], axis=1), -1)
        perm = np.argsort(-deg, kind="stable")
        log_s = log_c[perm]
        neg_deg_sorted = -deg[perm]
        idx = np.arange(order, dtype=np.int32)
        # j_idx holds (j * i) mod order for the current column j, kept
        # reduced incrementally so the inner expression needs no modulo:
        # col + j_idx < 2*order indexes the doubled antilog table directly.
        j_idx = np.zeros(order, dtype=np.int32)
        acc = np.zeros((g, order), dtype=np.int32)
        for j in range(k):
            rows = int(np.searchsorted(neg_deg_sorted, -j, side="right"))
            if rows == 0:
                break
            col = log_s[:rows, j]
            nonzero = col >= 0
            if nonzero.all():
                acc[:rows] ^= exp32[col[:, None] + j_idx[None, :]]
            elif nonzero.any():
                term = exp32[np.where(nonzero, col, 0)[:, None] + j_idx[None, :]]
                acc[:rows] ^= np.where(nonzero[:, None], term, 0)
            j_idx += idx
            j_idx[j_idx >= order] -= order
        out = np.empty((g, order), dtype=np.int64)
        out[perm] = acc  # unsort (and widen) in one pass
        return out
