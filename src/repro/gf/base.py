"""Common interface for GF(2^m) backends and standard primitive polynomials.

Field elements are plain Python ints in ``[0, 2^m)`` interpreted as
polynomials over GF(2) (bit i = coefficient of x^i).  Addition is XOR for
every backend, so it is provided here once.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.errors import ParameterError

#: Standard primitive (or at least irreducible-and-primitive for m <= 16,
#: irreducible for the large sizes) polynomials, written as integers with the
#: leading x^m bit included.  Small-m entries are the classical minimal-weight
#: primitive trinomials/pentanomials; tests verify primitivity exhaustively
#: for every m <= 16.
PRIMITIVE_POLYS: dict[int, int] = {
    2: 0b111,                # x^2+x+1
    3: 0b1011,               # x^3+x+1
    4: 0b10011,              # x^4+x+1
    5: 0b100101,             # x^5+x^2+1
    6: 0b1000011,            # x^6+x+1
    7: 0b10001001,           # x^7+x^3+1
    8: 0b100011101,          # x^8+x^4+x^3+x^2+1
    9: 0b1000010001,         # x^9+x^4+1
    10: 0b10000001001,       # x^10+x^3+1
    11: 0b100000000101,      # x^11+x^2+1
    12: 0b1000001010011,     # x^12+x^6+x^4+x+1
    13: 0b10000000011011,    # x^13+x^4+x^3+x+1
    14: 0b100010001000011,   # x^14+x^10+x^6+x+1
    15: 0b1000000000000011,  # x^15+x+1
    16: 0b10001000000001011,  # x^16+x^12+x^3+x+1
    24: (1 << 24) | 0b10000111,            # x^24+x^7+x^2+x+1
    32: (1 << 32) | (1 << 22) | 0b111,     # x^32+x^22+x^2+x+1
    64: (1 << 64) | 0b11011,               # x^64+x^4+x^3+x+1
}


class GF2mField(abc.ABC):
    """Abstract GF(2^m).  Elements are ints in ``[0, 2^m)``."""

    #: extension degree m
    m: int
    #: multiplicative group order, 2^m - 1
    order: int

    def __init__(self, m: int) -> None:
        if m < 2:
            raise ParameterError(f"GF(2^m) needs m >= 2, got {m}")
        self.m = m
        self.order = (1 << m) - 1

    # -- structure ---------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of field elements, 2^m."""
        return self.order + 1

    def check(self, a: int) -> int:
        """Validate that ``a`` is an element; returns it unchanged."""
        if not 0 <= a <= self.order:
            raise ParameterError(f"{a} is not an element of GF(2^{self.m})")
        return a

    # -- arithmetic --------------------------------------------------------
    @staticmethod
    def add(a: int, b: int) -> int:
        """Field addition (characteristic 2): XOR."""
        return a ^ b

    sub = add  # subtraction coincides with addition in characteristic 2

    @abc.abstractmethod
    def mul(self, a: int, b: int) -> int:
        """Field multiplication."""

    @abc.abstractmethod
    def inv(self, a: int) -> int:
        """Multiplicative inverse of a nonzero element."""

    def div(self, a: int, b: int) -> int:
        """``a / b`` for nonzero ``b``."""
        return self.mul(a, self.inv(b))

    def pow(self, a: int, k: int) -> int:
        """``a ** k`` by square-and-multiply (k may be any integer >= 0)."""
        if a == 0:
            if k == 0:
                return 1
            return 0
        k %= self.order  # a^(2^m - 1) = 1 for nonzero a
        result = 1
        base = a
        while k:
            if k & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            k >>= 1
        return result

    def inv_vec(self, a: np.ndarray) -> np.ndarray:
        """Elementwise multiplicative inverse of nonzero field elements.

        Generic path: ``a^(2^m - 2)`` by vectorized square-and-multiply
        when the backend exposes ``pow_vec``, else a scalar fallback loop.
        Table backends override this with a single gather.
        """
        a = np.asarray(a, dtype=np.int64)
        if (a == 0).any():
            raise ZeroDivisionError(f"inverse of 0 in GF(2^{self.m})")
        if hasattr(self, "pow_vec"):
            return self.pow_vec(a, self.order - 1)
        return np.fromiter(
            (self.inv(int(x)) for x in a), dtype=np.int64, count=len(a)
        )

    def sqr(self, a: int) -> int:
        """``a^2`` (the Frobenius map)."""
        return self.mul(a, a)

    def sqrt(self, a: int) -> int:
        """The unique square root in characteristic 2: ``a^(2^(m-1))``."""
        result = a
        for _ in range(self.m - 1):
            result = self.mul(result, result)
        return result

    def trace(self, a: int) -> int:
        """Absolute trace ``Tr(a) = a + a^2 + a^4 + ... + a^(2^(m-1))`` in GF(2)."""
        acc = 0
        cur = a
        for _ in range(self.m):
            acc ^= cur
            cur = self.mul(cur, cur)
        return acc

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(m={self.m})"
