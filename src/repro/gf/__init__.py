"""Finite fields GF(2^m) and polynomial arithmetic over them.

Three interchangeable field backends implement the :class:`GF2mField`
interface:

* :class:`~repro.gf.table_field.TableField` — log/antilog tables, m <= 16.
  Powers the PBS parity-bitmap sketches (n = 2^m - 1, m in 6..11) and offers
  vectorized bulk multiplication for fast syndrome computation and Chien
  search.
* :class:`~repro.gf.tower_field.TowerField32` — GF(2^32) represented as a
  degree-2 extension of GF(2^16).  One multiply costs three table multiplies,
  which is what makes a pure-Python PinSketch over a 32-bit universe viable.
* :class:`~repro.gf.carryless_field.CarrylessField` — generic, any m, via
  carry-less multiplication and explicit modular reduction.  Slow; used as
  the cross-validation reference and for odd sizes (e.g. m = 64).
"""

from repro.gf.base import GF2mField, PRIMITIVE_POLYS
from repro.gf.carryless_field import CarrylessField
from repro.gf.table_field import TableField
from repro.gf.tower_field import TowerField32
from repro.gf import polynomial

__all__ = [
    "GF2mField",
    "PRIMITIVE_POLYS",
    "TableField",
    "TowerField32",
    "CarrylessField",
    "polynomial",
    "field_for",
]

_FIELD_CACHE: dict[int, GF2mField] = {}


def field_for(m: int) -> GF2mField:
    """Return a cached field instance of GF(2^m), picking the best backend.

    Table fields for m <= 16, the tower field for m = 32, carry-less
    otherwise.  Field construction (table building) is amortized across the
    whole process via this cache.
    """
    field = _FIELD_CACHE.get(m)
    if field is None:
        if m <= 16:
            field = TableField(m)
        elif m == 32:
            field = TowerField32()
        else:
            field = CarrylessField(m)
        _FIELD_CACHE[m] = field
    return field
