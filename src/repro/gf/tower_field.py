"""GF(2^32) as a tower: GF(2^16)[y] / (y^2 + y + beta).

PinSketch over the paper's 32-bit universe needs GF(2^32) arithmetic, but a
log table of 2^32 entries is out of the question and the generic carry-less
backend costs ~m loop iterations per product.  The classical remedy is a
*tower field*: represent each 32-bit element as ``hi * y + lo`` with
``hi, lo`` in GF(2^16), where ``y^2 = y + beta`` for a constant ``beta``
with absolute trace 1 (that trace condition makes ``y^2 + y + beta``
irreducible over GF(2^16)).

One GF(2^32) product then costs three GF(2^16) table products (Karatsuba)
plus one multiply-by-constant, and inversion reduces to one GF(2^16)
inversion via the norm map — about two orders of magnitude faster than the
carry-less loop.  All operations also come in numpy-vectorized form so that
PinSketch syndromes of 10^5-element sets stay fast.

Note: any field of order 2^32 is isomorphic to any other, and PinSketch only
needs *a* field containing the (nonzero) 32-bit signatures, so this
representation change is transparent to the protocol.
"""

from __future__ import annotations

import numpy as np

from repro.gf.base import GF2mField
from repro.gf.table_field import TableField

_M16 = 0xFFFF


def _find_beta(base: TableField) -> int:
    """Smallest GF(2^16) element with absolute trace 1.

    ``y^2 + y + beta`` is irreducible over GF(2^k) iff Tr(beta) = 1.
    """
    for candidate in range(1, base.order + 1):
        if base.trace(candidate) == 1:
            return candidate
    raise AssertionError("no trace-1 element found (impossible)")


class TowerField32(GF2mField):
    """GF(2^32) built on top of GF(2^16).

    >>> f = TowerField32()
    >>> a = 0xDEADBEEF
    >>> f.mul(a, f.inv(a))
    1
    """

    def __init__(self) -> None:
        super().__init__(32)
        self.base = TableField(16)
        self.beta = _find_beta(self.base)
        # Cache for the constant multiply by beta in the vector path.
        base = self.base
        self._log_beta = int(base.log_table[self.beta])

    # -- scalar ops --------------------------------------------------------
    def mul(self, a: int, b: int) -> int:
        base = self.base
        a_hi, a_lo = a >> 16, a & _M16
        b_hi, b_lo = b >> 16, b & _M16
        hh = base.mul(a_hi, b_hi)
        ll = base.mul(a_lo, b_lo)
        # Karatsuba: (a_hi + a_lo)(b_hi + b_lo) = hh + cross + ll
        k = base.mul(a_hi ^ a_lo, b_hi ^ b_lo)
        hi = k ^ ll  # = hh + cross; with the y^2 = y + beta reduction folded in
        lo = self._mul_beta(hh) ^ ll
        return (hi << 16) | lo

    def _mul_beta(self, x: int) -> int:
        if x == 0:
            return 0
        base = self.base
        return int(base.exp_table[self._log_beta + base.log_table[x]])

    def inv(self, a: int) -> int:
        if a == 0:
            raise ZeroDivisionError("inverse of 0 in GF(2^32)")
        base = self.base
        hi, lo = a >> 16, a & _M16
        # Conjugate of (hi*y + lo) under Frobenius^16 is (hi*y + hi + lo);
        # norm = a * conj(a) = beta*hi^2 + hi*lo + lo^2 lies in GF(2^16).
        norm = (
            self._mul_beta(base.mul(hi, hi))
            ^ base.mul(hi, lo)
            ^ base.mul(lo, lo)
        )
        inv_norm = base.inv(norm)
        out_hi = base.mul(hi, inv_norm)
        out_lo = base.mul(hi ^ lo, inv_norm)
        return (out_hi << 16) | out_lo

    # -- vectorized ops ----------------------------------------------------
    def mul_vec(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise GF(2^32) product of two int64 arrays."""
        base = self.base
        a = np.asarray(a, dtype=np.int64)
        b = np.asarray(b, dtype=np.int64)
        a_hi, a_lo = a >> 16, a & _M16
        b_hi, b_lo = b >> 16, b & _M16
        hh = base.mul_vec(a_hi, b_hi)
        ll = base.mul_vec(a_lo, b_lo)
        k = base.mul_vec(a_hi ^ a_lo, b_hi ^ b_lo)
        hi = k ^ ll
        lo = base.mul_vec(hh, np.full_like(hh, self.beta)) ^ ll
        return (hi << 16) | lo

    def inv_vec(self, a: np.ndarray) -> np.ndarray:
        """Elementwise inverse via the norm map — one GF(2^16) inversion
        (a table gather) per element instead of a 2^32 - 2 power chain."""
        base = self.base
        a = np.asarray(a, dtype=np.int64)
        hi, lo = a >> 16, a & _M16
        beta = np.full_like(hi, self.beta)
        norm = (
            base.mul_vec(base.mul_vec(hi, hi), beta)
            ^ base.mul_vec(hi, lo)
            ^ base.mul_vec(lo, lo)
        )
        # norm == 0 iff a == 0 (the norm is multiplicative and nonzero on
        # nonzero elements); inv_vec of the base raises on zeros for us.
        inv_norm = base.inv_vec(norm)
        out_hi = base.mul_vec(hi, inv_norm)
        out_lo = base.mul_vec(hi ^ lo, inv_norm)
        return (out_hi << 16) | out_lo

    def pow_vec(self, a: np.ndarray, k: int) -> np.ndarray:
        """Elementwise ``a ** k`` by square-and-multiply on arrays."""
        a = np.asarray(a, dtype=np.int64)
        result = np.ones_like(a)
        base_arr = a.copy()
        kk = k % self.order if k else 0
        if k and kk == 0:
            # a^(order) = 1 for nonzero a; keep zeros mapped to 0 below.
            kk = self.order
        while kk:
            if kk & 1:
                result = self.mul_vec(result, base_arr)
            base_arr = self.mul_vec(base_arr, base_arr)
            kk >>= 1
        if k != 0:
            result = np.where(a == 0, 0, result)
        return result

    def power_sum(self, values: np.ndarray, k: int) -> int:
        """XOR-sum of ``v ** k`` over all values — one PinSketch syndrome."""
        if len(values) == 0:
            return 0
        return int(np.bitwise_xor.reduce(self.pow_vec(values, k)))
