"""Polynomial arithmetic over GF(2^m).

Polynomials are plain Python lists of field elements in *ascending* degree
order (``coeffs[i]`` multiplies x^i), normalized so the last entry is
nonzero (the zero polynomial is ``[]``).  The BCH decoder needs multiply,
divmod, gcd, modular exponentiation of x, and evaluation; the Berlekamp
trace root-finder additionally needs the trace polynomial ``Tr(beta x)``
modulo the locator.
"""

from __future__ import annotations

from repro.gf.base import GF2mField

Poly = list[int]


def trim(p: Poly) -> Poly:
    """Strip trailing zero coefficients (normal form)."""
    end = len(p)
    while end and p[end - 1] == 0:
        end -= 1
    return p[:end]


def degree(p: Poly) -> int:
    """Degree of a normalized polynomial; -1 for the zero polynomial."""
    return len(p) - 1


def add(p: Poly, q: Poly) -> Poly:
    """Coefficientwise XOR (characteristic 2 addition)."""
    if len(p) < len(q):
        p, q = q, p
    out = list(p)
    for i, c in enumerate(q):
        out[i] ^= c
    return trim(out)


def scale(p: Poly, c: int, field: GF2mField) -> Poly:
    """Multiply every coefficient by the scalar ``c``."""
    if c == 0:
        return []
    return [field.mul(coef, c) for coef in p]


def mul(p: Poly, q: Poly, field: GF2mField) -> Poly:
    """Product of two polynomials."""
    if not p or not q:
        return []
    out = [0] * (len(p) + len(q) - 1)
    for i, a in enumerate(p):
        if a == 0:
            continue
        for j, b in enumerate(q):
            if b:
                out[i + j] ^= field.mul(a, b)
    return trim(out)


def divmod_poly(num: Poly, den: Poly, field: GF2mField) -> tuple[Poly, Poly]:
    """Quotient and remainder of polynomial division."""
    num = trim(list(num))
    den = trim(list(den))
    if not den:
        raise ZeroDivisionError("polynomial division by zero")
    if len(num) < len(den):
        return [], num
    inv_lead = field.inv(den[-1])
    quot = [0] * (len(num) - len(den) + 1)
    rem = list(num)
    for shift in range(len(num) - len(den), -1, -1):
        coef = rem[shift + len(den) - 1]
        if coef == 0:
            continue
        factor = field.mul(coef, inv_lead)
        quot[shift] = factor
        for i, d in enumerate(den):
            if d:
                rem[shift + i] ^= field.mul(factor, d)
    return trim(quot), trim(rem)


def mod(num: Poly, den: Poly, field: GF2mField) -> Poly:
    """Remainder of polynomial division."""
    return divmod_poly(num, den, field)[1]


def monic(p: Poly, field: GF2mField) -> Poly:
    """Scale so the leading coefficient is 1."""
    p = trim(list(p))
    if not p or p[-1] == 1:
        return p
    return scale(p, field.inv(p[-1]), field)


def gcd(p: Poly, q: Poly, field: GF2mField) -> Poly:
    """Monic greatest common divisor."""
    a, b = trim(list(p)), trim(list(q))
    while b:
        a, b = b, mod(a, b, field)
    return monic(a, field)


def evaluate(p: Poly, x: int, field: GF2mField) -> int:
    """Evaluate via Horner's rule."""
    acc = 0
    for c in reversed(p):
        acc = field.mul(acc, x) ^ c
    return acc


def mul_mod(p: Poly, q: Poly, f: Poly, field: GF2mField) -> Poly:
    """``p * q mod f``."""
    return mod(mul(p, q, field), f, field)


def pow_x_mod(exponent_log2: int, f: Poly, field: GF2mField) -> Poly:
    """``x^(2^exponent_log2) mod f`` by repeated squaring of x."""
    result = mod([0, 1], f, field)
    for _ in range(exponent_log2):
        result = mul_mod(result, result, f, field)
    return result


def trace_poly_mod(beta: int, f: Poly, field: GF2mField) -> Poly:
    """``Tr(beta x) mod f = sum_{i=0}^{m-1} (beta x)^(2^i) mod f``.

    This is the splitting polynomial of the Berlekamp trace algorithm: for
    any field element e, ``Tr(beta e)`` is 0 or 1, so gcd(f, Tr(beta x))
    collects exactly the roots of f whose trace (against beta) vanishes.
    """
    term = mod([0, beta], f, field)  # (beta x)^(2^0)
    acc = term
    for _ in range(field.m - 1):
        # square the *previous power term*: ((beta x)^(2^i))^2 = (beta x)^(2^(i+1))
        term = mul_mod(term, term, f, field)
        acc = add(acc, term)
    return acc


def from_roots(roots: list[int], field: GF2mField) -> Poly:
    """Monic polynomial with the given roots: prod (x - r)."""
    p: Poly = [1]
    for r in roots:
        p = mul(p, [r, 1], field)
    return p
