"""Generic GF(2^m) via carry-less multiplication (any m).

This is the straightforward, backend-agnostic implementation: multiply the
two operand polynomials with shift/XOR, then reduce modulo the field
polynomial.  It is O(m) per multiplication and therefore slow, but works for
any extension degree, including GF(2^64).  It serves as the reference
implementation that the table and tower backends are cross-validated
against in the property-based tests.
"""

from __future__ import annotations

from repro.errors import ParameterError
from repro.gf.base import GF2mField, PRIMITIVE_POLYS


def clmul(a: int, b: int) -> int:
    """Carry-less (GF(2)[x]) product of two nonnegative integers."""
    result = 0
    while b:
        if b & 1:
            result ^= a
        a <<= 1
        b >>= 1
    return result


def poly_mod_int(value: int, poly: int, m: int) -> int:
    """Reduce a GF(2)[x] polynomial (as int) modulo ``poly`` of degree m."""
    for i in range(value.bit_length() - 1, m - 1, -1):
        if (value >> i) & 1:
            value ^= poly << (i - m)
    return value


class CarrylessField(GF2mField):
    """Reference GF(2^m) backend for arbitrary m.

    >>> f = CarrylessField(64)
    >>> a = 0xDEADBEEFCAFEF00D
    >>> f.mul(a, f.inv(a))
    1
    """

    def __init__(self, m: int, poly: int | None = None) -> None:
        super().__init__(m)
        if poly is None:
            try:
                poly = PRIMITIVE_POLYS[m]
            except KeyError:
                raise ParameterError(
                    f"no stock polynomial for m={m}; pass one explicitly"
                ) from None
        if poly >> m != 1:
            raise ParameterError(f"polynomial {poly:#x} does not have degree {m}")
        self.poly = poly

    def mul(self, a: int, b: int) -> int:
        if a == 0 or b == 0:
            return 0
        return poly_mod_int(clmul(a, b), self.poly, self.m)

    def inv(self, a: int) -> int:
        """Inverse via the extended Euclidean algorithm on GF(2)[x]."""
        if a == 0:
            raise ZeroDivisionError("inverse of 0 in GF(2^m)")
        # Invariants: r0 = s0 * a (mod poly), r1 = s1 * a (mod poly)
        r0, r1 = self.poly, a
        s0, s1 = 0, 1
        while r1 != 0:
            d = r0.bit_length() - r1.bit_length()
            if d < 0:
                r0, r1 = r1, r0
                s0, s1 = s1, s0
                continue
            r0 ^= r1 << d
            s0 ^= s1 << d
        # r0 is now gcd = 1 (poly is irreducible), s0 the Bezout coefficient.
        return poly_mod_int(s0, self.poly, self.m)
