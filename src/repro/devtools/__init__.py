"""Project-specific static analysis for the repro codebase.

The architecture documented in ``docs/architecture.md`` carries
invariants that plain linters cannot see: mutations must be durable
before they are acknowledged, durations must come from monotonic
clocks, RNG must be seeded through :mod:`repro.utils.seeds`, every
wire-frame type must be dispatched somewhere, pinned schema versions
must stay in lock-step with their tests and docs.  This package turns
each of those review-checklist items into an AST checker that runs in
CI (``python -m repro.devtools.check src`` or ``repro check``).

Layout:

* :mod:`repro.devtools.findings` — the :class:`Finding` record and its
  line-drift-stable fingerprint.
* :mod:`repro.devtools.source` — parsed source files, the project
  view, and ``# repro: ignore[...]`` pragma handling.
* :mod:`repro.devtools.baseline` — the committed burn-down baseline.
* :mod:`repro.devtools.checkers` — the checker registry.
* :mod:`repro.devtools.check` — the CLI entry point and exit codes.
"""

from __future__ import annotations

from repro.devtools.baseline import Baseline
from repro.devtools.findings import Finding
from repro.devtools.source import Project, SourceFile

__all__ = ["Baseline", "Finding", "Project", "SourceFile"]
