"""The finding record every checker emits, and its stable identity.

A finding's *fingerprint* deliberately ignores the line number: it
hashes the checker id, the file's path, the stripped text of the
flagged line, and an occurrence index (for identical lines in one
file).  Edits elsewhere in a file shift line numbers but leave
fingerprints alone, so the committed baseline
(:mod:`repro.devtools.baseline`) keeps matching old findings without
constant regeneration.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any


@dataclass
class Finding:
    """One rule violation at one source location."""

    checker: str        #: checker id, e.g. ``"monotonic-clock"``
    path: str           #: posix path relative to the project root
    line: int           #: 1-based line of the flagged node
    col: int            #: 0-based column of the flagged node
    message: str        #: what is wrong, concretely
    hint: str = ""      #: how to fix it (or how to suppress legitimately)
    #: assigned by the runner: sha1 of (checker, path, line text, index)
    fingerprint: str = ""
    #: True when the committed baseline already contains this finding
    baselined: bool = field(default=False, compare=False)

    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.checker)

    def format(self) -> str:
        text = f"{self.path}:{self.line}:{self.col}: {self.checker}: " \
               f"{self.message}"
        if self.hint:
            text += f"  [hint: {self.hint}]"
        return text

    def to_dict(self) -> dict[str, Any]:
        return {
            "checker": self.checker,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "hint": self.hint,
            "fingerprint": self.fingerprint,
            "baselined": self.baselined,
        }


def assign_fingerprints(
    findings: list[Finding], line_text: dict[tuple[str, int], str]
) -> None:
    """Fill :attr:`Finding.fingerprint` for a full run's findings.

    ``line_text`` maps ``(path, line)`` to that line's source text (an
    empty string when unavailable, e.g. an unreadable file).  Identical
    (checker, path, line-text) triples are disambiguated by occurrence
    order, counted in :meth:`Finding.sort_key` order so the numbering
    is deterministic.
    """
    seen: dict[tuple[str, str, str], int] = {}
    for finding in sorted(findings, key=Finding.sort_key):
        text = line_text.get((finding.path, finding.line), "").strip()
        key = (finding.checker, finding.path, text)
        index = seen.get(key, 0)
        seen[key] = index + 1
        digest = hashlib.sha1(
            f"{finding.checker}|{finding.path}|{text}|{index}".encode()
        ).hexdigest()
        finding.fingerprint = digest[:16]
