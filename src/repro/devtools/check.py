"""CLI entry point: ``python -m repro.devtools.check`` / ``repro check``.

Exit codes are part of the contract (CI and scripts distinguish tool
failure from findings):

* ``0`` — clean: no findings outside the committed baseline;
* ``1`` — at least one *new* finding (or ``--write-baseline`` had
  nothing to do but findings exist — never happens in practice);
* ``2`` — the tool itself failed: bad arguments, unreadable/corrupt
  baseline, internal error.
"""

from __future__ import annotations

import argparse
import json
import sys
import traceback
from pathlib import Path
from typing import Any, TextIO

from repro.devtools.baseline import Baseline, BaselineError
from repro.devtools.checkers import Checker, all_checkers
from repro.devtools.findings import Finding, assign_fingerprints
from repro.devtools.source import (
    FRAMEWORK_CHECKERS,
    Project,
    SourceFile,
    find_root,
)

#: JSON report shape version.
REPORT_SCHEMA_VERSION = 1

EXIT_CLEAN = 0
EXIT_FINDINGS = 1
EXIT_ERROR = 2

DEFAULT_BASELINE = "devtools-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description="Project-specific static analysis: async-safety, "
                    "durability, and determinism invariant checkers.",
    )
    parser.add_argument(
        "paths", nargs="*", default=None,
        help="files or directories to check (default: src/ under the "
             "project root)",
    )
    parser.add_argument(
        "--root", type=Path, default=None,
        help="project root (default: nearest ancestor of the first "
             "path containing pyproject.toml)",
    )
    parser.add_argument(
        "--json", action="store_true", dest="json_out",
        help="print the JSON findings report to stdout instead of text",
    )
    parser.add_argument(
        "--output", type=Path, default=None, metavar="FILE",
        help="also write the JSON findings report to FILE",
    )
    parser.add_argument(
        "--baseline", type=Path, default=None, metavar="FILE",
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE} when "
             f"it exists)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline: every finding is a failure",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="write the current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--select", default=None, metavar="IDS",
        help="comma-separated checker ids to run (default: all)",
    )
    parser.add_argument(
        "--show-baselined", action="store_true",
        help="also print findings the baseline already accepts",
    )
    parser.add_argument(
        "--list-checkers", action="store_true",
        help="list the registered checkers and exit",
    )
    return parser


def run_checkers(
    project: Project, checkers: list[Checker]
) -> list[Finding]:
    """All findings over the project: framework findings (parse errors,
    malformed pragmas), per-file checkers, cross-file checkers."""
    findings: list[Finding] = []
    for src in project.files:
        if src.parse_error is not None:
            findings.append(Finding(
                checker="parse-error", path=src.rel, line=1, col=0,
                message=src.parse_error,
            ))
    for checker in checkers:
        findings.extend(checker.check_project(project))
        for src in project.files:
            if src.tree is not None:
                findings.extend(checker.check_file(src))

    # pragma suppression (bad pragmas are findings themselves and are
    # never suppressible — a pragma must not vouch for itself)
    kept: list[Finding] = []
    for finding in findings:
        src = project.file(finding.path)
        if (
            src is not None
            and finding.checker not in FRAMEWORK_CHECKERS
            and src.suppressed(finding.checker, finding.line) is not None
        ):
            continue
        kept.append(finding)
    for src in _pragma_sources(project, kept):
        for line, message in src.bad_pragmas:
            kept.append(Finding(
                checker="bad-pragma", path=src.rel, line=line, col=0,
                message=message,
                hint="syntax: # repro: ignore[checker-id] -- justification",
            ))

    line_text = {
        (f.path, f.line): _line_text(project, f.path, f.line) for f in kept
    }
    assign_fingerprints(kept, line_text)
    return sorted(kept, key=Finding.sort_key)


def _pragma_sources(
    project: Project, findings: list[Finding]
) -> list[SourceFile]:
    """Files whose pragmas were consulted this run: the scanned set plus
    any cross-file targets findings point into."""
    by_rel: dict[str, SourceFile] = {src.rel: src for src in project.files}
    for finding in findings:
        src = project.file(finding.path)
        if src is not None:
            by_rel.setdefault(src.rel, src)
    return list(by_rel.values())


def _line_text(project: Project, rel: str, line: int) -> str:
    src = project.file(rel)
    return src.line_text(line) if src is not None else ""


def report_doc(
    findings: list[Finding], checkers: list[Checker], root: Path,
    paths: list[str], suppressed_stale: list[str],
) -> dict[str, Any]:
    new = [f for f in findings if not f.baselined]
    return {
        "schema": REPORT_SCHEMA_VERSION,
        "root": str(root),
        "paths": paths,
        "checkers": [c.id for c in checkers],
        "findings": [f.to_dict() for f in findings],
        "stale_baseline": suppressed_stale,
        "summary": {
            "total": len(findings),
            "new": len(new),
            "baselined": len(findings) - len(new),
            "by_checker": _by_checker(findings),
        },
    }


def _by_checker(findings: list[Finding]) -> dict[str, int]:
    counts: dict[str, int] = {}
    for finding in findings:
        counts[finding.checker] = counts.get(finding.checker, 0) + 1
    return dict(sorted(counts.items()))


def run(argv: list[str], out: TextIO, err: TextIO) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    checkers = all_checkers()

    if args.list_checkers:
        for checker in checkers:
            print(f"{checker.id:24s} {checker.description}", file=out)
        print("bad-pragma               malformed/unjustified repro "
              "pragma (framework)", file=out)
        print("parse-error              file cannot be parsed "
              "(framework)", file=out)
        return EXIT_CLEAN

    known = {checker.id for checker in checkers}
    if args.select is not None:
        selected = {part.strip() for part in args.select.split(",")
                    if part.strip()}
        unknown = sorted(selected - known)
        if unknown:
            print(
                f"error: unknown checker id(s): {', '.join(unknown)} "
                f"(see --list-checkers)", file=err,
            )
            return EXIT_ERROR
        checkers = [c for c in checkers if c.id in selected]

    raw_paths = [Path(p) for p in (args.paths or [])]
    root = args.root
    if root is None:
        probe = raw_paths[0] if raw_paths else Path.cwd()
        root = find_root(probe if probe.exists() else Path.cwd())
    root = root.resolve()
    if not raw_paths:
        raw_paths = [root / "src"]
    for path in raw_paths:
        if not path.exists():
            print(f"error: no such path: {path}", file=err)
            return EXIT_ERROR

    known_ids = frozenset(known) | frozenset(FRAMEWORK_CHECKERS)
    project = Project(root, raw_paths, known_ids)
    if not project.files:
        print(f"error: no python files under {', '.join(map(str, raw_paths))}",
              file=err)
        return EXIT_ERROR

    findings = run_checkers(project, checkers)

    baseline_path = args.baseline
    if baseline_path is None and not args.no_baseline:
        default = root / DEFAULT_BASELINE
        baseline_path = default if default.exists() else None
    if args.write_baseline:
        target = args.baseline or (root / DEFAULT_BASELINE)
        count = Baseline.write(target, findings)
        print(f"wrote {count} finding(s) to {target}", file=out)
        return EXIT_CLEAN

    stale: list[str] = []
    if baseline_path is not None and not args.no_baseline:
        baseline = Baseline.load(baseline_path)   # BaselineError -> exit 2
        baseline.apply(findings)
        stale = baseline.stale(findings)

    doc = report_doc(
        findings, checkers, root,
        [str(p) for p in raw_paths], stale,
    )
    if args.output is not None:
        args.output.write_text(
            json.dumps(doc, indent=2) + "\n", encoding="utf-8"
        )
    if args.json_out:
        json.dump(doc, out, indent=2)
        out.write("\n")
    else:
        shown = 0
        for finding in findings:
            if finding.baselined and not args.show_baselined:
                continue
            marker = "  (baselined)" if finding.baselined else ""
            print(finding.format() + marker, file=out)
            shown += 1
        summary = doc["summary"]
        print(
            f"{summary['total']} finding(s): {summary['new']} new, "
            f"{summary['baselined']} baselined; "
            f"{len(checkers)} checker(s) over {len(project.files)} "
            f"file(s)", file=out,
        )
        if stale:
            print(
                f"note: {len(stale)} stale baseline entr"
                f"{'y' if len(stale) == 1 else 'ies'} (fixed findings) — "
                f"regenerate with --write-baseline", file=out,
            )
    return EXIT_FINDINGS if doc["summary"]["new"] else EXIT_CLEAN


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    try:
        return run(argv, sys.stdout, sys.stderr)
    except SystemExit as exc:          # argparse --help / usage errors
        code = exc.code
        if code is None:
            return EXIT_CLEAN
        return code if isinstance(code, int) else EXIT_ERROR
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return EXIT_ERROR
    except Exception:
        traceback.print_exc(file=sys.stderr)
        return EXIT_ERROR


if __name__ == "__main__":
    sys.exit(main())
