"""The committed burn-down baseline.

The baseline lets the gate land green on a codebase with known,
deliberately deferred findings: CI fails only on findings whose
fingerprint is *not* in the committed file, and the file is expected
to shrink over subsequent PRs (regenerate with ``--write-baseline``
after fixing entries; never to add new ones).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.devtools.findings import Finding

BASELINE_SCHEMA = 1


class BaselineError(Exception):
    """The baseline file exists but cannot be used (corrupt/unknown)."""


@dataclass
class Baseline:
    """A set of accepted finding fingerprints, with context for humans."""

    fingerprints: set[str] = field(default_factory=set)
    #: fingerprint -> {"checker", "path", "message"} (informational)
    entries: dict[str, dict[str, str]] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise BaselineError(
                f"baseline {path} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(doc, dict) or doc.get("schema") != BASELINE_SCHEMA:
            raise BaselineError(
                f"baseline {path} has schema {doc.get('schema')!r}, "
                f"expected {BASELINE_SCHEMA}"
            )
        findings = doc.get("findings")
        if not isinstance(findings, list):
            raise BaselineError(f"baseline {path} has no findings list")
        baseline = cls()
        for entry in findings:
            if not isinstance(entry, dict) or "fingerprint" not in entry:
                raise BaselineError(
                    f"baseline {path} entry without fingerprint: {entry!r}"
                )
            fingerprint = str(entry["fingerprint"])
            baseline.fingerprints.add(fingerprint)
            baseline.entries[fingerprint] = {
                "checker": str(entry.get("checker", "")),
                "path": str(entry.get("path", "")),
                "message": str(entry.get("message", "")),
            }
        return baseline

    def apply(self, findings: list[Finding]) -> None:
        """Mark findings already accepted by this baseline."""
        for finding in findings:
            finding.baselined = finding.fingerprint in self.fingerprints

    def stale(self, findings: list[Finding]) -> list[str]:
        """Baseline fingerprints no current finding matches — fixed
        violations whose entries should be burned down."""
        current = {f.fingerprint for f in findings}
        return sorted(self.fingerprints - current)

    @staticmethod
    def write(path: Path, findings: list[Finding]) -> int:
        """Write ``findings`` as the new baseline; returns the count."""
        entries = [
            {
                "fingerprint": f.fingerprint,
                "checker": f.checker,
                "path": f.path,
                "message": f.message,
            }
            for f in sorted(findings, key=Finding.sort_key)
        ]
        doc = {"schema": BASELINE_SCHEMA, "findings": entries}
        path.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
        return len(entries)
