"""schema-pins: bumping a pinned schema must update its tests and docs.

``SNAPSHOT_SCHEMA``, ``WINDOW_SCHEMA``, and ``REPORT_SCHEMA`` version
externally consumed JSON shapes (the admin ``/varz`` snapshot, the
windowed timeseries, the loadgen run report).  Scripts parse those
documents, so a bump is a compatibility event: the regression tests
must pin the *literal* new number (``assert doc["schema"] == NAME ==
3`` — comparing only against the imported constant would follow a bump
silently), and the documentation must state the current value.

The checker reads each constant's integer from its defining module,
then:

* scans ``tests/test_*.py`` for comparisons that chain the constant
  with an integer literal — no such pin anywhere, or a pin with a
  different number, is a finding;
* scans ``README.md`` and ``docs/*.md`` for the constant's name
  followed closely by an integer — an absent mention or a stale number
  is a finding.
"""

from __future__ import annotations

import ast
import re
from collections.abc import Iterable
from typing import ClassVar

from repro.devtools.astutil import module_int_assign
from repro.devtools.checkers import Checker
from repro.devtools.findings import Finding
from repro.devtools.source import Project

#: (constant name, defining module) — the pinned wire/report schemas.
SCHEMA_CONSTS: list[tuple[str, str]] = [
    ("SNAPSHOT_SCHEMA", "src/repro/service/metrics.py"),
    ("WINDOW_SCHEMA", "src/repro/obs/metrics.py"),
    ("REPORT_SCHEMA", "src/repro/loadgen/report.py"),
]

DOC_PATHS = ["README.md"]
DOC_GLOB = "docs/*.md"


def _test_pins(
    tree: ast.Module, const: str
) -> list[tuple[int, int]]:
    """``(literal, line)`` for comparisons chaining ``const`` with an
    integer literal (``x == CONST == 3``, ``CONST == 3``, ...)."""
    pins: list[tuple[int, int]] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Compare):
            continue
        operands = [node.left, *node.comparators]
        names = {
            op.id for op in operands if isinstance(op, ast.Name)
        }
        if const not in names:
            continue
        for op in operands:
            if isinstance(op, ast.Constant) and isinstance(op.value, int):
                pins.append((op.value, node.lineno))
    return pins


class SchemaPinDrift(Checker):
    id: ClassVar[str] = "schema-pins"
    description: ClassVar[str] = (
        "pinned schema constants (SNAPSHOT/WINDOW/REPORT) must match "
        "the literal pins in tests and the documented values"
    )
    hint: ClassVar[str] = (
        "a schema bump is a compatibility event: update the pinning "
        "test literal and the docs alongside the constant"
    )

    def check_project(self, project: Project) -> Iterable[Finding]:
        test_paths = project.glob("tests/test_*.py")
        doc_paths = [
            p for p in DOC_PATHS if project.read_text(p) is not None
        ] + project.glob(DOC_GLOB)
        findings: list[Finding] = []
        for const, module in SCHEMA_CONSTS:
            findings.extend(
                self._check_const(project, const, module, test_paths,
                                  doc_paths)
            )
        return findings

    def _check_const(
        self, project: Project, const: str, module: str,
        test_paths: list[str], doc_paths: list[str],
    ) -> Iterable[Finding]:
        src = project.file(module)
        if src is None or src.tree is None:
            return
        assign = module_int_assign(src.tree, const)
        if assign is None:
            yield self.finding(
                src, 1, 0,
                f"expected module-level int {const} in {module}",
                hint="update SCHEMA_CONSTS in the schema-pins checker",
            )
            return
        value, def_line = assign

        pinned = False
        for test_path in test_paths:
            test_src = project.file(test_path)
            if test_src is None or test_src.tree is None:
                continue
            for literal, line in _test_pins(test_src.tree, const):
                pinned = True
                if literal != value:
                    yield self.finding(
                        test_src, line, 0,
                        f"test pins {const} == {literal} but the "
                        f"constant is {value} ({module}:{def_line})",
                    )
        if not pinned and test_paths:
            yield self.finding(
                src, def_line, 0,
                f"no test pins a literal value for {const}: a silent "
                f"bump would pass the suite",
                hint=f"assert doc['schema'] == {const} == {value} in a "
                     f"regression test",
            )

        documented = False
        # explicit value statements only: "NAME = 3", "NAME: 3",
        # "NAME` (currently 3)" — prose numbers near the name don't count
        name_re = re.compile(
            re.escape(const)
            + r"`?(?:\s*(?:=|==|:)\s*|\s*\(currently\s+)`?(\d+)"
        )
        for doc_path in doc_paths:
            text = project.read_text(doc_path)
            if text is None:
                continue
            for line_no, line in enumerate(text.splitlines(), start=1):
                if const not in line:
                    continue
                documented = True
                for match in name_re.finditer(line):
                    if int(match.group(1)) != value:
                        yield self.finding(
                            doc_path, line_no, 0,
                            f"doc states {const} as {match.group(1)} but "
                            f"the constant is {value}",
                        )
        if not documented and doc_paths:
            yield self.finding(
                src, def_line, 0,
                f"{const} is not mentioned in README.md or docs/ — "
                f"external consumers cannot discover the pinned shape",
            )
